//! The paper's evaluation claims, asserted end-to-end: these tests run
//! the same experiment code that regenerates every figure and check the
//! qualitative results §10 reports. Tolerances and known deviations are
//! documented in EXPERIMENTS.md.

use shidiannao_bench::{
    fig18_speedups, fig19_energy, fig7_bandwidth, framerate_report, geomean, reuse_report,
    table1_storage, table4_characteristics,
};

// ---------------------------------------------------------------- Fig. 18

#[test]
fn fig18_mean_speedups_match_the_paper() {
    let rows = fig18_speedups();
    assert_eq!(rows.len(), 10);
    let sdn = geomean(
        &rows
            .iter()
            .map(|r| r.shidiannao_speedup())
            .collect::<Vec<_>>(),
    );
    let dn = geomean(&rows.iter().map(|r| r.diannao_speedup()).collect::<Vec<_>>());
    let gpu = geomean(&rows.iter().map(|r| r.gpu_speedup()).collect::<Vec<_>>());
    // Paper: 46.38× over the CPU, 28.94× over the GPU, 1.87× over DianNao.
    assert!((40.0..55.0).contains(&sdn), "ShiDianNao {sdn}x vs CPU");
    assert!((20.0..35.0).contains(&dn), "DianNao {dn}x vs CPU");
    assert!((1.3..2.0).contains(&gpu), "GPU {gpu}x vs CPU");
    let vs_diannao = sdn / dn;
    assert!(
        (1.5..2.2).contains(&vs_diannao),
        "ShiDianNao is {vs_diannao}x faster than DianNao (paper: 1.87x)"
    );
    let vs_gpu = sdn / gpu;
    assert!(
        (24.0..34.0).contains(&vs_gpu),
        "ShiDianNao is {vs_gpu}x faster than the GPU (paper: 28.94x)"
    );
}

#[test]
fn fig18_shidiannao_beats_diannao_on_nine_of_ten() {
    // "ShiDianNao also outperforms our accelerator baseline on 9 out of 10
    // benchmarks" — the exception being Simple Conv (§10.2).
    let rows = fig18_speedups();
    let losses: Vec<&str> = rows
        .iter()
        .filter(|r| r.shidiannao_s > r.diannao_s)
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(
        losses,
        ["SimpleConv"],
        "DianNao must win exactly SimpleConv"
    );
}

#[test]
fn fig18_everything_beats_the_cpu() {
    for r in fig18_speedups() {
        assert!(r.shidiannao_speedup() > 1.0, "{}", r.name);
        assert!(r.diannao_speedup() > 1.0, "{}", r.name);
    }
}

// ---------------------------------------------------------------- Fig. 19

#[test]
fn fig19_energy_ratios_match_the_paper() {
    let rows = fig19_energy();
    let ratio = |f: fn(&shidiannao_bench::Fig19Row) -> f64| {
        geomean(
            &rows
                .iter()
                .map(|r| f(r) / r.shidiannao_nj)
                .collect::<Vec<_>>(),
        )
    };
    // Paper: 4 688× (GPU), 63.48× (DianNao), 1.66× (DianNao-FreeMem).
    let gpu = ratio(|r| r.gpu_nj);
    let dn = ratio(|r| r.diannao_nj);
    let free = ratio(|r| r.diannao_freemem_nj);
    assert!((3_500.0..6_000.0).contains(&gpu), "GPU ratio {gpu}");
    assert!((50.0..80.0).contains(&dn), "DianNao ratio {dn}");
    assert!((1.2..2.1).contains(&free), "FreeMem ratio {free}");
}

#[test]
fn fig19_sensor_integration_raises_the_ratios() {
    // §10.3: "when ShiDianNao is integrated in an embedded vision sensor
    // … 87.39× and 2.37× more energy efficient than DianNao and
    // DianNao-FreeMem".
    let rows = fig19_energy();
    let dn = geomean(
        &rows
            .iter()
            .map(|r| r.diannao_nj / r.shidiannao_sensor_nj)
            .collect::<Vec<_>>(),
    );
    let free = geomean(
        &rows
            .iter()
            .map(|r| r.diannao_freemem_nj / r.shidiannao_sensor_nj)
            .collect::<Vec<_>>(),
    );
    assert!((70.0..110.0).contains(&dn), "sensor DianNao ratio {dn}");
    assert!((1.8..3.0).contains(&free), "sensor FreeMem ratio {free}");
}

#[test]
fn fig19_shidiannao_beats_even_free_memory_diannao_everywhere() {
    // "ShiDianNao is still 1.66× more energy efficient than
    // DianNao-FreeMem" — under the sensor-integrated accounting it must
    // win on every benchmark.
    for r in fig19_energy() {
        assert!(
            r.shidiannao_sensor_nj < r.diannao_freemem_nj,
            "{}: {} vs FreeMem {}",
            r.name,
            r.shidiannao_sensor_nj,
            r.diannao_freemem_nj
        );
    }
}

// ----------------------------------------------------------------- Fig. 7

#[test]
fn fig7_bandwidth_grows_with_pes_and_propagation_caps_it() {
    let rows = fig7_bandwidth();
    assert_eq!(rows.len(), 8);
    for w in rows.windows(2) {
        assert!(
            w[1].without_propagation_gbps >= w[0].without_propagation_gbps * 0.99,
            "without-propagation bandwidth must grow with PEs"
        );
    }
    // Paper's anchor: ~52 GB/s needed by 25 PEs without propagation
    // (ours is the layer average including edge blocks, slightly lower).
    let p25 = rows.iter().find(|r| r.pes == 25).unwrap();
    assert!(
        (40.0..55.0).contains(&p25.without_propagation_gbps),
        "{}",
        p25.without_propagation_gbps
    );
    // With propagation the requirement collapses and the gap widens with
    // the PE count.
    let p64 = rows.iter().find(|r| r.pes == 64).unwrap();
    assert!(p64.reduction() > 0.7, "{}", p64.reduction());
    assert!(p64.reduction() > rows[1].reduction());
    // A single PE has no neighbours: no reduction.
    assert!(rows[0].reduction().abs() < 1e-9);
}

// ----------------------------------------------------------------- Table 1

#[test]
fn table1_reproduces_the_storage_columns() {
    let rows = table1_storage();
    let expect: &[(&str, f64, f64, f64)] = &[
        ("CNP", 15.19, 28.17, 56.38),
        ("MPCNN", 30.63, 42.77, 88.89),
        ("LeNet-5", 9.19, 118.30, 136.11),
        ("SimpleConv", 2.44, 24.17, 30.12),
        ("CFF", 7.00, 1.72, 18.49),
        ("ConvNN", 45.00, 4.35, 87.53),
        ("Gabor", 2.00, 0.82, 5.36),
        ("FaceAlign", 15.63, 29.27, 56.39),
    ];
    for &(name, largest, syn, total) in expect {
        let r = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            (r.largest_layer_kb - largest).abs() < 0.015,
            "{name} largest"
        );
        assert!((r.synapses_kb - syn).abs() < 0.015, "{name} synapses");
        assert!((r.total_kb - total).abs() < 0.015, "{name} total");
    }
    // §6: every benchmark fits the 288 KB of on-chip SRAM; the range the
    // paper quotes is 4.55–136.11 KB (ours spans 5.36–136.11 with the two
    // documented reconstructions).
    for r in &rows {
        assert!(r.total_kb < 288.0, "{}", r.name);
    }
    assert!(rows.iter().any(|r| (r.total_kb - 136.11).abs() < 0.01));
}

// ----------------------------------------------------------------- Table 4

#[test]
fn table4_power_and_breakdown_match() {
    let t = table4_characteristics();
    // Area: 4.86 mm² with the exact component split.
    assert!((t.total_area_mm2() - 4.86).abs() < 0.01);
    // Power: 320.10 mW averaged over the ten benchmarks at 1 GHz.
    assert!(
        (t.total_power_mw() - 320.10).abs() < 10.0,
        "{} mW",
        t.total_power_mw()
    );
    // Energy breakdown: NFU ≈ 87.29 %, four SRAMs ≈ 11.43 % (§10.3:
    // "significantly different from … DianNao, where more than 95 % of
    // the energy is consumed by the DRAM").
    let shares = t.energy_shares();
    assert!((0.80..0.92).contains(&shares[0]), "NFU share {}", shares[0]);
    let sram_share: f64 = shares[1..].iter().sum();
    assert!(
        (0.08..0.20).contains(&sram_share),
        "SRAM share {sram_share}"
    );
    assert!(shares[1] > shares[2], "NBin outweighs NBout");
}

// ------------------------------------------------------------------- §8.1

#[test]
fn reuse_claims_hold() {
    let r = reuse_report();
    assert!(
        (r.toy_reduction - 4.0 / 9.0).abs() < 1e-3,
        "{}",
        r.toy_reduction
    );
    assert!(
        (0.70..0.90).contains(&r.lenet_c1_reduction),
        "{}",
        r.lenet_c1_reduction
    );
}

// ------------------------------------------------------------------ §10.2

#[test]
fn framerate_analysis_is_real_time() {
    let r = framerate_report();
    assert_eq!(r.regions_per_frame, 1073);
    // Our cycle model is ~2.7× faster per region than the paper's RTL
    // (see EXPERIMENTS.md); the claim under test is real-time capability.
    assert!(r.fps >= 20.0, "{} fps", r.fps);
    assert!(r.ms_per_region < 0.06, "{} ms", r.ms_per_region);
    assert!(r.row_buffer_kb < 256.0);
}
