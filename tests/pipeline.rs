//! Cross-crate integration: the full sensor → accelerator → host pipeline,
//! exercised through the facade crate's public API.

use shidiannao::prelude::*;
use shidiannao::sensor::{RegionGrid, SyntheticSensor};

#[test]
fn quickstart_flow_is_bit_exact() {
    let network = zoo::lenet5().build(42).unwrap();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let input = network.random_input(7);
    let run = accel.run(&network, &input).unwrap();
    assert_eq!(run.output(), network.forward_fixed(&input).output());
    assert!(run.stats().cycles() > 0);
    assert!(run.energy().total_nj() > 0.0);
}

#[test]
fn sensor_regions_run_through_the_accelerator() {
    // A small frame streamed region-by-region into Gabor (20×20 input).
    let mut cam = SyntheticSensor::new(52, 36, 3);
    let frame = cam.next_frame();
    let grid = RegionGrid::new((52, 36), (20, 20), (16, 16));
    let net = zoo::gabor().build(9).unwrap();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let mut outputs = Vec::new();
    for region in grid.stream(&frame, net.input_maps()) {
        let run = accel.run(&net, &region).unwrap();
        assert_eq!(run.output(), net.forward_fixed(&region).output());
        outputs.push(run.output()[0]);
    }
    assert_eq!(outputs.len(), grid.count());
    // Different regions of a textured frame produce different scores.
    assert!(outputs.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn convnn_region_matches_paper_geometry() {
    // §10.2's streaming benchmark: the ConvNN input shape is exactly one
    // sensor region.
    let grid = RegionGrid::paper_convnn();
    let net = zoo::convnn().build(1).unwrap();
    assert_eq!(grid.region_dims(), net.input_dims());
    let mut cam = SyntheticSensor::vga(5);
    let frame = cam.next_frame();
    let region = frame.region_stacked(grid.origin(36, 28), grid.region_dims(), 3);
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &region)
        .unwrap();
    assert_eq!(run.output().len(), 1);
}

#[test]
fn oversized_network_is_rejected_with_the_right_buffer() {
    // A CNN whose synapses exceed the 128 KB SB must fail capacity checks.
    let net = NetworkBuilder::new("too-big", 1, (16, 16))
        .fc(shidiannao::cnn::FcSpec::new(300))
        .build(1)
        .unwrap();
    let mut cfg = AcceleratorConfig::paper();
    cfg.sb_bytes = 16;
    let accel = Accelerator::new(cfg);
    let err = accel.run(&net, &net.random_input(1)).unwrap_err();
    assert!(err.to_string().contains("SB"), "{err}");
}

#[test]
fn wrong_input_shape_is_rejected() {
    let net = zoo::lenet5().build(1).unwrap();
    let wrong = zoo::gabor().build(1).unwrap().random_input(1);
    let err = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &wrong)
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn fixed_point_tracks_floating_point_on_lenet() {
    // §5's premise: 16-bit fixed point brings negligible accuracy loss.
    let net = zoo::lenet5().build(11).unwrap();
    let input = net.random_input(13);
    let fixed = net.forward_fixed(&input).output();
    let float = net.forward_f32(&input.map(|v| v.to_f32()));
    let float_out = float.last().unwrap().flatten();
    for (a, b) in fixed.iter().zip(&float_out) {
        assert!((a.to_f32() - b).abs() < 0.12, "{} vs {b}", a.to_f32());
    }
    // The winning class agrees between the two arithmetics.
    let argmax = |v: &[f32]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    };
    let fixed_f: Vec<f32> = fixed.iter().map(|v| v.to_f32()).collect();
    assert_eq!(argmax(&fixed_f), argmax(&float_out));
}

#[test]
fn facade_prelude_exposes_the_whole_flow() {
    // Every name the README quickstart uses resolves through the prelude.
    let _cfg: AcceleratorConfig = AcceleratorConfig::paper();
    let _cpu = CpuModel::xeon_e7_8830();
    let _gpu = GpuModel::k20m();
    let _dn = DianNao::new(DianNaoConfig::paper());
    let _grid: WindowGrid = WindowGrid::new((8, 8), (3, 3), (1, 1)).unwrap();
    let map: FeatureMap<Fx> = FeatureMap::filled(2, 2, Fx::ONE);
    let mut stack: MapStack<Fx> = MapStack::new(2, 2);
    stack.push(map).unwrap();
    let _pla: Pla = Pla::tanh();
    let mut acc = Accum::new();
    acc.mac(Fx::ONE, Fx::ONE);
    assert_eq!(acc.to_fx(), Fx::ONE);
    let _layer: Option<&Layer> = zoo::gabor().build(1).unwrap().layers().first();
}
