//! Temporal-reuse video datapath properties (DESIGN.md §3k): skipped
//! regions replay exactly the last computed result, the dirty set and
//! the whole report are pure functions of the construction inputs,
//! threshold 0 reduces exactly to frame-independent processing, and the
//! shared region ledger balances to the grid size on every report kind.

use proptest::prelude::*;
use shidiannao::pipeline::StreamingPipeline;
use shidiannao::prelude::*;
use shidiannao::sensor::{FrameSource, Motion, MovingObject, RegionGrid, VideoSensor};
use shidiannao::video::{MotionGate, VideoConfig, VideoFrameReport, VideoPipeline};

const FRAME: (usize, usize) = (40, 40);
const REGION: (usize, usize) = (20, 20);

fn grid() -> RegionGrid {
    RegionGrid::new(FRAME, REGION, REGION)
}

fn pipeline(config: VideoConfig) -> VideoPipeline {
    let net = zoo::gabor().build(1).expect("gabor builds");
    VideoPipeline::new(
        Accelerator::new(AcceleratorConfig::paper()),
        net,
        grid(),
        config,
    )
    .expect("pipeline assembles")
}

fn motions() -> impl Strategy<Value = Motion> {
    prop_oneof![
        Just(Motion::Static),
        Just(Motion::Pan { dx: 1, dy: 0 }),
        Just(Motion::Pan { dx: 0, dy: 2 }),
        Just(Motion::Jitter { amp: 2 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Skipped regions replay exactly the last computed output, and a
    /// re-run of the same (seed, config, motion) sequence produces
    /// bit-identical reports — the dirty set is a pure function of the
    /// construction inputs.
    #[test]
    fn reports_are_pure_and_skips_replay_last_computed(
        seed in 0u64..200,
        motion in motions(),
        threshold in 1u8..32,
    ) {
        let config = VideoConfig {
            dirty_threshold: threshold,
            refresh_interval: 0,
            ..VideoConfig::default()
        };
        let run = || {
            let mut pipe = pipeline(config);
            let mut cam = VideoSensor::new(FRAME.0, FRAME.1, seed, motion);
            (0..4).map(|_| pipe.process_frame(&cam.next_frame()).expect("frame runs"))
                .collect::<Vec<VideoFrameReport>>()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "same inputs must give byte-identical reports");

        // Frame 0 computes everything (cold cache).
        prop_assert_eq!(a[0].ledger().computed, grid().count());
        // Every skipped region's output equals the last computed one.
        let mut last: Vec<Vec<shidiannao::fixed::Fx>> =
            a[0].results().iter().map(|r| r.output.clone()).collect();
        for report in &a[1..] {
            prop_assert_eq!(report.ledger().total(), grid().count());
            for (ri, r) in report.results().iter().enumerate() {
                if report.ledger().skipped == grid().count() {
                    prop_assert_eq!(&r.output, &last[ri]);
                }
                last[ri] = r.output.clone();
            }
            // Computed regions certified against the golden reference.
            prop_assert!(report.bit_identical());
        }
    }

    /// Threshold 0 reduces exactly to frame-independent processing:
    /// same outputs, same cycles, same energy as
    /// `StreamingPipeline::process_frame`, with an all-computed ledger
    /// and zero gating cost.
    #[test]
    fn threshold_zero_is_exactly_frame_independent(
        seed in 0u64..200,
        motion in motions(),
    ) {
        let net = zoo::gabor().build(1).expect("gabor builds");
        let plain = StreamingPipeline::new(
            Accelerator::new(AcceleratorConfig::paper()),
            net,
            grid(),
        )
        .expect("plain pipeline assembles");
        let mut video = pipeline(VideoConfig {
            dirty_threshold: 0,
            ..VideoConfig::default()
        });
        let mut cam = VideoSensor::new(FRAME.0, FRAME.1, seed, motion);
        for _ in 0..3 {
            let frame = cam.next_frame();
            let expect = plain.process_frame(&frame).expect("frame runs");
            let got = video.process_frame(&frame).expect("frame runs");
            prop_assert_eq!(got.results(), expect.results());
            prop_assert_eq!(got.compute_cycles(), expect.compute_cycles());
            prop_assert_eq!(got.load_cycles(), expect.load_cycles());
            prop_assert_eq!(got.energy_nj(), expect.energy_nj());
            prop_assert_eq!(got.compare_cycles(), 0);
            prop_assert_eq!(got.front_cycles(), 0);
            prop_assert_eq!(got.total_energy_nj(), expect.energy_nj());
            prop_assert_eq!(got.ledger().computed, grid().count());
            prop_assert_eq!(got.ledger().skipped, 0);
        }
    }
}

/// A fully static scene: after the cold frame every region skips, total
/// cycles and energy beat the frame-independent baseline strictly, and
/// the delta loads stream zero rows on recomputes.
#[test]
fn static_scene_skips_everything_and_saves() {
    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 0,
        ..VideoConfig::default()
    });
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 7, Motion::Static);
    let cold = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    assert_eq!(cold.ledger().computed, grid().count());
    assert_eq!(cold.rows_streamed(), cold.rows_total());
    for _ in 0..3 {
        let warm = pipe.process_frame(&cam.next_frame()).expect("frame runs");
        assert_eq!(warm.ledger().skipped, grid().count());
        assert_eq!(warm.ledger().computed, 0);
        assert_eq!(warm.compute_cycles(), 0);
        assert!(warm.compare_cycles() > 0, "differencing is not free");
        assert!(warm.total_cycles() < warm.baseline_cycles());
        assert!(warm.total_energy_nj() < warm.baseline_energy_nj());
        assert_eq!(warm.stale_results(), 0, "static scenes never go stale");
        assert_eq!(warm.missed_detections(), 0);
        assert_eq!(warm.results(), cold.results());
    }
}

/// A mostly-static scene (static camera + moving object): warm frames
/// compute only the object's regions, still beating the baseline, and
/// the region results always cover the full grid.
#[test]
fn moving_object_computes_only_its_regions() {
    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 0,
        ..VideoConfig::default()
    });
    let mut cam =
        VideoSensor::new(FRAME.0, FRAME.1, 11, Motion::Static).with_object(MovingObject {
            size: (8, 8),
            speed: (5, 3),
        });
    let _cold = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    let mut computed = 0;
    for _ in 0..4 {
        let warm = pipe.process_frame(&cam.next_frame()).expect("frame runs");
        let ledger = warm.ledger();
        assert_eq!(ledger.total(), grid().count());
        assert!(ledger.skipped > 0, "most of the scene is static");
        assert!(warm.total_cycles() < warm.baseline_cycles());
        assert!(warm.total_energy_nj() < warm.baseline_energy_nj());
        assert!(warm.bit_identical());
        computed += ledger.computed;
    }
    assert!(computed > 0, "the object must dirty some regions");
}

/// The periodic full refresh recomputes every region on schedule, and
/// the staleness bound recomputes a region whose cache aged out even in
/// a clean scene.
#[test]
fn refresh_and_staleness_force_recompute() {
    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 3,
        ..VideoConfig::default()
    });
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 5, Motion::Static);
    for i in 0..7u64 {
        let report = pipe.process_frame(&cam.next_frame()).expect("frame runs");
        if i % 3 == 0 {
            assert_eq!(report.ledger().computed, grid().count(), "frame {i}");
        } else {
            assert_eq!(report.ledger().skipped, grid().count(), "frame {i}");
        }
    }

    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 0,
        staleness_bound: 2,
        ..VideoConfig::default()
    });
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 5, Motion::Static);
    let mut saw_staleness_refresh = false;
    for i in 0..5u64 {
        let report = pipe.process_frame(&cam.next_frame()).expect("frame runs");
        if i > 0 && report.ledger().computed == grid().count() {
            saw_staleness_refresh = true;
        }
        assert_eq!(report.ledger().total(), grid().count());
    }
    assert!(
        saw_staleness_refresh,
        "bound 2 must refresh within 5 frames"
    );
}

/// Warm recomputes benefit from cross-frame NBin residency: a region
/// recomputed under a staleness bound in a static scene streams zero
/// input rows, so its delta load is strictly cheaper than frame 0's.
#[test]
fn residency_shrinks_warm_recompute_loads() {
    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 2,
        ..VideoConfig::default()
    });
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 13, Motion::Static);
    let cold = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    let _skip = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    let refresh = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    assert_eq!(refresh.ledger().computed, grid().count());
    assert_eq!(refresh.rows_streamed(), 0, "static rows are all resident");
    assert!(refresh.load_cycles() < cold.load_cycles());
    assert_eq!(refresh.results(), cold.results());
}

/// The binarized second gate: with the front threshold at MIN every
/// dirty region escalates (same compute set as `Diff`, plus front
/// cost); at MAX every dirty region is rejected back to cache replay
/// and the front's runs are priced.
#[test]
fn binary_front_gate_escalates_or_rejects() {
    let escalate_all = VideoConfig {
        refresh_interval: 0,
        gate: MotionGate::DiffThenBinaryFront {
            threshold: Fx::MIN,
            seed: 42,
        },
        ..VideoConfig::default()
    };
    let reject_all = VideoConfig {
        gate: MotionGate::DiffThenBinaryFront {
            threshold: Fx::MAX,
            seed: 42,
        },
        ..escalate_all
    };
    let diff_only = VideoConfig {
        gate: MotionGate::Diff,
        ..escalate_all
    };

    let run = |config: VideoConfig| {
        let mut pipe = pipeline(config);
        let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 3, Motion::Pan { dx: 2, dy: 1 });
        (0..3)
            .map(|_| pipe.process_frame(&cam.next_frame()).expect("frame runs"))
            .collect::<Vec<_>>()
    };

    let esc = run(escalate_all);
    let rej = run(reject_all);
    let diff = run(diff_only);

    for (e, d) in esc.iter().zip(&diff) {
        assert_eq!(e.ledger(), d.ledger(), "MIN threshold mirrors Diff");
        assert_eq!(e.results(), d.results());
        if e.frame_index() > 0 {
            assert!(e.front_runs() > 0, "dirty regions consult the front");
            assert!(e.front_cycles() > 0);
            assert!(e.front_energy_nj() > 0.0);
            assert_eq!(e.front_rejected(), 0);
        }
    }
    for r in &rej[1..] {
        assert_eq!(r.ledger().computed, 0, "MAX threshold rejects all");
        assert_eq!(r.front_rejected(), r.front_runs());
        assert_eq!(r.results(), rej[0].results(), "cache replays throughout");
    }
}

/// The oracle prices what rejection costs: a panning scene processed
/// with an always-rejecting front accumulates stale results, while the
/// ledger still balances and outputs still cover every region.
#[test]
fn oracle_prices_stale_replays() {
    let mut pipe = pipeline(VideoConfig {
        refresh_interval: 0,
        gate: MotionGate::DiffThenBinaryFront {
            threshold: Fx::MAX,
            seed: 42,
        },
        ..VideoConfig::default()
    });
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 17, Motion::Pan { dx: 3, dy: 2 });
    let _cold = pipe.process_frame(&cam.next_frame()).expect("frame runs");
    let mut stale = 0;
    for _ in 0..3 {
        let r = pipe.process_frame(&cam.next_frame()).expect("frame runs");
        assert_eq!(r.ledger().total(), grid().count());
        assert_eq!(r.results().len(), grid().count());
        stale += r.stale_results();
        assert!(r.missed_detections() <= r.stale_results());
    }
    assert!(stale > 0, "a panning scene behind a closed gate goes stale");
}

/// The shared region ledger balances to the grid size across all three
/// report kinds — plain, degraded, and video.
#[test]
fn ledgers_balance_across_report_kinds() {
    let net = zoo::gabor().build(1).expect("gabor builds");
    let plain = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid())
        .expect("pipeline assembles");
    let mut cam = VideoSensor::new(FRAME.0, FRAME.1, 9, Motion::Static);
    let frame = cam.next_frame();

    let p = plain.process_frame(&frame).expect("frame runs");
    let ledger = p.ledger();
    assert_eq!(ledger.computed, grid().count());
    assert_eq!(ledger.total(), grid().count());
    assert_eq!(ledger.coverage(), 1.0);

    let d = plain
        .process_frame_degraded(&frame, FaultPlan::none(), &DegradePolicy::default())
        .expect("frame runs");
    let ledger = d.ledger();
    assert_eq!(ledger.total(), grid().count());
    assert_eq!(ledger.computed, grid().count());
    assert_eq!(d.coverage(), ledger.coverage());

    let mut video = pipeline(VideoConfig::default());
    let v = video.process_frame(&frame).expect("frame runs");
    assert_eq!(v.ledger().total(), grid().count());
    assert_eq!(v.ledger().coverage(), 1.0);
}
