//! End-to-end determinism: the entire reproduction — weights, inputs,
//! simulation, statistics, energy, baselines — is a pure function of the
//! seeds. Reviewers re-running `harness` must see byte-identical numbers.

use shidiannao::prelude::*;

#[test]
fn identical_seeds_give_identical_everything() {
    let run = |seed: u64| {
        let net = zoo::lenet5().build(seed).unwrap();
        let input = net.random_input(seed ^ 9);
        Accelerator::new(AcceleratorConfig::paper())
            .run(&net, &input)
            .unwrap()
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.output(), b.output());
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.energy(), b.energy());
    let c = run(78);
    assert_ne!(a.output(), c.output());
}

#[test]
fn baselines_are_deterministic_too() {
    let net = zoo::cff().build(5).unwrap();
    let d1 = DianNao::new(DianNaoConfig::paper()).run(&net);
    let d2 = DianNao::new(DianNaoConfig::paper()).run(&net);
    assert_eq!(d1, d2);
    let g1 = GpuModel::k20m().run(&net);
    assert_eq!(g1, GpuModel::k20m().run(&net));
    assert_eq!(
        CpuModel::xeon_e7_8830().run_seconds(&net),
        CpuModel::xeon_e7_8830().run_seconds(&net)
    );
}

#[test]
fn experiment_rows_are_stable_across_invocations() {
    // The experiment runners embed their own seed; two invocations must
    // agree exactly (this is what makes EXPERIMENTS.md reproducible).
    let a = shidiannao_bench::fig18_speedups();
    let b = shidiannao_bench::fig18_speedups();
    assert_eq!(a, b);
    let r1 = shidiannao_bench::reuse_report();
    let r2 = shidiannao_bench::reuse_report();
    assert_eq!(r1, r2);
}

#[test]
fn sensor_pipeline_is_deterministic() {
    use shidiannao::pipeline::StreamingPipeline;
    use shidiannao::sensor::{FrameSource, RegionGrid, SyntheticSensor};
    let make = || {
        let net = zoo::gabor().build(4).unwrap();
        let grid = RegionGrid::new((40, 28), (20, 20), (10, 8));
        let pipe = StreamingPipeline::new(Accelerator::new(AcceleratorConfig::paper()), net, grid)
            .unwrap();
        let mut cam = SyntheticSensor::new(40, 28, 11);
        pipe.process_frame(&cam.next_frame()).unwrap()
    };
    assert_eq!(make(), make());
}
