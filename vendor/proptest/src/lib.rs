//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! The workspace's containers have no network access, so the real
//! `proptest` crate cannot be fetched. This stub keeps the property tests
//! compiling and meaningful: it generates random inputs from the same
//! strategy expressions (`a in 0usize..40`, `any::<i16>()`,
//! `prop_oneof!`, `proptest::collection::vec(...)`, tuples, `prop_map`)
//! and runs the configured number of cases with a per-test deterministic
//! seed. Failing inputs are reported verbatim; there is **no shrinking**
//! — the first counterexample is printed as-is.

use core::ops::{Range, RangeInclusive};

/// Deterministic generator backing test-case generation (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name (FNV-1a over the bytes),
    /// so each property gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut split = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [split(), split(), split(), split()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the
    /// runner draws a fresh input without counting the case.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` backing type).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

/// Whole-domain strategies for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's whole domain.
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty => $bits:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32 => 24, f64 => 53);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 0..64)`: a vector of 0–63 elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items, each expanded to a `#[test]`-compatible zero-arg
/// function running the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(1024),
                    "property {} rejected too many inputs (prop_assume! too strict)",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let input_desc = {
                    let mut s = String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str(", ");
                    )*
                    s
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(reason)) => panic!(
                        "property {} failed after {} cases: {}\n  input: {}",
                        stringify!($name),
                        accepted,
                        reason,
                        input_desc,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property, returning a `TestCaseError`
/// instead of panicking (so the runner can report the generated input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
}

/// Skips inputs that fail a precondition (the case is redrawn and not
/// counted against the budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in -5i32..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn assume_redraws(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i32), Just(2), 10i32..20].prop_map(|x| x * 2)) {
            prop_assert!(v == 2 || v == 4 || (20..40).contains(&v));
        }

        #[test]
        fn vectors_and_tuples(pairs in crate::collection::vec((0u8..4, any::<bool>()), 0..8)) {
            prop_assert!(pairs.len() < 8);
            prop_assert!(pairs.iter().all(|&(a, _)| a < 4));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(n in 0u64..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
