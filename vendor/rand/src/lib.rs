//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in containers with no network access, so the
//! real `rand` crate cannot be fetched. This stub implements exactly the
//! surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over primitive ranges — backed by a deterministic
//! xoshiro256++ generator seeded through SplitMix64. The stream differs
//! from upstream `rand`, which is fine here: every consumer regenerates
//! its data from a fixed seed, and nothing in the repo depends on the
//! upstream byte stream.

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive primitive range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform draw of a primitive (`bool` or full-range integer).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable uniformly over their whole domain.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // Top `$bits` bits give a uniform value in [0, 1).
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_ranges!(f32 => 24, f64 => 53);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (same construction the xoshiro authors recommend).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8)
                .map(|_| rng.gen_range(0u64..1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
            let v = rng.gen_range(-2i32..=1);
            assert!((-2..=1).contains(&v));
        }
        assert!(seen.iter().all(|&b| b));
    }
}
