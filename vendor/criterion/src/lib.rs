//! Offline, dependency-free subset of the `criterion` 0.5 API.
//!
//! The workspace's containers have no network access, so the real
//! `criterion` crate cannot be fetched. This stub keeps `cargo bench`
//! targets compiling and produces honest (if statistically unadorned)
//! wall-clock numbers: each `bench_function` runs a short warm-up, then
//! `sample_size` timed iterations, and prints the mean time per
//! iteration. There are no plots, baselines, or outlier analysis.

use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `body` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations: sample_size.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    println!(
        "bench {id}: {} per iter ({} iters)",
        fmt_secs(per_iter),
        b.iterations
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl core::fmt::Display,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl core::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; `sample_size` applies to its members.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl core::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("member", |b| b.iter(|| (0..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn runs_to_completion() {
        smoke();
    }
}
