//! Offline, dependency-free subset of the `rayon` parallel-iterator API.
//!
//! The workspace's containers have no network access, so the real `rayon`
//! crate cannot be fetched. This shim covers the shape the benchmark
//! harness uses — `collection.into_par_iter().map(f).collect::<Vec<_>>()`
//! — with a real **work-stealing** pool: each `std::thread::scope` worker
//! owns a contiguous range of item indices (an even split of the input),
//! pops work off its own front, and when dry steals the upper half of the
//! fullest victim's remaining range. Results land in their input slot, so
//! **output order always matches input order** regardless of which worker
//! computes what; a parallel map is observationally identical to the
//! serial one (the bit-identity certificate the benchmark harness
//! asserts).
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream), else the
//! machine's available parallelism. When the effective pool size is 1 —
//! or the input has at most one item — the map short-circuits to a plain
//! serial loop on the calling thread, byte-identical and with zero
//! threading overhead.
//!
//! No `unsafe`: items and results live in per-index `Mutex` cells
//! (uncontended by construction — exactly one worker ever touches index
//! `i`), and the range queues are tiny mutexed `(start, end)` pairs. The
//! stealing protocol never holds two queue locks at once, so it cannot
//! deadlock.

use std::sync::Mutex;

/// Number of worker threads a parallel map will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Order-preserving parallel map over a vector of items.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    par_map_vec_with(items, f, threads)
}

/// [`par_map_vec`] with an explicit worker count, so tests can exercise
/// the stealing protocol even on single-core machines.
fn par_map_vec_with<T, R, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        // Serial short-circuit: byte-identical results, no threads, no
        // locks — an effective pool size of 1 must cost exactly a loop.
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    // Per-worker range queues, seeded with an even split of `0..n`.
    let queues: Vec<Mutex<(usize, usize)>> = (0..threads)
        .map(|w| Mutex::new((w * n / threads, (w + 1) * n / threads)))
        .collect();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let (queues, work, slots) = (&queues, &work, &slots);
            scope.spawn(move || {
                loop {
                    // Pop the front of our own range.
                    let popped = {
                        let mut q = queues[me].lock().expect("rayon shim: poisoned queue");
                        if q.0 < q.1 {
                            let i = q.0;
                            q.0 += 1;
                            Some(i)
                        } else {
                            None
                        }
                    };
                    match popped {
                        Some(i) => {
                            let item = work[i]
                                .lock()
                                .expect("rayon shim: poisoned work slot")
                                .take()
                                .expect("rayon shim: item taken twice");
                            let result = f(item);
                            *slots[i].lock().expect("rayon shim: poisoned result slot") =
                                Some(result);
                        }
                        None => {
                            if !steal(me, queues) {
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon shim: poisoned result slot")
                .expect("rayon shim: worker panicked before filling its slot")
        })
        .collect()
}

/// Steals the upper half of the fullest victim's remaining range into
/// worker `me`'s (empty) queue. Returns `false` when a full scan finds
/// no work left anywhere — the worker's termination condition. A range
/// a thief has carved off but not yet installed is invisible to the
/// scan, but it is owned (and will be drained) by that thief, so no
/// work is ever lost.
fn steal(me: usize, queues: &[Mutex<(usize, usize)>]) -> bool {
    loop {
        // Snapshot scan for the victim with the most remaining work —
        // one lock at a time, never two.
        let mut best: Option<(usize, usize)> = None;
        for (v, q) in queues.iter().enumerate() {
            if v == me {
                continue;
            }
            let (start, end) = *q.lock().expect("rayon shim: poisoned queue");
            let len = end.saturating_sub(start);
            if len > 0 && best.is_none_or(|(_, bl)| len > bl) {
                best = Some((v, len));
            }
        }
        let Some((victim, _)) = best else {
            return false;
        };
        // Re-lock the victim and take the upper half of whatever is
        // still there (it may have shrunk — or emptied — since the
        // scan; on an empty re-read, rescan).
        let stolen = {
            let mut q = queues[victim].lock().expect("rayon shim: poisoned queue");
            let len = q.1 - q.0;
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            let range = (q.1 - take, q.1);
            q.1 -= take;
            range
        };
        // The victim's guard is dropped before our own queue locks —
        // the no-two-locks invariant that keeps stealing deadlock-free.
        let mut mine = queues[me].lock().expect("rayon shim: poisoned queue");
        debug_assert!(mine.0 >= mine.1, "stole while holding local work");
        *mine = stolen;
        return true;
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// The produced iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion (`par_iter()` on slices and vectors).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;

    /// The produced iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator (items are indexed, order is kept).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on the worker pool.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` for every item (for side effects).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, &|t| f(t));
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::par_map_vec_with;
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let squares: Vec<usize> = (0usize..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn vec_and_ref_iters() {
        let names = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = names.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        let owned: Vec<String> = names.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(owned[2], "ccc!");
    }

    #[test]
    fn inclusive_range_and_empty() {
        let v: Vec<usize> = (1usize..=4).into_par_iter().map(|i| i).collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn stealing_pool_matches_serial_on_skewed_work() {
        // Front-loaded work: worker 0's range is far slower than the
        // rest, forcing the others to steal from it to finish. More
        // workers than cores is fine — stealing is what's under test.
        let items: Vec<usize> = (0..257).collect();
        for &threads in &[2usize, 3, 8] {
            let out = par_map_vec_with(
                items.clone(),
                &|i| {
                    let spin = if i < 32 { 20_000 } else { 10 };
                    let mut acc = i as u64;
                    for k in 0..spin {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    (i, acc)
                },
                threads,
            );
            // Order preserved and every item computed exactly once.
            for (slot, &(i, _)) in out.iter().enumerate() {
                assert_eq!(slot, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn every_item_runs_exactly_once_under_stealing() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let out = par_map_vec_with(
            (0..100).collect::<Vec<usize>>(),
            &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                i * 3
            },
            7,
        );
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_short_circuits_serially() {
        // threads == 1 must produce byte-identical results through the
        // plain serial loop (no pool, no locks).
        let items: Vec<usize> = (0..50).collect();
        let serial: Vec<usize> = items.iter().map(|&i| i + 7).collect();
        let pooled = par_map_vec_with(items, &|i| i + 7, 1);
        assert_eq!(pooled, serial);
    }
}
