//! Offline, dependency-free subset of the `rayon` parallel-iterator API.
//!
//! The workspace's containers have no network access, so the real `rayon`
//! crate cannot be fetched. This shim covers the shape the benchmark
//! harness uses — `collection.into_par_iter().map(f).collect::<Vec<_>>()`
//! — with `std::thread::scope` workers pulling items off a shared atomic
//! index. Results land in their input slot, so **output order always
//! matches input order** regardless of which worker finishes first; a
//! parallel map is observationally identical to the serial one.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream), else the
//! machine's available parallelism. `RAYON_NUM_THREADS=1` degenerates to
//! a plain serial loop on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel map will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Order-preserving parallel map over a vector of items.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("rayon shim: poisoned work slot")
                    .take()
                    .expect("rayon shim: item taken twice");
                let result = f(item);
                *slots[i].lock().expect("rayon shim: poisoned result slot") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon shim: poisoned result slot")
                .expect("rayon shim: worker panicked before filling its slot")
        })
        .collect()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// The produced iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion (`par_iter()` on slices and vectors).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;

    /// The produced iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator (items are indexed, order is kept).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on the worker pool.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` for every item (for side effects).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, &|t| f(t));
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let squares: Vec<usize> = (0usize..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn vec_and_ref_iters() {
        let names = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = names.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        let owned: Vec<String> = names.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(owned[2], "ccc!");
    }

    #[test]
    fn inclusive_range_and_empty() {
        let v: Vec<usize> = (1usize..=4).into_par_iter().map(|i| i).collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }
}
