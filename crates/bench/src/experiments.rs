//! The experiment implementations, one per paper artifact.
//!
//! Every per-network and per-configuration loop fans out over a parallel
//! iterator (an order-preserving indexed map), so regenerating the full
//! evaluation scales with the host's cores while emitting rows in exactly
//! the serial order — same [`SEED`], same row sequence, bit-identical
//! artifacts whether `RAYON_NUM_THREADS` is 1 or 64. The experiments that
//! re-run the same topology on the paper configuration (Fig. 18, Fig. 19,
//! Table 4, §10.2) share one set of prepared, executed networks via
//! [`paper_runs`].

use rayon::prelude::*;
use shidiannao_baseline::{CpuModel, DianNao, DianNaoConfig, DramModel, GpuModel};
use shidiannao_cnn::{storage, zoo, Network, NetworkBuilder};
use shidiannao_core::{Accelerator, AcceleratorConfig, PreparedNetwork, RunError, RunOutcome};
use shidiannao_sensor::{frames_per_second, RegionGrid, RowBuffer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Seed used for every experiment's weights and inputs (results are
/// deterministic end to end).
pub const SEED: u64 = 2015;

fn build(b: NetworkBuilder) -> Network {
    b.build(SEED).expect("benchmark topologies are valid")
}

fn run_shidiannao(net: &Network, cfg: AcceleratorConfig) -> RunOutcome {
    let accel = Accelerator::new(cfg);
    accel
        .run(net, &net.random_input(SEED ^ 0xABCD))
        .expect("benchmarks fit the paper configuration")
}

/// One zoo benchmark prepared and executed once on the paper
/// configuration — the shared input to Figs. 18–19, Table 4, and §10.2.
#[derive(Clone, Debug)]
pub struct PaperRun {
    /// The built network.
    pub net: Network,
    /// Its simulator execution at [`AcceleratorConfig::paper`] with the
    /// standard `SEED ^ 0xABCD` input.
    pub run: RunOutcome,
}

/// Executes every zoo benchmark on the paper configuration, in parallel,
/// in `zoo::all()` order. This is the cache-free worker behind
/// [`paper_runs`]; the perf harness calls it directly to time real
/// executions.
pub fn compute_paper_runs() -> Vec<PaperRun> {
    zoo::all()
        .into_par_iter()
        .map(|b| {
            let net = build(b);
            let prepared = Accelerator::new(AcceleratorConfig::paper())
                .prepare(&net)
                .expect("benchmarks fit the paper configuration");
            let run = prepared
                .run(&net.random_input(SEED ^ 0xABCD))
                .expect("prepared networks accept their own input shape");
            PaperRun { net, run }
        })
        .collect()
}

/// The shared paper-configuration runs, computed once per process (in
/// parallel) and reused by every experiment that needs them.
pub fn paper_runs() -> &'static [PaperRun] {
    static CACHE: OnceLock<Vec<PaperRun>> = OnceLock::new();
    CACHE.get_or_init(compute_paper_runs)
}

// --------------------------------------------------- prepared-network cache

/// Entry cap for the shared prepared-network cache. A full autotuner run
/// evaluates hundreds of (network, configuration) pairs; keeping every
/// prepared program and synapse store resident would dominate memory, so
/// past the cap lookups still prepare (and return) fresh networks but no
/// longer insert.
const PREPARED_CACHE_CAP: usize = 64;

static PREPARED_HITS: AtomicU64 = AtomicU64::new(0);
static PREPARED_MISSES: AtomicU64 = AtomicU64::new(0);

type PreparedKey = (String, String);

fn prepared_cache() -> &'static Mutex<HashMap<PreparedKey, Arc<PreparedNetwork>>> {
    static CACHE: OnceLock<Mutex<HashMap<PreparedKey, Arc<PreparedNetwork>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Prepares `net` for `cfg`, reusing the process-wide keyed cache shared
/// by [`design_space_sweep`] and the autotuner (`crate::tune`).
///
/// The key is `(network name, configuration debug string)`, so distinct
/// capacities, grids, or protection levels never collide while repeated
/// evaluations of the same point — the common case when the sweep, the
/// tuner, and the perf harness run in one process — skip compilation,
/// recording, and schedule optimization entirely. Results are identical
/// whether an entry hits or misses, so cached runs stay bit-identical
/// across thread counts and call orders.
pub fn prepared_cached(
    net: &Network,
    cfg: &AcceleratorConfig,
) -> Result<Arc<PreparedNetwork>, RunError> {
    let key = (net.name().to_string(), format!("{cfg:?}"));
    if let Some(hit) = prepared_cache().lock().expect("cache lock").get(&key) {
        PREPARED_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(hit));
    }
    PREPARED_MISSES.fetch_add(1, Ordering::Relaxed);
    let prepared = Arc::new(Accelerator::new(cfg.clone()).prepare(net)?);
    let mut cache = prepared_cache().lock().expect("cache lock");
    if cache.len() < PREPARED_CACHE_CAP {
        cache.insert(key, Arc::clone(&prepared));
    }
    Ok(prepared)
}

/// `(hits, misses)` of [`prepared_cached`] since process start — the
/// harness prints the hit rate after sweeps and tuner runs.
pub fn prepared_cache_stats() -> (u64, u64) {
    (
        PREPARED_HITS.load(Ordering::Relaxed),
        PREPARED_MISSES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1: per-CNN storage requirements.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Largest layer size in KB.
    pub largest_layer_kb: f64,
    /// Synapse storage in KB.
    pub synapses_kb: f64,
    /// Total storage in KB.
    pub total_kb: f64,
}

/// Regenerates Table 1 from the benchmark topologies.
pub fn table1_storage() -> Vec<Table1Row> {
    zoo::all()
        .into_par_iter()
        .map(|b| {
            let r = storage::report(&build(b));
            Table1Row {
                name: r.name().to_string(),
                largest_layer_kb: r.largest_layer_kb(),
                synapses_kb: r.synapse_kb(),
                total_kb: r.total_kb(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 7

/// One point of Fig. 7: internal bandwidth at a PE count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig7Row {
    /// Number of PEs (square mesh).
    pub pes: usize,
    /// GB/s from NBin+SB to the NFU with inter-PE propagation.
    pub with_propagation_gbps: f64,
    /// GB/s without inter-PE propagation.
    pub without_propagation_gbps: f64,
}

impl Fig7Row {
    /// Fraction of NBin+SB traffic eliminated by propagation. Returns
    /// `0.0` (no reduction) rather than NaN when the baseline bandwidth
    /// is zero.
    pub fn reduction(&self) -> f64 {
        if self.without_propagation_gbps == 0.0 {
            return 0.0;
        }
        1.0 - self.with_propagation_gbps / self.without_propagation_gbps
    }
}

/// Regenerates Fig. 7: the representative LeNet-5 convolutional layer
/// (32 × 32 input, 5 × 5 kernel) on square PE meshes of 1–64 PEs.
pub fn fig7_bandwidth() -> Vec<Fig7Row> {
    let net = build(
        NetworkBuilder::new("fig7", 1, (32, 32)).conv(shidiannao_cnn::ConvSpec::new(1, (5, 5))),
    );
    let net = &net;
    (1..=8)
        .into_par_iter()
        .map(|side| {
            let gbps = |cfg: AcceleratorConfig| {
                let freq = cfg.frequency_ghz;
                let run = run_shidiannao(net, cfg);
                let conv = &run.stats().layers()[1];
                conv.internal_bytes_per_cycle() * freq
            };
            Fig7Row {
                pes: side * side,
                with_propagation_gbps: gbps(AcceleratorConfig::with_pe_grid(side, side)),
                without_propagation_gbps: gbps(
                    AcceleratorConfig::with_pe_grid(side, side).without_propagation(),
                ),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 18

/// One group of Fig. 18 bars: per-benchmark execution times.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig18Row {
    /// Benchmark name.
    pub name: String,
    /// CPU baseline seconds.
    pub cpu_s: f64,
    /// GPU baseline seconds.
    pub gpu_s: f64,
    /// DianNao baseline seconds.
    pub diannao_s: f64,
    /// ShiDianNao seconds.
    pub shidiannao_s: f64,
}

impl Fig18Row {
    /// GPU speedup over the CPU.
    pub fn gpu_speedup(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }

    /// DianNao speedup over the CPU.
    pub fn diannao_speedup(&self) -> f64 {
        self.cpu_s / self.diannao_s
    }

    /// ShiDianNao speedup over the CPU.
    pub fn shidiannao_speedup(&self) -> f64 {
        self.cpu_s / self.shidiannao_s
    }
}

/// Regenerates Fig. 18: per-benchmark speedups of GPU, DianNao, and
/// ShiDianNao over the CPU. The simulator runs come from the shared
/// [`paper_runs`] cache; only the analytical baselines are evaluated
/// here (in parallel, per benchmark).
pub fn fig18_speedups() -> Vec<Fig18Row> {
    let cpu = CpuModel::xeon_e7_8830();
    let gpu = GpuModel::k20m();
    let diannao = DianNao::new(DianNaoConfig::paper());
    paper_runs()
        .par_iter()
        .map(|p| Fig18Row {
            name: p.net.name().to_string(),
            cpu_s: cpu.run_seconds(&p.net),
            gpu_s: gpu.run(&p.net).seconds(),
            diannao_s: diannao.run(&p.net).seconds(),
            shidiannao_s: p.run.seconds(),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 19

/// One group of Fig. 19 bars: per-benchmark energies in nJ.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig19Row {
    /// Benchmark name.
    pub name: String,
    /// GPU energy.
    pub gpu_nj: f64,
    /// DianNao energy (with DRAM).
    pub diannao_nj: f64,
    /// DianNao with free main memory.
    pub diannao_freemem_nj: f64,
    /// ShiDianNao energy, conservatively including the DRAM fetch of the
    /// input image (the Fig. 19 accounting).
    pub shidiannao_nj: f64,
    /// ShiDianNao with frames streamed straight into NBin (the §10.3
    /// "integrated in an embedded vision sensor" variant).
    pub shidiannao_sensor_nj: f64,
}

/// Regenerates Fig. 19: per-benchmark energy of GPU, DianNao,
/// DianNao-FreeMem, and ShiDianNao. Simulator energies come from the
/// shared [`paper_runs`] cache.
pub fn fig19_energy() -> Vec<Fig19Row> {
    let gpu = GpuModel::k20m();
    let diannao = DianNao::new(DianNaoConfig::paper());
    let dram = DramModel::vision_sensor();
    paper_runs()
        .par_iter()
        .map(|p| {
            let net = &p.net;
            let d = diannao.run(net);
            let input_bytes =
                (net.input_maps() * net.input_dims().0 * net.input_dims().1 * 2) as u64;
            let own = p.run.energy().total_nj();
            Fig19Row {
                name: net.name().to_string(),
                gpu_nj: gpu.run(net).energy_nj(),
                diannao_nj: d.energy_nj(),
                diannao_freemem_nj: d.energy_free_mem_nj(),
                shidiannao_nj: own + dram.transfer_energy_nj(input_bytes),
                shidiannao_sensor_nj: own,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 4

/// Table 4 regenerated: layout characteristics plus power/energy averaged
/// over the ten benchmarks.
#[derive(Clone, Debug, PartialEq)]
pub struct Table4Report {
    /// Component areas (NFU, NBin, NBout, SB, IB) in mm².
    pub area_mm2: [f64; 5],
    /// Average power per component in mW at 1 GHz.
    pub power_mw: [f64; 5],
    /// Average per-inference energy per component in nJ.
    pub energy_nj: [f64; 5],
}

impl Table4Report {
    /// Total area.
    pub fn total_area_mm2(&self) -> f64 {
        self.area_mm2.iter().sum()
    }

    /// Total average power.
    pub fn total_power_mw(&self) -> f64 {
        self.power_mw.iter().sum()
    }

    /// Total average energy.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy_nj.iter().sum()
    }

    /// Component energy shares (fractions of the total).
    pub fn energy_shares(&self) -> [f64; 5] {
        let t = self.total_energy_nj();
        let mut s = self.energy_nj;
        for v in &mut s {
            *v /= t;
        }
        s
    }
}

/// Regenerates Table 4 from the shared [`paper_runs`] cache by averaging
/// over all ten benchmarks.
pub fn table4_characteristics() -> Table4Report {
    let cfg = AcceleratorConfig::paper();
    let area = shidiannao_core::area::area_of(&cfg);
    let mut energy = [0.0f64; 5];
    let mut power = [0.0f64; 5];
    let runs = paper_runs();
    let n = runs.len() as f64;
    for p in runs {
        let e = p.run.energy();
        let comps = [e.nfu_nj, e.nbin_nj, e.nbout_nj, e.sb_nj, e.ib_nj];
        let seconds = p.run.seconds();
        for (i, c) in comps.iter().enumerate() {
            energy[i] += c / n;
            power[i] += (c * 1e-9 / seconds * 1e3) / n;
        }
    }
    Table4Report {
        area_mm2: [
            area.nfu_mm2,
            area.nbin_mm2,
            area.nbout_mm2,
            area.sb_mm2,
            area.ib_mm2,
        ],
        power_mw: power,
        energy_nj: energy,
    }
}

// ----------------------------------------------------- design-space sweep

/// One design point of the PE-array sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// Mesh side (square array).
    pub side: usize,
    /// Geomean cycles across the ten benchmarks.
    pub geomean_cycles: f64,
    /// Geomean PE utilization.
    pub geomean_utilization: f64,
    /// Total accelerator area at 65 nm.
    pub area_mm2: f64,
    /// Geomean per-inference energy.
    pub geomean_energy_nj: f64,
}

impl DesignPoint {
    /// The energy-delay-area product — the figure of merit the sweep
    /// minimizes.
    pub fn edap(&self) -> f64 {
        self.geomean_energy_nj * self.geomean_cycles * self.area_mm2
    }
}

/// Sweeps square PE arrays across all ten benchmarks — the design-space
/// study behind the paper's 8×8 choice (§10.2 discusses the utilization
/// side of this trade-off).
///
/// The full `sides × benchmarks` product is flattened into one indexed
/// parallel iterator so every (configuration, network) pair runs
/// concurrently; results are regrouped per side in order afterwards.
pub fn design_space_sweep(sides: &[usize]) -> Vec<DesignPoint> {
    // Networks are side-independent: build each once, share across sides.
    let nets: Vec<Network> = zoo::all().into_par_iter().map(build).collect();
    let nets = &nets;
    let pairs: Vec<(usize, usize)> = sides
        .iter()
        .flat_map(|&side| (0..nets.len()).map(move |n| (side, n)))
        .collect();
    let per_pair: Vec<(f64, f64, f64)> = pairs
        .into_par_iter()
        .map(|(side, n)| {
            let cfg = AcceleratorConfig::with_pe_grid(side, side);
            let prepared =
                prepared_cached(&nets[n], &cfg).expect("benchmarks fit swept configurations");
            let run = prepared
                .run(&nets[n].random_input(SEED ^ 0xABCD))
                .expect("prepared networks accept their own input shape");
            (
                run.stats().cycles() as f64,
                run.stats().total().pe_utilization().max(1e-9),
                run.energy().total_nj(),
            )
        })
        .collect();
    sides
        .iter()
        .zip(per_pair.chunks(nets.len()))
        .map(|(&side, chunk)| {
            let cfg = AcceleratorConfig::with_pe_grid(side, side);
            let cycles: Vec<f64> = chunk.iter().map(|r| r.0).collect();
            let utils: Vec<f64> = chunk.iter().map(|r| r.1).collect();
            let energies: Vec<f64> = chunk.iter().map(|r| r.2).collect();
            DesignPoint {
                side,
                geomean_cycles: crate::geomean(&cycles),
                geomean_utilization: crate::geomean(&utils),
                area_mm2: shidiannao_core::area::area_of(&cfg).total_mm2(),
                geomean_energy_nj: crate::geomean(&energies),
            }
        })
        .collect()
}

// ------------------------------------------------------------ §8.1 reuse

/// The §8.1 inter-PE reuse measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReuseReport {
    /// NBin read reduction for the 2×2-PE / 3×3-kernel toy example
    /// (paper: 44.4 %).
    pub toy_reduction: f64,
    /// NBin read reduction for LeNet-5 C1 on 64 PEs (paper: 73.88 %; see
    /// EXPERIMENTS.md for the discrepancy discussion).
    pub lenet_c1_reduction: f64,
}

/// Measures the §8.1 read-reduction claims. All four with/without
/// propagation runs execute concurrently.
pub fn reuse_report() -> ReuseReport {
    let toy =
        build(NetworkBuilder::new("toy", 1, (4, 4)).conv(shidiannao_cnn::ConvSpec::new(1, (3, 3))));
    let lenet = build(zoo::lenet5());
    let toy_cfg = AcceleratorConfig::with_pe_grid(2, 2);
    let cases: Vec<(&Network, AcceleratorConfig)> = vec![
        (&toy, toy_cfg.clone()),
        (&toy, toy_cfg.without_propagation()),
        (&lenet, AcceleratorConfig::paper()),
        (&lenet, AcceleratorConfig::paper().without_propagation()),
    ];
    let reads: Vec<f64> = cases
        .into_par_iter()
        .map(|(net, cfg)| run_shidiannao(net, cfg).stats().layers()[1].nbin.read_bytes as f64)
        .collect();
    ReuseReport {
        toy_reduction: 1.0 - reads[0] / reads[1],
        lenet_c1_reduction: 1.0 - reads[2] / reads[3],
    }
}

// --------------------------------------------------------- §10.2 framerate

/// The §10.2 real-time streaming analysis for ConvNN on a VGA sensor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FramerateReport {
    /// Overlapping 64 × 36 regions per 640 × 480 frame (paper: 1 073).
    pub regions_per_frame: usize,
    /// Milliseconds to process one region (paper: 0.047 ms).
    pub ms_per_region: f64,
    /// Milliseconds per frame (paper: "a little more than 50 ms").
    pub ms_per_frame: f64,
    /// Sustained frames per second (paper: 20 fps).
    pub fps: f64,
    /// Partial-frame row-buffer footprint in KB (paper: fits 256 KB).
    pub row_buffer_kb: f64,
}

/// Regenerates the §10.2 frame-rate analysis from the shared
/// [`paper_runs`] cache (ConvNN is one of the ten zoo benchmarks).
pub fn framerate_report() -> FramerateReport {
    let grid = RegionGrid::paper_convnn();
    let per_region = paper_runs()
        .iter()
        .find(|p| p.net.name() == "ConvNN")
        .expect("ConvNN is in the zoo")
        .run
        .seconds();
    let regions = grid.count();
    FramerateReport {
        regions_per_frame: regions,
        ms_per_region: per_region * 1e3,
        ms_per_frame: per_region * regions as f64 * 1e3,
        fps: frames_per_second(regions, per_region),
        row_buffer_kb: RowBuffer::for_grid(&grid, 2).bytes() as f64 / 1024.0,
    }
}
