//! The temporal-reuse video experiment behind `harness video [--smoke]`.
//!
//! Two legs, one artifact (`BENCH_video.json`):
//!
//! * **Scene classes** — three camera motion classes (static,
//!   mostly-static with a crossing object, panning) stream through the
//!   motion-gated [`VideoPipeline`], plus a fourth run wiring the PR-9
//!   binarized front-end as a second gate
//!   ([`MotionGate::DiffThenBinaryFront`]). Each scene reports its
//!   skip/compute ledger, delta-load row traffic, compare/front costs,
//!   and cycle/energy totals against frame-independent processing.
//! * **Multi-camera serving** — dozens (smoke) to over a hundred (full)
//!   deterministic camera streams (`InputSource::VideoStream`) driven
//!   through the multi-tenant `InferenceService` on the virtual clock,
//!   each with its own deadline SLO, reported per camera.
//!
//! Determinism contract matches the other harness artifacts: the report
//! is a pure function of the scenario constants, so the JSON document is
//! byte-identical across runs, machines, and thread counts. `run_video`
//! proves it the same blunt way as the tuner and the cascade — three
//! generations, one pinned to a single rayon worker, byte-compared.
//!
//! Gates (smoke, CI):
//!
//! * the static and mostly-static scenes save **strictly** on both
//!   cycles (≥ [`CYCLE_SPEEDUP_GATE`]×) and energy vs frame-independent
//!   processing (the panning scene is reported ungated — panning motion
//!   is the honest no-benefit case),
//! * every computed region in every scene is bit-identical to a direct
//!   `Session::infer` (the pipeline's every-region oracle),
//! * the static scene's warm recomputes stream strictly fewer NBin rows
//!   than cold loads (the delta-load evidence),
//! * the front-gated scene actually runs the binary front,
//! * the serve leg is invariant across physical worker counts, its
//!   ledgers balance, and (in smoke mode) the per-scene skip/compute
//!   ledger and the serve totals are frozen so any drift in the scene
//!   synthesis, the differencing, the gate, or the scheduler fails CI.

use crate::json::{comma, json_f64, json_str};
use shidiannao::video::{MotionGate, VideoConfig, VideoPipeline};
use shidiannao_cnn::zoo;
use shidiannao_core::{Accelerator, AcceleratorConfig};
use shidiannao_fixed::Fx;
use shidiannao_sensor::{FrameSource, Motion, MovingObject, RegionGrid, VideoSensor};
use shidiannao_serve::{InferenceService, InputSource, ServeConfig, TenantSpec, Traffic};

/// Network build seed — the same one the perf harness uses.
const BUILD_SEED: u64 = crate::experiments::SEED;

/// World-texture seed shared by the scene-class cameras.
const SCENE_SEED: u64 = 0x71DE0;

/// Base seed for the multi-camera serve leg.
const CAM_SEED: u64 = 0xCA13;

/// Frames per scene in smoke / full mode.
const SMOKE_FRAMES: usize = 8;
const FULL_FRAMES: usize = 24;

/// Cameras in the serve leg in smoke / full mode.
const SMOKE_CAMERAS: usize = 24;
const FULL_CAMERAS: usize = 120;

/// Requests per camera in smoke / full mode.
const SMOKE_REQUESTS: u64 = 4;
const FULL_REQUESTS: u64 = 8;

/// Minimum cycle speedup the gated (static, mostly-static) scenes must
/// show over frame-independent processing.
pub const CYCLE_SPEEDUP_GATE: f64 = 2.0;

/// Frozen smoke-mode per-scene ledgers: `(name, computed, skipped)`
/// summed over all [`SMOKE_FRAMES`] frames of the 3×3 region grid.
/// Regenerate deliberately if the scene synthesis, the differencing
/// threshold, the refresh policy, or the front-end topology changes.
pub const EXPECTED_SMOKE_SCENES: &[(&str, usize, usize)] = &[
    ("static", 18, 54),
    ("mostly-static", 30, 42),
    ("panning", 72, 0),
    ("front-gated", 25, 47),
];

/// Frozen smoke-mode serve totals: `(issued, ok)` summed over all
/// [`SMOKE_CAMERAS`] camera tenants.
pub const EXPECTED_SMOKE_SERVE: (u64, u64) = (96, 96);

/// Frozen virtual cycle the smoke serve leg must end at.
pub const EXPECTED_SMOKE_SERVE_END_CYCLES: u64 = 68_611;

/// One scene class through the motion-gated pipeline, totalled over the
/// whole clip.
#[derive(Clone, Debug, PartialEq)]
pub struct SceneRow {
    /// Scene label.
    pub name: &'static str,
    /// Whether the cycle/energy savings gates apply to this scene.
    pub gated: bool,
    /// Frames streamed.
    pub frames: usize,
    /// Regions per frame.
    pub regions: usize,
    /// Regions computed at full precision.
    pub computed: usize,
    /// Regions that replayed their cached result.
    pub skipped: usize,
    /// Total pipeline cycles (compute + delta-load + compare + front).
    pub total_cycles: u64,
    /// Frame-independent baseline cycles for the same clip.
    pub baseline_cycles: u64,
    /// Total pipeline energy in nJ.
    pub total_energy_nj: f64,
    /// Frame-independent baseline energy in nJ.
    pub baseline_energy_nj: f64,
    /// Cycles spent on per-region frame differencing.
    pub compare_cycles: u64,
    /// Cycles spent in the binary front gate.
    pub front_cycles: u64,
    /// Binary-front gate decisions taken.
    pub front_runs: usize,
    /// Dirty regions the front rejected back to cached replay.
    pub front_rejected: usize,
    /// NBin input rows actually streamed by computed regions.
    pub rows_streamed: usize,
    /// NBin input rows a cold load of the same regions would stream.
    pub rows_total: usize,
    /// Skipped regions whose cached replay disagreed with the oracle's
    /// detection decision.
    pub stale_results: usize,
    /// Stale replays that crossed the detection threshold.
    pub missed_detections: usize,
    /// Every computed region matched a direct `Session::infer`.
    pub bit_identical: bool,
}

impl SceneRow {
    /// Baseline / pipeline cycle ratio.
    pub fn cycle_speedup(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.baseline_cycles as f64 / self.total_cycles as f64
    }

    /// Fraction of baseline energy saved.
    pub fn energy_saved(&self) -> f64 {
        if self.baseline_energy_nj == 0.0 {
            return 0.0;
        }
        1.0 - self.total_energy_nj / self.baseline_energy_nj
    }
}

/// One camera tenant of the serve leg.
#[derive(Clone, Debug, PartialEq)]
pub struct CameraRow {
    /// Tenant name (`cam-000` …).
    pub name: String,
    /// Requests issued.
    pub issued: u64,
    /// Requests answered within SLO policy.
    pub ok: u64,
    /// Requests dropped (faulty or past deadline).
    pub dropped: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Deadline misses among completions.
    pub deadline_misses: u64,
    /// 99th-percentile latency in virtual cycles.
    pub latency_p99: u64,
}

/// The video experiment's full result.
#[derive(Clone, Debug, PartialEq)]
pub struct VideoBenchReport {
    /// Scenario label (`smoke` / `full`).
    pub scenario: &'static str,
    /// Per-scene totals.
    pub scenes: Vec<SceneRow>,
    /// Per-camera serve rows.
    pub cameras: Vec<CameraRow>,
    /// Virtual cycle the serve leg ended at.
    pub serve_end_cycles: u64,
    /// Serve leg equal across 1 and 2 physical worker threads.
    pub worker_count_invariant: bool,
    /// Every camera's outcome ledger balanced.
    pub accounting_consistent: bool,
}

/// The four scene classes: `(name, motion, object, gate, gated)`.
fn scene_classes() -> [(&'static str, Motion, Option<MovingObject>, MotionGate, bool); 4] {
    let object = MovingObject {
        size: (10, 10),
        speed: (7, 4),
    };
    [
        ("static", Motion::Static, None, MotionGate::Diff, true),
        (
            "mostly-static",
            Motion::Static,
            Some(object),
            MotionGate::Diff,
            true,
        ),
        (
            "panning",
            Motion::Pan { dx: 2, dy: 1 },
            None,
            MotionGate::Diff,
            false,
        ),
        (
            "front-gated",
            Motion::Static,
            Some(object),
            MotionGate::DiffThenBinaryFront {
                threshold: Fx::from_f32(0.25),
                seed: BUILD_SEED,
            },
            false,
        ),
    ]
}

/// Streams one scene class through a fresh pipeline and totals it.
fn run_scene(
    name: &'static str,
    motion: Motion,
    object: Option<MovingObject>,
    gate: MotionGate,
    gated: bool,
    frames: usize,
) -> Result<SceneRow, String> {
    let net = zoo::gabor()
        .build(BUILD_SEED)
        .map_err(|e| format!("{name}: gabor build: {e}"))?;
    let grid = RegionGrid::new((60, 60), net.input_dims(), (20, 20));
    let regions = grid.count();
    // A short refresh interval forces periodic warm recomputes even on
    // the static scene, so the smoke clip exercises the delta-load path
    // (zero rows streamed on an unchanged region) rather than only
    // cold loads and cache replays.
    let config = VideoConfig {
        gate,
        refresh_interval: 4,
        ..VideoConfig::default()
    };
    let mut pipe = VideoPipeline::new(
        Accelerator::new(AcceleratorConfig::paper()),
        net,
        grid,
        config,
    )
    .map_err(|e| format!("{name}: pipeline: {e}"))?;
    let mut cam = VideoSensor::new(60, 60, SCENE_SEED, motion);
    if let Some(o) = object {
        cam = cam.with_object(o);
    }
    let mut row = SceneRow {
        name,
        gated,
        frames,
        regions,
        computed: 0,
        skipped: 0,
        total_cycles: 0,
        baseline_cycles: 0,
        total_energy_nj: 0.0,
        baseline_energy_nj: 0.0,
        compare_cycles: 0,
        front_cycles: 0,
        front_runs: 0,
        front_rejected: 0,
        rows_streamed: 0,
        rows_total: 0,
        stale_results: 0,
        missed_detections: 0,
        bit_identical: true,
    };
    for _ in 0..frames {
        let r = pipe
            .process_frame(&cam.next_frame())
            .map_err(|e| format!("{name}: frame: {e}"))?;
        row.computed += r.ledger().computed;
        row.skipped += r.ledger().skipped;
        row.total_cycles += r.total_cycles();
        row.baseline_cycles += r.baseline_cycles();
        row.total_energy_nj += r.total_energy_nj();
        row.baseline_energy_nj += r.baseline_energy_nj();
        row.compare_cycles += r.compare_cycles();
        row.front_cycles += r.front_cycles();
        row.front_runs += r.front_runs();
        row.front_rejected += r.front_rejected();
        row.rows_streamed += r.rows_streamed();
        row.rows_total += r.rows_total();
        row.stale_results += r.stale_results();
        row.missed_detections += r.missed_detections();
        row.bit_identical &= r.bit_identical();
    }
    Ok(row)
}

/// Builds the multi-camera serving scenario: `cameras` independent
/// [`InputSource::VideoStream`] tenants over one shared topology, each
/// with its own seed, motion class, arrival period, and deadline SLO.
fn camera_fleet(cameras: usize, requests: u64, threads: usize) -> Result<InferenceService, String> {
    let net = zoo::gabor()
        .build(BUILD_SEED)
        .map_err(|e| format!("gabor build: {e}"))?;
    let object = MovingObject {
        size: (8, 8),
        speed: (5, 3),
    };
    let specs: Vec<TenantSpec> = (0..cameras)
        .map(|i| {
            let motion = match i % 3 {
                0 => Motion::Static,
                1 => Motion::Pan {
                    dx: 1 + (i as i32 % 2),
                    dy: 1,
                },
                _ => Motion::Static,
            };
            TenantSpec::new(format!("cam-{i:03}"), net.clone())
                .source(InputSource::VideoStream {
                    seed: CAM_SEED ^ i as u64,
                    frame: (40, 40),
                    stride: (20, 20),
                    motion,
                    object: if i % 3 == 2 { Some(object) } else { None },
                })
                .traffic(Traffic::Open {
                    // One fleet round costs cameras × clean-cycles / 2
                    // virtual workers; the period scales with the fleet
                    // so smoke and full are both busy without drowning.
                    period: 600 * cameras as u64 + 97 * (i as u64 % 7),
                    jitter: 300,
                    count: requests,
                })
                .weight(1)
                .queue_capacity(2)
                .deadline_cycles(900 * cameras as u64)
        })
        .collect();
    let config = ServeConfig {
        virtual_workers: 2,
        physical_threads: threads,
        samples_per_tenant: 2,
        ..ServeConfig::default()
    };
    InferenceService::new(config, specs).map_err(|e| format!("camera fleet: {e}"))
}

/// Runs the scene classes and the camera fleet and assembles the report.
///
/// # Errors
///
/// Returns a description of the first scene or serve failure.
pub fn evaluate(smoke: bool) -> Result<VideoBenchReport, String> {
    let frames = if smoke { SMOKE_FRAMES } else { FULL_FRAMES };
    let cameras = if smoke { SMOKE_CAMERAS } else { FULL_CAMERAS };
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    let mut scenes = Vec::new();
    for (name, motion, object, gate, gated) in scene_classes() {
        scenes.push(run_scene(name, motion, object, gate, gated, frames)?);
    }

    let serial = camera_fleet(cameras, requests, 1)?
        .run()
        .map_err(|e| format!("serve leg: {e}"))?;
    let threaded = camera_fleet(cameras, requests, 2)?
        .run()
        .map_err(|e| format!("serve leg (threaded): {e}"))?;
    let worker_count_invariant = serial == threaded;
    let accounting_consistent = serial.accounting_consistent();
    let camera_rows = serial
        .tenants
        .iter()
        .map(|t| {
            let s = &t.stats;
            CameraRow {
                name: t.name.clone(),
                issued: s.issued,
                ok: s.ok,
                dropped: s.dropped_faulty + s.dropped_deadline,
                rejected: s.rejected,
                deadline_misses: s.deadline_misses,
                latency_p99: t.latency().p99,
            }
        })
        .collect();
    Ok(VideoBenchReport {
        scenario: if smoke { "smoke" } else { "full" },
        scenes,
        cameras: camera_rows,
        serve_end_cycles: serial.end_cycles,
        worker_count_invariant,
        accounting_consistent,
    })
}

impl VideoBenchReport {
    /// Total `(issued, ok)` across the camera fleet.
    pub fn serve_totals(&self) -> (u64, u64) {
        self.cameras
            .iter()
            .fold((0, 0), |acc, c| (acc.0 + c.issued, acc.1 + c.ok))
    }

    /// Deterministic JSON document (`BENCH_video.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!("  \"scenario\": {},\n", json_str(self.scenario));
        out += "  \"scenes\": [\n";
        for (i, s) in self.scenes.iter().enumerate() {
            out += &format!(
                "    {{\"name\": {}, \"gated\": {}, \"frames\": {}, \"regions\": {}, \
                 \"computed\": {}, \"skipped\": {}, \"total_cycles\": {}, \
                 \"baseline_cycles\": {}, \"cycle_speedup\": {}, \
                 \"total_energy_nj\": {}, \"baseline_energy_nj\": {}, \
                 \"energy_saved\": {}, \"compare_cycles\": {}, \"front_cycles\": {}, \
                 \"front_runs\": {}, \"front_rejected\": {}, \"rows_streamed\": {}, \
                 \"rows_total\": {}, \"stale_results\": {}, \"missed_detections\": {}, \
                 \"bit_identical\": {}}}{}\n",
                json_str(s.name),
                s.gated,
                s.frames,
                s.regions,
                s.computed,
                s.skipped,
                s.total_cycles,
                s.baseline_cycles,
                json_f64(s.cycle_speedup()),
                json_f64(s.total_energy_nj),
                json_f64(s.baseline_energy_nj),
                json_f64(s.energy_saved()),
                s.compare_cycles,
                s.front_cycles,
                s.front_runs,
                s.front_rejected,
                s.rows_streamed,
                s.rows_total,
                s.stale_results,
                s.missed_detections,
                s.bit_identical,
                comma(i, self.scenes.len()),
            );
        }
        out += "  ],\n";
        let (issued, ok) = self.serve_totals();
        out += &format!("  \"serve_cameras\": {},\n", self.cameras.len());
        out += &format!("  \"serve_issued\": {issued},\n");
        out += &format!("  \"serve_ok\": {ok},\n");
        out += &format!("  \"serve_end_cycles\": {},\n", self.serve_end_cycles);
        out += &format!(
            "  \"worker_count_invariant\": {},\n",
            self.worker_count_invariant
        );
        out += &format!(
            "  \"accounting_consistent\": {},\n",
            self.accounting_consistent
        );
        out += "  \"cameras\": [\n";
        for (i, c) in self.cameras.iter().enumerate() {
            out += &format!(
                "    {{\"name\": {}, \"issued\": {}, \"ok\": {}, \"dropped\": {}, \
                 \"rejected\": {}, \"deadline_misses\": {}, \"latency_p99\": {}}}{}\n",
                json_str(&c.name),
                c.issued,
                c.ok,
                c.dropped,
                c.rejected,
                c.deadline_misses,
                c.latency_p99,
                comma(i, self.cameras.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable summary for harness stdout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "temporal-reuse video datapath ({}): {} scenes, {} cameras\n",
            self.scenario,
            self.scenes.len(),
            self.cameras.len()
        );
        out += "scene          comp  skip    cycles  vs base  energy  rows in/total  front  stale  8-bit\n";
        for s in &self.scenes {
            out += &format!(
                "{:<13} {:>5} {:>5} {:>9} {:>7.2}x {:>6.1}% {:>6}/{:<6} {:>3}-{:<3} {:>4}   {}\n",
                s.name,
                s.computed,
                s.skipped,
                s.total_cycles,
                s.cycle_speedup(),
                100.0 * s.energy_saved(),
                s.rows_streamed,
                s.rows_total,
                s.front_runs,
                s.front_rejected,
                s.stale_results,
                if s.bit_identical { "yes" } else { "NO" },
            );
        }
        let (issued, ok) = self.serve_totals();
        let misses: u64 = self.cameras.iter().map(|c| c.deadline_misses).sum();
        let p99 = self
            .cameras
            .iter()
            .map(|c| c.latency_p99)
            .max()
            .unwrap_or(0);
        out += &format!(
            "serve: {} cameras, {issued} issued, {ok} ok, {misses} deadline misses, \
             worst p99 {p99} cycles, {} virtual cycles\n",
            self.cameras.len(),
            self.serve_end_cycles
        );
        out += &format!(
            "certificates: worker-invariant {}, accounting {}\n",
            self.worker_count_invariant, self.accounting_consistent
        );
        out
    }

    /// Gate violations under the harness's unified exit-code policy.
    pub fn gate_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for s in &self.scenes {
            if !s.bit_identical {
                errors.push(format!(
                    "{}: a computed region diverged from direct Session::infer",
                    s.name
                ));
            }
            if !s.gated {
                continue;
            }
            if s.cycle_speedup() < CYCLE_SPEEDUP_GATE {
                errors.push(format!(
                    "{}: cycle speedup {:.2}x below the {CYCLE_SPEEDUP_GATE}x gate \
                     ({} vs {} baseline)",
                    s.name,
                    s.cycle_speedup(),
                    s.total_cycles,
                    s.baseline_cycles
                ));
            }
            if s.total_energy_nj >= s.baseline_energy_nj {
                errors.push(format!(
                    "{}: energy {:.1} nJ not below frame-independent {:.1} nJ",
                    s.name, s.total_energy_nj, s.baseline_energy_nj
                ));
            }
        }
        if let Some(s) = self.scenes.iter().find(|s| s.name == "static") {
            if s.rows_streamed >= s.rows_total {
                errors.push(format!(
                    "static: delta-load saved no NBin rows ({}/{} streamed)",
                    s.rows_streamed, s.rows_total
                ));
            }
        }
        if let Some(s) = self.scenes.iter().find(|s| s.name == "front-gated") {
            if s.front_runs == 0 {
                errors.push("front-gated: binary front never consulted".to_string());
            }
        }
        if !self.worker_count_invariant {
            errors.push("serve leg differs across physical worker counts".to_string());
        }
        if !self.accounting_consistent {
            errors.push("a camera's outcome ledger does not balance".to_string());
        }
        let (issued, ok) = self.serve_totals();
        if ok == 0 {
            errors.push("serve leg completed no requests".to_string());
        }
        if self.scenario == "smoke" {
            for &(name, computed, skipped) in EXPECTED_SMOKE_SCENES {
                let Some(s) = self.scenes.iter().find(|s| s.name == name) else {
                    errors.push(format!("smoke scene {name} missing from report"));
                    continue;
                };
                if (s.computed, s.skipped) != (computed, skipped) {
                    errors.push(format!(
                        "{name}: skip/compute ledger drift: got ({}, {}), \
                         frozen ({computed}, {skipped})",
                        s.computed, s.skipped
                    ));
                }
            }
            if (issued, ok) != EXPECTED_SMOKE_SERVE {
                errors.push(format!(
                    "smoke serve totals (issued, ok) = ({issued}, {ok}) != \
                     frozen {EXPECTED_SMOKE_SERVE:?}"
                ));
            }
            if self.serve_end_cycles != EXPECTED_SMOKE_SERVE_END_CYCLES {
                errors.push(format!(
                    "smoke serve end_cycles {} != frozen {EXPECTED_SMOKE_SERVE_END_CYCLES}",
                    self.serve_end_cycles
                ));
            }
        }
        errors
    }
}

/// Runs the experiment three times — once pinned to a single rayon
/// worker, twice with the full pool — byte-compares the three JSON
/// documents, writes `BENCH_video.json`, and returns `(stdout summary,
/// gate violations)` under the harness's unified exit-code policy.
pub fn run_video(smoke: bool) -> (String, Vec<String>) {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = evaluate(smoke).map(|r| r.to_json());
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let report = match evaluate(smoke) {
        Ok(r) => r,
        Err(e) => return (String::new(), vec![format!("video run failed: {e}")]),
    };
    let parallel = report.to_json();
    let third = evaluate(smoke).map(|r| r.to_json());

    let mut errors = report.gate_errors();
    match serial {
        Ok(s) if s != parallel => errors
            .push("BENCH_video.json differs between serial and parallel evaluation".to_string()),
        Err(e) => errors.push(format!("serial video run failed: {e}")),
        _ => {}
    }
    match third {
        Ok(t) if t != parallel => {
            errors.push("BENCH_video.json differs between two identical runs".to_string());
        }
        Err(e) => errors.push(format!("repeat video run failed: {e}")),
        _ => {}
    }
    let mut out = report.render();
    let path = "BENCH_video.json";
    match std::fs::write(path, &parallel) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_video_passes_its_frozen_gate() {
        let report = evaluate(true).unwrap();
        let errors = report.gate_errors();
        assert!(errors.is_empty(), "gate failed: {errors:?}");
        assert_eq!(report.scenes.len(), 4);
        assert_eq!(report.cameras.len(), SMOKE_CAMERAS);
    }

    #[test]
    fn smoke_json_is_byte_deterministic() {
        let a = evaluate(true).unwrap().to_json();
        let b = evaluate(true).unwrap().to_json();
        assert_eq!(a, b);
        for key in [
            "\"scenario\"",
            "\"scenes\"",
            "\"cycle_speedup\"",
            "\"energy_saved\"",
            "\"rows_streamed\"",
            "\"front_rejected\"",
            "\"stale_results\"",
            "\"bit_identical\"",
            "\"serve_cameras\"",
            "\"worker_count_invariant\"",
            "\"cameras\"",
            "\"latency_p99\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn panning_is_the_honest_no_benefit_case() {
        let report = evaluate(true).unwrap();
        let pan = report
            .scenes
            .iter()
            .find(|s| s.name == "panning")
            .expect("panning scene present");
        let stat = report
            .scenes
            .iter()
            .find(|s| s.name == "static")
            .expect("static scene present");
        // Panning recomputes (almost) everything; static skips almost
        // everything — the gap is the whole point of motion gating.
        assert!(stat.cycle_speedup() > pan.cycle_speedup());
        assert!(pan.computed > stat.computed);
    }
}
