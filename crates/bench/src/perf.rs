//! Wall-clock measurement of the harness itself: serial vs parallel
//! experiment regeneration and prepared-session inference throughput.
//!
//! This module backs the `harness bench` subcommand, which writes the
//! machine-readable `BENCH_harness.json`. Two families of numbers:
//!
//! * **Experiment timings** — every parallel-sensitive experiment is run
//!   twice, once pinned to one worker (`RAYON_NUM_THREADS=1`) and once
//!   with the full thread pool, and the two results' `Debug` fingerprints
//!   are compared so the JSON also certifies that parallel execution is
//!   bit-identical to serial.
//! * **Throughput rows** — per benchmark, one `prepare` followed by a
//!   warmed-up burst of `Session::infer_ref` calls through the
//!   zero-allocation fast kernel, reported as simulated cycles/sec and
//!   inferences/sec next to the legacy one-shot `Accelerator::run` and
//!   the frozen PR-1 baseline. Each row also carries a *correctness
//!   certificate*: the heap allocations counted during the burst (must
//!   be zero in steady state) and whether all four execution paths
//!   (legacy one-shot, instrumented `Session::run`, fast-kernel
//!   `Session::infer` and `Session::infer_ref`) produced bit-identical
//!   outputs, statistics, and energy.
//!
//! * **Instrumented-path rows** — per benchmark, the *traced* session
//!   run (`Session::run`, the path fault campaigns and debugging use) is
//!   timed twice: once replaying the precompiled micro-op schedule
//!   (default) and once with replay disabled (`set_schedule_replay`,
//!   i.e. live HFSM decode — the pre-schedule PR-3 code path). The two
//!   runs must agree bit-for-bit on outputs, per-layer traces,
//!   statistics, and energy (the fifth execution path of the
//!   certificate), and a session replaying under a *silent* fault plan
//!   must stay allocation-free in steady state.
//!
//! * **Batched-path rows** — per benchmark, a warmed
//!   `Session::infer_batch_into` burst at [`BATCH_SIZE`] lanes per call
//!   is timed against the same inference count issued one lane at a
//!   time, with heap allocations counted and a sixth bit-identity
//!   certificate: every lane of a batched call must match a sequential
//!   `Session::infer` of the same input on outputs, statistics, energy,
//!   and fault counters.
//!
//! * **Optimized-replay rows** — per benchmark, the schedule optimizer's
//!   rewritten stream ([`shidiannao_core::opt`]: NB dedup, read-mode
//!   re-selection, SB coalescing, FIFO-fold, row-lane replay bodies) is
//!   certified as the seventh execution path (outputs and per-layer
//!   traces bit-identical to the recorded replay, clean and under a
//!   silent fault plan) and timed against the recorded replay in
//!   interleaved best-of passes, with per-pass elimination counters
//!   copied from the prepared network's [`shidiannao_core::OptReport`].
//!
//! * **Delta-load rows** — per benchmark, the cross-frame NBin residency
//!   path (`Session::infer_delta`) is certified as the eighth execution
//!   path: a cold call must stream every input row and agree bit-for-bit
//!   with a plain `infer`, and an immediately repeated call on the same
//!   input must stream zero rows, report a zero-cycle Load phase, and
//!   still agree bit-for-bit — the dirty set is derived from content
//!   hashes, so bit-identity holds by construction and only the Load
//!   accounting may shrink.
//!
//! `smoke_errors` distills the rows into the CI gate: seed-frozen
//! `sim_cycles_per_inference` for all ten networks (fast and
//! instrumented paths alike — any scheduled-path cycle drift fails CI),
//! zero steady-state allocations (clean fast path, faulty replay path,
//! *and* batched path), six-way path bit-identity, the headline speedup
//! (schedule replay must run the instrumented path at least
//! [`INSTR_SPEEDUP_GATE`]× faster than live decode on LeNet-5 and on at
//! least [`INSTR_SPEEDUP_NETS`] of the ten benchmarks), and the batched
//! no-regression floor [`BATCH_SPEEDUP_GATE`] on LeNet-5.

use crate::experiments::{self, compute_paper_runs, SEED};
use crate::json::{comma, json_f64, json_opt_f64};
use shidiannao_cnn::zoo;
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, NbResidency, SramProtection,
};
use std::time::Instant;

/// Sides used for the sweep when timing it (a subset of the full render
/// to keep the bench subcommand short).
const SWEEP_SIDES: [usize; 4] = [2, 4, 6, 8];

/// Inferences per benchmark in the full throughput burst.
const BURST: usize = 10;

/// Ceiling on warm-up inferences before the counted burst. Warm-up is
/// adaptive — it stops once [`WARMUP_QUIET`] consecutive inferences
/// perform zero heap allocations (steady state: every reusable buffer
/// and the map recycling pool at their high-water marks). The cap only
/// bounds a regression where a topology never converges.
const WARMUP_CAP: usize = 512;

/// Consecutive zero-allocation inferences required to declare steady
/// state. A single quiet inference is not enough: the recycling pool's
/// map-to-shape assignment can wander for a few runs after its first
/// quiet one while capacities finish growing to their high-water marks.
const WARMUP_QUIET: usize = 8;

/// Inferences per benchmark in `--smoke` mode (CI-sized).
const SMOKE_BURST: usize = 3;

/// Minimum instrumented-path speedup (schedule replay over live HFSM
/// decode, measured side by side in the same process) the smoke gate
/// requires on LeNet-5 and on [`INSTR_SPEEDUP_NETS`] benchmarks.
pub const INSTR_SPEEDUP_GATE: f64 = 2.0;

/// How many of the ten frozen benchmarks must clear
/// [`INSTR_SPEEDUP_GATE`].
pub const INSTR_SPEEDUP_NETS: usize = 5;

/// Lanes per `infer_batch` call in the batched-path measurement.
pub const BATCH_SIZE: usize = 8;

/// Minimum batch-8 over batch-1 per-inference throughput ratio the smoke
/// gate requires on LeNet-5. This is a **no-regression floor**, not an
/// amortization target: after PR 5 precompiled the control stream into
/// replayable schedules and this PR vectorized the value kernels, the
/// per-item path is already arithmetic-bound — the control and
/// statistics work a batch replay amortizes is under 10% of wall time,
/// so the measured batch-8 ratio sits at 0.95–1.25x across the zoo
/// (LeNet-5 ≈ 1.05x), and no honest gate above ~1.0 is reachable. What
/// batching buys instead is certified here by the other two batch
/// checks (bit-identity of all lanes, zero steady-state allocations)
/// and by the serve-side amortized accounting; the floor only ensures
/// the batched path never becomes *slower* than calling `infer_batch`
/// with one lane at a time.
pub const BATCH_SPEEDUP_GATE: f64 = 0.9;

/// Timed passes per side of the batch-8 vs batch-1 comparison. The gate
/// is a *ratio* of two wall-clock numbers, so a single scheduler hiccup
/// on either side would swing it far more than any real regression; each
/// side keeps its best (minimum) pass, and the passes interleave so slow
/// drift (thermal, background load) hits both sides equally.
const BATCH_TIMING_PASSES: usize = 3;

/// Per-word flip rate of the silent fault plan used by the replay
/// allocation gate (NB and SB sites only, no protection — every flip is
/// silently patched through the schedule overlay, never aborting).
const SILENT_FAULT_RATE: f64 = 1e-4;

/// Minimum optimized-replay over recorded-replay wall-clock speedup
/// (same warmed `infer_ref` burst, interleaved best-of passes) the smoke
/// gate requires on [`OPT_SPEEDUP_NETS`] benchmarks. The optimizer's
/// row-lane replay bodies run one lane-kernel call per output row
/// instead of one per `Px×Py` block, so the host replay itself gets
/// faster, not just the modeled cycle count.
pub const OPT_REPLAY_GATE: f64 = 1.1;

/// How many of the ten frozen benchmarks must clear [`OPT_REPLAY_GATE`].
pub const OPT_SPEEDUP_NETS: usize = 5;

/// How many of the ten frozen benchmarks must report *strictly* fewer
/// optimized modeled cycles than the seed-frozen recording (no benchmark
/// may ever report more).
pub const OPT_CYCLES_REDUCED_NETS: usize = 5;

/// Timed passes of the optimized vs recorded replay comparison. Like
/// [`BATCH_TIMING_PASSES`], the gate is a ratio of two wall-clock
/// numbers, so each side keeps its best pass and the passes interleave.
const OPT_TIMING_PASSES: usize = 3;

/// Simulated cycles per inference frozen at the repository seed; the
/// SoA datapath must never change a cycle count (`harness bench --smoke`
/// fails CI otherwise).
pub const SEED_CYCLES_PER_INFERENCE: &[(&str, u64)] = &[
    ("CNP", 31232),
    ("MPCNN", 53231),
    ("FaceRecog", 8357),
    ("LeNet-5", 10017),
    ("SimpleConv", 8353),
    ("CFF", 3351),
    ("NEO", 2390),
    ("ConvNN", 17301),
    ("Gabor", 905),
    ("FaceAlign", 8812),
];

/// `sim_cycles_per_s` measured by PR 1 (prepared-run pipeline, pre-SoA),
/// copied verbatim from that PR's `BENCH_harness.json` so speedups are
/// computed against a fixed reference instead of a moving rerun.
pub const PR1_SIM_CYCLES_PER_S: &[(&str, f64)] = &[
    ("CNP", 2038759.1802994816),
    ("MPCNN", 1855007.509851419),
    ("FaceRecog", 1677878.928135524),
    ("LeNet-5", 1265647.7660950513),
    ("SimpleConv", 1666545.7607967944),
    ("CFF", 1435555.2638654246),
    ("NEO", 1461917.7461461187),
    ("ConvNN", 1199689.549385136),
    ("Gabor", 1575451.5061229356),
    ("FaceAlign", 1158505.9049619182),
];

/// Instrumented-path (`Session::run`, traced, live HFSM decode)
/// `sim_cycles_per_s` measured immediately before the schedule-replay
/// executor landed — the PR-3 datapath this PR's replay numbers are
/// compared against. Frozen like [`PR1_SIM_CYCLES_PER_S`] so the
/// `instr_speedup_vs_pr3` column references a fixed point instead of a
/// moving rerun.
pub const PR3_INSTR_SIM_CYCLES_PER_S: &[(&str, f64)] = &[
    ("CNP", 3265015.320),
    ("MPCNN", 3050739.942),
    ("FaceRecog", 2936528.880),
    ("LeNet-5", 2432147.409),
    ("SimpleConv", 3722040.195),
    ("CFF", 1989152.323),
    ("NEO", 2125046.446),
    ("ConvNN", 1737498.128),
    ("Gabor", 2210228.645),
    ("FaceAlign", 1678315.903),
];

fn lookup<T: Copy>(table: &[(&str, T)], name: &str) -> Option<T> {
    table.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// One experiment timed serially and in parallel.
#[derive(Clone, Debug)]
pub struct ExperimentTiming {
    /// Experiment name (the harness subcommand vocabulary).
    pub name: String,
    /// Wall-clock seconds with `RAYON_NUM_THREADS=1`.
    pub serial_s: f64,
    /// Wall-clock seconds with the full thread pool.
    pub parallel_s: f64,
    /// Whether the serial and parallel results were bit-identical
    /// (compared via their `Debug` formatting).
    pub bit_identical: bool,
}

impl ExperimentTiming {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_s == 0.0 {
            return 0.0;
        }
        self.serial_s / self.parallel_s
    }
}

/// One benchmark's prepared-session inference throughput.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Benchmark name.
    pub name: String,
    /// Seconds for the one-time `Accelerator::prepare`.
    pub prepare_s: f64,
    /// Inferences in the burst.
    pub inferences: usize,
    /// Wall-clock seconds for the whole burst through one `Session`.
    pub wall_s: f64,
    /// Simulated accelerator cycles per inference.
    pub sim_cycles_per_inference: u64,
    /// Simulated cycles advanced per wall-clock second.
    pub sim_cycles_per_s: f64,
    /// Inferences completed per wall-clock second.
    pub inferences_per_s: f64,
    /// Wall-clock seconds for the same burst through the legacy one-shot
    /// `Accelerator::run` (re-preparing every time).
    pub legacy_wall_s: f64,
    /// Inferences in the legacy burst (the smoke run shortens it).
    pub legacy_inferences: usize,
    /// Heap allocations counted during the (post-warm-up) burst. The
    /// zero-allocation datapath claim requires this to be exactly 0.
    pub steady_state_allocs: u64,
    /// Whether the legacy one-shot, instrumented session run, and the
    /// fast-kernel `infer`/`infer_ref` paths agreed bit-for-bit on
    /// outputs, statistics, and energy.
    pub paths_bit_identical: bool,
    /// Traced `Session::run` inferences in each instrumented burst.
    pub instr_inferences: usize,
    /// Wall-clock seconds for the instrumented burst with schedule
    /// replay on (the default).
    pub instr_replay_wall_s: f64,
    /// Wall-clock seconds for the same burst with replay disabled —
    /// live HFSM decode, the pre-schedule PR-3 code path.
    pub instr_live_wall_s: f64,
    /// Simulated cycles per inference reported by the replayed
    /// instrumented run; must equal the seed-frozen count (scheduled-path
    /// drift fails the smoke gate).
    pub instr_cycles_per_inference: u64,
    /// Whether the replayed and live-decoded instrumented runs agreed
    /// bit-for-bit on outputs, per-layer traces, statistics, and energy
    /// (the certificate's fifth execution path).
    pub instr_paths_bit_identical: bool,
    /// Heap allocations counted during a warmed `infer_ref` burst under
    /// a silent fault plan — schedule replay resolving the fault overlay
    /// must stay allocation-free too.
    pub fault_replay_allocs: u64,
    /// Lanes per `infer_batch` call in the batched burst.
    pub batch_size: usize,
    /// Total inferences in the batched burst (calls × lanes).
    pub batch_inferences: usize,
    /// Wall-clock seconds for the batched burst (`infer_batch_into`,
    /// [`BATCH_SIZE`] lanes per call); best of
    /// [`BATCH_TIMING_PASSES`] interleaved passes.
    pub batch_wall_s: f64,
    /// Wall-clock seconds for the same number of inferences issued as
    /// batch-1 `infer_batch_into` calls — the denominator of
    /// [`ThroughputRow::batch_speedup`]; best of the same interleaved
    /// passes.
    pub batch_one_wall_s: f64,
    /// Heap allocations counted during the warmed batched burst (the
    /// batched datapath must be as allocation-free as the per-item one).
    pub batch_allocs: u64,
    /// Whether every lane of an `infer_batch` call agreed bit-for-bit —
    /// outputs, statistics, energy, and fault counters — with a
    /// sequential `infer` of the same input (the certificate's sixth
    /// execution path).
    pub batch_bit_identical: bool,
    /// Simulated cycles per inference reported by the *optimized*
    /// schedule replay; must never exceed the seed-frozen count, and
    /// must be strictly below it on [`OPT_CYCLES_REDUCED_NETS`]
    /// benchmarks.
    pub opt_cycles_per_inference: u64,
    /// Wall-clock seconds for a warmed `infer_ref` burst replaying the
    /// optimized schedule; best of [`OPT_TIMING_PASSES`] interleaved
    /// passes.
    pub opt_replay_wall_s: f64,
    /// Wall-clock seconds for the same burst replaying the recorded
    /// (unoptimized) schedule — the denominator of
    /// [`ThroughputRow::opt_replay_speedup`]; best of the same
    /// interleaved passes.
    pub opt_baseline_wall_s: f64,
    /// Heap allocations counted during the warmed optimized-replay burst
    /// (the optimizer must preserve the zero-allocation steady state).
    pub opt_allocs: u64,
    /// Whether the optimized replay agreed bit-for-bit with the recorded
    /// replay — outputs and per-layer traces on the instrumented run,
    /// outputs on the fast path, and outputs under the silent fault plan
    /// (the certificate's seventh execution path).
    pub opt_paths_bit_identical: bool,
    /// Redundant NB word deliveries eliminated by the `nb_dedup` pass.
    pub opt_nb_reads_eliminated: u64,
    /// NB read requests removed by the `mode_select` re-cover.
    pub opt_modes_reselected: u64,
    /// SB bytes removed by the `sb_coalesce` dedup.
    pub opt_sb_bytes_coalesced: u64,
    /// SB read requests removed by `sb_coalesce` dedup + burst merging.
    pub opt_sb_accesses_coalesced: u64,
    /// Modeled cycles folded out by the `fifo_fold` pass.
    pub opt_cycles_saved: u64,
    /// Input rows a cold delta-load streamed (must equal the total).
    pub delta_rows_total: u64,
    /// Input rows the warm repeat of the same input streamed (must be 0).
    pub delta_warm_rows: u64,
    /// Load-phase cycles reported by the warm repeat (must be 0).
    pub delta_warm_load_cycles: u64,
    /// Whether the cold and warm delta-load runs agreed bit-for-bit with
    /// a plain `infer` on outputs, and the cold run streamed every row
    /// (the certificate's eighth execution path).
    pub delta_bit_identical: bool,
}

impl ThroughputRow {
    /// Legacy / session wall-clock ratio: what buffer reuse plus the SoA
    /// fast kernel buy over re-preparing and re-instrumenting each run.
    pub fn session_speedup(&self) -> f64 {
        if self.wall_s == 0.0 || self.legacy_inferences == 0 {
            return 0.0;
        }
        let legacy_per_inf = self.legacy_wall_s / self.legacy_inferences as f64;
        let session_per_inf = self.wall_s / self.inferences as f64;
        if session_per_inf == 0.0 {
            return 0.0;
        }
        legacy_per_inf / session_per_inf
    }

    /// Heap allocations per simulated cycle over the burst (0.0 in the
    /// steady state the tentpole demands).
    pub fn allocs_per_cycle(&self) -> f64 {
        let cycles = self.sim_cycles_per_inference * self.inferences as u64;
        if cycles == 0 {
            return f64::NAN;
        }
        self.steady_state_allocs as f64 / cycles as f64
    }

    /// The frozen PR-1 `sim_cycles_per_s` for this network, if it is one
    /// of the ten baseline benchmarks.
    pub fn pr1_sim_cycles_per_s(&self) -> Option<f64> {
        lookup(PR1_SIM_CYCLES_PER_S, &self.name)
    }

    /// Throughput relative to the frozen PR-1 baseline.
    pub fn speedup_vs_pr1(&self) -> Option<f64> {
        self.pr1_sim_cycles_per_s()
            .map(|base| self.sim_cycles_per_s / base)
    }

    /// Live / replay wall-clock ratio of the instrumented path, measured
    /// side by side in the same process (machine-independent, the smoke
    /// gate's speedup evidence).
    pub fn instr_speedup(&self) -> f64 {
        if self.instr_inferences == 0 || self.instr_replay_wall_s == 0.0 {
            return 0.0;
        }
        self.instr_live_wall_s / self.instr_replay_wall_s
    }

    /// Simulated cycles advanced per wall-clock second by the replayed
    /// instrumented path.
    pub fn instr_sim_cycles_per_s(&self) -> f64 {
        if self.instr_replay_wall_s == 0.0 {
            return 0.0;
        }
        self.instr_cycles_per_inference as f64 * self.instr_inferences as f64
            / self.instr_replay_wall_s
    }

    /// The frozen PR-3 instrumented-path `sim_cycles_per_s` for this
    /// network, if it is one of the ten baseline benchmarks.
    pub fn pr3_instr_sim_cycles_per_s(&self) -> Option<f64> {
        lookup(PR3_INSTR_SIM_CYCLES_PER_S, &self.name)
    }

    /// Replayed instrumented throughput relative to the frozen PR-3
    /// live-decode baseline.
    pub fn instr_speedup_vs_pr3(&self) -> Option<f64> {
        self.pr3_instr_sim_cycles_per_s()
            .map(|base| self.instr_sim_cycles_per_s() / base)
    }

    /// Simulated cycles advanced per wall-clock second by the batched
    /// burst.
    pub fn batch_sim_cycles_per_s(&self) -> f64 {
        if self.batch_wall_s == 0.0 {
            return 0.0;
        }
        self.sim_cycles_per_inference as f64 * self.batch_inferences as f64 / self.batch_wall_s
    }

    /// Batch-1 over batch-[`BATCH_SIZE`] per-inference wall time: how the
    /// batched replay compares to issuing the same inferences one lane at
    /// a time (see [`BATCH_SPEEDUP_GATE`] for why this hovers near 1.0).
    pub fn batch_speedup(&self) -> f64 {
        if self.batch_wall_s == 0.0 || self.batch_inferences == 0 {
            return 0.0;
        }
        self.batch_one_wall_s / self.batch_wall_s
    }

    /// Recorded-replay over optimized-replay wall time: what the schedule
    /// optimizer's rewritten stream buys the host replay itself, measured
    /// side by side in the same process (the [`OPT_REPLAY_GATE`]
    /// evidence).
    pub fn opt_replay_speedup(&self) -> f64 {
        if self.opt_replay_wall_s == 0.0 {
            return 0.0;
        }
        self.opt_baseline_wall_s / self.opt_replay_wall_s
    }
}

/// The complete harness performance report.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Worker threads the parallel passes used.
    pub threads: usize,
    /// Per-experiment serial vs parallel timings.
    pub experiments: Vec<ExperimentTiming>,
    /// Per-benchmark session throughput.
    pub throughput: Vec<ThroughputRow>,
}

impl PerfReport {
    /// Total serial seconds across the timed experiments.
    pub fn total_serial_s(&self) -> f64 {
        self.experiments.iter().map(|e| e.serial_s).sum()
    }

    /// Total parallel seconds across the timed experiments.
    pub fn total_parallel_s(&self) -> f64 {
        self.experiments.iter().map(|e| e.parallel_s).sum()
    }

    /// Whole-harness serial / parallel speedup.
    pub fn total_speedup(&self) -> f64 {
        let p = self.total_parallel_s();
        if p == 0.0 {
            return 0.0;
        }
        self.total_serial_s() / p
    }

    /// Whether every experiment was bit-identical between serial and
    /// parallel execution.
    pub fn all_bit_identical(&self) -> bool {
        self.experiments.iter().all(|e| e.bit_identical)
    }

    /// Whether every benchmark's six execution paths agreed bit-for-bit
    /// (legacy / run / infer / infer_ref, the replay-vs-live instrumented
    /// certificate, and the batched lanes-vs-sequential certificate).
    pub fn all_paths_bit_identical(&self) -> bool {
        self.throughput.iter().all(|t| {
            t.paths_bit_identical
                && t.instr_paths_bit_identical
                && t.batch_bit_identical
                && t.opt_paths_bit_identical
                && t.delta_bit_identical
        })
    }

    /// Whether no benchmark's measured burst touched the heap — the
    /// clean fast-path burst, the faulty schedule-replay burst, and the
    /// batched burst alike.
    pub fn zero_alloc_steady_state(&self) -> bool {
        self.throughput.iter().all(|t| {
            t.steady_state_allocs == 0
                && t.fault_replay_allocs == 0
                && t.batch_allocs == 0
                && t.opt_allocs == 0
        })
    }

    /// The optimizer's elimination counters summed over every benchmark
    /// — the aggregate the `harness bench` summary line prints.
    pub fn optimizer_totals(&self) -> (u64, u64, u64, u64) {
        self.throughput.iter().fold((0, 0, 0, 0), |acc, t| {
            (
                acc.0 + t.opt_nb_reads_eliminated,
                acc.1 + t.opt_modes_reselected,
                acc.2 + t.opt_sb_bytes_coalesced,
                acc.3 + t.opt_cycles_saved,
            )
        })
    }

    /// The `BENCH_harness.json` document (no external JSON dependency —
    /// every value is a string-free number, a bool, or an escaped-free
    /// benchmark name).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!("  \"threads\": {},\n", self.threads);
        out += "  \"experiments\": [\n";
        for (i, e) in self.experiments.iter().enumerate() {
            out += &format!(
                "    {{\"name\": \"{}\", \"serial_s\": {}, \"parallel_s\": {}, \
                 \"speedup\": {}, \"bit_identical\": {}}}{}\n",
                e.name,
                json_f64(e.serial_s),
                json_f64(e.parallel_s),
                json_f64(e.speedup()),
                e.bit_identical,
                comma(i, self.experiments.len()),
            );
        }
        out += "  ],\n";
        out += &format!(
            "  \"total\": {{\"serial_s\": {}, \"parallel_s\": {}, \"speedup\": {}, \
             \"bit_identical\": {}}},\n",
            json_f64(self.total_serial_s()),
            json_f64(self.total_parallel_s()),
            json_f64(self.total_speedup()),
            self.all_bit_identical(),
        );
        out += "  \"throughput\": [\n";
        for (i, t) in self.throughput.iter().enumerate() {
            out += &format!(
                "    {{\"name\": \"{}\", \"prepare_s\": {}, \"inferences\": {}, \
                 \"wall_s\": {}, \"sim_cycles_per_inference\": {}, \
                 \"sim_cycles_per_s\": {}, \"inferences_per_s\": {}, \
                 \"legacy_wall_s\": {}, \"session_speedup\": {}, \
                 \"steady_state_allocs\": {}, \"allocs_per_cycle\": {}, \
                 \"pr1_sim_cycles_per_s\": {}, \"speedup_vs_pr1\": {}, \
                 \"paths_bit_identical\": {}, \
                 \"instr_inferences\": {}, \"instr_replay_wall_s\": {}, \
                 \"instr_live_wall_s\": {}, \"instr_speedup\": {}, \
                 \"instr_cycles_per_inference\": {}, \
                 \"instr_sim_cycles_per_s\": {}, \
                 \"pr3_instr_sim_cycles_per_s\": {}, \
                 \"instr_speedup_vs_pr3\": {}, \
                 \"instr_paths_bit_identical\": {}, \
                 \"fault_replay_allocs\": {}, \
                 \"batch_size\": {}, \"batch_inferences\": {}, \
                 \"batch_wall_s\": {}, \"batch_one_wall_s\": {}, \
                 \"batch_speedup\": {}, \"batch_sim_cycles_per_s\": {}, \
                 \"batch_allocs\": {}, \"batch_bit_identical\": {}, \
                 \"opt_cycles_per_inference\": {}, \"opt_replay_wall_s\": {}, \
                 \"opt_baseline_wall_s\": {}, \"opt_replay_speedup\": {}, \
                 \"opt_allocs\": {}, \"opt_paths_bit_identical\": {}, \
                 \"opt_nb_reads_eliminated\": {}, \"opt_modes_reselected\": {}, \
                 \"opt_sb_bytes_coalesced\": {}, \
                 \"opt_sb_accesses_coalesced\": {}, \
                 \"opt_cycles_saved\": {}, \
                 \"delta_rows_total\": {}, \"delta_warm_rows\": {}, \
                 \"delta_warm_load_cycles\": {}, \
                 \"delta_bit_identical\": {}}}{}\n",
                t.name,
                json_f64(t.prepare_s),
                t.inferences,
                json_f64(t.wall_s),
                t.sim_cycles_per_inference,
                json_f64(t.sim_cycles_per_s),
                json_f64(t.inferences_per_s),
                json_f64(t.legacy_wall_s),
                json_f64(t.session_speedup()),
                t.steady_state_allocs,
                json_f64(t.allocs_per_cycle()),
                json_opt_f64(t.pr1_sim_cycles_per_s()),
                json_opt_f64(t.speedup_vs_pr1()),
                t.paths_bit_identical,
                t.instr_inferences,
                json_f64(t.instr_replay_wall_s),
                json_f64(t.instr_live_wall_s),
                json_f64(t.instr_speedup()),
                t.instr_cycles_per_inference,
                json_f64(t.instr_sim_cycles_per_s()),
                json_opt_f64(t.pr3_instr_sim_cycles_per_s()),
                json_opt_f64(t.instr_speedup_vs_pr3()),
                t.instr_paths_bit_identical,
                t.fault_replay_allocs,
                t.batch_size,
                t.batch_inferences,
                json_f64(t.batch_wall_s),
                json_f64(t.batch_one_wall_s),
                json_f64(t.batch_speedup()),
                json_f64(t.batch_sim_cycles_per_s()),
                t.batch_allocs,
                t.batch_bit_identical,
                t.opt_cycles_per_inference,
                json_f64(t.opt_replay_wall_s),
                json_f64(t.opt_baseline_wall_s),
                json_f64(t.opt_replay_speedup()),
                t.opt_allocs,
                t.opt_paths_bit_identical,
                t.opt_nb_reads_eliminated,
                t.opt_modes_reselected,
                t.opt_sb_bytes_coalesced,
                t.opt_sb_accesses_coalesced,
                t.opt_cycles_saved,
                t.delta_rows_total,
                t.delta_warm_rows,
                t.delta_warm_load_cycles,
                t.delta_bit_identical,
                comma(i, self.throughput.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable rendering of the same numbers.
    pub fn render(&self) -> String {
        let mut out = format!("Harness performance ({} worker threads)\n", self.threads);
        if !self.experiments.is_empty() {
            out += "experiment           serial (s)  parallel (s)  speedup  bit-identical\n";
            for e in &self.experiments {
                out += &format!(
                    "{:<20} {:>10.3} {:>13.3} {:>7.2}x  {}\n",
                    e.name,
                    e.serial_s,
                    e.parallel_s,
                    e.speedup(),
                    if e.bit_identical { "yes" } else { "NO" },
                );
            }
            out += &format!(
                "{:<20} {:>10.3} {:>13.3} {:>7.2}x  {}\n\n",
                "total",
                self.total_serial_s(),
                self.total_parallel_s(),
                self.total_speedup(),
                if self.all_bit_identical() {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
        out += "Prepared-session throughput (fast kernel, warmed burst)\n\
                CNN          cycles/inf   sim cycles/s   inf/s   vs one-shot  vs PR-1  allocs  4-path\n";
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>10} {:>14.3e} {:>7.1} {:>10.2}x {:>7}  {:>6}  {}\n",
                t.name,
                t.sim_cycles_per_inference,
                t.sim_cycles_per_s,
                t.inferences_per_s,
                t.session_speedup(),
                t.speedup_vs_pr1()
                    .map_or_else(|| "n/a".to_string(), |s| format!("{s:.2}x")),
                t.steady_state_allocs,
                if t.paths_bit_identical { "yes" } else { "NO" },
            );
        }
        out += "\nInstrumented-path throughput (traced Session::run, schedule replay vs live decode)\n\
                CNN          cycles/inf   sim cycles/s   vs live  vs PR-3  fault allocs  replay==live\n";
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>10} {:>14.3e} {:>8.2}x {:>7}  {:>12}  {}\n",
                t.name,
                t.instr_cycles_per_inference,
                t.instr_sim_cycles_per_s(),
                t.instr_speedup(),
                t.instr_speedup_vs_pr3()
                    .map_or_else(|| "n/a".to_string(), |s| format!("{s:.2}x")),
                t.fault_replay_allocs,
                if t.instr_paths_bit_identical {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
        out += "\nBatched-path throughput (infer_batch, one schedule replay per call)\n\
                CNN          lanes   sim cycles/s   vs batch-1  allocs  lanes==sequential\n";
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>5} {:>14.3e} {:>10.2}x  {:>6}  {}\n",
                t.name,
                t.batch_size,
                t.batch_sim_cycles_per_s(),
                t.batch_speedup(),
                t.batch_allocs,
                if t.batch_bit_identical { "yes" } else { "NO" },
            );
        }
        out += "\nOptimized-replay throughput (schedule optimizer passes, vs recorded replay)\n\
                CNN          cycles/inf  saved  vs recorded  NB elim  modes  SB bytes  allocs  7-path\n";
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>10} {:>6} {:>10.2}x {:>8} {:>6} {:>9}  {:>6}  {}\n",
                t.name,
                t.opt_cycles_per_inference,
                t.opt_cycles_saved,
                t.opt_replay_speedup(),
                t.opt_nb_reads_eliminated,
                t.opt_modes_reselected,
                t.opt_sb_bytes_coalesced,
                t.opt_allocs,
                if t.opt_paths_bit_identical {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
        out += "\nDelta-load path (cross-frame NBin residency, warm repeat of one input)\n\
                CNN          rows total  warm rows  warm load cycles  8-path\n";
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>10} {:>10} {:>17}  {}\n",
                t.name,
                t.delta_rows_total,
                t.delta_warm_rows,
                t.delta_warm_load_cycles,
                if t.delta_bit_identical { "yes" } else { "NO" },
            );
        }
        let (nb, modes, sb, cycles) = self.optimizer_totals();
        out += &format!(
            "optimizer totals: {nb} NB deliveries eliminated, {modes} NB requests \
             re-covered, {sb} SB bytes coalesced, {cycles} modeled cycles folded\n"
        );
        out
    }
}

/// Times `f` once and returns (seconds, `Debug` fingerprint of result).
fn timed<T: std::fmt::Debug>(f: impl FnOnce() -> T) -> (f64, String) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), format!("{value:?}"))
}

/// Runs `f` serially (one worker) and in parallel, comparing results.
///
/// When the effective pool size is already 1 — a single-core machine, or
/// `RAYON_NUM_THREADS=1` — the "parallel" pass would execute the exact
/// same serial code path, so the experiment is measured once and reported
/// with `parallel_s == serial_s` (speedup exactly 1.0) instead of timing
/// two identical runs and reporting their noise as a phantom regression.
fn serial_vs_parallel<T: std::fmt::Debug>(name: &str, f: impl Fn() -> T) -> ExperimentTiming {
    if rayon::current_num_threads() <= 1 {
        let (serial_s, _) = timed(&f);
        return ExperimentTiming {
            name: name.to_string(),
            serial_s,
            parallel_s: serial_s,
            bit_identical: true,
        };
    }
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (serial_s, serial_fp) = timed(&f);
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let (parallel_s, parallel_fp) = timed(&f);
    ExperimentTiming {
        name: name.to_string(),
        serial_s,
        parallel_s,
        bit_identical: serial_fp == parallel_fp,
    }
}

/// Times every parallel-sensitive experiment serial-vs-parallel. The
/// paper-configuration runs are timed through [`compute_paper_runs`]
/// (cache-free), so the number reflects real simulator work, not a cache
/// hit.
pub fn measure_experiments() -> Vec<ExperimentTiming> {
    vec![
        serial_vs_parallel("paper_runs", || {
            // Fingerprint the observable results, not the raw trace dump,
            // to keep the comparison string small but still bit-exact.
            compute_paper_runs()
                .iter()
                .map(|p| {
                    (
                        p.net.name().to_string(),
                        p.run.stats().cycles(),
                        p.run.energy().total_nj().to_bits(),
                        format!("{:?}", p.run.output()),
                    )
                })
                .collect::<Vec<_>>()
        }),
        serial_vs_parallel("table1_storage", experiments::table1_storage),
        serial_vs_parallel("fig7_bandwidth", experiments::fig7_bandwidth),
        serial_vs_parallel("design_space_sweep", || {
            experiments::design_space_sweep(&SWEEP_SIDES)
        }),
        serial_vs_parallel("reuse_report", experiments::reuse_report),
    ]
}

/// Measures one benchmark: bit-identity certificate across all four
/// execution paths, then a warmed, allocation-counted `infer_ref` burst,
/// then the legacy one-shot burst for comparison.
fn measure_one(
    b: shidiannao_cnn::NetworkBuilder,
    burst: usize,
    legacy_runs: usize,
) -> ThroughputRow {
    let net = b.build(SEED).expect("benchmark topologies are valid");
    let input = net.random_input(SEED ^ 0xABCD);
    let accel = Accelerator::new(AcceleratorConfig::paper());

    let start = Instant::now();
    let prepared = accel
        .prepare(&net)
        .expect("benchmarks fit the paper config");
    let prepare_s = start.elapsed().as_secs_f64();

    // Certificate: legacy one-shot, instrumented session run, and the
    // fast-kernel infer/infer_ref must agree bit-for-bit on outputs,
    // statistics, and energy before any of them is worth timing.
    let legacy = accel
        .run(&net, &input)
        .expect("benchmarks fit the paper config");
    let mut session = prepared.session();
    let run = session.run(&input).expect("instrumented session run");
    let inf = session.infer(&input).expect("fast-kernel infer");
    let paths_bit_identical = {
        let r = session.infer_ref(&input).expect("fast-kernel infer_ref");
        r.output() == inf.output() && r.stats() == inf.stats() && r.energy() == inf.energy()
    } && run.output() == legacy.output()
        && inf.output_flat() == legacy.output()
        && run.stats() == legacy.stats()
        && inf.stats() == legacy.stats()
        && run.energy() == legacy.energy()
        && inf.energy() == legacy.energy();

    // Warm up until whole inferences stop allocating — scratch slabs
    // and the map recycling pool grow toward their high-water marks
    // over the first runs — then count heap allocations over the timed
    // burst.
    let mut quiet = 0;
    for _ in 0..WARMUP_CAP {
        let (allocs, ()) = crate::alloc::count_allocations(|| {
            let _ = session.infer_ref(&input).expect("warm-up infer_ref");
        });
        quiet = if allocs == 0 { quiet + 1 } else { 0 };
        if quiet >= WARMUP_QUIET {
            break;
        }
    }
    let mut cycles = 0;
    let start = Instant::now();
    let (steady_state_allocs, ()) = crate::alloc::count_allocations(|| {
        for _ in 0..burst {
            let r = session.infer_ref(&input).expect("input shape matches");
            cycles = r.stats().cycles();
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..legacy_runs {
        accel
            .run(&net, &input)
            .expect("benchmarks fit the paper config");
    }
    let legacy_wall_s = start.elapsed().as_secs_f64();

    // Fifth path of the certificate: the traced instrumented run with
    // schedule replay disabled (live HFSM decode, the pre-schedule code
    // path) must agree with the replayed run on outputs, per-layer
    // traces, statistics, and energy.
    let mut live = prepared.session();
    live.set_schedule_replay(false);
    let live_run = live.run(&input).expect("live instrumented run");
    let instr_paths_bit_identical = live_run.output() == run.output()
        && live_run.layer_outputs() == run.layer_outputs()
        && live_run.stats() == run.stats()
        && live_run.energy() == run.energy();

    // Instrumented-path speedup, measured side by side: the same traced
    // burst through schedule replay and through live decode.
    let mut instr_cycles = 0;
    let start = Instant::now();
    for _ in 0..burst {
        let r = session.run(&input).expect("replayed instrumented run");
        instr_cycles = r.stats().cycles();
    }
    let instr_replay_wall_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..burst {
        live.run(&input).expect("live instrumented run");
    }
    let instr_live_wall_s = start.elapsed().as_secs_f64();

    // Replay under a silent fault plan (NB/SB flips, no protection —
    // every fault resolves to an overlay patch, never an abort) must be
    // as allocation-free as the clean path once the overlay is built.
    let plan = FaultPlan::new(FaultConfig {
        nb_flip_rate: SILENT_FAULT_RATE,
        sb_flip_rate: SILENT_FAULT_RATE,
        ib_flip_rate: 0.0,
        pe_stuck_rate: 0.0,
        scanline_rate: 0.0,
        ..FaultConfig::uniform(SEED, 0.0, SramProtection::None)
    });
    let mut faulty = prepared.session_with_faults(plan);
    let mut quiet = 0;
    for _ in 0..WARMUP_CAP {
        let (allocs, ()) = crate::alloc::count_allocations(|| {
            let _ = faulty.infer_ref(&input).expect("silent faults never abort");
        });
        quiet = if allocs == 0 { quiet + 1 } else { 0 };
        if quiet >= WARMUP_QUIET {
            break;
        }
    }
    let (fault_replay_allocs, ()) = crate::alloc::count_allocations(|| {
        for _ in 0..burst {
            let _ = faulty.infer_ref(&input).expect("silent faults never abort");
        }
    });

    // Sixth path of the certificate: every lane of a batched run must
    // agree bit-for-bit — output, statistics, energy, fault counters —
    // with a sequential `infer` of the same input on a fresh session.
    let batch_inputs: Vec<_> = (0..BATCH_SIZE)
        .map(|i| net.random_input(SEED ^ 0xBA7C ^ i as u64))
        .collect();
    let mut batched = prepared.session();
    let mut sequential = prepared.session();
    let batch_bit_identical = match batched.infer_batch(&batch_inputs) {
        Err(_) => false,
        Ok(results) => batch_inputs.iter().zip(&results).all(|(bi, r)| {
            sequential.infer(bi).is_ok_and(|s| {
                r.output() == s.output()
                    && r.stats() == s.stats()
                    && r.energy() == s.energy()
                    && r.fault_stats() == s.fault_stats()
            })
        }),
    };

    // Batched burst: warm to the allocation steady state, then count
    // heap allocations over a full burst *untimed* — the counter's
    // overhead must never land inside a wall-clock window.
    let mut out8 = Vec::new();
    let mut out1 = Vec::new();
    let mut quiet = 0;
    for _ in 0..WARMUP_CAP {
        let (allocs, ()) = crate::alloc::count_allocations(|| {
            let _ = batched
                .infer_batch_into(&batch_inputs, &mut out8)
                .expect("warm-up batch");
        });
        quiet = if allocs == 0 { quiet + 1 } else { 0 };
        if quiet >= WARMUP_QUIET {
            break;
        }
    }
    let (batch_allocs, ()) = crate::alloc::count_allocations(|| {
        for _ in 0..burst {
            let _ = batched
                .infer_batch_into(&batch_inputs, &mut out8)
                .expect("batched burst");
        }
    });
    // Warm the single-lane shape (it recycles its own output vector so
    // neither shape disturbs the other's steady state), then time both
    // shapes interleaved, keeping each side's best pass.
    for lane in &batch_inputs {
        let _ = batched
            .infer_batch_into(std::slice::from_ref(lane), &mut out1)
            .expect("batch-1 warm-up");
    }
    let mut batch_wall_s = f64::INFINITY;
    let mut batch_one_wall_s = f64::INFINITY;
    for _ in 0..BATCH_TIMING_PASSES {
        let start = Instant::now();
        for _ in 0..burst {
            let _ = batched
                .infer_batch_into(&batch_inputs, &mut out8)
                .expect("batched burst");
        }
        batch_wall_s = batch_wall_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..burst {
            for lane in &batch_inputs {
                let _ = batched
                    .infer_batch_into(std::slice::from_ref(lane), &mut out1)
                    .expect("batch-1 burst");
            }
        }
        batch_one_wall_s = batch_one_wall_s.min(start.elapsed().as_secs_f64());
    }

    // Seventh path of the certificate: the schedule optimizer's
    // rewritten stream must agree with the recorded replay bit-for-bit
    // — outputs and per-layer traces on the instrumented run, outputs
    // on the fast path, and outputs under the silent fault plan —
    // before its replay is worth timing.
    let opt_report = *prepared.optimizer_report();
    let mut opt_instr = prepared.session();
    opt_instr.set_optimized_replay(true);
    let opt_run = opt_instr.run(&input).expect("optimized instrumented run");
    let opt_cycles = opt_run.stats().cycles();
    let mut opt_paths_bit_identical = opt_run.output() == run.output()
        && opt_run.layer_outputs() == run.layer_outputs()
        && opt_run.stats().cycles() <= run.stats().cycles();
    let mut opt_fast = prepared.session();
    opt_fast.set_optimized_replay(true);
    {
        let r = opt_fast.infer_ref(&input).expect("optimized infer_ref");
        opt_paths_bit_identical &= r.output() == inf.output();
    }
    {
        let mut opt_faulty = prepared.session_with_faults(plan);
        opt_faulty.set_optimized_replay(true);
        let a = opt_faulty
            .infer_ref(&input)
            .expect("silent faults never abort");
        let b = faulty.infer_ref(&input).expect("silent faults never abort");
        opt_paths_bit_identical &= a.output() == b.output();
    }

    // Optimized-replay burst: warm to the allocation steady state, count
    // heap allocations over a full burst untimed, then time optimized vs
    // recorded replay interleaved, keeping each side's best pass (the
    // [`OPT_REPLAY_GATE`] policy mirrors the batch gate's).
    let mut quiet = 0;
    for _ in 0..WARMUP_CAP {
        let (allocs, ()) = crate::alloc::count_allocations(|| {
            let _ = opt_fast.infer_ref(&input).expect("optimized infer_ref");
        });
        quiet = if allocs == 0 { quiet + 1 } else { 0 };
        if quiet >= WARMUP_QUIET {
            break;
        }
    }
    let (opt_allocs, ()) = crate::alloc::count_allocations(|| {
        for _ in 0..burst {
            let _ = opt_fast.infer_ref(&input).expect("optimized infer_ref");
        }
    });
    let mut opt_replay_wall_s = f64::INFINITY;
    let mut opt_baseline_wall_s = f64::INFINITY;
    for _ in 0..OPT_TIMING_PASSES {
        let start = Instant::now();
        for _ in 0..burst {
            let _ = opt_fast.infer_ref(&input).expect("optimized infer_ref");
        }
        opt_replay_wall_s = opt_replay_wall_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..burst {
            let _ = session.infer_ref(&input).expect("recorded infer_ref");
        }
        opt_baseline_wall_s = opt_baseline_wall_s.min(start.elapsed().as_secs_f64());
    }

    // Eighth path of the certificate: the delta-load staging path. A
    // cold `infer_delta` must stream every input row and agree with a
    // plain `infer`; an immediately repeated call on the same input must
    // stream zero rows, report a zero-cycle Load phase, and still agree.
    let mut delta_session = prepared.session();
    let mut residency = NbResidency::new();
    let (cold, d_cold) = delta_session
        .infer_delta(&input, &mut residency)
        .expect("cold delta-load");
    let cold_ok = cold.output() == inf.output() && d_cold.rows_streamed == d_cold.rows_total;
    let (warm, d_warm) = delta_session
        .infer_delta(&input, &mut residency)
        .expect("warm delta-load");
    let delta_warm_load_cycles = warm.stats().layers()[0].cycles;
    let delta_bit_identical = cold_ok && warm.output() == inf.output();

    ThroughputRow {
        name: net.name().to_string(),
        prepare_s,
        inferences: burst,
        wall_s,
        sim_cycles_per_inference: cycles,
        sim_cycles_per_s: cycles as f64 * burst as f64 / wall_s,
        inferences_per_s: burst as f64 / wall_s,
        legacy_wall_s,
        legacy_inferences: legacy_runs,
        steady_state_allocs,
        paths_bit_identical,
        instr_inferences: burst,
        instr_replay_wall_s,
        instr_live_wall_s,
        instr_cycles_per_inference: instr_cycles,
        instr_paths_bit_identical,
        fault_replay_allocs,
        batch_size: BATCH_SIZE,
        batch_inferences: burst * BATCH_SIZE,
        batch_wall_s,
        batch_one_wall_s,
        batch_allocs,
        batch_bit_identical,
        opt_cycles_per_inference: opt_cycles,
        opt_replay_wall_s,
        opt_baseline_wall_s,
        opt_allocs,
        opt_paths_bit_identical,
        opt_nb_reads_eliminated: opt_report.nb_reads_eliminated,
        opt_modes_reselected: opt_report.nb_modes_reselected,
        opt_sb_bytes_coalesced: opt_report.sb_bytes_coalesced,
        opt_sb_accesses_coalesced: opt_report.sb_accesses_coalesced,
        opt_cycles_saved: opt_report.cycles_saved,
        delta_rows_total: d_cold.rows_total as u64,
        delta_warm_rows: d_warm.rows_streamed as u64,
        delta_warm_load_cycles,
        delta_bit_identical,
    }
}

/// Measures prepared-session inference throughput for every benchmark.
pub fn measure_throughput() -> Vec<ThroughputRow> {
    zoo::all()
        .into_iter()
        .map(|b| measure_one(b, BURST, BURST))
        .collect()
}

/// Runs the full performance measurement.
pub fn measure() -> PerfReport {
    PerfReport {
        threads: rayon::current_num_threads(),
        experiments: measure_experiments(),
        throughput: measure_throughput(),
    }
}

/// The CI-sized measurement: throughput certificates only (no
/// serial-vs-parallel experiment timings), with a short burst.
pub fn measure_smoke() -> PerfReport {
    PerfReport {
        threads: rayon::current_num_threads(),
        experiments: Vec::new(),
        throughput: zoo::all()
            .into_iter()
            .map(|b| measure_one(b, SMOKE_BURST, 1))
            .collect(),
    }
}

/// The CI gate over a set of throughput rows: every frozen benchmark
/// present with its seed-exact `sim_cycles_per_inference` on both the
/// fast and the replayed instrumented path, all five execution paths
/// bit-identical, a zero-allocation steady state (clean and faulty
/// replay alike), and the instrumented-path speedup threshold. Returns
/// the list of violations (empty means pass).
pub fn smoke_errors(rows: &[ThroughputRow]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut cycles_reduced = 0usize;
    for &(name, expect) in SEED_CYCLES_PER_INFERENCE {
        match rows.iter().find(|r| r.name == name) {
            None => errors.push(format!("{name}: missing from the throughput rows")),
            Some(row) => {
                if row.sim_cycles_per_inference != expect {
                    errors.push(format!(
                        "{name}: sim_cycles_per_inference {} != seed-frozen {expect}",
                        row.sim_cycles_per_inference
                    ));
                }
                if row.instr_cycles_per_inference != expect {
                    errors.push(format!(
                        "{name}: scheduled-path drift — instrumented replay reported \
                         {} cycles, seed-frozen {expect}",
                        row.instr_cycles_per_inference
                    ));
                }
                if row.opt_cycles_per_inference > expect {
                    errors.push(format!(
                        "{name}: optimizer increased modeled cycles — optimized replay \
                         reported {} cycles, seed-frozen recording {expect}",
                        row.opt_cycles_per_inference
                    ));
                } else if row.opt_cycles_per_inference < expect {
                    cycles_reduced += 1;
                }
            }
        }
    }
    if cycles_reduced < OPT_CYCLES_REDUCED_NETS {
        errors.push(format!(
            "only {cycles_reduced}/{} benchmarks showed strictly reduced optimized \
             modeled cycles ({OPT_CYCLES_REDUCED_NETS} required)",
            SEED_CYCLES_PER_INFERENCE.len()
        ));
    }
    for row in rows {
        if !row.paths_bit_identical {
            errors.push(format!(
                "{}: execution paths diverged (legacy / run / infer / infer_ref)",
                row.name
            ));
        }
        if !row.instr_paths_bit_identical {
            errors.push(format!(
                "{}: schedule replay diverged from live decode on the instrumented path",
                row.name
            ));
        }
        if row.steady_state_allocs != 0 {
            errors.push(format!(
                "{}: fast path allocated {} times in steady state ({} allocs/cycle)",
                row.name,
                row.steady_state_allocs,
                row.allocs_per_cycle()
            ));
        }
        if row.fault_replay_allocs != 0 {
            errors.push(format!(
                "{}: schedule replay under a silent fault plan allocated {} times \
                 in steady state",
                row.name, row.fault_replay_allocs
            ));
        }
        if !row.batch_bit_identical {
            errors.push(format!(
                "{}: a batched lane diverged from sequential inference",
                row.name
            ));
        }
        if row.batch_allocs != 0 {
            errors.push(format!(
                "{}: batched inference allocated {} times in steady state",
                row.name, row.batch_allocs
            ));
        }
        if !row.opt_paths_bit_identical {
            errors.push(format!(
                "{}: optimized replay diverged from the recorded replay",
                row.name
            ));
        }
        if row.opt_allocs != 0 {
            errors.push(format!(
                "{}: optimized replay allocated {} times in steady state",
                row.name, row.opt_allocs
            ));
        }
        if !row.delta_bit_identical {
            errors.push(format!(
                "{}: delta-load path diverged from plain inference",
                row.name
            ));
        }
        if row.delta_warm_rows != 0 || row.delta_warm_load_cycles != 0 {
            errors.push(format!(
                "{}: warm delta-load streamed {} rows / {} load cycles on an \
                 unchanged input (0 expected)",
                row.name, row.delta_warm_rows, row.delta_warm_load_cycles
            ));
        }
    }
    if let Some(row) = rows.iter().find(|r| r.name == "LeNet-5") {
        if row.instr_speedup() < INSTR_SPEEDUP_GATE {
            errors.push(format!(
                "LeNet-5: instrumented replay speedup {:.2}x below the {INSTR_SPEEDUP_GATE}x gate",
                row.instr_speedup()
            ));
        }
        if row.batch_speedup() < BATCH_SPEEDUP_GATE {
            errors.push(format!(
                "LeNet-5: batch-{BATCH_SIZE} throughput fell to {:.2}x of batch-1 \
                 (the {BATCH_SPEEDUP_GATE}x no-regression floor)",
                row.batch_speedup()
            ));
        }
    }
    let fast_enough = rows
        .iter()
        .filter(|r| {
            lookup(SEED_CYCLES_PER_INFERENCE, &r.name).is_some()
                && r.instr_speedup() >= INSTR_SPEEDUP_GATE
        })
        .count();
    if fast_enough < INSTR_SPEEDUP_NETS {
        errors.push(format!(
            "only {fast_enough}/{} benchmarks met the {INSTR_SPEEDUP_GATE}x instrumented \
             replay speedup ({INSTR_SPEEDUP_NETS} required)",
            SEED_CYCLES_PER_INFERENCE.len()
        ));
    }
    let opt_fast_enough = rows
        .iter()
        .filter(|r| {
            lookup(SEED_CYCLES_PER_INFERENCE, &r.name).is_some()
                && r.opt_replay_speedup() >= OPT_REPLAY_GATE
        })
        .count();
    if opt_fast_enough < OPT_SPEEDUP_NETS {
        errors.push(format!(
            "only {opt_fast_enough}/{} benchmarks met the {OPT_REPLAY_GATE}x optimized-replay \
             speedup ({OPT_SPEEDUP_NETS} required)",
            SEED_CYCLES_PER_INFERENCE.len()
        ));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_row() -> ThroughputRow {
        ThroughputRow {
            name: "LeNet-5".into(),
            prepare_s: 0.001,
            inferences: 10,
            wall_s: 0.5,
            sim_cycles_per_inference: 10017,
            sim_cycles_per_s: 20000.0,
            inferences_per_s: 20.0,
            legacy_wall_s: 1.0,
            legacy_inferences: 10,
            steady_state_allocs: 0,
            paths_bit_identical: true,
            instr_inferences: 10,
            instr_replay_wall_s: 0.1,
            instr_live_wall_s: 1.0,
            instr_cycles_per_inference: 10017,
            instr_paths_bit_identical: true,
            fault_replay_allocs: 0,
            batch_size: 8,
            batch_inferences: 80,
            batch_wall_s: 0.4,
            batch_one_wall_s: 0.8,
            batch_allocs: 0,
            batch_bit_identical: true,
            opt_cycles_per_inference: 10016,
            opt_replay_wall_s: 0.2,
            opt_baseline_wall_s: 0.4,
            opt_allocs: 0,
            opt_paths_bit_identical: true,
            opt_nb_reads_eliminated: 100,
            opt_modes_reselected: 10,
            opt_sb_bytes_coalesced: 64,
            opt_sb_accesses_coalesced: 8,
            opt_cycles_saved: 1,
            delta_rows_total: 32,
            delta_warm_rows: 0,
            delta_warm_load_cycles: 0,
            delta_bit_identical: true,
        }
    }

    #[test]
    fn json_f64_is_json_safe() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn serial_vs_parallel_detects_identical_results() {
        let t = serial_vs_parallel("probe", || vec![1, 2, 3]);
        assert!(t.bit_identical);
        assert_eq!(t.name, "probe");
    }

    #[test]
    fn report_json_has_the_schema_keys() {
        let report = PerfReport {
            threads: 4,
            experiments: vec![ExperimentTiming {
                name: "probe".into(),
                serial_s: 2.0,
                parallel_s: 1.0,
                bit_identical: true,
            }],
            throughput: vec![probe_row()],
        };
        let json = report.to_json();
        for key in [
            "\"threads\"",
            "\"experiments\"",
            "\"serial_s\"",
            "\"parallel_s\"",
            "\"speedup\"",
            "\"bit_identical\"",
            "\"total\"",
            "\"throughput\"",
            "\"sim_cycles_per_inference\"",
            "\"sim_cycles_per_s\"",
            "\"inferences_per_s\"",
            "\"session_speedup\"",
            "\"steady_state_allocs\"",
            "\"allocs_per_cycle\"",
            "\"pr1_sim_cycles_per_s\"",
            "\"speedup_vs_pr1\"",
            "\"paths_bit_identical\"",
            "\"instr_replay_wall_s\"",
            "\"instr_live_wall_s\"",
            "\"instr_speedup\"",
            "\"instr_cycles_per_inference\"",
            "\"instr_sim_cycles_per_s\"",
            "\"pr3_instr_sim_cycles_per_s\"",
            "\"instr_speedup_vs_pr3\"",
            "\"instr_paths_bit_identical\"",
            "\"fault_replay_allocs\"",
            "\"batch_size\"",
            "\"batch_inferences\"",
            "\"batch_wall_s\"",
            "\"batch_one_wall_s\"",
            "\"batch_speedup\"",
            "\"batch_sim_cycles_per_s\"",
            "\"batch_allocs\"",
            "\"batch_bit_identical\"",
            "\"opt_cycles_per_inference\"",
            "\"opt_replay_wall_s\"",
            "\"opt_baseline_wall_s\"",
            "\"opt_replay_speedup\"",
            "\"opt_allocs\"",
            "\"opt_paths_bit_identical\"",
            "\"opt_nb_reads_eliminated\"",
            "\"opt_modes_reselected\"",
            "\"opt_sb_bytes_coalesced\"",
            "\"opt_sb_accesses_coalesced\"",
            "\"opt_cycles_saved\"",
            "\"delta_rows_total\"",
            "\"delta_warm_rows\"",
            "\"delta_warm_load_cycles\"",
            "\"delta_bit_identical\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((report.total_speedup() - 2.0).abs() < 1e-12);
        assert!(report.all_bit_identical());
        assert!(report.all_paths_bit_identical());
        assert!(report.zero_alloc_steady_state());
    }

    #[test]
    fn row_derives_baseline_metrics() {
        let row = probe_row();
        assert_eq!(row.allocs_per_cycle(), 0.0);
        let base = row.pr1_sim_cycles_per_s().expect("LeNet-5 has a baseline");
        assert!((row.speedup_vs_pr1().unwrap() - 20000.0 / base).abs() < 1e-12);
        assert!((row.session_speedup() - 2.0).abs() < 1e-12);
        assert!((row.instr_speedup() - 10.0).abs() < 1e-12);
        assert!((row.batch_speedup() - 2.0).abs() < 1e-12);
        assert!((row.opt_replay_speedup() - 2.0).abs() < 1e-12);
        assert!((row.batch_sim_cycles_per_s() - 10017.0 * 80.0 / 0.4).abs() < 1e-6);
        let instr = row.instr_sim_cycles_per_s();
        assert!((instr - 10017.0 * 10.0 / 0.1).abs() < 1e-6);
        let pr3 = row
            .pr3_instr_sim_cycles_per_s()
            .expect("LeNet-5 has a PR-3 baseline");
        assert!((row.instr_speedup_vs_pr3().unwrap() - instr / pr3).abs() < 1e-12);
    }

    #[test]
    fn smoke_errors_flags_every_violation_class() {
        // A clean ten-row set passes.
        let clean: Vec<ThroughputRow> = SEED_CYCLES_PER_INFERENCE
            .iter()
            .map(|&(name, cycles)| ThroughputRow {
                name: name.into(),
                sim_cycles_per_inference: cycles,
                instr_cycles_per_inference: cycles,
                opt_cycles_per_inference: cycles - 1,
                ..probe_row()
            })
            .collect();
        assert!(smoke_errors(&clean).is_empty());

        // Drift (fast and scheduled), divergence (four-path,
        // replay-vs-live, and batched-lane), allocation (clean, faulty
        // replay, and batched), and absence each produce an error.
        let mut bad = clean.clone();
        bad[0].sim_cycles_per_inference += 1;
        bad[1].paths_bit_identical = false;
        bad[2].steady_state_allocs = 7;
        bad[3].instr_cycles_per_inference += 2;
        bad[4].instr_paths_bit_identical = false;
        bad[5].fault_replay_allocs = 3;
        bad[6].batch_bit_identical = false;
        bad[7].batch_allocs = 11;
        bad[0].opt_cycles_per_inference += 10;
        bad[1].opt_paths_bit_identical = false;
        bad[2].opt_allocs = 4;
        bad[4].delta_bit_identical = false;
        bad[5].delta_warm_rows = 6;
        bad.pop();
        let errors = smoke_errors(&bad);
        assert_eq!(errors.len(), 14, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("seed-frozen")));
        assert!(errors.iter().any(|e| e.contains("diverged (legacy")));
        assert!(errors.iter().any(|e| e.contains("fast path allocated")));
        assert!(errors.iter().any(|e| e.contains("scheduled-path drift")));
        assert!(errors
            .iter()
            .any(|e| e.contains("diverged from live decode")));
        assert!(errors.iter().any(|e| e.contains("silent fault plan")));
        assert!(errors.iter().any(|e| e.contains("batched lane diverged")));
        assert!(errors
            .iter()
            .any(|e| e.contains("batched inference allocated")));
        assert!(errors
            .iter()
            .any(|e| e.contains("optimizer increased modeled cycles")));
        assert!(errors
            .iter()
            .any(|e| e.contains("optimized replay diverged")));
        assert!(errors
            .iter()
            .any(|e| e.contains("optimized replay allocated")));
        assert!(errors
            .iter()
            .any(|e| e.contains("delta-load path diverged")));
        assert!(errors
            .iter()
            .any(|e| e.contains("warm delta-load streamed")));
        assert!(errors.iter().any(|e| e.contains("missing")));
    }

    #[test]
    fn smoke_errors_enforces_the_optimizer_gates() {
        let mut rows: Vec<ThroughputRow> = SEED_CYCLES_PER_INFERENCE
            .iter()
            .map(|&(name, cycles)| ThroughputRow {
                name: name.into(),
                sim_cycles_per_inference: cycles,
                instr_cycles_per_inference: cycles,
                opt_cycles_per_inference: cycles - 1,
                ..probe_row()
            })
            .collect();
        // Slow optimized replay on six networks trips the 5-of-10
        // speedup count (equal wall times are a 1.0x "speedup").
        for row in rows.iter_mut().take(6) {
            row.opt_replay_wall_s = row.opt_baseline_wall_s;
        }
        let errors = smoke_errors(&rows);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("optimized-replay"), "{errors:?}");
        // Cycle parity (optimized == recorded) on six networks trips the
        // strict-reduction count without tripping the never-increase
        // check.
        for row in rows.iter_mut().take(6) {
            row.opt_replay_wall_s = probe_row().opt_replay_wall_s;
            row.opt_cycles_per_inference += 1;
        }
        let errors = smoke_errors(&rows);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(
            errors[0].contains("strictly reduced optimized"),
            "{errors:?}"
        );
    }

    #[test]
    fn smoke_errors_enforces_the_instrumented_speedup_gate() {
        let mut rows: Vec<ThroughputRow> = SEED_CYCLES_PER_INFERENCE
            .iter()
            .map(|&(name, cycles)| ThroughputRow {
                name: name.into(),
                sim_cycles_per_inference: cycles,
                instr_cycles_per_inference: cycles,
                opt_cycles_per_inference: cycles - 1,
                ..probe_row()
            })
            .collect();
        // Slow replay on LeNet-5 alone trips the headline gate (the
        // nine remaining fast rows still satisfy the 5-of-10 count).
        rows[3].instr_replay_wall_s = rows[3].instr_live_wall_s;
        let errors = smoke_errors(&rows);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("below the 2x gate"), "{errors:?}");
        // Slow replay on six networks also trips the 5-of-10 count.
        for row in rows.iter_mut().take(6) {
            row.instr_replay_wall_s = row.instr_live_wall_s;
        }
        let errors = smoke_errors(&rows);
        assert!(
            errors.iter().any(|e| e.contains("4/10 benchmarks")),
            "{errors:?}"
        );
    }

    #[test]
    fn smoke_errors_enforces_the_batched_floor() {
        let mut rows: Vec<ThroughputRow> = SEED_CYCLES_PER_INFERENCE
            .iter()
            .map(|&(name, cycles)| ThroughputRow {
                name: name.into(),
                sim_cycles_per_inference: cycles,
                instr_cycles_per_inference: cycles,
                opt_cycles_per_inference: cycles - 1,
                ..probe_row()
            })
            .collect();
        // A batched burst 20% slower than batch-1 on LeNet-5 trips the
        // no-regression floor; other networks are reported, not gated.
        rows[3].batch_wall_s = rows[3].batch_one_wall_s * 1.25;
        rows[0].batch_wall_s = rows[0].batch_one_wall_s * 2.0;
        let errors = smoke_errors(&rows);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("no-regression floor"), "{errors:?}");
    }

    #[test]
    fn baseline_tables_cover_the_same_networks() {
        assert_eq!(SEED_CYCLES_PER_INFERENCE.len(), 10);
        assert_eq!(PR1_SIM_CYCLES_PER_S.len(), 10);
        assert_eq!(PR3_INSTR_SIM_CYCLES_PER_S.len(), 10);
        for &(name, _) in SEED_CYCLES_PER_INFERENCE {
            assert!(
                lookup(PR1_SIM_CYCLES_PER_S, name).is_some(),
                "{name} missing a PR-1 baseline"
            );
            assert!(
                lookup(PR3_INSTR_SIM_CYCLES_PER_S, name).is_some(),
                "{name} missing a PR-3 instrumented baseline"
            );
        }
    }
}
