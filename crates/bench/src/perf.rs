//! Wall-clock measurement of the harness itself: serial vs parallel
//! experiment regeneration and prepared-session inference throughput.
//!
//! This module backs the `harness bench` subcommand, which writes the
//! machine-readable `BENCH_harness.json`. Two families of numbers:
//!
//! * **Experiment timings** — every parallel-sensitive experiment is run
//!   twice, once pinned to one worker (`RAYON_NUM_THREADS=1`) and once
//!   with the full thread pool, and the two results' `Debug` fingerprints
//!   are compared so the JSON also certifies that parallel execution is
//!   bit-identical to serial.
//! * **Throughput rows** — per benchmark, one `prepare` followed by a
//!   burst of `Session::infer` calls, reported as simulated cycles/sec
//!   and inferences/sec, next to the same burst through the legacy
//!   one-shot `Accelerator::run` for the speedup of buffer reuse.

use crate::experiments::{self, compute_paper_runs, SEED};
use shidiannao_cnn::zoo;
use shidiannao_core::{Accelerator, AcceleratorConfig};
use std::time::Instant;

/// Sides used for the sweep when timing it (a subset of the full render
/// to keep the bench subcommand short).
const SWEEP_SIDES: [usize; 4] = [2, 4, 6, 8];

/// Inferences per benchmark in the throughput burst.
const BURST: usize = 10;

/// One experiment timed serially and in parallel.
#[derive(Clone, Debug)]
pub struct ExperimentTiming {
    /// Experiment name (the harness subcommand vocabulary).
    pub name: String,
    /// Wall-clock seconds with `RAYON_NUM_THREADS=1`.
    pub serial_s: f64,
    /// Wall-clock seconds with the full thread pool.
    pub parallel_s: f64,
    /// Whether the serial and parallel results were bit-identical
    /// (compared via their `Debug` formatting).
    pub bit_identical: bool,
}

impl ExperimentTiming {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_s == 0.0 {
            return 0.0;
        }
        self.serial_s / self.parallel_s
    }
}

/// One benchmark's prepared-session inference throughput.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Benchmark name.
    pub name: String,
    /// Seconds for the one-time `Accelerator::prepare`.
    pub prepare_s: f64,
    /// Inferences in the burst.
    pub inferences: usize,
    /// Wall-clock seconds for the whole burst through one `Session`.
    pub wall_s: f64,
    /// Simulated accelerator cycles per inference.
    pub sim_cycles_per_inference: u64,
    /// Simulated cycles advanced per wall-clock second.
    pub sim_cycles_per_s: f64,
    /// Inferences completed per wall-clock second.
    pub inferences_per_s: f64,
    /// Wall-clock seconds for the same burst through the legacy one-shot
    /// `Accelerator::run` (re-preparing every time).
    pub legacy_wall_s: f64,
}

impl ThroughputRow {
    /// Legacy / session wall-clock ratio: what buffer reuse buys.
    pub fn session_speedup(&self) -> f64 {
        if self.wall_s == 0.0 {
            return 0.0;
        }
        self.legacy_wall_s / self.wall_s
    }
}

/// The complete harness performance report.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Worker threads the parallel passes used.
    pub threads: usize,
    /// Per-experiment serial vs parallel timings.
    pub experiments: Vec<ExperimentTiming>,
    /// Per-benchmark session throughput.
    pub throughput: Vec<ThroughputRow>,
}

impl PerfReport {
    /// Total serial seconds across the timed experiments.
    pub fn total_serial_s(&self) -> f64 {
        self.experiments.iter().map(|e| e.serial_s).sum()
    }

    /// Total parallel seconds across the timed experiments.
    pub fn total_parallel_s(&self) -> f64 {
        self.experiments.iter().map(|e| e.parallel_s).sum()
    }

    /// Whole-harness serial / parallel speedup.
    pub fn total_speedup(&self) -> f64 {
        let p = self.total_parallel_s();
        if p == 0.0 {
            return 0.0;
        }
        self.total_serial_s() / p
    }

    /// Whether every experiment was bit-identical between serial and
    /// parallel execution.
    pub fn all_bit_identical(&self) -> bool {
        self.experiments.iter().all(|e| e.bit_identical)
    }

    /// The `BENCH_harness.json` document (no external JSON dependency —
    /// every value is a string-free number, a bool, or an escaped-free
    /// benchmark name).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!("  \"threads\": {},\n", self.threads);
        out += "  \"experiments\": [\n";
        for (i, e) in self.experiments.iter().enumerate() {
            out += &format!(
                "    {{\"name\": \"{}\", \"serial_s\": {}, \"parallel_s\": {}, \
                 \"speedup\": {}, \"bit_identical\": {}}}{}\n",
                e.name,
                json_f64(e.serial_s),
                json_f64(e.parallel_s),
                json_f64(e.speedup()),
                e.bit_identical,
                comma(i, self.experiments.len()),
            );
        }
        out += "  ],\n";
        out += &format!(
            "  \"total\": {{\"serial_s\": {}, \"parallel_s\": {}, \"speedup\": {}, \
             \"bit_identical\": {}}},\n",
            json_f64(self.total_serial_s()),
            json_f64(self.total_parallel_s()),
            json_f64(self.total_speedup()),
            self.all_bit_identical(),
        );
        out += "  \"throughput\": [\n";
        for (i, t) in self.throughput.iter().enumerate() {
            out += &format!(
                "    {{\"name\": \"{}\", \"prepare_s\": {}, \"inferences\": {}, \
                 \"wall_s\": {}, \"sim_cycles_per_inference\": {}, \
                 \"sim_cycles_per_s\": {}, \"inferences_per_s\": {}, \
                 \"legacy_wall_s\": {}, \"session_speedup\": {}}}{}\n",
                t.name,
                json_f64(t.prepare_s),
                t.inferences,
                json_f64(t.wall_s),
                t.sim_cycles_per_inference,
                json_f64(t.sim_cycles_per_s),
                json_f64(t.inferences_per_s),
                json_f64(t.legacy_wall_s),
                json_f64(t.session_speedup()),
                comma(i, self.throughput.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable rendering of the same numbers.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Harness performance ({} worker threads)\n\
             experiment           serial (s)  parallel (s)  speedup  bit-identical\n",
            self.threads
        );
        for e in &self.experiments {
            out += &format!(
                "{:<20} {:>10.3} {:>13.3} {:>7.2}x  {}\n",
                e.name,
                e.serial_s,
                e.parallel_s,
                e.speedup(),
                if e.bit_identical { "yes" } else { "NO" },
            );
        }
        out += &format!(
            "{:<20} {:>10.3} {:>13.3} {:>7.2}x  {}\n\n",
            "total",
            self.total_serial_s(),
            self.total_parallel_s(),
            self.total_speedup(),
            if self.all_bit_identical() {
                "yes"
            } else {
                "NO"
            },
        );
        out += &format!(
            "Prepared-session throughput ({BURST} inferences per benchmark)\n\
             CNN          cycles/inf   sim cycles/s   inf/s   vs one-shot\n"
        );
        for t in &self.throughput {
            out += &format!(
                "{:<12} {:>10} {:>14.3e} {:>7.1} {:>10.2}x\n",
                t.name,
                t.sim_cycles_per_inference,
                t.sim_cycles_per_s,
                t.inferences_per_s,
                t.session_speedup(),
            );
        }
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Times `f` once and returns (seconds, `Debug` fingerprint of result).
fn timed<T: std::fmt::Debug>(f: impl FnOnce() -> T) -> (f64, String) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), format!("{value:?}"))
}

/// Runs `f` serially (one worker) and in parallel, comparing results.
fn serial_vs_parallel<T: std::fmt::Debug>(name: &str, f: impl Fn() -> T) -> ExperimentTiming {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (serial_s, serial_fp) = timed(&f);
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let (parallel_s, parallel_fp) = timed(&f);
    ExperimentTiming {
        name: name.to_string(),
        serial_s,
        parallel_s,
        bit_identical: serial_fp == parallel_fp,
    }
}

/// Times every parallel-sensitive experiment serial-vs-parallel. The
/// paper-configuration runs are timed through [`compute_paper_runs`]
/// (cache-free), so the number reflects real simulator work, not a cache
/// hit.
pub fn measure_experiments() -> Vec<ExperimentTiming> {
    vec![
        serial_vs_parallel("paper_runs", || {
            // Fingerprint the observable results, not the raw trace dump,
            // to keep the comparison string small but still bit-exact.
            compute_paper_runs()
                .iter()
                .map(|p| {
                    (
                        p.net.name().to_string(),
                        p.run.stats().cycles(),
                        p.run.energy().total_nj().to_bits(),
                        format!("{:?}", p.run.output()),
                    )
                })
                .collect::<Vec<_>>()
        }),
        serial_vs_parallel("table1_storage", experiments::table1_storage),
        serial_vs_parallel("fig7_bandwidth", experiments::fig7_bandwidth),
        serial_vs_parallel("design_space_sweep", || {
            experiments::design_space_sweep(&SWEEP_SIDES)
        }),
        serial_vs_parallel("reuse_report", experiments::reuse_report),
    ]
}

/// Measures prepared-session inference throughput for every benchmark.
pub fn measure_throughput() -> Vec<ThroughputRow> {
    zoo::all()
        .into_iter()
        .map(|b| {
            let net = b.build(SEED).expect("benchmark topologies are valid");
            let input = net.random_input(SEED ^ 0xABCD);
            let accel = Accelerator::new(AcceleratorConfig::paper());

            let start = Instant::now();
            let prepared = accel
                .prepare(&net)
                .expect("benchmarks fit the paper config");
            let prepare_s = start.elapsed().as_secs_f64();

            let mut session = prepared.session();
            let start = Instant::now();
            let mut cycles = 0;
            for _ in 0..BURST {
                let inf = session.infer(&input).expect("input shape matches");
                cycles = inf.stats().cycles();
            }
            let wall_s = start.elapsed().as_secs_f64();

            let start = Instant::now();
            for _ in 0..BURST {
                accel
                    .run(&net, &input)
                    .expect("benchmarks fit the paper config");
            }
            let legacy_wall_s = start.elapsed().as_secs_f64();

            ThroughputRow {
                name: net.name().to_string(),
                prepare_s,
                inferences: BURST,
                wall_s,
                sim_cycles_per_inference: cycles,
                sim_cycles_per_s: cycles as f64 * BURST as f64 / wall_s,
                inferences_per_s: BURST as f64 / wall_s,
                legacy_wall_s,
            }
        })
        .collect()
}

/// Runs the full performance measurement.
pub fn measure() -> PerfReport {
    PerfReport {
        threads: rayon::current_num_threads(),
        experiments: measure_experiments(),
        throughput: measure_throughput(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_is_json_safe() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn serial_vs_parallel_detects_identical_results() {
        let t = serial_vs_parallel("probe", || vec![1, 2, 3]);
        assert!(t.bit_identical);
        assert_eq!(t.name, "probe");
    }

    #[test]
    fn report_json_has_the_schema_keys() {
        let report = PerfReport {
            threads: 4,
            experiments: vec![ExperimentTiming {
                name: "probe".into(),
                serial_s: 2.0,
                parallel_s: 1.0,
                bit_identical: true,
            }],
            throughput: vec![ThroughputRow {
                name: "LeNet-5".into(),
                prepare_s: 0.001,
                inferences: 10,
                wall_s: 0.5,
                sim_cycles_per_inference: 1000,
                sim_cycles_per_s: 20000.0,
                inferences_per_s: 20.0,
                legacy_wall_s: 1.0,
            }],
        };
        let json = report.to_json();
        for key in [
            "\"threads\"",
            "\"experiments\"",
            "\"serial_s\"",
            "\"parallel_s\"",
            "\"speedup\"",
            "\"bit_identical\"",
            "\"total\"",
            "\"throughput\"",
            "\"sim_cycles_per_inference\"",
            "\"sim_cycles_per_s\"",
            "\"inferences_per_s\"",
            "\"session_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((report.total_speedup() - 2.0).abs() < 1e-12);
        assert!(report.all_bit_identical());
    }
}
