//! Shared deterministic JSON serialization for the `BENCH_*.json`
//! artefacts.
//!
//! The harness gates on these files being byte-identical across runs and
//! machines, so there is no external JSON dependency and no formatting
//! left to chance: every writer (`BENCH_faults.json`,
//! `BENCH_harness.json`, `BENCH_serve.json`) goes through these helpers
//! with one agreed float grammar:
//!
//! * non-finite values serialize as `null` (JSON has no NaN/Inf),
//! * whole-number floats keep a trailing `.0` so a field never silently
//!   changes JSON type between runs (`2.0`, not `2`),
//! * everything else uses Rust's shortest round-trip `{v}` formatting,
//!   which is deterministic for a given bit pattern.

/// Serializes an `f64` deterministically (see module docs for the
/// grammar).
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Serializes an optional `f64`, mapping `None` to `null`.
pub fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

/// Serializes a string with the minimal JSON escapes (quotes,
/// backslashes, control characters) — benchmark and tenant names pass
/// through unchanged.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The element separator for position `i` of a `len`-element JSON array:
/// a comma everywhere except after the last element.
pub fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_json_safe_and_type_stable() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(-3.0), "-3.0");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(0.25)), "0.25");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(json_str("lenet5"), "\"lenet5\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn commas_separate_all_but_last() {
        assert_eq!(comma(0, 3), ",");
        assert_eq!(comma(1, 3), ",");
        assert_eq!(comma(2, 3), "");
        assert_eq!(comma(0, 1), "");
    }
}
