//! Plain-text rendering of the experiment results, in the shape the paper
//! prints them.

use crate::experiments::{
    fig18_speedups, fig19_energy, fig7_bandwidth, framerate_report, reuse_report, table1_storage,
    table4_characteristics,
};
use crate::geomean;

const COMPONENTS: [&str; 5] = ["NFU", "NBin", "NBout", "SB", "IB"];

/// Renders Table 1.
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table 1: CNN storage requirements\n\
         CNN          Largest Layer (KB)  Synapses (KB)  Total Storage (KB)\n",
    );
    for r in table1_storage() {
        out += &format!(
            "{:<12} {:>18.2} {:>14.2} {:>19.2}\n",
            r.name, r.largest_layer_kb, r.synapses_kb, r.total_kb
        );
    }
    out
}

/// Renders Table 3 (static configuration comparison).
pub fn render_table3() -> String {
    String::from(
        "Table 3: Parameter settings of ShiDianNao and DianNao\n\
         Parameter            ShiDianNao   DianNao\n\
         Data width           16-bit       16-bit\n\
         # multipliers        64           64\n\
         NBin SRAM size       64 KB        1 KB\n\
         NBout SRAM size      64 KB        1 KB\n\
         SB SRAM size         128 KB       16 KB\n\
         Inst. SRAM size      32 KB        8 KB\n",
    )
}

/// Renders Table 4 (area / power / energy with component breakdown).
pub fn render_table4() -> String {
    let t = table4_characteristics();
    let mut out = String::from(
        "Table 4: Hardware characteristics of ShiDianNao at 1 GHz\n\
         Component   Area (mm2)          Power (mW)          Energy (nJ)\n",
    );
    let (ta, tp, te) = (t.total_area_mm2(), t.total_power_mw(), t.total_energy_nj());
    out += &format!(
        "{:<10} {:>7.2} (100.00%)  {:>8.2} (100.00%)  {:>9.2} (100.00%)\n",
        "Total", ta, tp, te
    );
    for (i, name) in COMPONENTS.iter().enumerate() {
        out += &format!(
            "{:<10} {:>7.2} ({:>5.2}%)  {:>8.2} ({:>5.2}%)  {:>9.2} ({:>5.2}%)\n",
            name,
            t.area_mm2[i],
            100.0 * t.area_mm2[i] / ta,
            t.power_mw[i],
            100.0 * t.power_mw[i] / tp,
            t.energy_nj[i],
            100.0 * t.energy_nj[i] / te,
        );
    }
    out
}

/// Renders Fig. 7's two series.
pub fn render_fig7() -> String {
    let mut out = String::from(
        "Figure 7: internal bandwidth from NBin+SB to the NFU (GB/s)\n\
         #PE   without-propagation   with-propagation   reduction\n",
    );
    for r in fig7_bandwidth() {
        out += &format!(
            "{:>3} {:>21.1} {:>18.1} {:>10.1}%\n",
            r.pes,
            r.without_propagation_gbps,
            r.with_propagation_gbps,
            100.0 * r.reduction()
        );
    }
    out
}

/// Renders Fig. 18's bars plus the geometric means.
pub fn render_fig18() -> String {
    let rows = fig18_speedups();
    let mut out = String::from(
        "Figure 18: speedup over the CPU baseline\n\
         CNN          GPU      DianNao  ShiDianNao\n",
    );
    for r in &rows {
        out += &format!(
            "{:<12} {:>7.2}x {:>7.2}x {:>9.2}x\n",
            r.name,
            r.gpu_speedup(),
            r.diannao_speedup(),
            r.shidiannao_speedup()
        );
    }
    let g = |f: fn(&crate::Fig18Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    out += &format!(
        "{:<12} {:>7.2}x {:>7.2}x {:>9.2}x\n",
        "GeoMean",
        g(|r| r.gpu_speedup()),
        g(|r| r.diannao_speedup()),
        g(|r| r.shidiannao_speedup())
    );
    out
}

/// Renders Fig. 19's bars (log10 nJ, as the paper plots them) plus the
/// headline ratios.
pub fn render_fig19() -> String {
    let rows = fig19_energy();
    let mut out = String::from(
        "Figure 19: energy per inference, log10(nJ)\n\
         CNN          GPU    DianNao  DN-FreeMem  ShiDianNao\n",
    );
    for r in &rows {
        out += &format!(
            "{:<12} {:>5.2} {:>8.2} {:>11.2} {:>11.2}\n",
            r.name,
            r.gpu_nj.log10(),
            r.diannao_nj.log10(),
            r.diannao_freemem_nj.log10(),
            r.shidiannao_nj.log10()
        );
    }
    let ratio = |f: fn(&crate::Fig19Row) -> f64| {
        geomean(
            &rows
                .iter()
                .map(|r| f(r) / r.shidiannao_nj)
                .collect::<Vec<_>>(),
        )
    };
    let sensor_ratio = |f: fn(&crate::Fig19Row) -> f64| {
        geomean(
            &rows
                .iter()
                .map(|r| f(r) / r.shidiannao_sensor_nj)
                .collect::<Vec<_>>(),
        )
    };
    out += &format!(
        "GeoMean energy ratios vs ShiDianNao: GPU {:.0}x, DianNao {:.1}x, DianNao-FreeMem {:.2}x\n",
        ratio(|r| r.gpu_nj),
        ratio(|r| r.diannao_nj),
        ratio(|r| r.diannao_freemem_nj),
    );
    out += &format!(
        "Sensor-integrated variant: DianNao {:.1}x, DianNao-FreeMem {:.2}x\n",
        sensor_ratio(|r| r.diannao_nj),
        sensor_ratio(|r| r.diannao_freemem_nj),
    );
    out
}

/// Renders the §8.1 reuse measurements.
pub fn render_reuse() -> String {
    let r = reuse_report();
    format!(
        "Section 8.1: inter-PE data reuse\n\
         toy example (2x2 PEs, 3x3 kernel): {:.1}% NBin read reduction (paper: 44.4%)\n\
         LeNet-5 C1 on 64 PEs:              {:.2}% NBin read reduction (paper: 73.88%)\n",
        100.0 * r.toy_reduction,
        100.0 * r.lenet_c1_reduction
    )
}

/// Renders the §10.2 frame-rate analysis.
pub fn render_framerate() -> String {
    let r = framerate_report();
    format!(
        "Section 10.2: streaming ConvNN over a 640x480 sensor\n\
         regions per frame : {} (paper: 1073)\n\
         ms per region     : {:.3} (paper: 0.047)\n\
         ms per frame      : {:.1} (paper: ~50)\n\
         frames per second : {:.1} (paper: 20)\n\
         row buffer        : {:.1} KB (fits the 256 KB of commercial image processors)\n",
        r.regions_per_frame, r.ms_per_region, r.ms_per_frame, r.fps, r.row_buffer_kb
    )
}

/// Renders the PE design-space sweep.
pub fn render_sweep() -> String {
    let mut out = String::from(
        "Design-space sweep (geomeans over the ten benchmarks)\n\
         mesh    cycles   PE util   area mm2   energy nJ       EDAP\n",
    );
    for p in crate::design_space_sweep(&[2, 4, 6, 8, 12, 16]) {
        out += &format!(
            "{:>2}x{:<3} {:>8.0} {:>8.1}% {:>10.2} {:>11.1} {:>10.2e}\n",
            p.side,
            p.side,
            p.geomean_cycles,
            100.0 * p.geomean_utilization,
            p.area_mm2,
            p.geomean_energy_nj,
            p.edap()
        );
    }
    out += "the paper's 8x8 point balances utilization against area and energy.\n";
    out
}

/// Renders every artifact in paper order.
pub fn render_all() -> String {
    [
        render_table1(),
        render_table3(),
        render_table4(),
        render_fig7(),
        render_fig18(),
        render_fig19(),
        render_reuse(),
        render_framerate(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_ten_rows() {
        let t = render_table1();
        assert_eq!(t.lines().count(), 12, "{t}");
        assert!(t.contains("LeNet-5"));
        assert!(t.contains("136.11"));
    }

    #[test]
    fn table3_is_the_static_comparison() {
        let t = render_table3();
        assert!(t.contains("64 KB        1 KB"));
        assert!(t.contains("128 KB       16 KB"));
    }

    #[test]
    fn reuse_report_prints_the_toy_percentage() {
        let r = render_reuse();
        assert!(r.contains("44.4%"), "{r}");
        assert!(r.contains("73.88%"));
    }

    #[test]
    fn fig7_lists_eight_mesh_sizes() {
        let f = render_fig7();
        assert_eq!(f.lines().count(), 10, "{f}");
        assert!(f.lines().last().unwrap().trim_start().starts_with("64"));
    }
}
