//! The design-space autotuner behind `harness tune [--smoke]`.
//!
//! The schedule optimizer (PR 8) makes a point evaluation cheap: one
//! cached `prepare` plus one analytic simulator run per (configuration,
//! network) pair, shared through
//! [`prepared_cached`](crate::experiments::prepared_cached). The tuner
//! exploits that to sweep a real design space:
//!
//! * **PE mesh** — square `Px×Py` sides 4..=16. The NB bank *width* is
//!   derived from the mesh (`Px × 2` bytes, §6), so sweeping the side
//!   sweeps the bank geometry implicitly.
//! * **NB / SB capacities** — (NBin = NBout, SB) pairs from 32 KB/64 KB
//!   up to 256 KB/256 KB. Capacities gate *feasibility* (a network
//!   either fits or returns a capacity error), not cycles or energy, so
//!   the frontier naturally selects the smallest capacity that fits.
//! * **SRAM protection** — none / parity / SECDED. Protection scales
//!   modeled SRAM energy ([`EnergyModel::with_sram_protection`]) and
//!   area ([`area_with_protection`]) but never cycles, so one simulation
//!   serves all three protection points of a configuration.
//!
//! Every point is costed as (total area mm², geomean energy nJ, geomean
//! cycles) over the benchmark set, and the report emits the **Pareto
//! frontier** under four-objective dominance: a point dominates another
//! only if it is no worse on area, energy, *and* latency while being at
//! least as protected (otherwise stronger protection — strictly worse
//! on all three cost axes by construction — could never survive). The
//! per-tenant **pick** is the frontier point minimizing that tenant's
//! EDAP (energy × delay × area); `harness cluster` turns the distinct
//! picks into a tuner-chosen heterogeneous shard fleet via
//! [`tuned_shard_specs`].
//!
//! Determinism: the grid is evaluated through one order-preserving
//! indexed parallel iterator and every derived number is a pure
//! function of [`SEED`], so `BENCH_tuner.json` is byte-identical across
//! runs, machines, and thread counts. `run_tune` proves it the blunt
//! way — the report is generated three times (once pinned to one rayon
//! worker) and the three documents must compare byte-equal. In smoke
//! mode the frontier labels and tenant picks are frozen so CI catches
//! any cost-model or optimizer drift that moves the frontier.

use crate::experiments::{prepared_cache_stats, prepared_cached, SEED};
use crate::json::{comma, json_f64, json_str};
use rayon::prelude::*;
use shidiannao_cnn::{zoo, Network};
use shidiannao_core::area::{area_with_precision, area_with_protection};
use shidiannao_core::energy::EnergyModel;
use shidiannao_core::{AcceleratorConfig, SramProtection, WeightPrecision};

/// Square PE-mesh sides swept by the full grid.
pub const FULL_SIDES: [usize; 13] = [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

/// (NBin = NBout, SB) capacity pairs in KB swept by the full grid.
pub const FULL_CAPS_KB: [(usize, usize); 6] = [
    (32, 64),
    (64, 64),
    (64, 128),
    (128, 128),
    (128, 256),
    (256, 256),
];

/// The CI-sized smoke grid: three sides, two capacity pairs.
pub const SMOKE_SIDES: [usize; 3] = [4, 8, 12];

/// Smoke capacity pairs (the paper pair and one size up).
pub const SMOKE_CAPS_KB: [(usize, usize); 2] = [(64, 128), (128, 256)];

/// Protection levels costed per simulated configuration.
pub const PROTECTIONS: [SramProtection; 3] = [
    SramProtection::None,
    SramProtection::Parity,
    SramProtection::Secded,
];

/// Weight precisions costed per point, in column order. The 16-bit
/// column drives frontier dominance and the picks; the 2-bit and 1-bit
/// columns are informational (`shidiannao-quant` certifies when a
/// network can actually run at them), so adding them cannot move the
/// frozen frontier.
pub const PRECISIONS: [WeightPrecision; 3] = [
    WeightPrecision::W16,
    WeightPrecision::W2,
    WeightPrecision::W1,
];

/// Minimum evaluated grid points the full run must cover.
pub const TUNE_MIN_FULL_POINTS: usize = 200;

/// The cluster tenants the tuner picks configurations for, as
/// `(tenant name, zoo network name)`.
pub const TENANT_NETS: [(&str, &str); 3] = [
    ("lenet5-interactive", "LeNet-5"),
    ("gabor-stream", "Gabor"),
    ("mpcnn-batch", "MPCNN"),
];

/// Networks the smoke grid evaluates — exactly the cluster tenants'
/// networks, so the smoke picks feed `harness cluster` directly.
pub const SMOKE_NETS: [&str; 3] = ["LeNet-5", "Gabor", "MPCNN"];

/// Frontier labels frozen for the smoke grid. Any drift means the cost
/// model, the optimizer, or the dominance rule changed behaviour and
/// the frontier must be re-frozen deliberately.
pub const EXPECTED_SMOKE_FRONTIER: &[&str] = &[
    "pe4x4-nb64k-sb128k-none",
    "pe4x4-nb64k-sb128k-parity",
    "pe4x4-nb64k-sb128k-secded",
    "pe8x8-nb64k-sb128k-none",
    "pe8x8-nb64k-sb128k-parity",
    "pe8x8-nb64k-sb128k-secded",
    "pe12x12-nb64k-sb128k-none",
    "pe12x12-nb64k-sb128k-parity",
    "pe12x12-nb64k-sb128k-secded",
];

/// Per-tenant picks frozen for the smoke grid.
pub const EXPECTED_SMOKE_PICKS: &[(&str, &str)] = &[
    ("lenet5-interactive", "pe12x12-nb64k-sb128k-none"),
    ("gabor-stream", "pe8x8-nb64k-sb128k-none"),
    ("mpcnn-batch", "pe12x12-nb64k-sb128k-none"),
];

fn prot_rank(p: SramProtection) -> u8 {
    match p {
        SramProtection::None => 0,
        SramProtection::Parity => 1,
        SramProtection::Secded => 2,
    }
}

fn prot_label(p: SramProtection) -> &'static str {
    match p {
        SramProtection::None => "none",
        SramProtection::Parity => "parity",
        SramProtection::Secded => "secded",
    }
}

/// One network's cost at one (fully feasible) design point.
#[derive(Clone, Debug, PartialEq)]
pub struct NetCost {
    /// Benchmark name.
    pub net: String,
    /// Simulated cycles per inference (protection-independent).
    pub cycles: u64,
    /// Modeled energy per inference at the point's protection level.
    pub energy_nj: f64,
    /// The same inference re-costed with 2-bit weights
    /// ([`WeightPrecision::W2`] PE/SB scaling).
    pub energy_nj_w2: f64,
    /// The same inference re-costed with 1-bit weights (XNOR datapath).
    pub energy_nj_w1: f64,
}

/// One evaluated design point.
#[derive(Clone, Debug, PartialEq)]
pub struct TunePoint {
    /// `pe{s}x{s}-nb{n}k-sb{m}k-{prot}` — the stable identity the
    /// frozen frontier and the shard specs reference.
    pub label: String,
    /// Square PE-mesh side.
    pub side: usize,
    /// NBin (= NBout) capacity in KB.
    pub nb_kb: usize,
    /// SB capacity in KB.
    pub sb_kb: usize,
    /// SRAM protection level.
    pub protection: SramProtection,
    /// Networks that fit this configuration.
    pub feasible: usize,
    /// Networks evaluated.
    pub networks: usize,
    /// Per-network costs (populated only when every network fits).
    pub per_net: Vec<NetCost>,
    /// Total accelerator area at 65 nm, protection overhead included.
    pub area_mm2: f64,
    /// Area with the SB and multiplier array shrunk for 1-bit weights.
    pub area_mm2_w1: f64,
    /// Geomean cycles over the networks (0 unless fully feasible).
    pub geomean_cycles: f64,
    /// Geomean energy over the networks (0 unless fully feasible).
    pub geomean_energy_nj: f64,
    /// Geomean 2-bit-weight energy (informational column).
    pub geomean_energy_nj_w2: f64,
    /// Geomean 1-bit-weight energy (informational column).
    pub geomean_energy_nj_w1: f64,
    /// Whether the point sits on the Pareto frontier.
    pub on_frontier: bool,
}

impl TunePoint {
    /// The accelerator configuration this point describes.
    pub fn config(&self) -> AcceleratorConfig {
        grid_config(self.side, self.nb_kb, self.sb_kb)
    }

    /// Whether every evaluated network fit.
    pub fn fully_feasible(&self) -> bool {
        self.feasible == self.networks
    }

    /// Geomean energy-delay-area product (0 unless fully feasible).
    pub fn edap(&self) -> f64 {
        self.geomean_energy_nj * self.geomean_cycles * self.area_mm2
    }

    /// The EDAP the point would post if every network ran with 1-bit
    /// weights (same cycles, W1 energy and area). Informational: it
    /// selects the binary front-end shard, never the frontier.
    pub fn edap_w1(&self) -> f64 {
        self.geomean_energy_nj_w1 * self.geomean_cycles * self.area_mm2_w1
    }
}

/// One tenant's auto-selected configuration: the frontier point
/// minimizing that tenant's own EDAP.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantPick {
    /// Tenant name (the cluster benchmark's vocabulary).
    pub tenant: String,
    /// Zoo network the tenant serves.
    pub net: String,
    /// Label of the picked point.
    pub label: String,
    /// The tenant's cycles at the pick.
    pub cycles: u64,
    /// The tenant's energy at the pick.
    pub energy_nj: f64,
    /// The pick's area.
    pub area_mm2: f64,
}

impl TenantPick {
    /// The tenant-specific figure of merit the pick minimized.
    pub fn edap(&self) -> f64 {
        self.energy_nj * self.cycles as f64 * self.area_mm2
    }
}

/// The complete autotuner report.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneReport {
    /// Whether this was the smoke-sized grid.
    pub smoke: bool,
    /// Benchmark names evaluated, in order.
    pub networks: Vec<String>,
    /// Every grid point, in grid order.
    pub points: Vec<TunePoint>,
    /// Per-tenant frontier picks.
    pub picks: Vec<TenantPick>,
    /// Whether every pick's configuration passed the bit-identity
    /// certificate: optimized-schedule replay and recorded replay both
    /// reproduce the golden fixed-point reference exactly.
    pub opt_bit_identical: bool,
}

fn grid_config(side: usize, nb_kb: usize, sb_kb: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        nbin_bytes: nb_kb * 1024,
        nbout_bytes: nb_kb * 1024,
        sb_bytes: sb_kb * 1024,
        ..AcceleratorConfig::with_pe_grid(side, side)
    }
}

fn grid(smoke: bool) -> Vec<(usize, usize, usize)> {
    let (sides, caps): (&[usize], &[(usize, usize)]) = if smoke {
        (&SMOKE_SIDES, &SMOKE_CAPS_KB)
    } else {
        (&FULL_SIDES, &FULL_CAPS_KB)
    };
    sides
        .iter()
        .flat_map(|&side| caps.iter().map(move |&(nb, sb)| (side, nb, sb)))
        .collect()
}

fn networks(smoke: bool) -> Vec<Network> {
    let builders = if smoke {
        SMOKE_NETS
            .iter()
            .map(|n| zoo::by_name(n).expect("smoke networks are in the zoo"))
            .collect()
    } else {
        zoo::all()
    };
    builders
        .into_par_iter()
        .map(|b| b.build(SEED).expect("zoo topologies are valid"))
        .collect()
}

/// Evaluates the grid and assembles the report. Deterministic: the
/// result is a pure function of `smoke` and [`SEED`].
pub fn evaluate(smoke: bool) -> TuneReport {
    let nets = networks(smoke);
    let nets = &nets;
    let configs = grid(smoke);
    // One simulation per (configuration, network) pair; all three
    // protection points of a configuration re-cost the same run. The
    // flattened indexed map preserves grid order regardless of the
    // thread count.
    let pairs: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..nets.len()).map(move |n| (c, n)))
        .collect();
    let sims: Vec<Option<(u64, [[f64; 3]; 3])>> = pairs
        .into_par_iter()
        .map(|(c, n)| {
            let (side, nb_kb, sb_kb) = configs[c];
            let cfg = grid_config(side, nb_kb, sb_kb);
            let prepared = prepared_cached(&nets[n], &cfg).ok()?;
            let run = prepared.run(&nets[n].random_input(SEED ^ 0xABCD)).ok()?;
            let total = run.stats().total();
            // Per protection × per precision: protection scales the SRAM
            // terms, precision scales the PE-busy and SB terms, and both
            // re-cost the same traffic counters from one simulation.
            let energies = PROTECTIONS.map(|p| {
                PRECISIONS.map(|q| {
                    EnergyModel::paper_65nm()
                        .with_sram_protection(p)
                        .with_weight_precision(q)
                        .charge(&total)
                        .total_nj()
                })
            });
            Some((run.stats().cycles(), energies))
        })
        .collect();

    let mut points = Vec::with_capacity(configs.len() * PROTECTIONS.len());
    for (c, &(side, nb_kb, sb_kb)) in configs.iter().enumerate() {
        let chunk = &sims[c * nets.len()..(c + 1) * nets.len()];
        let feasible = chunk.iter().filter(|s| s.is_some()).count();
        let fully = feasible == nets.len();
        for (p_idx, &protection) in PROTECTIONS.iter().enumerate() {
            let cfg = grid_config(side, nb_kb, sb_kb);
            let area_mm2 = area_with_protection(&cfg, protection).total_mm2();
            let area_mm2_w1 =
                area_with_precision(&cfg, protection, WeightPrecision::W1).total_mm2();
            let per_net: Vec<NetCost> = if fully {
                nets.iter()
                    .zip(chunk)
                    .filter_map(|(net, sim)| {
                        sim.as_ref().map(|&(cycles, energies)| NetCost {
                            net: net.name().to_string(),
                            cycles,
                            energy_nj: energies[p_idx][0],
                            energy_nj_w2: energies[p_idx][1],
                            energy_nj_w1: energies[p_idx][2],
                        })
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let gm = |f: fn(&NetCost) -> f64| {
                let v: Vec<f64> = per_net.iter().map(f).collect();
                crate::geomean(&v)
            };
            let (geomean_cycles, geomean_energy_nj, geomean_energy_nj_w2, geomean_energy_nj_w1) =
                if fully {
                    (
                        gm(|n| n.cycles as f64),
                        gm(|n| n.energy_nj),
                        gm(|n| n.energy_nj_w2),
                        gm(|n| n.energy_nj_w1),
                    )
                } else {
                    (0.0, 0.0, 0.0, 0.0)
                };
            points.push(TunePoint {
                label: format!(
                    "pe{side}x{side}-nb{nb_kb}k-sb{sb_kb}k-{}",
                    prot_label(protection)
                ),
                side,
                nb_kb,
                sb_kb,
                protection,
                feasible,
                networks: nets.len(),
                per_net,
                area_mm2,
                area_mm2_w1,
                geomean_cycles,
                geomean_energy_nj,
                geomean_energy_nj_w2,
                geomean_energy_nj_w1,
                on_frontier: false,
            });
        }
    }

    mark_frontier(&mut points);
    let picks = pick_tenants(&points);
    let opt_bit_identical = certify_picks(nets, &picks, &points);
    TuneReport {
        smoke,
        networks: nets.iter().map(|n| n.name().to_string()).collect(),
        points,
        picks,
        opt_bit_identical,
    }
}

/// Four-objective Pareto dominance over the fully feasible points:
/// `a` dominates `b` when it is no worse on area, energy, and cycles,
/// at least as protected, and strictly better somewhere.
fn mark_frontier(points: &mut [TunePoint]) {
    let costs: Vec<Option<(f64, f64, f64, u8)>> = points
        .iter()
        .map(|p| {
            p.fully_feasible().then_some((
                p.area_mm2,
                p.geomean_energy_nj,
                p.geomean_cycles,
                prot_rank(p.protection),
            ))
        })
        .collect();
    for i in 0..points.len() {
        let Some(b) = costs[i] else { continue };
        let dominated = costs.iter().enumerate().any(|(j, a)| {
            let Some(a) = a else { return false };
            j != i
                && a.0 <= b.0
                && a.1 <= b.1
                && a.2 <= b.2
                && a.3 >= b.3
                && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2 || a.3 > b.3)
        });
        points[i].on_frontier = !dominated;
    }
}

/// Per-tenant auto-selection: the frontier point minimizing the
/// tenant's own EDAP, ties broken by grid order.
fn pick_tenants(points: &[TunePoint]) -> Vec<TenantPick> {
    TENANT_NETS
        .iter()
        .filter_map(|&(tenant, net_name)| {
            let mut best: Option<TenantPick> = None;
            for p in points.iter().filter(|p| p.on_frontier) {
                let Some(cost) = p.per_net.iter().find(|n| n.net == net_name) else {
                    continue;
                };
                let pick = TenantPick {
                    tenant: tenant.to_string(),
                    net: net_name.to_string(),
                    label: p.label.clone(),
                    cycles: cost.cycles,
                    energy_nj: cost.energy_nj,
                    area_mm2: p.area_mm2,
                };
                if best.as_ref().is_none_or(|b| pick.edap() < b.edap()) {
                    best = Some(pick);
                }
            }
            best
        })
        .collect()
}

/// The bit-identity certificate over the picked configurations: the
/// optimized-schedule replay and the recorded replay must both
/// reproduce the golden fixed-point reference exactly on the tenant's
/// network at the picked grid point.
fn certify_picks(nets: &[Network], picks: &[TenantPick], points: &[TunePoint]) -> bool {
    picks.iter().all(|pick| {
        let Some(point) = points.iter().find(|p| p.label == pick.label) else {
            return false;
        };
        let Some(net) = nets.iter().find(|n| n.name() == pick.net) else {
            return false;
        };
        let Ok(prepared) = prepared_cached(net, &point.config()) else {
            return false;
        };
        let input = net.random_input(SEED ^ 0xABCD);
        let golden = net.forward_fixed(&input);
        let Ok(recorded) = prepared.session().run(&input) else {
            return false;
        };
        let mut optimized = prepared.session();
        optimized.set_optimized_replay(true);
        let Ok(opt) = optimized.run(&input) else {
            return false;
        };
        recorded.output() == golden.output()
            && opt.output() == golden.output()
            && opt.layer_outputs() == recorded.layer_outputs()
            && opt.stats().cycles() <= recorded.stats().cycles()
    })
}

/// The tuner-chosen heterogeneous shard fleet for `harness cluster`:
/// the distinct accelerator configurations among the smoke-grid tenant
/// picks, as `(shard name, configuration)` pairs in pick order.
/// Equivalent to [`tuned_shard_specs_for`]`(false)` — the cluster
/// bench's frozen ledgers depend on this exact fleet.
pub fn tuned_shard_specs() -> Vec<(String, AcceleratorConfig)> {
    tuned_shard_specs_for(false)
}

/// [`tuned_shard_specs`], optionally extended with a **binary
/// front-end shard**: the frontier point minimizing the Gabor tenant's
/// 1-bit EDAP (`energy_w1 × cycles × area_w1`), named
/// `tuned-binary-front`. A cascade deployment pins its binarized
/// front-end tenant to that shard while the full-precision tenants
/// stay on the 16-bit picks.
pub fn tuned_shard_specs_for(include_binary_front: bool) -> Vec<(String, AcceleratorConfig)> {
    let report = evaluate(true);
    let mut specs: Vec<(String, AcceleratorConfig)> = Vec::new();
    for pick in &report.picks {
        let Some(point) = report.points.iter().find(|p| p.label == pick.label) else {
            continue;
        };
        let cfg = point.config();
        if specs.iter().any(|(_, c)| *c == cfg) {
            continue;
        }
        specs.push((
            format!(
                "tuned-pe{}x{}-nb{}k-sb{}k",
                point.side, point.side, point.nb_kb, point.sb_kb
            ),
            cfg,
        ));
    }
    if include_binary_front {
        let front = report
            .points
            .iter()
            .filter(|p| p.on_frontier)
            .filter_map(|p| {
                let gabor = p.per_net.iter().find(|n| n.net == "Gabor")?;
                Some((gabor.energy_nj_w1 * gabor.cycles as f64 * p.area_mm2_w1, p))
            })
            .min_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((_, point)) = front {
            specs.push(("tuned-binary-front".to_string(), point.config()));
        }
    }
    specs
}

impl TuneReport {
    /// Labels of the frontier points, in grid order.
    pub fn frontier_labels(&self) -> Vec<&str> {
        self.points
            .iter()
            .filter(|p| p.on_frontier)
            .map(|p| p.label.as_str())
            .collect()
    }

    /// Grid points that were fully feasible.
    pub fn fully_feasible(&self) -> usize {
        self.points.iter().filter(|p| p.fully_feasible()).count()
    }

    /// The `BENCH_tuner.json` document. Built exclusively from
    /// seed-deterministic quantities (no wall clock, no cache
    /// statistics), so the bytes are stable across runs, machines, and
    /// thread counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!(
            "  \"scenario\": {},\n",
            json_str(if self.smoke { "smoke" } else { "full" })
        );
        out += &format!("  \"grid_points\": {},\n", self.points.len());
        out += &format!("  \"fully_feasible\": {},\n", self.fully_feasible());
        out += &format!("  \"opt_bit_identical\": {},\n", self.opt_bit_identical);
        out += "  \"networks\": [";
        for (i, n) in self.networks.iter().enumerate() {
            out += &format!("{}{}", json_str(n), comma(i, self.networks.len()));
        }
        out += "],\n";
        out += "  \"points\": [\n";
        for (i, p) in self.points.iter().enumerate() {
            out += &format!(
                "    {{\"label\": {}, \"side\": {}, \"nb_kb\": {}, \"sb_kb\": {}, \
                 \"protection\": {}, \"feasible\": {}, \"networks\": {}, \
                 \"area_mm2\": {}, \"area_mm2_w1\": {}, \"geomean_cycles\": {}, \
                 \"geomean_energy_nj\": {}, \"geomean_energy_nj_w2\": {}, \
                 \"geomean_energy_nj_w1\": {}, \"edap\": {}, \"edap_w1\": {}, \
                 \"on_frontier\": {}}}{}\n",
                json_str(&p.label),
                p.side,
                p.nb_kb,
                p.sb_kb,
                json_str(prot_label(p.protection)),
                p.feasible,
                p.networks,
                json_f64(p.area_mm2),
                json_f64(p.area_mm2_w1),
                json_f64(p.geomean_cycles),
                json_f64(p.geomean_energy_nj),
                json_f64(p.geomean_energy_nj_w2),
                json_f64(p.geomean_energy_nj_w1),
                json_f64(p.edap()),
                json_f64(p.edap_w1()),
                p.on_frontier,
                comma(i, self.points.len()),
            );
        }
        out += "  ],\n";
        out += "  \"frontier\": [";
        let frontier = self.frontier_labels();
        for (i, l) in frontier.iter().enumerate() {
            out += &format!("{}{}", json_str(l), comma(i, frontier.len()));
        }
        out += "],\n";
        out += "  \"picks\": [\n";
        for (i, pick) in self.picks.iter().enumerate() {
            out += &format!(
                "    {{\"tenant\": {}, \"net\": {}, \"label\": {}, \"cycles\": {}, \
                 \"energy_nj\": {}, \"area_mm2\": {}, \"edap\": {}}}{}\n",
                json_str(&pick.tenant),
                json_str(&pick.net),
                json_str(&pick.label),
                pick.cycles,
                json_f64(pick.energy_nj),
                json_f64(pick.area_mm2),
                json_f64(pick.edap()),
                comma(i, self.picks.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable summary: the frontier, the picks, and the shared
    /// prepared-network cache's hit rate.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Design-space autotuner ({}): {} grid points over {} networks, \
             {} fully feasible, {} on the Pareto frontier\n",
            if self.smoke { "smoke" } else { "full" },
            self.points.len(),
            self.networks.len(),
            self.fully_feasible(),
            self.frontier_labels().len(),
        );
        out += "frontier point                  area mm2  geomean cycles  geomean nJ  \
                w2 nJ    w1 nJ          EDAP\n";
        for p in self.points.iter().filter(|p| p.on_frontier) {
            out += &format!(
                "{:<30} {:>9.3} {:>15.1} {:>11.1} {:>8.1} {:>8.1} {:>13.3e}\n",
                p.label,
                p.area_mm2,
                p.geomean_cycles,
                p.geomean_energy_nj,
                p.geomean_energy_nj_w2,
                p.geomean_energy_nj_w1,
                p.edap(),
            );
        }
        for pick in &self.picks {
            out += &format!(
                "pick {:<20} -> {:<28} ({} cycles, {:.1} nJ, {:.3} mm2)\n",
                pick.tenant, pick.label, pick.cycles, pick.energy_nj, pick.area_mm2,
            );
        }
        let (hits, misses) = prepared_cache_stats();
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        out += &format!(
            "prepared-network cache: {hits} hits / {misses} misses ({rate:.1}% hit rate)\n"
        );
        out += &format!(
            "optimized-schedule bit-identity over the picks: {}\n",
            if self.opt_bit_identical { "yes" } else { "NO" }
        );
        out
    }

    /// The CI gate: empty when every certificate holds.
    pub fn gate_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if !self.opt_bit_identical {
            errors.push(
                "a picked configuration failed the optimized-schedule bit-identity \
                 certificate"
                    .to_string(),
            );
        }
        if self.frontier_labels().is_empty() {
            errors.push("the Pareto frontier is empty".to_string());
        }
        if self.picks.len() != TENANT_NETS.len() {
            errors.push(format!(
                "only {}/{} tenants received a pick",
                self.picks.len(),
                TENANT_NETS.len()
            ));
        }
        for pick in &self.picks {
            if !self
                .points
                .iter()
                .any(|p| p.on_frontier && p.label == pick.label)
            {
                errors.push(format!(
                    "{}: pick {} is not on the frontier",
                    pick.tenant, pick.label
                ));
            }
        }
        if !self.smoke && self.points.len() < TUNE_MIN_FULL_POINTS {
            errors.push(format!(
                "full grid evaluated {} points, below the {TUNE_MIN_FULL_POINTS} floor",
                self.points.len()
            ));
        }
        if self.smoke {
            let frontier = self.frontier_labels();
            if frontier != EXPECTED_SMOKE_FRONTIER {
                errors.push(format!(
                    "smoke frontier drift: got {frontier:?}, frozen {EXPECTED_SMOKE_FRONTIER:?}"
                ));
            }
            for &(tenant, label) in EXPECTED_SMOKE_PICKS {
                match self.picks.iter().find(|p| p.tenant == tenant) {
                    None => errors.push(format!("smoke pick for {tenant} missing")),
                    Some(p) if p.label != label => errors.push(format!(
                        "smoke pick drift: {tenant} picked {}, frozen {label}",
                        p.label
                    )),
                    Some(_) => {}
                }
            }
        }
        errors
    }
}

/// Runs the tuner three times — once pinned to a single rayon worker,
/// twice with the full pool — byte-compares the three JSON documents,
/// writes `BENCH_tuner.json`, and returns `(stdout summary, gate
/// violations)` under the harness's unified exit-code policy.
pub fn run_tune(smoke: bool) -> (String, Vec<String>) {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = evaluate(smoke).to_json();
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let report = evaluate(smoke);
    let parallel = report.to_json();
    let third = evaluate(smoke).to_json();

    let mut errors = report.gate_errors();
    if serial != parallel {
        errors.push("BENCH_tuner.json differs between serial and parallel evaluation".to_string());
    }
    if parallel != third {
        errors.push("BENCH_tuner.json differs between two identical runs".to_string());
    }
    let mut out = report.render();
    let path = "BENCH_tuner.json";
    match std::fs::write(path, &parallel) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_passes_its_frozen_gate() {
        let report = evaluate(true);
        let errors = report.gate_errors();
        assert!(errors.is_empty(), "gate failed: {errors:?}");
        assert_eq!(report.points.len(), 18);
        assert!(report.opt_bit_identical);
        // Capacity sizing: at a fixed side and protection the smaller
        // feasible capacity pair dominates the larger one (same cycles
        // and energy, less area), so only nb64k/sb128k survives.
        assert!(report
            .frontier_labels()
            .iter()
            .all(|l| l.contains("nb64k-sb128k")));
    }

    #[test]
    fn smoke_json_is_byte_deterministic() {
        let a = evaluate(true).to_json();
        let b = evaluate(true).to_json();
        assert_eq!(a, b);
        for key in [
            "\"scenario\"",
            "\"grid_points\"",
            "\"fully_feasible\"",
            "\"opt_bit_identical\"",
            "\"points\"",
            "\"frontier\"",
            "\"picks\"",
            "\"edap\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn dominance_requires_protection_parity() {
        // A SECDED point strictly worse on every cost axis than its
        // unprotected sibling still survives: nothing at its protection
        // tier beats it.
        let report = evaluate(true);
        let frontier = report.frontier_labels();
        assert!(frontier.iter().any(|l| l.ends_with("secded")));
        assert!(frontier.iter().any(|l| l.ends_with("none")));
    }

    #[test]
    fn tuned_shards_are_heterogeneous() {
        let specs = tuned_shard_specs();
        assert!(!specs.is_empty());
        // The frozen smoke picks split across two mesh sides.
        assert!(specs.len() >= 2, "picks collapsed to one config: {specs:?}");
        for (name, cfg) in &specs {
            assert!(name.starts_with("tuned-pe"), "{name}");
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn precision_columns_order_strictly_and_leave_the_frontier_alone() {
        let report = evaluate(true);
        for p in report.points.iter().filter(|p| p.fully_feasible()) {
            // Narrower weights strictly cheaper: w1 < w2 < w16 on both
            // energy and (for w1) area.
            assert!(p.geomean_energy_nj_w1 < p.geomean_energy_nj_w2);
            assert!(p.geomean_energy_nj_w2 < p.geomean_energy_nj);
            assert!(p.area_mm2_w1 < p.area_mm2);
            for n in &p.per_net {
                assert!(n.energy_nj_w1 < n.energy_nj_w2);
                assert!(n.energy_nj_w2 < n.energy_nj);
            }
        }
        // The informational columns must not have moved the frozen
        // frontier (dominance still runs on the 16-bit column).
        assert_eq!(report.frontier_labels(), EXPECTED_SMOKE_FRONTIER);
    }

    #[test]
    fn binary_front_shard_extends_but_never_perturbs_the_fleet() {
        let base = tuned_shard_specs();
        let with_front = tuned_shard_specs_for(true);
        assert_eq!(with_front.len(), base.len() + 1);
        assert_eq!(&with_front[..base.len()], &base[..]);
        let (name, cfg) = with_front.last().unwrap();
        assert_eq!(name, "tuned-binary-front");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn full_grid_covers_the_floor() {
        assert!(FULL_SIDES.len() * FULL_CAPS_KB.len() * PROTECTIONS.len() >= TUNE_MIN_FULL_POINTS);
    }
}
