//! The fault-injection campaign: fault rate × SRAM protection across the
//! benchmark zoo, plus a graceful-degradation streaming measurement.
//!
//! Every fault outcome here is a pure function of the sweep seed — no
//! wall clock, no OS randomness — so `BENCH_faults.json` is
//! byte-identical across invocations once its wall-clock speedup
//! columns are masked (the reproducibility bar the rest of the harness
//! already meets; the tests below strip exactly those columns).
//!
//! Each sweep cell runs its trials twice: once through sessions
//! replaying the precompiled micro-op schedule (the default — silent
//! faults resolve through the per-layer overlay, detected faults abort
//! via live decode of the aborting layer) and once with replay disabled
//! (live HFSM decode, per-access fault filtering). The cell records the
//! wall-clock speedup and certifies that both paths agreed on every
//! trial's outcome: output bits, fault counters, and — for aborted
//! trials — the cycle count charged to the wasted attempt.
//!
//! The SRAM sweep isolates memory faults (`pe_stuck_rate` and
//! `scanline_rate` are zero) so each cell measures exactly what the
//! protection code can and cannot do: under no protection every flip is
//! silent, parity detects single-bit flips but passes double-bit upsets
//! silently, and SECDED corrects single-bit flips and detects double-bit
//! ones — so **SDC under SECDED is structurally zero**, which the smoke
//! sweep (and CI) asserts. Datapath and sensor-link faults, which no SRAM
//! code can absorb, are exercised by the degradation rows instead.

use crate::geomean;
use crate::json::{comma, json_f64};
use shidiannao_cnn::{zoo, Network};
use shidiannao_core::area::{area_of, area_with_protection};
use shidiannao_core::energy::EnergyModel;
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, FaultStats, PreparedNetwork, RunError,
    SramProtection,
};
use shidiannao_fixed::Fx;
use shidiannao_sensor::{FaultySensor, FrameSource, RegionGrid, SyntheticSensor};
use std::time::Instant;

/// The campaign's base seed; every fault pattern derives from it.
pub const SWEEP_SEED: u64 = 0xFA17;

/// One (network, protection, rate) cell of the SRAM fault sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultCell {
    /// Benchmark network name.
    pub network: String,
    /// Protection code in force.
    pub protection: SramProtection,
    /// Per-word flip rate applied to NBin/NBout, SB, and IB reads.
    pub rate: f64,
    /// Independent seeded trials.
    pub trials: u32,
    /// Trials that completed bit-identical to the golden model.
    pub clean: u32,
    /// Trials that completed with a diverged output (silent data
    /// corruption).
    pub sdc: u32,
    /// Trials aborted by a detected uncorrectable error.
    pub detected: u32,
    /// Fault events corrected by SECDED across all trials.
    pub corrected_events: u64,
    /// Fault events that silently flipped data across all trials.
    pub silent_events: u64,
    /// Mean absolute output divergence of the SDC trials (golden-model
    /// units), 0 when no trial diverged.
    pub divergence: f64,
    /// Wall-clock seconds for the cell's trials with schedule replay on
    /// (the default instrumented path).
    pub replay_wall_s: f64,
    /// Wall-clock seconds for the same trials with replay disabled
    /// (live HFSM decode).
    pub live_wall_s: f64,
    /// Whether every trial's outcome — output bits, fault counters, and
    /// abort cycle counts — agreed between the replayed and live runs.
    pub paths_agree: bool,
}

impl FaultCell {
    /// Fraction of trials ending in silent data corruption.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.trials.max(1) as f64
    }

    /// Fraction of trials ending in a detected abort.
    pub fn detection_rate(&self) -> f64 {
        self.detected as f64 / self.trials.max(1) as f64
    }

    /// Live / replay wall-clock ratio for the cell's instrumented runs.
    pub fn replay_speedup(&self) -> f64 {
        if self.replay_wall_s == 0.0 {
            return 0.0;
        }
        self.live_wall_s / self.replay_wall_s
    }
}

/// Energy and area cost of one protection level (paper config, geomean
/// over the swept networks for energy).
#[derive(Clone, Debug, PartialEq)]
pub struct ProtectionOverhead {
    /// Protection code.
    pub protection: SramProtection,
    /// Whole-run energy multiplier vs. unprotected SRAMs.
    pub energy_overhead: f64,
    /// Total die-area multiplier vs. unprotected SRAMs.
    pub area_overhead: f64,
}

/// One graceful-degradation streaming measurement: a faulty sensor feeds
/// a frame through a fault-injecting session with retry-then-skip.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationRow {
    /// Benchmark network name.
    pub network: String,
    /// Protection code.
    pub protection: SramProtection,
    /// Uniform fault rate (SRAM, PE, and scanline sites all active).
    pub rate: f64,
    /// Regions in the frame.
    pub regions: usize,
    /// Regions completing on the first attempt.
    pub ok: usize,
    /// Regions completing after retries.
    pub degraded: usize,
    /// Regions dropped (fault-exhausted or over budget).
    pub dropped: usize,
    /// Scanlines the sensor link dropped.
    pub dropped_rows: u64,
    /// Scanlines the sensor link corrupted.
    pub corrupted_rows: u64,
    /// Cycles spent, failed attempts included.
    pub cycles: u64,
}

impl DegradationRow {
    /// Fraction of regions that produced an output.
    pub fn coverage(&self) -> f64 {
        (self.ok + self.degraded) as f64 / self.regions.max(1) as f64
    }
}

/// The whole campaign: sweep cells, protection overheads, and
/// degradation rows.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultReport {
    /// Base seed of every fault pattern.
    pub seed: u64,
    /// The SRAM sweep.
    pub cells: Vec<FaultCell>,
    /// Energy/area cost per protection level.
    pub overheads: Vec<ProtectionOverhead>,
    /// Graceful-degradation streaming rows.
    pub degradation: Vec<DegradationRow>,
}

/// Per-cell trial count, degradation retry bound, and sizes of the two
/// sweep variants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepConfig {
    trials: u32,
    rates: &'static [f64],
    nets: usize,
}

const FULL_RATES: [f64; 4] = [0.0, 1e-5, 1e-4, 1e-3];
const SMOKE_RATES: [f64; 2] = [0.0, 1e-3];
const MAX_RETRIES: u32 = 2;

fn sweep_networks(count: usize) -> Vec<Network> {
    [zoo::gabor(), zoo::simple_conv(), zoo::lenet5()]
        .into_iter()
        .take(count)
        .map(|b| b.build(2015).expect("zoo topologies are valid"))
        .collect()
}

/// The CI-sized campaign: one network, two rates, every protection.
pub fn smoke() -> FaultReport {
    run_sweep(SweepConfig {
        trials: 2,
        rates: &SMOKE_RATES,
        nets: 1,
    })
}

/// The full campaign: three zoo networks, four rates, every protection,
/// several trials per cell.
pub fn full() -> FaultReport {
    run_sweep(SweepConfig {
        trials: 3,
        rates: &FULL_RATES,
        nets: 3,
    })
}

fn run_sweep(cfg: SweepConfig) -> FaultReport {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let networks = sweep_networks(cfg.nets);
    let mut cells = Vec::new();
    let mut energy_base = Vec::new();
    for (ni, net) in networks.iter().enumerate() {
        let prepared = accel
            .prepare(net)
            .expect("zoo networks fit the paper config");
        let input = net.random_input(SWEEP_SEED ^ 0xABCD);
        let golden = net.forward_fixed(&input).output();
        let clean_run = prepared.run(&input).expect("matching input shape");
        energy_base.push(clean_run.energy().total_nj());
        for (pi, &protection) in SramProtection::ALL.iter().enumerate() {
            for (ri, &rate) in cfg.rates.iter().enumerate() {
                cells.push(run_cell(CellInputs {
                    prepared: &prepared,
                    input: &input,
                    golden: &golden,
                    name: net.name().to_string(),
                    protection,
                    rate,
                    trials: cfg.trials,
                    salt_base: ((ni as u64) << 48) | ((pi as u64) << 40) | ((ri as u64) << 32),
                }));
            }
        }
    }
    let overheads = SramProtection::ALL
        .iter()
        .map(|&p| protection_overhead(p, &networks, &accel, &energy_base))
        .collect();
    let max_rate = cfg.rates.iter().copied().fold(0.0f64, f64::max);
    let mut degradation = Vec::new();
    for net in networks.iter().take(1) {
        for &p in &SramProtection::ALL {
            degradation.push(degradation_row(&accel, net, p, max_rate));
        }
    }
    FaultReport {
        seed: SWEEP_SEED,
        cells,
        overheads,
        degradation,
    }
}

struct CellInputs<'a> {
    prepared: &'a PreparedNetwork,
    input: &'a shidiannao_tensor::MapStack<shidiannao_fixed::Fx>,
    golden: &'a [shidiannao_fixed::Fx],
    name: String,
    protection: SramProtection,
    rate: f64,
    trials: u32,
    salt_base: u64,
}

/// What one seeded trial produced — kept from the replay pass so the
/// live pass can certify it reproduced the exact same outcome.
enum TrialOutcome {
    /// Run completed: final output bits and fault counters.
    Done(Vec<Fx>, FaultStats),
    /// Run aborted on a detected fault: cycles charged to the wasted
    /// attempt and fault counters at the abort.
    Aborted(u64, FaultStats),
}

fn run_cell(c: CellInputs<'_>) -> FaultCell {
    let cfg = FaultConfig {
        seed: SWEEP_SEED,
        nb_flip_rate: c.rate,
        sb_flip_rate: c.rate,
        ib_flip_rate: c.rate,
        pe_stuck_rate: 0.0,
        scanline_rate: 0.0,
        double_flip_share: 0.1,
        protection: c.protection,
    };
    let base_plan = FaultPlan::new(cfg);
    let mut cell = FaultCell {
        network: c.name,
        protection: c.protection,
        rate: c.rate,
        trials: c.trials,
        clean: 0,
        sdc: 0,
        detected: 0,
        corrected_events: 0,
        silent_events: 0,
        divergence: 0.0,
        replay_wall_s: 0.0,
        live_wall_s: 0.0,
        paths_agree: true,
    };
    let mut divergences = Vec::new();
    let mut outcomes = Vec::with_capacity(c.trials as usize);

    // Replay pass: sessions default to schedule replay; the fault plan
    // resolves into per-layer overlays once per salt.
    let mut session = c.prepared.session_with_faults(base_plan);
    let start = Instant::now();
    for trial in 0..c.trials {
        session.set_fault_plan(base_plan.with_salt(c.salt_base | trial as u64));
        match session.run(c.input) {
            Ok(run) => {
                let stats = run.fault_stats();
                cell.corrected_events += stats.corrected;
                cell.silent_events += stats.silent;
                let out = run.output();
                if out == c.golden {
                    cell.clean += 1;
                } else {
                    cell.sdc += 1;
                    let err: f64 = out
                        .iter()
                        .zip(c.golden)
                        .map(|(a, b)| (a.to_f32() - b.to_f32()).abs() as f64)
                        .sum();
                    divergences.push(err / c.golden.len().max(1) as f64);
                }
                outcomes.push(TrialOutcome::Done(out, *run.fault_stats()));
            }
            Err(RunError::FaultDetected(_)) => {
                cell.detected += 1;
                outcomes.push(TrialOutcome::Aborted(
                    session.last_cycles(),
                    *session.fault_stats(),
                ));
            }
            Err(e) => unreachable!("non-fault failure in the sweep: {e}"),
        }
    }
    cell.replay_wall_s = start.elapsed().as_secs_f64();

    // Live pass: the same trials through live HFSM decode must land on
    // the exact same outcomes.
    let mut live = c.prepared.session_with_faults(base_plan);
    live.set_schedule_replay(false);
    let start = Instant::now();
    for (trial, expected) in outcomes.iter().enumerate() {
        live.set_fault_plan(base_plan.with_salt(c.salt_base | trial as u64));
        match (live.run(c.input), expected) {
            (Ok(run), TrialOutcome::Done(out, stats)) => {
                cell.paths_agree &= run.output() == *out && run.fault_stats() == stats;
            }
            (Err(RunError::FaultDetected(_)), TrialOutcome::Aborted(cycles, stats)) => {
                cell.paths_agree &= live.last_cycles() == *cycles && live.fault_stats() == stats;
            }
            (Ok(_), TrialOutcome::Aborted(..))
            | (Err(RunError::FaultDetected(_)), TrialOutcome::Done(..)) => {
                cell.paths_agree = false;
            }
            (Err(e), _) => unreachable!("non-fault failure in the sweep: {e}"),
        }
    }
    cell.live_wall_s = start.elapsed().as_secs_f64();

    if !divergences.is_empty() {
        cell.divergence = divergences.iter().sum::<f64>() / divergences.len() as f64;
    }
    cell
}

fn protection_overhead(
    protection: SramProtection,
    networks: &[Network],
    accel: &Accelerator,
    energy_base: &[f64],
) -> ProtectionOverhead {
    let model = EnergyModel::paper_65nm().with_sram_protection(protection);
    let ratios: Vec<f64> = networks
        .iter()
        .zip(energy_base)
        .map(|(net, &base)| {
            let prepared = accel.prepare(net).expect("fits");
            let run = prepared
                .run(&net.random_input(SWEEP_SEED ^ 0xABCD))
                .expect("matching input shape");
            model.charge_run(run.stats()).total_nj() / base
        })
        .collect();
    let cfg = AcceleratorConfig::paper();
    ProtectionOverhead {
        protection,
        energy_overhead: geomean(&ratios),
        area_overhead: area_with_protection(&cfg, protection).total_mm2()
            / area_of(&cfg).total_mm2(),
    }
}

/// One frame of faulty streaming with retry-then-skip, mirroring
/// `StreamingPipeline::process_frame_degraded` (which lives above this
/// crate in the dependency graph): the sensor link injects scanline
/// faults, the session injects SRAM/PE faults, detected errors retry up
/// to [`MAX_RETRIES`] times with a fresh salt, then drop the region.
fn degradation_row(
    accel: &Accelerator,
    net: &Network,
    protection: SramProtection,
    rate: f64,
) -> DegradationRow {
    let (fw, fh) = (36, 28);
    let dims = net.input_dims();
    let grid = RegionGrid::new((fw, fh), dims, (fw - dims.0, fh - dims.1));
    // Sensor links fail per scanline (a missed HSYNC, a serial burst),
    // so the row rate sits orders of magnitude above the per-word SRAM
    // rate; scale it so a frame-sized measurement actually exercises the
    // dropped/corrupted-row paths.
    let plan = FaultPlan::new(FaultConfig {
        double_flip_share: 0.1,
        scanline_rate: (rate * 100.0).clamp(0.0, 0.5),
        ..FaultConfig::uniform(SWEEP_SEED, rate, protection)
    });
    let mut cam = FaultySensor::new(SyntheticSensor::new(fw, fh, 3), plan);
    let frame = cam.next_frame();
    let prepared = accel.prepare(net).expect("fits the paper config");
    let mut session = prepared.session_with_faults(plan);
    let mut row = DegradationRow {
        network: net.name().to_string(),
        protection,
        rate,
        regions: grid.count(),
        ok: 0,
        degraded: 0,
        dropped: 0,
        dropped_rows: 0,
        corrupted_rows: 0,
        cycles: 0,
    };
    let stream = grid
        .try_stream(&frame, net.input_maps())
        .expect("frame matches the grid by construction");
    for (ri, region) in stream.enumerate() {
        let mut done = false;
        for attempt in 0..=MAX_RETRIES {
            let salt = ((ri as u64) << 8) ^ attempt as u64;
            session.set_fault_plan(plan.with_salt(salt));
            match session.infer(&region) {
                Ok(run) => {
                    row.cycles += run.stats().cycles();
                    if attempt == 0 {
                        row.ok += 1;
                    } else {
                        row.degraded += 1;
                    }
                    done = true;
                    break;
                }
                Err(RunError::FaultDetected(_)) => row.cycles += session.last_cycles(),
                Err(e) => unreachable!("non-fault failure in degradation: {e}"),
            }
        }
        if !done {
            row.dropped += 1;
        }
    }
    row.dropped_rows = cam.dropped_rows();
    row.corrupted_rows = cam.corrupted_rows();
    row
}

impl FaultReport {
    /// SDC trials observed under SECDED across the whole sweep — the
    /// protection guarantee CI asserts to be zero.
    pub fn sdc_under_secded(&self) -> u32 {
        self.cells
            .iter()
            .filter(|c| c.protection == SramProtection::Secded)
            .map(|c| c.sdc)
            .sum()
    }

    /// Zero-rate cells must all be clean — the transparency guarantee.
    pub fn zero_rate_all_clean(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.rate == 0.0)
            .all(|c| c.clean == c.trials && c.sdc == 0 && c.detected == 0)
    }

    /// Every cell's replayed and live-decoded trials must have produced
    /// identical outcomes — the schedule-replay equivalence guarantee CI
    /// asserts alongside the protection gates.
    pub fn all_paths_agree(&self) -> bool {
        self.cells.iter().all(|c| c.paths_agree)
    }

    /// Machine-readable JSON (hand-rolled, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!("  \"seed\": {},\n", self.seed);
        out += "  \"cells\": [\n";
        for (i, c) in self.cells.iter().enumerate() {
            out += &format!(
                "    {{\"network\": \"{}\", \"protection\": \"{}\", \"rate\": {}, \
                 \"trials\": {}, \"clean\": {}, \"sdc\": {}, \"detected\": {}, \
                 \"sdc_rate\": {}, \"detection_rate\": {}, \"corrected_events\": {}, \
                 \"silent_events\": {}, \"divergence\": {}, \"replay_wall_s\": {}, \
                 \"live_wall_s\": {}, \"replay_speedup\": {}, \"paths_agree\": {}}}{}\n",
                c.network,
                c.protection.label(),
                json_f64(c.rate),
                c.trials,
                c.clean,
                c.sdc,
                c.detected,
                json_f64(c.sdc_rate()),
                json_f64(c.detection_rate()),
                c.corrected_events,
                c.silent_events,
                json_f64(c.divergence),
                json_f64(c.replay_wall_s),
                json_f64(c.live_wall_s),
                json_f64(c.replay_speedup()),
                c.paths_agree,
                comma(i, self.cells.len()),
            );
        }
        out += "  ],\n";
        out += "  \"overheads\": [\n";
        for (i, o) in self.overheads.iter().enumerate() {
            out += &format!(
                "    {{\"protection\": \"{}\", \"energy_overhead\": {}, \
                 \"area_overhead\": {}}}{}\n",
                o.protection.label(),
                json_f64(o.energy_overhead),
                json_f64(o.area_overhead),
                comma(i, self.overheads.len()),
            );
        }
        out += "  ],\n";
        out += "  \"degradation\": [\n";
        for (i, d) in self.degradation.iter().enumerate() {
            out += &format!(
                "    {{\"network\": \"{}\", \"protection\": \"{}\", \"rate\": {}, \
                 \"regions\": {}, \"ok\": {}, \"degraded\": {}, \"dropped\": {}, \
                 \"coverage\": {}, \"dropped_rows\": {}, \"corrupted_rows\": {}, \
                 \"cycles\": {}}}{}\n",
                d.network,
                d.protection.label(),
                json_f64(d.rate),
                d.regions,
                d.ok,
                d.degraded,
                d.dropped,
                json_f64(d.coverage()),
                d.dropped_rows,
                d.corrupted_rows,
                d.cycles,
                comma(i, self.degradation.len()),
            );
        }
        out += "  ],\n";
        out += &format!(
            "  \"sdc_under_secded\": {},\n  \"zero_rate_all_clean\": {},\n  \
             \"all_paths_agree\": {}\n}}\n",
            self.sdc_under_secded(),
            self.zero_rate_all_clean(),
            self.all_paths_agree(),
        );
        out
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fault campaign (rate x protection, SRAM sites only; replay speedup vs live decode)\n\
             network      protection  rate      clean  sdc  detected  corrected  silent  speedup  agree\n",
        );
        for c in &self.cells {
            out += &format!(
                "{:<12} {:<11} {:<9.0e} {:>5} {:>4} {:>9} {:>10} {:>7} {:>7.2}x  {}\n",
                c.network,
                c.protection.label(),
                c.rate,
                c.clean,
                c.sdc,
                c.detected,
                c.corrected_events,
                c.silent_events,
                c.replay_speedup(),
                if c.paths_agree { "yes" } else { "NO" },
            );
        }
        out += "\nProtection overheads (vs. unprotected)\n";
        for o in &self.overheads {
            out += &format!(
                "{:<11} energy x{:.3}  area x{:.3}\n",
                o.protection.label(),
                o.energy_overhead,
                o.area_overhead
            );
        }
        out += "\nGraceful degradation (faulty sensor + faulty SRAM/PEs)\n";
        for d in &self.degradation {
            out += &format!(
                "{:<12} {:<11} rate {:<9.0e} regions {:>3}: {} ok, {} degraded, {} dropped \
                 (coverage {:.2}), {} rows dropped, {} corrupted\n",
                d.network,
                d.protection.label(),
                d.rate,
                d.regions,
                d.ok,
                d.degraded,
                d.dropped,
                d.coverage(),
                d.dropped_rows,
                d.corrupted_rows,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_meets_the_protection_guarantees() {
        let r = smoke();
        // 1 network x 3 protections x 2 rates.
        assert_eq!(r.cells.len(), 6);
        assert_eq!(r.sdc_under_secded(), 0);
        assert!(r.zero_rate_all_clean());
        assert!(r.all_paths_agree());
        for c in &r.cells {
            assert!(c.replay_wall_s > 0.0 && c.live_wall_s > 0.0, "{c:?}");
        }
        // The nonzero-rate unprotected cell must show silent corruption.
        let none = r
            .cells
            .iter()
            .find(|c| c.protection == SramProtection::None && c.rate > 0.0)
            .unwrap();
        assert!(none.sdc > 0, "{none:?}");
        assert!(none.divergence > 0.0);
        assert_eq!(r.degradation.len(), 3);
        for d in &r.degradation {
            assert_eq!(d.ok + d.degraded + d.dropped, d.regions);
        }
    }

    /// Masks the three wall-clock columns — the only nondeterministic
    /// bytes in the document (the cell JSON is one line per cell, so a
    /// prefix/suffix splice around the timing keys is exact).
    fn strip_timings(json: &str) -> String {
        json.lines()
            .map(
                |line| match (line.find("\"replay_wall_s\""), line.find("\"paths_agree\"")) {
                    (Some(a), Some(b)) => format!("{}{}", &line[..a], &line[b..]),
                    _ => line.to_string(),
                },
            )
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn smoke_sweep_is_byte_reproducible_modulo_wall_clock() {
        let (a, b) = (smoke().to_json(), smoke().to_json());
        assert_eq!(strip_timings(&a), strip_timings(&b));
        // The splice really removed the timing keys and nothing else.
        assert!(!strip_timings(&a).contains("replay_wall_s"));
        assert!(strip_timings(&a).contains("\"paths_agree\": true"));
        assert!(strip_timings(&a).contains("\"divergence\""));
    }

    #[test]
    fn overheads_are_ordered_none_parity_secded() {
        let r = smoke();
        let by = |p: SramProtection| {
            r.overheads
                .iter()
                .find(|o| o.protection == p)
                .unwrap()
                .clone()
        };
        let (n, p, s) = (
            by(SramProtection::None),
            by(SramProtection::Parity),
            by(SramProtection::Secded),
        );
        assert_eq!(n.energy_overhead, 1.0);
        assert_eq!(n.area_overhead, 1.0);
        assert!(p.energy_overhead > 1.0 && p.energy_overhead < s.energy_overhead);
        assert!(p.area_overhead > 1.0 && p.area_overhead < s.area_overhead);
    }
}
