//! Experiment runners regenerating every table and figure of the
//! ShiDianNao evaluation (§10).
//!
//! Each function produces the structured rows of one paper artifact; the
//! `harness` binary prints them, the Criterion benches time them, and the
//! repository-level integration tests assert the paper's qualitative
//! claims against them. The experiment-to-module index lives in DESIGN.md;
//! measured-vs-paper numbers are recorded in EXPERIMENTS.md.

pub mod alloc;
pub mod cascade;
pub mod cluster;
pub mod experiments;
pub mod faults;
pub mod json;
pub mod perf;
pub mod report;
pub mod serve;
pub mod tune;
pub mod video;

/// Every binary, bench, and test linking this crate counts heap
/// allocations, so `harness bench` can certify the zero-allocation
/// steady-state datapath (see [`alloc`]).
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

pub use cascade::{run_cascade, CascadeBenchReport};
pub use experiments::{
    compute_paper_runs, design_space_sweep, fig18_speedups, fig19_energy, fig7_bandwidth,
    framerate_report, paper_runs, reuse_report, table1_storage, table4_characteristics,
    DesignPoint, Fig18Row, Fig19Row, Fig7Row, FramerateReport, PaperRun, ReuseReport, Table1Row,
    Table4Report,
};
pub use faults::{DegradationRow, FaultCell, FaultReport, ProtectionOverhead};
pub use perf::{ExperimentTiming, PerfReport, ThroughputRow};
pub use serve::{serve_report, ServeBenchReport};
pub use tune::{
    run_tune, tuned_shard_specs, tuned_shard_specs_for, TenantPick, TunePoint, TuneReport,
};
pub use video::{run_video, VideoBenchReport};

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
