//! The fault-tolerant cluster benchmark: the same mixed-traffic tenant
//! mix as the serving benchmark (interactive LeNet-5, faulty streaming
//! Gabor, batchy MPCNN) driven through a heterogeneous `Cluster` twice —
//! once healthy, once under a seeded chaos plan of shard crashes,
//! slow-shard episodes, and SRAM-fault bursts — reported as
//! `BENCH_cluster.json`.
//!
//! Every number is a pure function of the scenario constants (the
//! virtual clock never reads the wall clock), so the JSON is
//! byte-identical across invocations, machines, and physical thread
//! counts. The report carries its own certificates:
//!
//! * **thread invariance** — both scenarios are re-run on 3 OS threads
//!   and the [`ClusterReport`]s must compare equal,
//! * **shard-order invariance** — a third run permutes the dispatch
//!   scan order over shards (`shard_salt`) and must also compare equal,
//! * **direct-inference bit-identity** — every retained cluster sample
//!   is replayed through a plain `Session::infer` on the *serving
//!   shard's* accelerator model under the same salted fault plan
//!   (including SRAM-burst environments and failover attempt bases) and
//!   must reproduce the served output hash,
//! * **calibration** — every paper-grid (8×8) shard's clean cycles must
//!   match the frozen `SEED_CYCLES_PER_INFERENCE` table,
//! * **zero lost requests** — every tenant's six-class ledger (ok,
//!   degraded, dropped-faulty, dropped-deadline, rejected,
//!   budget-exhausted) must balance against `issued` in both scenarios:
//!   no request lost or double-counted under any injected failure,
//! * **chaos coverage** — the chaos run must demonstrably exercise the
//!   crash, slow-shard, and drain paths (their counters must be
//!   nonzero), so the fault-tolerance machinery is never silently idle,
//! * **frozen smoke ledger** — in smoke mode the per-tenant outcome
//!   counts and end cycles of both scenarios are frozen so CI catches
//!   any routing, health, failover, or accounting drift,
//! * **tuned fleet** — a third, healthy scenario serves the same
//!   tenants on the design-space autotuner's per-tenant minimum-EDAP
//!   shard picks ([`crate::tune::tuned_shard_specs`]), certifying that
//!   tuner-chosen heterogeneous configurations run end-to-end with
//!   balanced ledgers and bit-identical sampled outputs.

use crate::json::{comma, json_f64, json_str};
use crate::perf::SEED_CYCLES_PER_INFERENCE;
use shidiannao_cnn::zoo;
use shidiannao_core::{Accelerator, AcceleratorConfig};
use shidiannao_faults::{FaultConfig, FaultPlan, ShardFaultConfig, SramProtection};
use shidiannao_serve::{
    hash_output, request_salt, Cluster, ClusterConfig, ClusterReport, HealthConfig, InputSource,
    ServeError, ShardSpec, SramProtection as Protection, TenantSpec, Traffic,
};

/// Base seed for the cluster scenario's inputs, word-level fault
/// patterns, and the shard-level chaos plan.
pub const CLUSTER_SEED: u64 = 0xC1A5;

/// Network build seed — the same one the perf harness uses, so the
/// calibrated clean cycles on 8×8 shards cross-check against its frozen
/// table.
const BUILD_SEED: u64 = crate::experiments::SEED;

/// One frozen smoke ledger row: `(name, issued, ok, degraded,
/// dropped_faulty, dropped_deadline, rejected, budget_exhausted)`.
pub type ClusterLedgerRow = (&'static str, u64, u64, u64, u64, u64, u64, u64);

/// Frozen per-tenant smoke outcomes for the *healthy* scenario. The
/// sixth class (`budget_exhausted`) must stay 0 — nothing fails over
/// when no shard ever fails.
pub const EXPECTED_SMOKE_HEALTHY: &[ClusterLedgerRow] = &[
    ("lenet5-interactive", 12, 12, 0, 0, 0, 0, 0),
    ("gabor-stream", 40, 32, 6, 2, 0, 0, 0),
    ("mpcnn-batch", 3, 3, 0, 0, 0, 0, 0),
];

/// Frozen per-tenant smoke outcomes for the *chaos* scenario. Any drift
/// means the routing, health detection, drain/failover, or accounting
/// machinery changed behaviour and must be re-frozen deliberately. Note
/// the mpcnn tenant losing requests to the retry budget and the
/// interactive tenant completing some callers only after failover
/// (`degraded`) — the chaos plan visibly bites.
pub const EXPECTED_SMOKE_CHAOS: &[ClusterLedgerRow] = &[
    ("lenet5-interactive", 12, 9, 3, 0, 0, 0, 0),
    ("gabor-stream", 40, 32, 7, 1, 0, 0, 0),
    ("mpcnn-batch", 3, 0, 1, 0, 0, 0, 2),
];

/// Virtual cycle the healthy smoke scenario must end at (frozen).
pub const EXPECTED_SMOKE_HEALTHY_END_CYCLES: u64 = 236_097;

/// Virtual cycle the chaos smoke scenario must end at (frozen).
pub const EXPECTED_SMOKE_CHAOS_END_CYCLES: u64 = 247_540;

/// The shard fleet: two paper-grid shards plus a narrow 4×4 "edge"
/// shard (heterogeneous calibration is part of what the benchmark
/// certifies); the full run adds a second edge shard so chaos has more
/// fleet to chew through.
fn shard_specs(smoke: bool) -> Vec<ShardSpec> {
    let mut shards = vec![
        ShardSpec::new("pe8x8-a"),
        ShardSpec::new("pe8x8-b"),
        ShardSpec::new("pe4x4-edge").accel(AcceleratorConfig::with_pe_grid(4, 4)),
    ];
    if !smoke {
        shards.push(ShardSpec::new("pe4x4-spare").accel(AcceleratorConfig::with_pe_grid(4, 4)));
    }
    shards
}

/// The seeded chaos plan: epochs short enough that a smoke-length run
/// crosses several, rates tuned so crash, slow, and SRAM-burst episodes
/// all fire within the scenario horizon.
fn chaos_faults() -> ShardFaultConfig {
    ShardFaultConfig {
        seed: CLUSTER_SEED,
        epoch_cycles: 8_000,
        crash_rate: 0.12,
        slow_rate: 0.2,
        sram_burst_rate: 0.2,
        min_duration: 4_000,
        max_duration: 16_000,
        burst_flip_rate: 1e-4,
        burst_protection: SramProtection::Parity,
    }
}

/// Detection and recovery tunables, scaled to the chaos plan's epochs:
/// heartbeats four times per epoch, drains bounded just over one epoch,
/// respawns inside two.
fn health_config() -> HealthConfig {
    HealthConfig {
        heartbeat_cycles: 2_000,
        miss_threshold: 2,
        drain_timeout: 10_000,
        respawn_cycles: 12_000,
        crash_timeout: 3_000,
        backoff_base: 500,
        retry_budget: 4,
    }
}

/// Builds the three-tenant mixed-traffic cluster scenario. `chaos`
/// selects the seeded shard-failure plan; a healthy cluster uses the
/// zero plan (and therefore reduces to plain multi-shard serving).
///
/// # Errors
///
/// Returns [`ServeError`] if a zoo network fails to build (impossible
/// for the frozen zoo) or the specs fail validation.
pub fn cluster_scenario(
    smoke: bool,
    chaos: bool,
    threads: usize,
    shard_salt: u64,
) -> Result<Cluster, ServeError> {
    scenario_with_shards(smoke, chaos, threads, shard_salt, shard_specs(smoke))
}

/// The tuner-chosen variant: the same tenant mix on the heterogeneous
/// shard fleet the design-space autotuner picked
/// ([`crate::tune::tuned_shard_specs`]), under the healthy (zero
/// shard-fault) plan. This closes the loop from `harness tune` back
/// into the cluster: the per-tenant minimum-EDAP frontier points become
/// the serving fleet.
///
/// # Errors
///
/// Returns [`ServeError`] if a zoo network fails to build or the specs
/// fail validation.
pub fn tuned_cluster_scenario(
    smoke: bool,
    threads: usize,
    shard_salt: u64,
) -> Result<Cluster, ServeError> {
    let shards = crate::tune::tuned_shard_specs()
        .into_iter()
        .map(|(name, cfg)| ShardSpec::new(name).accel(cfg))
        .collect();
    scenario_with_shards(smoke, false, threads, shard_salt, shards)
}

fn scenario_with_shards(
    smoke: bool,
    chaos: bool,
    threads: usize,
    shard_salt: u64,
    shards: Vec<ShardSpec>,
) -> Result<Cluster, ServeError> {
    let build = |b: shidiannao_cnn::NetworkBuilder| {
        b.build(BUILD_SEED).map_err(|e| ServeError::Spec {
            tenant: "zoo".to_string(),
            reason: e.to_string(),
        })
    };
    // The interactive tenant: closed-loop callers, latency-sensitive,
    // deadline generous enough to survive one failover round.
    let lenet = TenantSpec::new("lenet5-interactive", build(zoo::lenet5())?)
        .traffic(Traffic::Closed {
            clients: 3,
            think: 25_000,
            count: if smoke { 12 } else { 48 },
        })
        .source(InputSource::Random { seed: CLUSTER_SEED })
        .weight(3)
        .queue_capacity(4)
        .deadline_cycles(80_000);
    // The streaming camera tenant under word-level SRAM faults of its
    // own, on top of whatever burst episodes the chaos plan injects.
    let gabor_faults = FaultConfig {
        seed: CLUSTER_SEED ^ 0xCA,
        nb_flip_rate: 1e-4,
        sb_flip_rate: 1e-4,
        ib_flip_rate: 1e-4,
        pe_stuck_rate: 0.0,
        scanline_rate: 0.02,
        double_flip_share: 0.1,
        protection: Protection::Parity,
    };
    let gabor = TenantSpec::new("gabor-stream", build(zoo::gabor())?)
        .traffic(Traffic::Open {
            period: 1_800,
            jitter: 600,
            count: if smoke { 40 } else { 200 },
        })
        .source(InputSource::Stream {
            seed: CLUSTER_SEED ^ 0xCA,
            frame: (40, 40),
            stride: (20, 20),
        })
        .faults(gabor_faults)
        .weight(1)
        .queue_capacity(3)
        .deadline_cycles(30_000)
        .max_retries(2);
    // The batch tenant: rare, heavy requests with a loose deadline that
    // can absorb several failover rounds.
    let mpcnn = TenantSpec::new("mpcnn-batch", build(zoo::mpcnn())?)
        .traffic(Traffic::Open {
            period: 60_000,
            jitter: 8_000,
            count: if smoke { 3 } else { 12 },
        })
        .source(InputSource::Random {
            seed: CLUSTER_SEED ^ 0xBA,
        })
        .weight(2)
        .queue_capacity(2)
        .deadline_cycles(250_000);
    let config = ClusterConfig {
        shards,
        physical_threads: threads,
        shard_salt,
        samples_per_tenant: 6,
        max_batch: 6,
        shard_faults: if chaos {
            chaos_faults()
        } else {
            ShardFaultConfig::zero()
        },
        health: health_config(),
        ..ClusterConfig::default()
    };
    Cluster::new(config, vec![lenet, gabor, mpcnn])
}

/// The cluster benchmark's full result: both canonical reports plus
/// their determinism and bit-identity certificates.
#[derive(Clone, Debug)]
pub struct ClusterBenchReport {
    /// Whether this was the smoke-sized scenario.
    pub smoke: bool,
    /// The healthy (zero shard-fault) run, single-threaded.
    pub healthy: ClusterReport,
    /// The chaos run, single-threaded.
    pub chaos: ClusterReport,
    /// The healthy run on the autotuner's heterogeneous shard picks,
    /// single-threaded.
    pub tuned: ClusterReport,
    /// Both scenarios on 3 OS threads produced equal reports.
    pub thread_invariant: bool,
    /// Both scenarios with a salted shard scan order produced equal
    /// reports.
    pub shard_order_invariant: bool,
    /// Every retained cluster sample replayed bit-identically through a
    /// direct `Session::infer` on the serving shard's accelerator.
    pub outputs_match_direct: bool,
    /// How many samples the replay certificate covered (both runs).
    pub verified_samples: usize,
}

/// Runs both scenarios three ways each (serial, threaded, permuted
/// shard order), replays the sample certificates, and assembles the
/// benchmark report.
///
/// # Errors
///
/// Returns [`ServeError`] when a scenario itself fails to run.
pub fn cluster_report(smoke: bool) -> Result<ClusterBenchReport, ServeError> {
    let mut thread_invariant = true;
    let mut shard_order_invariant = true;
    let mut verified_samples = 0;
    let mut outputs_match_direct = true;
    let mut certify =
        |build: &dyn Fn(usize, u64) -> Result<Cluster, ServeError>| -> Result<ClusterReport, ServeError> {
            let serial = build(1, 0)?.run()?;
            let threaded = build(3, 0)?.run()?;
            let permuted = build(1, 0x5EED_CAFE)?.run()?;
            thread_invariant &= serial == threaded;
            shard_order_invariant &= serial == permuted;
            let (checked, matched) = verify_samples(&build(1, 0)?, &serial)?;
            verified_samples += checked;
            outputs_match_direct &= matched;
            Ok(serial)
        };
    let healthy = certify(&|threads, salt| cluster_scenario(smoke, false, threads, salt))?;
    let chaos = certify(&|threads, salt| cluster_scenario(smoke, true, threads, salt))?;
    let tuned = certify(&|threads, salt| tuned_cluster_scenario(smoke, threads, salt))?;
    Ok(ClusterBenchReport {
        smoke,
        healthy,
        chaos,
        tuned,
        thread_invariant,
        shard_order_invariant,
        outputs_match_direct,
        verified_samples,
    })
}

/// Replays every retained cluster sample through a direct session on
/// the *serving shard's* accelerator model — heterogeneous shards
/// calibrate differently, so replaying on the wrong grid would diverge —
/// under the sample's recorded fault environment (the tenant's own, or
/// the burst episode's) and salted attempt. Returns
/// `(samples_checked, all_matched)`.
fn verify_samples(cluster: &Cluster, report: &ClusterReport) -> Result<(usize, bool), ServeError> {
    let mut checked = 0;
    let mut all_match = true;
    for (tenant, (spec, tr)) in cluster.tenants().iter().zip(&report.tenants).enumerate() {
        // One prepared network per shard that actually served a sample.
        let mut prepared: Vec<Option<_>> =
            (0..cluster.config().shards.len()).map(|_| None).collect();
        for sample in &tr.samples {
            if prepared[sample.shard].is_none() {
                let accel = Accelerator::new(cluster.config().shards[sample.shard].accel.clone());
                let prep = accel
                    .prepare(&spec.network)
                    .map_err(|error| ServeError::Prepare {
                        tenant: spec.name.clone(),
                        error,
                    })?;
                prepared[sample.shard] = Some(prep);
            }
            let Some(prep) = prepared[sample.shard].as_ref() else {
                continue;
            };
            let plan = FaultPlan::new(sample.faults).with_salt(request_salt(
                tenant,
                sample.seq,
                sample.attempt,
            ));
            let mut session = prep.session_with_faults(plan);
            let input = spec
                .build_input(sample.seq)
                .map_err(|error| ServeError::Input {
                    tenant: spec.name.clone(),
                    error,
                })?;
            match session.infer(&input) {
                Ok(inference) => {
                    checked += 1;
                    if hash_output(inference.output()) != sample.output_hash {
                        all_match = false;
                    }
                }
                // The cluster only samples *successful* attempts, so a
                // fault abort on replay is itself a divergence.
                Err(_) => all_match = false,
            }
        }
    }
    Ok((checked, all_match))
}

/// Serializes one scenario's [`ClusterReport`] as an indented JSON
/// object body.
fn json_cluster(r: &ClusterReport) -> String {
    let mut out = String::from("{\n");
    out += &format!("    \"end_cycles\": {},\n", r.end_cycles);
    out += &format!(
        "    \"elapsed_seconds\": {},\n",
        json_f64(r.elapsed_seconds)
    );
    out += &format!(
        "    \"accounting_consistent\": {},\n",
        r.accounting_consistent()
    );
    out += &format!("    \"crashes_detected\": {},\n", r.crashes_detected);
    out += &format!("    \"respawns\": {},\n", r.respawns);
    out += &format!("    \"drains\": {},\n", r.drains);
    out += &format!("    \"drain_timeouts\": {},\n", r.drain_timeouts);
    out += &format!("    \"shard_unavailable\": {},\n", r.shard_unavailable);
    out += &format!("    \"slow_dispatches\": {},\n", r.slow_dispatches);
    out += &format!("    \"burst_dispatches\": {},\n", r.burst_dispatches);
    out += "    \"shards\": [\n";
    for (i, s) in r.shards.iter().enumerate() {
        out += &format!(
            "      {{\"name\": {}, \"pe_grid\": {}, \"virtual_workers\": {}, \
             \"completed\": {}, \"service_cycles\": {}, \"crashes\": {}, \
             \"drains\": {}, \"drain_timeouts\": {}, \"respawns\": {}, \
             \"final_state\": {}}}{}\n",
            json_str(&s.name),
            json_str(&format!("{}x{}", s.pe_cols, s.pe_rows)),
            s.virtual_workers,
            s.completed,
            s.service_cycles,
            s.crashes,
            s.drains,
            s.drain_timeouts,
            s.respawns,
            json_str(s.final_state.label()),
            comma(i, r.shards.len()),
        );
    }
    out += "    ],\n";
    out += "    \"tenants\": [\n";
    for (i, t) in r.tenants.iter().enumerate() {
        let s = &t.stats;
        let lat = t.latency();
        out += &format!(
            "      {{\"name\": {}, \"weight\": {}, \"issued\": {}, \"ok\": {}, \
             \"degraded\": {}, \"dropped_faulty\": {}, \"dropped_deadline\": {}, \
             \"rejected\": {}, \"budget_exhausted\": {}, \"rerouted\": {}, \
             \"migrated\": {}, \"lost_inflight\": {}, \"failovers\": {}, \
             \"deadline_misses\": {}, \"retries\": {}, \"batched\": {}, \
             \"service_cycles\": {}, \"throughput_rps\": {}, \
             \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \
             \"latency_mean\": {}, \"latency_max\": {}, \"queue_depth_max\": {}, \
             \"queue_depth_mean\": {}, \"faults_detected\": {}, \
             \"faults_corrected\": {}, \"faults_silent\": {}, \
             \"output_hash\": {}}}{}\n",
            json_str(&t.name),
            t.weight,
            s.issued,
            s.ok,
            s.degraded,
            s.dropped_faulty,
            s.dropped_deadline,
            s.rejected,
            t.budget_exhausted,
            t.rerouted,
            t.migrated,
            t.lost_inflight,
            t.failovers,
            s.deadline_misses,
            s.retries,
            s.batched,
            s.service_cycles,
            json_f64(t.throughput_rps),
            lat.p50,
            lat.p95,
            lat.p99,
            json_f64(lat.mean),
            lat.max,
            s.depth_max,
            json_f64(s.depth_mean()),
            s.fault.detected,
            s.fault.corrected,
            s.fault.silent,
            json_str(&format!("{:#018x}", s.output_hash)),
            comma(i, r.tenants.len()),
        );
    }
    out += "    ],\n";
    out += "    \"events\": [\n";
    for (i, e) in r.events.iter().enumerate() {
        out += &format!("      {}{}\n", json_str(e), comma(i, r.events.len()));
    }
    out += "    ]\n  }";
    out
}

impl ClusterBenchReport {
    /// The `BENCH_cluster.json` document — built exclusively from
    /// virtual-clock quantities, so bytes are stable across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!(
            "  \"scenario\": {},\n",
            json_str(if self.smoke { "smoke" } else { "full" })
        );
        out += &format!("  \"thread_invariant\": {},\n", self.thread_invariant);
        out += &format!(
            "  \"shard_order_invariant\": {},\n",
            self.shard_order_invariant
        );
        out += &format!(
            "  \"outputs_match_direct\": {},\n",
            self.outputs_match_direct
        );
        out += &format!("  \"verified_samples\": {},\n", self.verified_samples);
        out += &format!("  \"healthy\": {},\n", json_cluster(&self.healthy));
        out += &format!("  \"chaos\": {},\n", json_cluster(&self.chaos));
        out += &format!("  \"tuned\": {}\n", json_cluster(&self.tuned));
        out += "}\n";
        out
    }

    /// Human-readable summary tables for both scenarios.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fault-tolerant cluster ({}): {} shards, healthy {} cycles, chaos {} cycles\n",
            if self.smoke { "smoke" } else { "full" },
            self.chaos.shards.len(),
            self.healthy.end_cycles,
            self.chaos.end_cycles,
        );
        for (title, r) in [
            ("healthy", &self.healthy),
            ("chaos", &self.chaos),
            ("tuned", &self.tuned),
        ] {
            out += &format!(
                "[{title}] crashes {} drains {} (timeouts {}) respawns {} \
                 slow-dispatch {} burst-dispatch {} unavailable {}\n",
                r.crashes_detected,
                r.drains,
                r.drain_timeouts,
                r.respawns,
                r.slow_dispatches,
                r.burst_dispatches,
                r.shard_unavailable,
            );
            out += "tenant               issued  ok  degr  dropF  dropD  rej  budg  reroute  migr  lost  fail    p50     p99\n";
            for t in &r.tenants {
                let s = &t.stats;
                let lat = t.latency();
                out += &format!(
                    "{:<20} {:>6} {:>3} {:>5} {:>6} {:>6} {:>4} {:>5} {:>8} {:>5} {:>5} {:>5} {:>6} {:>7}\n",
                    t.name,
                    s.issued,
                    s.ok,
                    s.degraded,
                    s.dropped_faulty,
                    s.dropped_deadline,
                    s.rejected,
                    t.budget_exhausted,
                    t.rerouted,
                    t.migrated,
                    t.lost_inflight,
                    t.failovers,
                    lat.p50,
                    lat.p99,
                );
            }
            for shard in &r.shards {
                out += &format!(
                    "  shard {:<14} {}x{}  completed {:>4}  crashes {}  drains {}  respawns {}  final {}\n",
                    shard.name,
                    shard.pe_cols,
                    shard.pe_rows,
                    shard.completed,
                    shard.crashes,
                    shard.drains,
                    shard.respawns,
                    shard.final_state.label(),
                );
            }
        }
        out += &format!(
            "certificates: thread-invariant {}, shard-order-invariant {}, \
             outputs-match-direct {} ({} samples), ledgers balance {}/{}/{}\n",
            self.thread_invariant,
            self.shard_order_invariant,
            self.outputs_match_direct,
            self.verified_samples,
            self.healthy.accounting_consistent(),
            self.chaos.accounting_consistent(),
            self.tuned.accounting_consistent(),
        );
        out
    }

    /// The CI gate: empty when every certificate holds (and, in smoke
    /// mode, when the frozen ledgers match exactly).
    pub fn gate_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if !self.thread_invariant {
            errors.push("report differs across physical thread counts".to_string());
        }
        if !self.shard_order_invariant {
            errors.push("report differs across shard scan orders".to_string());
        }
        if !self.outputs_match_direct {
            errors.push("served outputs diverge from direct Session::infer".to_string());
        }
        if self.verified_samples == 0 {
            errors.push("no samples were available for bit-identity verification".to_string());
        }
        for (title, r) in [
            ("healthy", &self.healthy),
            ("chaos", &self.chaos),
            ("tuned", &self.tuned),
        ] {
            if !r.accounting_consistent() {
                errors.push(format!(
                    "{title}: a tenant's six-class ledger does not balance (a request \
                     was lost or double-counted)"
                ));
            }
            // Calibration: every 8×8 shard must reproduce the frozen
            // clean cycles from the perf harness's seed table.
            for shard in &r.shards {
                if (shard.pe_cols, shard.pe_rows) != (8, 8) {
                    continue;
                }
                for (t, tenant) in r.tenants.iter().enumerate() {
                    let table_name = match tenant.name.as_str() {
                        "lenet5-interactive" => "LeNet-5",
                        "gabor-stream" => "Gabor",
                        "mpcnn-batch" => "MPCNN",
                        _ => continue,
                    };
                    if let Some(&(_, expect)) = SEED_CYCLES_PER_INFERENCE
                        .iter()
                        .find(|&&(n, _)| n == table_name)
                    {
                        if shard.clean_cycles.get(t) != Some(&expect) {
                            errors.push(format!(
                                "{title}: shard {} calibrated {} at {:?} clean cycles, frozen {}",
                                shard.name,
                                tenant.name,
                                shard.clean_cycles.get(t),
                                expect
                            ));
                        }
                    }
                }
            }
        }
        // The healthy runs (paper fleet and tuned fleet) must never
        // touch the failure machinery.
        for (title, h) in [("healthy", &self.healthy), ("tuned", &self.tuned)] {
            if h.crashes_detected + h.drains + h.respawns + h.slow_dispatches + h.burst_dispatches
                != 0
            {
                errors.push(format!("{title} run reported failure-path activity"));
            }
            if h.tenants
                .iter()
                .any(|t| t.budget_exhausted + t.migrated + t.lost_inflight + t.failovers != 0)
            {
                errors.push(format!("{title} run reported failover activity"));
            }
        }
        // The tuned fleet must really be the autotuner's heterogeneous
        // pick set: nonempty, and spanning more than one PE grid.
        if self.tuned.shards.is_empty() {
            errors.push("tuned run served on an empty shard fleet".to_string());
        } else {
            let mut grids: Vec<(usize, usize)> = self
                .tuned
                .shards
                .iter()
                .map(|s| (s.pe_cols, s.pe_rows))
                .collect();
            grids.sort_unstable();
            grids.dedup();
            if grids.len() < 2 {
                errors.push("tuned shard fleet collapsed to a single PE grid".to_string());
            }
        }
        // The chaos run must demonstrably exercise every failure path.
        let c = &self.chaos;
        if c.crashes_detected == 0 {
            errors.push("chaos plan never crashed a shard".to_string());
        }
        if c.drains == 0 {
            errors.push("chaos plan never drained a shard".to_string());
        }
        if c.slow_dispatches == 0 {
            errors.push("chaos plan never dispatched under a slow episode".to_string());
        }
        if c.burst_dispatches == 0 {
            errors.push("chaos plan never dispatched under an SRAM burst".to_string());
        }
        if c.tenants
            .iter()
            .map(|t| t.migrated + t.lost_inflight + t.failovers)
            .sum::<u64>()
            == 0
        {
            errors.push("chaos never displaced any request (no migration/failover)".to_string());
        }
        if self.smoke {
            for (title, r, end, rows) in [
                (
                    "healthy",
                    &self.healthy,
                    EXPECTED_SMOKE_HEALTHY_END_CYCLES,
                    EXPECTED_SMOKE_HEALTHY,
                ),
                (
                    "chaos",
                    c,
                    EXPECTED_SMOKE_CHAOS_END_CYCLES,
                    EXPECTED_SMOKE_CHAOS,
                ),
            ] {
                if r.end_cycles != end {
                    errors.push(format!(
                        "{title}: smoke end_cycles {} != frozen {end}",
                        r.end_cycles
                    ));
                }
                for &(
                    name,
                    issued,
                    ok,
                    degraded,
                    dropped_faulty,
                    dropped_deadline,
                    rejected,
                    budget,
                ) in rows
                {
                    let Some(t) = r.tenants.iter().find(|t| t.name == name) else {
                        errors.push(format!("{title}: smoke tenant {name} missing from report"));
                        continue;
                    };
                    let s = &t.stats;
                    let got = (
                        s.issued,
                        s.ok,
                        s.degraded,
                        s.dropped_faulty,
                        s.dropped_deadline,
                        s.rejected,
                        t.budget_exhausted,
                    );
                    let want = (
                        issued,
                        ok,
                        degraded,
                        dropped_faulty,
                        dropped_deadline,
                        rejected,
                        budget,
                    );
                    if got != want {
                        errors.push(format!(
                            "{title}: {name}: ledger drift: got (issued, ok, degraded, droppedF, \
                             droppedD, rejected, budget_exhausted) = {got:?}, frozen {want:?}"
                        ));
                    }
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_passes_its_own_gate() {
        let bench = cluster_report(true).expect("scenario runs");
        let errors = bench.gate_errors();
        assert!(errors.is_empty(), "gate failed: {errors:?}");
        // The gate already proves chaos coverage; spot-check the report
        // surfaces the evidence a reader would look for.
        assert!(bench.verified_samples > 0);
        assert!(!bench.chaos.events.is_empty(), "chaos produced no events");
    }

    #[test]
    fn smoke_json_is_byte_deterministic() {
        let a = cluster_report(true).expect("run a").to_json();
        let b = cluster_report(true).expect("run b").to_json();
        assert_eq!(a, b);
        // Well-formedness spot checks.
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("}\n"));
        for key in [
            "\"scenario\"",
            "\"thread_invariant\"",
            "\"shard_order_invariant\"",
            "\"healthy\"",
            "\"chaos\"",
            "\"budget_exhausted\"",
            "\"queue_depth_max\"",
            "\"events\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }
}
