//! The quantized early-exit cascade experiment behind
//! `harness cascade [--smoke]`.
//!
//! Runs the two-stage sensor-side cascade from `shidiannao-quant` — a
//! 1-bit binarized front-end scoring every region tile, escalating only
//! above-threshold regions to the full-precision LeNet-5 — and writes
//! `BENCH_cascade.json`: escalation rate, cycles/energy saved against
//! the all-full-precision baseline, the accuracy delta vs the oracle
//! that runs the full network everywhere, bit-identity certificates for
//! both stages, and a per-network accuracy study of the w2/w1
//! quantization passes against the f64 golden model.
//!
//! Determinism contract matches the other harness artifacts: the report
//! is a pure function of [`CascadeConfig`], so the JSON document is
//! byte-identical across runs, machines, and rayon thread counts.
//! `run_cascade` proves it the same blunt way as the tuner — three
//! generations, one pinned to a single rayon worker, byte-compared.
//!
//! Gates (smoke, CI):
//!
//! * the binary front-end is ≥ 4× cheaper per inference (cycles) than
//!   the full-precision network,
//! * cascade end-to-end cycles **and** energy are strictly below the
//!   all-full-precision baseline,
//! * both stages replay bit-identically to the fixed-point golden
//!   reference and the XNOR kernels certify against the 16-bit kernels,
//! * the smoke escalation count is frozen (12 of 36 regions) so any
//!   drift in the synthetic scene, the quantizer, or the front-end
//!   topology is caught.

use shidiannao_cnn::zoo;
use shidiannao_core::WeightPrecision;
use shidiannao_quant::{
    accuracy_study, cascade_tenants, AccuracyRow, CascadeConfig, CascadeReport, QuantError,
};

use crate::json::{comma, json_f64, json_str};

/// Frozen smoke-mode escalation: 12 of the 36 regions clear the
/// front-end threshold. Regenerate deliberately if the scene, seed, or
/// front-end topology changes.
pub const EXPECTED_SMOKE_ESCALATED: usize = 12;
/// Frozen smoke-mode region count: 4 frames × 3×3 grid.
pub const EXPECTED_SMOKE_REGIONS: usize = 36;

/// Networks in the quantization accuracy study, with input counts kept
/// small enough for CI (the forward passes run on the golden model, not
/// the cached simulator).
const STUDY_NETS: [&str; 2] = ["Gabor", "SimpleConv"];
const STUDY_INPUTS: usize = 8;
const STUDY_SEED: u64 = 2015;

/// The cascade experiment report: the quant crate's cascade outcome
/// plus the accuracy-study rows and the serve-tenant projection.
#[derive(Clone, Debug, PartialEq)]
pub struct CascadeBenchReport {
    /// Scenario label (`smoke` / `full`).
    pub scenario: &'static str,
    /// The cascade outcome.
    pub report: CascadeReport,
    /// Per-network, per-precision accuracy of the quantization pass.
    pub study: Vec<AccuracyRow>,
    /// Names of the serve tenants the cascade projects to.
    pub tenant_names: Vec<String>,
}

/// Runs the cascade scenario plus the accuracy study.
pub fn evaluate(smoke: bool) -> Result<CascadeBenchReport, QuantError> {
    let cfg = if smoke {
        CascadeConfig::smoke()
    } else {
        CascadeConfig::full()
    };
    let (tenants, report) = cascade_tenants(&cfg)?;
    let mut study = Vec::new();
    for name in STUDY_NETS {
        let net = zoo::by_name(name)
            .ok_or_else(|| QuantError::Pack {
                reason: format!("unknown study network {name}"),
            })?
            .build(cfg.net_seed)?;
        for precision in [
            WeightPrecision::W16,
            WeightPrecision::W2,
            WeightPrecision::W1,
        ] {
            study.push(accuracy_study(&net, precision, STUDY_INPUTS, STUDY_SEED)?);
        }
    }
    Ok(CascadeBenchReport {
        scenario: if smoke { "smoke" } else { "full" },
        report,
        study,
        tenant_names: tenants.into_iter().map(|t| t.name).collect(),
    })
}

impl CascadeBenchReport {
    /// Deterministic JSON document (`BENCH_cascade.json`).
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut out = String::from("{\n");
        out += &format!("  \"scenario\": {},\n", json_str(self.scenario));
        out += &format!("  \"frames\": {},\n", r.config.frames);
        out += &format!("  \"regions\": {},\n", r.regions.len());
        out += &format!("  \"escalated\": {},\n", r.escalated);
        out += &format!("  \"escalation_rate\": {},\n", json_f64(r.escalation_rate));
        out += &format!("  \"front_cycles\": {},\n", r.front_cycles);
        out += &format!("  \"full_cycles\": {},\n", r.full_cycles);
        out += &format!("  \"front_energy_nj\": {},\n", json_f64(r.front_energy_nj));
        out += &format!("  \"full_energy_nj\": {},\n", json_f64(r.full_energy_nj));
        out += &format!("  \"cascade_cycles\": {},\n", r.cascade_cycles);
        out += &format!(
            "  \"cascade_energy_nj\": {},\n",
            json_f64(r.cascade_energy_nj)
        );
        out += &format!("  \"all_full_cycles\": {},\n", r.all_full_cycles);
        out += &format!(
            "  \"all_full_energy_nj\": {},\n",
            json_f64(r.all_full_energy_nj)
        );
        out += &format!("  \"cycles_saved\": {},\n", json_f64(r.cycles_saved()));
        out += &format!("  \"energy_saved\": {},\n", json_f64(r.energy_saved()));
        out += &format!(
            "  \"front_advantage\": {},\n",
            json_f64(r.front_advantage())
        );
        out += &format!("  \"missed_positives\": {},\n", r.missed_positives);
        out += &format!("  \"accuracy_delta\": {},\n", json_f64(r.accuracy_delta));
        out += &format!("  \"front_bit_identical\": {},\n", r.front_bit_identical);
        out += &format!("  \"full_bit_identical\": {},\n", r.full_bit_identical);
        out += &format!("  \"kernel_certified\": {},\n", r.kernel_certified);
        out += &format!("  \"front_sb_bytes\": {},\n", r.front_sb_bytes);
        out += &format!(
            "  \"front_sb_bytes_baseline\": {},\n",
            r.front_sb_bytes_baseline
        );
        out += &format!(
            "  \"tenants\": [{}],\n",
            self.tenant_names
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out += "  \"study\": [\n";
        for (i, row) in self.study.iter().enumerate() {
            out += &format!(
                "    {{\"net\": {}, \"precision\": {}, \"mean_abs_err\": {}, \
                 \"top1_match\": {}, \"sb_bytes\": {}, \"sb_bytes_baseline\": {}}}{}\n",
                json_str(&row.net),
                json_str(row.precision),
                json_f64(row.mean_abs_err),
                json_f64(row.top1_match),
                row.sb_bytes,
                row.sb_bytes_baseline,
                comma(i, self.study.len()),
            );
        }
        out += "  ],\n";
        out += "  \"region_outcomes\": [\n";
        for (i, reg) in self.report.regions.iter().enumerate() {
            out += &format!(
                "    {{\"frame\": {}, \"index\": {}, \"front_score_bits\": {}, \
                 \"escalated\": {}, \"oracle_positive\": {}}}{}\n",
                reg.frame,
                reg.index,
                reg.front_score.to_bits(),
                reg.escalated(),
                reg.oracle_positive,
                comma(i, self.report.regions.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable summary for harness stdout.
    pub fn render(&self) -> String {
        let r = &self.report;
        let mut out = format!(
            "two-stage cascade ({}): {} regions over {} frames\n",
            self.scenario,
            r.regions.len(),
            r.config.frames
        );
        out += &format!(
            "  front (w1, XNOR-certified): {:>6} cycles {:>9.1} nJ per inference\n",
            r.front_cycles, r.front_energy_nj
        );
        out += &format!(
            "  full  (LeNet-5, 16-bit):    {:>6} cycles {:>9.1} nJ per inference\n",
            r.full_cycles, r.full_energy_nj
        );
        out += &format!(
            "  escalated {}/{} ({:.1}%), front advantage {:.1}x\n",
            r.escalated,
            r.regions.len(),
            100.0 * r.escalation_rate,
            r.front_advantage()
        );
        out += &format!(
            "  cascade {} cycles {:.1} nJ vs all-full {} cycles {:.1} nJ\n",
            r.cascade_cycles, r.cascade_energy_nj, r.all_full_cycles, r.all_full_energy_nj
        );
        out += &format!(
            "  saved: {:.1}% cycles, {:.1}% energy; missed positives {}/{} \
             (accuracy delta {:.3})\n",
            100.0 * r.cycles_saved(),
            100.0 * r.energy_saved(),
            r.missed_positives,
            r.regions.len(),
            r.accuracy_delta
        );
        out += &format!(
            "  front SB: {} bytes packed vs {} bytes at 16 bits\n",
            r.front_sb_bytes, r.front_sb_bytes_baseline
        );
        out += "\nquantization accuracy vs f64 golden model:\n";
        out += "  network      precision  mean |err|  top-1 match  SB bytes\n";
        for row in &self.study {
            out += &format!(
                "  {:<12} {:<10} {:>9.4} {:>11.2} {:>9}\n",
                row.net, row.precision, row.mean_abs_err, row.top1_match, row.sb_bytes
            );
        }
        out
    }

    /// Gate violations under the harness's unified exit-code policy.
    pub fn gate_errors(&self) -> Vec<String> {
        let r = &self.report;
        let mut errors = Vec::new();
        if r.front_advantage() < 4.0 {
            errors.push(format!(
                "front-end advantage {:.2}x below the 4x floor ({} vs {} cycles)",
                r.front_advantage(),
                r.front_cycles,
                r.full_cycles
            ));
        }
        if r.cascade_cycles >= r.all_full_cycles {
            errors.push(format!(
                "cascade cycles {} not below all-full-precision {}",
                r.cascade_cycles, r.all_full_cycles
            ));
        }
        if r.cascade_energy_nj >= r.all_full_energy_nj {
            errors.push(format!(
                "cascade energy {:.1} nJ not below all-full-precision {:.1} nJ",
                r.cascade_energy_nj, r.all_full_energy_nj
            ));
        }
        if !r.front_bit_identical {
            errors.push("front stage diverged from the fixed-point golden reference".to_string());
        }
        if !r.full_bit_identical {
            errors.push("full stage diverged from the fixed-point golden reference".to_string());
        }
        if !r.kernel_certified {
            errors.push("XNOR kernels failed bit-identity certification".to_string());
        }
        if self.scenario == "smoke" {
            if r.regions.len() != EXPECTED_SMOKE_REGIONS {
                errors.push(format!(
                    "smoke region count {} != frozen {EXPECTED_SMOKE_REGIONS}",
                    r.regions.len()
                ));
            }
            if r.escalated != EXPECTED_SMOKE_ESCALATED {
                errors.push(format!(
                    "smoke escalation count {} != frozen {EXPECTED_SMOKE_ESCALATED}",
                    r.escalated
                ));
            }
        }
        for row in &self.study {
            // w16's only divergence from the f64 golden model is Q7.8
            // rounding; argmax can flip on near-ties, so the gate sits
            // on mean error. Measured: w16 ≤ 0.007, w1 ≤ 0.040.
            let cap = if row.precision == "w16" { 0.02 } else { 0.1 };
            if row.mean_abs_err >= cap {
                errors.push(format!(
                    "{} at {} drifted {:.4} mean |err| from the f64 golden model (cap {cap})",
                    row.net, row.precision, row.mean_abs_err
                ));
            }
        }
        errors
    }
}

/// Runs the cascade three times — once pinned to a single rayon worker,
/// twice with the full pool — byte-compares the three JSON documents,
/// writes `BENCH_cascade.json`, and returns `(stdout summary, gate
/// violations)` under the harness's unified exit-code policy.
pub fn run_cascade(smoke: bool) -> (String, Vec<String>) {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = evaluate(smoke).map(|r| r.to_json());
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let report = match evaluate(smoke) {
        Ok(r) => r,
        Err(e) => return (String::new(), vec![format!("cascade run failed: {e}")]),
    };
    let parallel = report.to_json();
    let third = evaluate(smoke).map(|r| r.to_json());

    let mut errors = report.gate_errors();
    match serial {
        Ok(s) if s != parallel => errors
            .push("BENCH_cascade.json differs between serial and parallel evaluation".to_string()),
        Err(e) => errors.push(format!("serial cascade run failed: {e}")),
        _ => {}
    }
    match third {
        Ok(t) if t != parallel => {
            errors.push("BENCH_cascade.json differs between two identical runs".to_string());
        }
        Err(e) => errors.push(format!("repeat cascade run failed: {e}")),
        _ => {}
    }
    let mut out = report.render();
    let path = "BENCH_cascade.json";
    match std::fs::write(path, &parallel) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cascade_passes_its_frozen_gate() {
        let report = evaluate(true).unwrap();
        let errors = report.gate_errors();
        assert!(errors.is_empty(), "gate failed: {errors:?}");
        assert_eq!(report.report.regions.len(), EXPECTED_SMOKE_REGIONS);
        assert_eq!(report.report.escalated, EXPECTED_SMOKE_ESCALATED);
        assert_eq!(
            report.tenant_names,
            vec!["cascade-front".to_string(), "cascade-escalate".to_string()]
        );
    }

    #[test]
    fn smoke_json_is_byte_deterministic() {
        let a = evaluate(true).unwrap().to_json();
        let b = evaluate(true).unwrap().to_json();
        assert_eq!(a, b);
        for key in [
            "\"scenario\"",
            "\"escalation_rate\"",
            "\"front_advantage\"",
            "\"cycles_saved\"",
            "\"kernel_certified\"",
            "\"study\"",
            "\"region_outcomes\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn study_covers_every_net_at_every_precision() {
        let report = evaluate(true).unwrap();
        assert_eq!(report.study.len(), STUDY_NETS.len() * 3);
        // Narrower weights can only shrink the packed footprint.
        for rows in report.study.chunks(3) {
            assert!(rows[0].sb_bytes >= rows[1].sb_bytes);
            assert!(rows[1].sb_bytes > rows[2].sb_bytes);
            assert_eq!(rows[0].precision, "w16");
            assert_eq!(rows[2].precision, "w1");
        }
    }
}
