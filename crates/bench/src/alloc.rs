//! A counting global allocator for the harness.
//!
//! The zero-allocation datapath claim ("a steady-state simulated cycle
//! performs zero heap allocations") is asserted, not assumed: the bench
//! binaries install [`CountingAlloc`] as the global allocator, snapshot
//! the counter around a measured inference burst, and fail the run if
//! the fast path allocated. The counter is a single relaxed atomic —
//! negligible overhead on top of the system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation
/// (`alloc`, `alloc_zeroed`, and growing `realloc` calls all count as
/// one; `dealloc` is free and uncounted).
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// does not influence allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations counted since process start (whole process, all
/// threads).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(allocations during f, f's result)`. Only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator and no other thread allocates concurrently.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocation_count();
    let value = f();
    (allocation_count() - before, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let a = allocation_count();
        let v: Vec<u64> = (0..100).collect();
        let b = allocation_count();
        // The bench library installs CountingAlloc globally, so the Vec
        // above must have been counted.
        assert!(b > a, "allocation went uncounted");
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn count_allocations_sees_zero_for_pure_code() {
        let (allocs, sum) = count_allocations(|| (0u64..64).sum::<u64>());
        assert_eq!(allocs, 0);
        assert_eq!(sum, 2016);
    }
}
