//! The reproduction harness: prints any (or every) table and figure of
//! the ShiDianNao evaluation.
//!
//! ```text
//! harness [table1|table3|table4|fig7|fig17|fig18|fig19|reuse|framerate|sweep|faults|serve|cluster|tune|cascade|video|all|bench]
//! ```
//!
//! `harness bench` times the harness itself — each experiment serially
//! (`RAYON_NUM_THREADS=1`) and in parallel, plus prepared-session
//! inference throughput through the zero-allocation fast kernel — and
//! writes the machine-readable `BENCH_harness.json` next to the working
//! directory. It also times the instrumented path through schedule
//! replay and live HFSM decode, and fails if any execution path
//! diverged, if the fast or replay path allocated in steady state, or
//! if the replay speedup falls below its gate. `harness bench --smoke`
//! is the CI-sized version: it asserts `sim_cycles_per_inference` for
//! all ten networks (fast and scheduled instrumented paths)
//! byte-identical to the repository seed, five-way path bit-identity,
//! zero-allocation measured bursts, and the replay speedup threshold.
//!
//! `harness faults [--smoke]` runs the seeded fault-injection campaign
//! (fault rate × SRAM protection across the zoo, each SRAM cell through
//! both schedule replay and live decode, plus the graceful-degradation
//! streaming measurement), writes `BENCH_faults.json`, and fails if any
//! SECDED-protected trial suffered silent data corruption, a zero-rate
//! trial diverged, or replay disagreed with live decode anywhere.
//!
//! `harness serve [--smoke]` drives the deterministic multi-tenant
//! serving scenario (interactive LeNet-5, faulty streaming Gabor, batch
//! MPCNN) on the virtual clock, writes `BENCH_serve.json`, and fails if
//! the report differs across physical worker counts or admission
//! interleavings, if any served output diverges from a direct
//! `Session::infer`, or (in smoke mode) if the frozen per-tenant SLO
//! ledger drifted.
//!
//! `harness cluster [--smoke]` drives the same tenant mix through a
//! heterogeneous fault-tolerant shard cluster twice — healthy, then
//! under a seeded chaos plan of shard crashes, slow-shard episodes, and
//! SRAM-fault bursts — writes `BENCH_cluster.json`, and fails if the
//! report differs across physical thread counts or shard scan orders,
//! if any tenant's six-class outcome ledger fails to balance (a request
//! lost or double-counted), if any surviving sampled output diverges
//! from a direct `Session::infer` on the serving shard's accelerator,
//! if the chaos plan failed to exercise the crash, drain, slow-shard,
//! or burst paths, or (in smoke mode) if the frozen ledgers drifted.
//!
//! `harness tune [--smoke]` runs the design-space autotuner: a sweep of
//! PE mesh sides, NB/SB capacities (the NB bank width follows the mesh),
//! and SRAM protection levels over the zoo, costed as (area, geomean
//! energy, geomean cycles) and reduced to a Pareto frontier plus a
//! per-tenant minimum-EDAP pick. It writes `BENCH_tuner.json` and fails
//! if the document is not byte-identical across three evaluations (one
//! pinned to a single rayon worker), if a picked configuration fails the
//! optimized-schedule bit-identity certificate, or (in smoke mode) if
//! the frozen frontier labels or tenant picks drifted.
//!
//! `harness cascade [--smoke]` runs the quantized two-stage early-exit
//! cascade: a 1-bit binarized front-end (XNOR kernels certified
//! bit-identical to the 16-bit kernels) scores every sensor region and
//! only above-threshold regions escalate to the full-precision LeNet-5.
//! It writes `BENCH_cascade.json` (escalation rate, cycles/energy saved
//! vs all-full-precision, accuracy delta vs the run-everything oracle,
//! bit-identity certificates for both stages, and the w16/w2/w1
//! quantization accuracy study) and fails if the document is not
//! byte-identical across three evaluations (one pinned to a single
//! rayon worker), if the front-end's per-inference cycle advantage
//! falls below 4x, if the cascade is not strictly cheaper than the
//! baseline on both cycles and energy, if either stage diverges from
//! the fixed-point golden reference, if the XNOR kernels fail
//! certification, or (in smoke mode) if the frozen escalation count
//! drifted.
//!
//! `harness video [--smoke]` runs the temporal-reuse video experiment:
//! three camera motion classes (static, mostly-static, panning) through
//! the motion-gated video pipeline — clean regions replay cached results
//! at calibrated compare-only cost, dirty regions recompute through the
//! cross-frame delta-load path — plus a fourth run gating dirty regions
//! through the PR-9 binarized front-end, plus a multi-camera serve leg
//! driving dozens of deterministic `VideoStream` tenants through the
//! inference service with per-stream deadline SLOs. It writes
//! `BENCH_video.json` and fails if the document is not byte-identical
//! across three evaluations (one pinned to a single rayon worker), if
//! the static or mostly-static scene misses strict cycle (2x) and
//! energy savings over frame-independent processing, if any computed
//! region diverges from a direct `Session::infer`, if warm recomputes
//! save no NBin rows, if the serve leg varies across worker counts or
//! its ledgers fail to balance, or (in smoke mode) if the frozen
//! skip/compute ledgers drifted.
//!
//! The seven gated subcommands share one exit-code policy: the summary
//! goes to stdout, every gate violation goes to stderr, and the process
//! exits nonzero iff at least one gate failed.

use shidiannao_bench::{cascade, cluster, faults, perf, report, serve, tune, video};
use std::env;
use std::process::ExitCode;

fn smoke_flag() -> bool {
    env::args().nth(2).is_some_and(|f| f == "--smoke")
}

/// `harness faults [--smoke]`: campaign, artefact, gates.
fn run_faults(smoke: bool) -> (String, Vec<String>) {
    let r = if smoke {
        faults::smoke()
    } else {
        faults::full()
    };
    let mut errors = Vec::new();
    let path = "BENCH_faults.json";
    let mut out = r.render();
    match std::fs::write(path, r.to_json()) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    if r.sdc_under_secded() != 0 {
        errors.push("SECDED let silent data corruption through".to_string());
    }
    if !r.zero_rate_all_clean() {
        errors.push("a zero-rate run diverged from the golden model".to_string());
    }
    if !r.all_paths_agree() {
        errors.push("schedule replay diverged from live decode in a fault cell".to_string());
    }
    (out, errors)
}

/// `harness bench [--smoke]`: perf measurement, artefact, gates.
fn run_bench(smoke: bool) -> (String, Vec<String>) {
    let r = if smoke {
        perf::measure_smoke()
    } else {
        perf::measure()
    };
    let mut errors = Vec::new();
    let mut out = r.render();
    if smoke {
        // The CI gate: seed-frozen cycle counts on the fast and the
        // replayed instrumented path, six-way path bit-identity (batch
        // lanes included), zero-allocation steady state (clean, faulty
        // replay, and batched), the instrumented replay speedup
        // threshold, and the batched-path no-regression floor. No JSON —
        // BENCH_harness.json holds the full run's numbers.
        errors.extend(perf::smoke_errors(&r.throughput));
        if errors.is_empty() {
            out += "\nsmoke: all seed cycle counts exact, paths bit-identical \
                    (replay and batch lanes included), 0 allocs, replay and \
                    batch gates met\n";
        }
    } else {
        let path = "BENCH_harness.json";
        match std::fs::write(path, r.to_json()) {
            Ok(()) => out += &format!("\nwrote {path}\n"),
            Err(e) => errors.push(format!("could not write {path}: {e}")),
        }
        if !r.all_bit_identical() {
            errors.push("parallel results diverged from serial results".to_string());
        }
        if !r.all_paths_bit_identical() {
            errors.push(
                "an execution path diverged (legacy / run / infer / infer_ref / replay / batch)"
                    .to_string(),
            );
        }
        if !r.zero_alloc_steady_state() {
            errors.push("the fast, replay, or batch path allocated in steady state".to_string());
        }
    }
    (out, errors)
}

/// `harness serve [--smoke]`: multi-tenant scenario, artefact, gates.
fn run_serve(smoke: bool) -> (String, Vec<String>) {
    let bench = match serve::serve_report(smoke) {
        Ok(bench) => bench,
        Err(e) => return (String::new(), vec![format!("scenario failed: {e}")]),
    };
    let mut errors = Vec::new();
    let path = "BENCH_serve.json";
    let mut out = bench.render();
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    errors.extend(bench.gate_errors());
    (out, errors)
}

/// `harness cluster [--smoke]`: chaos scenario, artefact, gates.
fn run_cluster(smoke: bool) -> (String, Vec<String>) {
    let bench = match cluster::cluster_report(smoke) {
        Ok(bench) => bench,
        Err(e) => return (String::new(), vec![format!("scenario failed: {e}")]),
    };
    let mut errors = Vec::new();
    let path = "BENCH_cluster.json";
    let mut out = bench.render();
    match std::fs::write(path, bench.to_json()) {
        Ok(()) => out += &format!("\nwrote {path}\n"),
        Err(e) => errors.push(format!("could not write {path}: {e}")),
    }
    errors.extend(bench.gate_errors());
    (out, errors)
}

fn main() -> ExitCode {
    let arg = env::args().nth(1).unwrap_or_else(|| "all".to_string());
    // The gated subcommands share one exit-code policy (see module docs).
    let gated = match arg.as_str() {
        "faults" => Some(run_faults(smoke_flag())),
        "bench" => Some(run_bench(smoke_flag())),
        "serve" => Some(run_serve(smoke_flag())),
        "cluster" => Some(run_cluster(smoke_flag())),
        "tune" => Some(tune::run_tune(smoke_flag())),
        "cascade" => Some(cascade::run_cascade(smoke_flag())),
        "video" => Some(video::run_video(smoke_flag())),
        _ => None,
    };
    if let Some((out, errors)) = gated {
        print!("{out}");
        if errors.is_empty() {
            return ExitCode::SUCCESS;
        }
        for e in &errors {
            eprintln!("{arg}: {e}");
        }
        return ExitCode::FAILURE;
    }
    let out = match arg.as_str() {
        "table1" => report::render_table1(),
        "table3" => report::render_table3(),
        "table4" => report::render_table4(),
        "fig7" => report::render_fig7(),
        "fig17" => {
            shidiannao_core::area::floorplan_ascii(&shidiannao_core::AcceleratorConfig::paper())
        }
        "fig18" => report::render_fig18(),
        "fig19" => report::render_fig19(),
        "reuse" => report::render_reuse(),
        "framerate" => report::render_framerate(),
        "sweep" => report::render_sweep(),
        "all" => report::render_all(),
        "calib" => {
            use shidiannao_baseline::{CpuModel, DianNao, DianNaoConfig, GpuModel};
            use shidiannao_cnn::zoo;
            use shidiannao_core::{Accelerator, AcceleratorConfig};
            let mut s_nj = vec![];
            let mut i_bytes = vec![];
            let mut t_bytes = vec![];
            let mut d_on = vec![];
            let mut sdn_s = vec![];
            let mut dn_s = vec![];
            let mut cpu_s = vec![];
            let mut gpu_s = vec![];
            for b in zoo::all() {
                let net = b.build(2015).unwrap();
                let run = Accelerator::new(AcceleratorConfig::paper())
                    .run(&net, &net.random_input(2015 ^ 0xABCD))
                    .unwrap();
                let d = DianNao::new(DianNaoConfig::paper()).run(&net);
                s_nj.push(run.energy().total_nj());
                i_bytes
                    .push((net.input_maps() * net.input_dims().0 * net.input_dims().1 * 2) as f64);
                t_bytes.push(d.dram_bytes() as f64);
                d_on.push(d.energy_free_mem_nj());
                sdn_s.push(run.seconds());
                dn_s.push(d.seconds());
                cpu_s.push(CpuModel::xeon_e7_8830().run_seconds(&net));
                gpu_s.push(GpuModel::k20m().run(&net).seconds());
            }
            let g = shidiannao_bench::geomean;
            format!("geomean S={:.0} nJ, I={:.0} B, T={:.0} B, D_onchip={:.0} nJ\nsdn={:.3e}s dn={:.3e}s cpu={:.3e}s gpu={:.3e}s\n",
                g(&s_nj), g(&i_bytes), g(&t_bytes), g(&d_on), g(&sdn_s), g(&dn_s), g(&cpu_s), g(&gpu_s))
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: table1 table3 table4 fig7 fig17 fig18 fig19 reuse framerate sweep faults serve cluster tune cascade video calib bench all"
            );
            return ExitCode::FAILURE;
        }
    };
    print!("{out}");
    ExitCode::SUCCESS
}
