//! Exports every experiment's data series as CSV files, ready for a
//! plotting tool to regenerate the paper's figures.
//!
//! ```text
//! export [OUTPUT_DIR]     # default: ./results
//! ```

use shidiannao_bench::{
    design_space_sweep, fig18_speedups, fig19_energy, fig7_bandwidth, framerate_report,
    reuse_report, table1_storage, table4_characteristics,
};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn write(dir: &Path, name: &str, contents: String) -> std::io::Result<()> {
    let path = dir.join(name);
    fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn export(dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;

    let mut t1 = String::from("cnn,largest_layer_kb,synapses_kb,total_kb\n");
    for r in table1_storage() {
        t1 += &format!(
            "{},{:.2},{:.2},{:.2}\n",
            r.name, r.largest_layer_kb, r.synapses_kb, r.total_kb
        );
    }
    write(dir, "table1_storage.csv", t1)?;

    let t4 = table4_characteristics();
    let mut t4csv = String::from("component,area_mm2,power_mw,energy_nj\n");
    for (i, name) in ["NFU", "NBin", "NBout", "SB", "IB"].iter().enumerate() {
        t4csv += &format!(
            "{},{:.4},{:.4},{:.4}\n",
            name, t4.area_mm2[i], t4.power_mw[i], t4.energy_nj[i]
        );
    }
    write(dir, "table4_characteristics.csv", t4csv)?;

    let mut f7 = String::from("pes,without_propagation_gbps,with_propagation_gbps,reduction\n");
    for r in fig7_bandwidth() {
        f7 += &format!(
            "{},{:.3},{:.3},{:.4}\n",
            r.pes,
            r.without_propagation_gbps,
            r.with_propagation_gbps,
            r.reduction()
        );
    }
    write(dir, "fig7_bandwidth.csv", f7)?;

    let mut f18 = String::from(
        "cnn,cpu_s,gpu_s,diannao_s,shidiannao_s,gpu_speedup,diannao_speedup,shidiannao_speedup\n",
    );
    for r in fig18_speedups() {
        f18 += &format!(
            "{},{:.3e},{:.3e},{:.3e},{:.3e},{:.3},{:.3},{:.3}\n",
            r.name,
            r.cpu_s,
            r.gpu_s,
            r.diannao_s,
            r.shidiannao_s,
            r.gpu_speedup(),
            r.diannao_speedup(),
            r.shidiannao_speedup()
        );
    }
    write(dir, "fig18_speedup.csv", f18)?;

    let mut f19 = String::from(
        "cnn,gpu_nj,diannao_nj,diannao_freemem_nj,shidiannao_nj,shidiannao_sensor_nj\n",
    );
    for r in fig19_energy() {
        f19 += &format!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            r.name,
            r.gpu_nj,
            r.diannao_nj,
            r.diannao_freemem_nj,
            r.shidiannao_nj,
            r.shidiannao_sensor_nj
        );
    }
    write(dir, "fig19_energy.csv", f19)?;

    let mut sweep =
        String::from("side,geomean_cycles,geomean_utilization,area_mm2,geomean_energy_nj,edap\n");
    for p in design_space_sweep(&[2, 4, 6, 8, 12, 16]) {
        sweep += &format!(
            "{},{:.1},{:.4},{:.3},{:.1},{:.4e}\n",
            p.side,
            p.geomean_cycles,
            p.geomean_utilization,
            p.area_mm2,
            p.geomean_energy_nj,
            p.edap()
        );
    }
    write(dir, "design_space.csv", sweep)?;

    let reuse = reuse_report();
    let fr = framerate_report();
    write(
        dir,
        "claims.csv",
        format!(
            "claim,paper,ours\n\
             toy_reuse_reduction,0.444,{:.4}\n\
             lenet_c1_reuse_reduction,0.7388,{:.4}\n\
             regions_per_vga_frame,1073,{}\n\
             ms_per_convnn_region,0.047,{:.4}\n\
             fps,20,{:.1}\n",
            reuse.toy_reduction,
            reuse.lenet_c1_reduction,
            fr.regions_per_frame,
            fr.ms_per_region,
            fr.fps
        ),
    )?;
    Ok(())
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    match export(Path::new(&dir)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::FAILURE
        }
    }
}
