//! The multi-tenant serving benchmark: a deterministic mixed-traffic
//! scenario (interactive LeNet-5, faulty streaming Gabor, batchy MPCNN)
//! driven through `shidiannao-serve`, reported as `BENCH_serve.json`.
//!
//! Like the fault campaign, every number is a pure function of the
//! scenario constants — the virtual clock never reads the wall clock —
//! so the JSON is byte-identical across invocations, machines, and
//! physical thread counts. The report carries its own certificates:
//!
//! * **worker-count invariance** — the scenario is run with 1 and with 2
//!   OS threads and the two [`ServiceReport`]s must compare equal,
//! * **interleave invariance** — a third run permutes the processing
//!   order of same-cycle admissions (`admission_salt`) and must also
//!   compare equal,
//! * **direct-inference bit-identity** — every retained request sample
//!   is replayed through a plain `Session::infer` under the same salted
//!   fault plan and must reproduce the served output hash,
//! * **calibration** — per-tenant clean cycles must match the frozen
//!   `SEED_CYCLES_PER_INFERENCE` table from the perf harness,
//! * **SLO accounting** — per-tenant ledgers must balance, and in smoke
//!   mode the counts themselves are frozen ([`EXPECTED_SMOKE`]) so CI
//!   catches any scheduling or accounting drift — including the
//!   `batched` follower-lane counts, since the scenario runs with
//!   `max_batch: 8` and fault-free backlogged tenants get served as
//!   multi-lane schedule replays.

use crate::json::{comma, json_f64, json_str};
use crate::perf::SEED_CYCLES_PER_INFERENCE;
use shidiannao_cnn::zoo;
use shidiannao_core::Accelerator;
use shidiannao_faults::{FaultConfig, FaultPlan, SramProtection};
use shidiannao_serve::{
    hash_output, request_salt, InferenceService, InputSource, ServeConfig, ServeError,
    ServiceReport, TenantSpec, Traffic,
};

/// Base seed for the serving scenario's inputs and fault patterns.
pub const SERVE_SEED: u64 = 0x5E7E;

/// Network build seed — the same one the perf harness uses, so the
/// calibrated clean cycles cross-check against its frozen table.
const BUILD_SEED: u64 = crate::experiments::SEED;

/// One frozen smoke ledger row:
/// `(name, issued, ok, degraded, dropped_faulty, dropped_deadline, rejected, batched)`.
pub type SmokeLedgerRow = (&'static str, u64, u64, u64, u64, u64, u64, u64);

/// Frozen per-tenant smoke outcomes (one [`SmokeLedgerRow`] per tenant).
/// Any drift here means the scheduler, the fault layer, the batcher, or
/// the SLO accounting changed behaviour and must be re-frozen
/// deliberately. `batched` counts requests served as follower lanes of a
/// shared schedule replay — the faulty gabor tenant must stay at 0
/// (batching is gated on a zero fault plan).
pub const EXPECTED_SMOKE: &[SmokeLedgerRow] = &[
    ("lenet5-interactive", 18, 18, 0, 0, 0, 0, 2),
    ("gabor-stream", 50, 32, 3, 0, 5, 10, 0),
    ("mpcnn-batch", 5, 5, 0, 0, 0, 0, 0),
];

/// Virtual cycle the smoke scenario must end at (frozen).
pub const EXPECTED_SMOKE_END_CYCLES: u64 = 280_461;

/// Builds the three-tenant mixed-traffic scenario.
///
/// # Errors
///
/// Returns [`ServeError`] if a zoo network fails to build (impossible
/// for the frozen zoo) or the specs fail validation.
pub fn serve_scenario(
    smoke: bool,
    threads: usize,
    salt: u64,
) -> Result<InferenceService, ServeError> {
    let build = |b: shidiannao_cnn::NetworkBuilder| {
        b.build(BUILD_SEED).map_err(|e| ServeError::Spec {
            tenant: "zoo".to_string(),
            reason: e.to_string(),
        })
    };
    // An interactive tenant: a pool of callers that wait for each
    // answer, think, and ask again — latency-sensitive, weight 3.
    let lenet = TenantSpec::new("lenet5-interactive", build(zoo::lenet5())?)
        .traffic(Traffic::Closed {
            clients: 3,
            think: 25_000,
            count: if smoke { 18 } else { 90 },
        })
        .source(InputSource::Random { seed: SERVE_SEED })
        .weight(3)
        .queue_capacity(4)
        .deadline_cycles(60_000);
    // A streaming camera tenant under SRAM and sensor-link faults:
    // regions tile out of 40×40 synthetic frames, parity protection
    // detects flips and the service degrades via salted retries.
    let gabor_faults = FaultConfig {
        seed: SERVE_SEED ^ 0xCA,
        nb_flip_rate: 1e-4,
        sb_flip_rate: 1e-4,
        ib_flip_rate: 1e-4,
        pe_stuck_rate: 0.0,
        scanline_rate: 0.02,
        double_flip_share: 0.1,
        protection: SramProtection::Parity,
    };
    let gabor = TenantSpec::new("gabor-stream", build(zoo::gabor())?)
        .traffic(Traffic::Open {
            period: 1_400,
            jitter: 600,
            count: if smoke { 50 } else { 300 },
        })
        .source(InputSource::Stream {
            seed: SERVE_SEED ^ 0xCA,
            frame: (40, 40),
            stride: (20, 20),
        })
        .faults(gabor_faults)
        .weight(1)
        .queue_capacity(4)
        .deadline_cycles(10_000)
        .max_retries(2);
    // A batch tenant: rare, heavy requests with a loose deadline.
    let mpcnn = TenantSpec::new("mpcnn-batch", build(zoo::mpcnn())?)
        .traffic(Traffic::Open {
            period: 45_000,
            jitter: 4_000,
            count: if smoke { 5 } else { 30 },
        })
        .source(InputSource::Random {
            seed: SERVE_SEED ^ 0xBA,
        })
        .weight(2)
        .queue_capacity(2)
        .deadline_cycles(140_000);
    let config = ServeConfig {
        virtual_workers: 2,
        physical_threads: threads,
        admission_salt: salt,
        samples_per_tenant: 6,
        // Fault-free tenants that backlog (interactive LeNet-5 bursts,
        // MPCNN whose period is shorter than its clean cycles) get served
        // as multi-lane schedule replays; followers pay marginal cycles.
        max_batch: 8,
        ..ServeConfig::default()
    };
    InferenceService::new(config, vec![lenet, gabor, mpcnn])
}

/// The serving benchmark's full result: the canonical report plus its
/// determinism and bit-identity certificates.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// Whether this was the smoke-sized scenario.
    pub smoke: bool,
    /// The canonical service report (single-threaded run).
    pub report: ServiceReport,
    /// Same scenario on 2 OS threads produced an equal report.
    pub worker_count_invariant: bool,
    /// Same scenario with permuted same-cycle admission order produced
    /// an equal report.
    pub interleave_invariant: bool,
    /// Every retained sample replayed bit-identically through a direct
    /// `Session::infer`.
    pub outputs_match_direct: bool,
    /// How many samples the replay certificate covered.
    pub verified_samples: usize,
}

/// Runs the scenario (three times: serial, threaded, permuted), replays
/// the sample certificates, and assembles the benchmark report.
///
/// # Errors
///
/// Returns [`ServeError`] when the scenario itself fails to run.
pub fn serve_report(smoke: bool) -> Result<ServeBenchReport, ServeError> {
    let serial = serve_scenario(smoke, 1, 0)?.run()?;
    let threaded = serve_scenario(smoke, 2, 0)?.run()?;
    let permuted = serve_scenario(smoke, 1, 1)?.run()?;
    let (verified_samples, outputs_match_direct) = verify_samples(smoke, &serial)?;
    Ok(ServeBenchReport {
        smoke,
        worker_count_invariant: serial == threaded,
        interleave_invariant: serial == permuted,
        outputs_match_direct,
        verified_samples,
        report: serial,
    })
}

/// Replays every retained sample through a direct session and compares
/// output hashes. Returns `(samples_checked, all_matched)`.
fn verify_samples(smoke: bool, report: &ServiceReport) -> Result<(usize, bool), ServeError> {
    let service = serve_scenario(smoke, 1, 0)?;
    let accel = Accelerator::new(service.config().accel.clone());
    let mut checked = 0;
    let mut all_match = true;
    for (tenant, (spec, tr)) in service.tenants().iter().zip(&report.tenants).enumerate() {
        let prepared = accel
            .prepare(&spec.network)
            .map_err(|error| ServeError::Prepare {
                tenant: spec.name.clone(),
                error,
            })?;
        for sample in &tr.stats.samples {
            let plan = FaultPlan::new(spec.faults).with_salt(request_salt(
                tenant,
                sample.seq,
                sample.attempt,
            ));
            let mut session = prepared.session_with_faults(plan);
            let input = spec
                .build_input(sample.seq)
                .map_err(|error| ServeError::Input {
                    tenant: spec.name.clone(),
                    error,
                })?;
            match session.infer(&input) {
                Ok(inference) => {
                    checked += 1;
                    if hash_output(inference.output()) != sample.output_hash {
                        all_match = false;
                    }
                }
                // The service only samples *successful* attempts, so a
                // fault abort on replay is itself a divergence.
                Err(_) => all_match = false,
            }
        }
    }
    Ok((checked, all_match))
}

impl ServeBenchReport {
    /// The `BENCH_serve.json` document — built exclusively from
    /// virtual-clock quantities, so bytes are stable across runs.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut out = String::from("{\n");
        out += &format!(
            "  \"scenario\": {},\n",
            json_str(if self.smoke { "smoke" } else { "full" })
        );
        out += &format!("  \"virtual_workers\": {},\n", r.virtual_workers);
        out += &format!("  \"end_cycles\": {},\n", r.end_cycles);
        out += &format!("  \"elapsed_seconds\": {},\n", json_f64(r.elapsed_seconds));
        out += &format!(
            "  \"worker_count_invariant\": {},\n",
            self.worker_count_invariant
        );
        out += &format!(
            "  \"interleave_invariant\": {},\n",
            self.interleave_invariant
        );
        out += &format!(
            "  \"outputs_match_direct\": {},\n",
            self.outputs_match_direct
        );
        out += &format!("  \"verified_samples\": {},\n", self.verified_samples);
        out += &format!(
            "  \"accounting_consistent\": {},\n",
            r.accounting_consistent()
        );
        out += "  \"tenants\": [\n";
        for (i, t) in r.tenants.iter().enumerate() {
            let s = &t.stats;
            let lat = t.latency();
            out += &format!(
                "    {{\"name\": {}, \"weight\": {}, \"clean_cycles\": {}, \
                 \"issued\": {}, \"ok\": {}, \"degraded\": {}, \"dropped_faulty\": {}, \
                 \"dropped_deadline\": {}, \"rejected\": {}, \"deadline_misses\": {}, \
                 \"retries\": {}, \"batched\": {}, \"service_cycles\": {}, \"throughput_rps\": {}, \
                 \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \
                 \"latency_mean\": {}, \"latency_max\": {}, \"queue_depth_max\": {}, \
                 \"queue_depth_mean\": {}, \"faults_detected\": {}, \
                 \"faults_corrected\": {}, \"faults_silent\": {}, \
                 \"output_hash\": {}}}{}\n",
                json_str(&t.name),
                t.weight,
                t.clean_cycles,
                s.issued,
                s.ok,
                s.degraded,
                s.dropped_faulty,
                s.dropped_deadline,
                s.rejected,
                s.deadline_misses,
                s.retries,
                s.batched,
                s.service_cycles,
                json_f64(t.throughput_rps),
                lat.p50,
                lat.p95,
                lat.p99,
                json_f64(lat.mean),
                lat.max,
                s.depth_max,
                json_f64(s.depth_mean()),
                s.fault.detected,
                s.fault.corrected,
                s.fault.silent,
                json_str(&format!("{:#018x}", s.output_hash)),
                comma(i, r.tenants.len()),
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let r = &self.report;
        let mut out = format!(
            "Multi-tenant serve ({}): {} virtual workers, {} virtual cycles ({:.3} ms)\n",
            if self.smoke { "smoke" } else { "full" },
            r.virtual_workers,
            r.end_cycles,
            r.elapsed_seconds * 1e3,
        );
        out += "tenant               issued  ok  degr  dropF  dropD  rej  miss  batch   p50     p99     rps\n";
        for t in &r.tenants {
            let s = &t.stats;
            let lat = t.latency();
            out += &format!(
                "{:<20} {:>6} {:>3} {:>5} {:>6} {:>6} {:>4} {:>5} {:>6} {:>6} {:>7} {:>7.1}\n",
                t.name,
                s.issued,
                s.ok,
                s.degraded,
                s.dropped_faulty,
                s.dropped_deadline,
                s.rejected,
                s.deadline_misses,
                s.batched,
                lat.p50,
                lat.p99,
                t.throughput_rps,
            );
        }
        out += &format!(
            "certificates: worker-invariant {}, interleave-invariant {}, \
             outputs-match-direct {} ({} samples), accounting {}\n",
            self.worker_count_invariant,
            self.interleave_invariant,
            self.outputs_match_direct,
            self.verified_samples,
            r.accounting_consistent(),
        );
        out
    }

    /// The CI gate: empty when every certificate holds (and, in smoke
    /// mode, when the frozen SLO ledger matches exactly).
    pub fn gate_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if !self.worker_count_invariant {
            errors.push("report differs across physical worker counts".to_string());
        }
        if !self.interleave_invariant {
            errors.push("report differs across admission interleavings".to_string());
        }
        if !self.outputs_match_direct {
            errors.push("served outputs diverge from direct Session::infer".to_string());
        }
        if self.verified_samples == 0 {
            errors.push("no samples were available for bit-identity verification".to_string());
        }
        if !self.report.accounting_consistent() {
            errors.push("per-tenant SLO ledgers do not balance".to_string());
        }
        for t in &self.report.tenants {
            let table_name = match t.name.as_str() {
                "lenet5-interactive" => "LeNet-5",
                "gabor-stream" => "Gabor",
                "mpcnn-batch" => "MPCNN",
                _ => continue,
            };
            if let Some(&(_, expect)) = SEED_CYCLES_PER_INFERENCE
                .iter()
                .find(|&&(n, _)| n == table_name)
            {
                if t.clean_cycles != expect {
                    errors.push(format!(
                        "{}: calibrated clean cycles {} != frozen {}",
                        t.name, t.clean_cycles, expect
                    ));
                }
            }
        }
        if self.smoke {
            if self.report.end_cycles != EXPECTED_SMOKE_END_CYCLES {
                errors.push(format!(
                    "smoke end_cycles {} != frozen {}",
                    self.report.end_cycles, EXPECTED_SMOKE_END_CYCLES
                ));
            }
            if self.report.total(|s| s.batched) == 0 {
                errors.push("batching never triggered in the smoke scenario".to_string());
            }
            for &(
                name,
                issued,
                ok,
                degraded,
                dropped_faulty,
                dropped_deadline,
                rejected,
                batched,
            ) in EXPECTED_SMOKE
            {
                let Some(t) = self.report.tenants.iter().find(|t| t.name == name) else {
                    errors.push(format!("smoke tenant {name} missing from report"));
                    continue;
                };
                let s = &t.stats;
                let got = (
                    s.issued,
                    s.ok,
                    s.degraded,
                    s.dropped_faulty,
                    s.dropped_deadline,
                    s.rejected,
                    s.batched,
                );
                let want = (
                    issued,
                    ok,
                    degraded,
                    dropped_faulty,
                    dropped_deadline,
                    rejected,
                    batched,
                );
                if got != want {
                    errors.push(format!(
                        "{name}: SLO ledger drift: got (issued, ok, degraded, droppedF, droppedD, rejected, batched) = {got:?}, frozen {want:?}"
                    ));
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_passes_its_own_gate() {
        let bench = serve_report(true).expect("scenario runs");
        let errors = bench.gate_errors();
        assert!(errors.is_empty(), "gate failed: {errors:?}");
    }

    #[test]
    fn smoke_json_is_byte_deterministic() {
        let a = serve_report(true).expect("run a").to_json();
        let b = serve_report(true).expect("run b").to_json();
        assert_eq!(a, b);
        // Well-formedness spot checks.
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("}\n"));
        for key in [
            "\"scenario\"",
            "\"worker_count_invariant\"",
            "\"tenants\"",
            "\"latency_p99\"",
            "\"output_hash\"",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
    }

    #[test]
    fn scenario_exercises_every_outcome_class() {
        let bench = serve_report(true).expect("scenario runs");
        let total = |f: fn(&shidiannao_serve::TenantStats) -> u64| bench.report.total(f);
        assert!(total(|s| s.ok) > 0);
        assert!(total(|s| s.degraded) > 0, "no degraded completions");
        assert!(
            total(|s| s.dropped_faulty + s.dropped_deadline) > 0,
            "no drops"
        );
        assert!(total(|s| s.rejected) > 0, "no backpressure rejections");
        assert!(total(|s| s.retries) > 0);
        assert!(total(|s| s.batched) > 0, "no batched follower lanes");
    }
}
