//! Criterion benches: one target per table/figure of the evaluation.
//! Each bench regenerates its artifact end-to-end, so `cargo bench` both
//! times the simulator and re-derives every number (printed once per
//! target for the record).

use criterion::{criterion_group, criterion_main, Criterion};
use shidiannao_bench::{
    experiments, fig18_speedups, fig19_energy, fig7_bandwidth, framerate_report, reuse_report,
    table1_storage, table4_characteristics,
};
use shidiannao_cnn::zoo;
use shidiannao_core::{Accelerator, AcceleratorConfig};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_table1());
    c.bench_function("table1_storage", |b| b.iter(|| black_box(table1_storage())));
}

fn bench_table4(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_table4());
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("table4_breakdown", |b| {
        b.iter(|| black_box(table4_characteristics()))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_fig7());
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("fig7_bandwidth", |b| b.iter(|| black_box(fig7_bandwidth())));
    g.finish();
}

fn bench_fig18(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_fig18());
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    // The full figure (all four machines, ten benchmarks).
    g.bench_function("fig18_speedup", |b| b.iter(|| black_box(fig18_speedups())));
    // Per-benchmark simulator runs: the bars' dominant cost.
    for builder in zoo::all() {
        let net = builder.build(experiments::SEED).unwrap();
        let input = net.random_input(experiments::SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        g.bench_function(format!("shidiannao/{}", net.name()), |b| {
            b.iter(|| black_box(accel.run(&net, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

fn bench_fig19(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_fig19());
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    g.bench_function("fig19_energy", |b| b.iter(|| black_box(fig19_energy())));
    g.finish();
}

fn bench_reuse(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_reuse());
    let mut g = c.benchmark_group("sec8_reuse");
    g.sample_size(10);
    g.bench_function("sec81_reuse", |b| b.iter(|| black_box(reuse_report())));
    g.finish();
}

fn bench_framerate(c: &mut Criterion) {
    println!("{}", shidiannao_bench::report::render_framerate());
    let mut g = c.benchmark_group("sec102");
    g.sample_size(10);
    g.bench_function("sec102_framerate", |b| {
        b.iter(|| black_box(framerate_report()))
    });
    g.finish();
}

criterion_group!(
    artifacts,
    bench_table1,
    bench_table4,
    bench_fig7,
    bench_fig18,
    bench_fig19,
    bench_reuse,
    bench_framerate
);
criterion_main!(artifacts);
