//! Microbenchmarks of the steady-state hot path: the six NB controller
//! read modes, the SB broadcast, and a full prepared-session inference
//! on a small network (one window-sweep executor pass end to end).
//!
//! These isolate the per-cycle costs the throughput harness only sees in
//! aggregate, so a regression in (say) mode (c) row reads shows up here
//! before it dilutes into a whole-network number.

use criterion::{criterion_group, criterion_main, Criterion};
use shidiannao_cnn::{ConvSpec, FcSpec, Network, NetworkBuilder, PoolSpec};
use shidiannao_core::kernel::{LaneKernel, ScalarKernel, ValueKernel};
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, LayerStats, NeuronBuffer, ReadScratch,
    SramProtection, SynapseBuffer,
};
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};
use std::hint::black_box;

/// An NB loaded with one 32 × 32 map, paper geometry (8 × 8 banking).
fn loaded_nb() -> NeuronBuffer {
    let mut nb = NeuronBuffer::new(8, 8, 64 * 1024);
    let stack = MapStack::from_fn(32, 32, 1, |_| {
        FeatureMap::from_fn(32, 32, |x, y| {
            Fx::from_f32(((x * 31 + y) % 97) as f32 / 97.0)
        })
    });
    nb.load(stack).expect("fits");
    nb
}

fn bench_nb_read_modes(c: &mut Criterion) {
    let nb = loaded_nb();
    let mut stats = LayerStats::new("bench");
    let mut scratch = ReadScratch::default();
    let mut out = Vec::new();
    let mut g = c.benchmark_group("nb_read");
    g.sample_size(10_000);
    g.bench_function("tile_a", |b| {
        b.iter(|| {
            nb.read_tile_into(
                0,
                (0, 0),
                (8, 8),
                (1, 1),
                &mut stats,
                &mut scratch,
                &mut out,
            )
        })
    });
    g.bench_function("tile_b", |b| {
        b.iter(|| {
            nb.read_tile_into(
                0,
                (9, 0),
                (8, 8),
                (1, 1),
                &mut stats,
                &mut scratch,
                &mut out,
            )
        })
    });
    g.bench_function("row_c", |b| {
        b.iter(|| nb.read_row_into(0, (4, 7), 8, 1, &mut stats, &mut scratch, &mut out))
    });
    g.bench_function("single_d", |b| b.iter(|| nb.read_single(123, &mut stats)));
    g.bench_function("tile_e_strided", |b| {
        b.iter(|| {
            nb.read_tile_into(
                0,
                (0, 0),
                (8, 8),
                (2, 2),
                &mut stats,
                &mut scratch,
                &mut out,
            )
        })
    });
    let coords: Vec<(usize, usize)> = (0..8).map(|i| (i * 2, i * 3 % 32)).collect();
    g.bench_function("gather_e", |b| {
        b.iter(|| nb.read_gather_into(0, &coords, &mut stats, &mut scratch, &mut out))
    });
    g.bench_function("col_f", |b| {
        b.iter(|| nb.read_col_into(0, (7, 4), 8, 1, &mut stats, &mut scratch, &mut out))
    });
    g.finish();
    black_box(stats.nbin.read_bytes);
}

fn bench_sb_broadcast(c: &mut Criterion) {
    let sb = SynapseBuffer::new(128 * 1024);
    let mut stats = LayerStats::new("bench");
    let mut g = c.benchmark_group("sb");
    g.sample_size(10_000);
    g.bench_function("broadcast", |b| b.iter(|| sb.read_broadcast(&mut stats)));
    g.finish();
    black_box(stats.sb.read_bytes);
}

/// One full prepared-session inference on a conv → pool → fc network:
/// every executor's steady-state path, including the analytic fast
/// window pass and classifier dot products.
fn bench_small_inference(c: &mut Criterion) {
    let net = NetworkBuilder::new("hotpath", 1, (16, 16))
        .conv(ConvSpec::new(4, (5, 5)))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(10))
        .build(7)
        .expect("valid network");
    let input = net.random_input(9);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("prepare");
    let mut session = prepared.session();
    // Warm the scratch arenas and recycling pools past the growth phase.
    for _ in 0..16 {
        let _ = session.infer_ref(&input).expect("warm-up");
    }
    let mut g = c.benchmark_group("session");
    g.sample_size(200);
    g.bench_function("infer_conv_pool_fc", |b| {
        b.iter(|| black_box(session.infer_ref(&input).expect("infer").stats().cycles()))
    });
    g.finish();
}

/// A silent SRAM fault plan (NB/SB flips, no protection): faults are
/// active, so `infer_ref` takes the instrumented path — schedule replay
/// resolving the precompiled overlay, or live HFSM decode filtering
/// every access when replay is toggled off. The plan never aborts.
fn silent_plan() -> FaultPlan {
    FaultPlan::new(FaultConfig {
        nb_flip_rate: 1e-3,
        sb_flip_rate: 1e-3,
        ib_flip_rate: 0.0,
        pe_stuck_rate: 0.0,
        scanline_rate: 0.0,
        ..FaultConfig::uniform(11, 0.0, SramProtection::None)
    })
}

/// One layer's worth of network per kind, so the replay-vs-live delta
/// isolates a single executor's control stream.
fn single_layer_nets() -> [(&'static str, Network); 3] {
    [
        (
            "conv",
            NetworkBuilder::new("conv1", 1, (16, 16))
                .conv(ConvSpec::new(4, (5, 5)))
                .build(7)
                .expect("valid network"),
        ),
        (
            "pool",
            NetworkBuilder::new("pool1", 4, (16, 16))
                .pool(PoolSpec::max((2, 2)))
                .build(7)
                .expect("valid network"),
        ),
        (
            "fc",
            NetworkBuilder::new("fc1", 2, (8, 8))
                .fc(FcSpec::new(24))
                .build(7)
                .expect("valid network"),
        ),
    ]
}

/// Schedule replay vs live HFSM decode, one layer kind at a time: the
/// same instrumented cycle (fault filtering active) through the
/// precompiled micro-op schedule and through per-cycle state-machine
/// decode. The ratio is the per-layer version of the harness's
/// `instr_speedup` column.
fn bench_schedule_replay(c: &mut Criterion) {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for (kind, net) in single_layer_nets() {
        let input = net.random_input(9);
        let prepared = accel.prepare(&net).expect("prepare");
        let mut replay = prepared.session_with_faults(silent_plan());
        let mut live = prepared.session_with_faults(silent_plan());
        live.set_schedule_replay(false);
        // Warm both sessions (and build the replay overlay) past the
        // allocation growth phase.
        for _ in 0..16 {
            let _ = replay.infer_ref(&input).expect("warm-up");
            let _ = live.infer_ref(&input).expect("warm-up");
        }
        let mut g = c.benchmark_group(format!("schedule_{kind}"));
        g.sample_size(500);
        g.bench_function("replay", |b| {
            b.iter(|| black_box(replay.infer_ref(&input).expect("replay").stats().cycles()))
        });
        g.bench_function("live", |b| {
            b.iter(|| black_box(live.infer_ref(&input).expect("live").stats().cycles()))
        });
        g.finish();
    }
}

/// Optimized-schedule replay vs the recorded stream, one layer kind at
/// a time on the clean instrumented path: the same inference through
/// the optimizer's coalesced row-lane micro-ops and through the raw
/// recording. The ratio is the per-layer version of the harness's
/// `opt_replay_speedup` column — where the dedup, mode-reselect, and
/// row-lane folding actually pay.
fn bench_optimized_replay(c: &mut Criterion) {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for (kind, net) in single_layer_nets() {
        let input = net.random_input(9);
        let prepared = accel.prepare(&net).expect("prepare");
        let mut optimized = prepared.session();
        optimized.set_optimized_replay(true);
        let mut recorded = prepared.session();
        for _ in 0..16 {
            let _ = optimized.infer_ref(&input).expect("warm-up");
            let _ = recorded.infer_ref(&input).expect("warm-up");
        }
        let mut g = c.benchmark_group(format!("optimized_{kind}"));
        g.sample_size(500);
        g.bench_function("optimized", |b| {
            b.iter(|| {
                black_box(
                    optimized
                        .infer_ref(&input)
                        .expect("optimized")
                        .stats()
                        .cycles(),
                )
            })
        });
        g.bench_function("recorded", |b| {
            b.iter(|| {
                black_box(
                    recorded
                        .infer_ref(&input)
                        .expect("recorded")
                        .stats()
                        .cycles(),
                )
            })
        });
        g.finish();
    }
}

/// The marginal cost of one autotuner grid-point evaluation with the
/// network already prepared: a full simulator run plus the three
/// protection-level energy re-costings and the area model. This is what
/// each of the tuner's hundreds of points pays after the prepared-
/// network cache absorbs `prepare`, and it must stay well under a
/// millisecond for the design-space sweep to be interactive.
fn bench_tuner_point(c: &mut Criterion) {
    use shidiannao_core::area::area_with_protection;
    use shidiannao_core::energy::EnergyModel;

    let net = shidiannao_cnn::zoo::lenet5().build(2015).expect("builds");
    let cfg = AcceleratorConfig {
        nbin_bytes: 64 * 1024,
        nbout_bytes: 64 * 1024,
        sb_bytes: 128 * 1024,
        ..AcceleratorConfig::with_pe_grid(12, 12)
    };
    let prepared = Accelerator::new(cfg.clone()).prepare(&net).expect("fits");
    let input = net.random_input(9);
    let protections = [
        SramProtection::None,
        SramProtection::Parity,
        SramProtection::Secded,
    ];
    let mut g = c.benchmark_group("tuner");
    g.sample_size(200);
    g.bench_function("point_eval", |b| {
        b.iter(|| {
            let run = prepared.run(&input).expect("runs");
            let total = run.stats().total();
            let mut cost = 0.0f64;
            for p in protections {
                cost += EnergyModel::paper_65nm()
                    .with_sram_protection(p)
                    .charge(&total)
                    .total_nj();
                cost += area_with_protection(&cfg, p).total_mm2();
            }
            black_box((run.stats().cycles(), cost))
        })
    });
    g.finish();
}

/// Batch-1 vs batch-8 through `Session::infer_batch_into`, one layer
/// kind at a time. The batch-8 call runs eight inferences through one
/// schedule replay (lane 0 instrumented, lanes 1–7 value-only), so the
/// interesting ratio is `batch8 / (8 × batch1)` — how much of a lane is
/// pure arithmetic. Separate output vectors keep each call's recycled
/// stacks warm so both sides measure the zero-allocation steady state.
fn bench_batch_lanes(c: &mut Criterion) {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for (kind, net) in single_layer_nets() {
        let inputs: Vec<MapStack<Fx>> = (0..8)
            .map(|i| net.random_input(9 ^ ((i as u64) << 3)))
            .collect();
        let prepared = accel.prepare(&net).expect("prepare");
        let mut session = prepared.session();
        let mut out1 = Vec::new();
        let mut out8 = Vec::new();
        for _ in 0..16 {
            let _ = session
                .infer_batch_into(std::slice::from_ref(&inputs[0]), &mut out1)
                .expect("warm-up");
            let _ = session
                .infer_batch_into(&inputs, &mut out8)
                .expect("warm-up");
        }
        let mut g = c.benchmark_group(format!("batch_{kind}"));
        g.sample_size(200);
        g.bench_function("batch1", |b| {
            b.iter(|| {
                let batch = session
                    .infer_batch_into(std::slice::from_ref(&inputs[0]), &mut out1)
                    .expect("batch1");
                black_box(batch.stats().cycles())
            })
        });
        g.bench_function("batch8", |b| {
            b.iter(|| {
                let batch = session
                    .infer_batch_into(&inputs, &mut out8)
                    .expect("batch8");
                black_box(batch.stats().cycles())
            })
        });
        g.finish();
    }
}

/// The chunked-i16-lane reduction kernel against its scalar reference:
/// the classifier dot product and the window sweep's shifted
/// multiply-accumulate, on sizes matching the zoo's hot layers. The two
/// kernels are bit-identical (the executors' tests prove it); this
/// measures what the vectorized form buys.
fn bench_reduction_kernels(c: &mut Criterion) {
    let vals: Vec<Fx> = (0..256)
        .map(|i| Fx::from_f32((i % 97) as f32 / 97.0 - 0.5))
        .collect();
    let wts: Vec<Fx> = (0..256)
        .map(|i| Fx::from_f32((i % 89) as f32 / 89.0 - 0.5))
        .collect();
    let row: Vec<Fx> = (0..64)
        .map(|i| Fx::from_f32((i % 53) as f32 / 53.0 - 0.5))
        .collect();
    let k = Fx::from_f32(0.375);
    let mut lanes = vec![0i64; 8];
    let mut g = c.benchmark_group("reduction");
    g.sample_size(10_000);
    g.bench_function("dot_lane", |b| {
        b.iter(|| black_box(LaneKernel.dot_raw(&vals, &wts)))
    });
    g.bench_function("dot_scalar", |b| {
        b.iter(|| black_box(ScalarKernel.dot_raw(&vals, &wts)))
    });
    g.bench_function("shifted_mac_lane", |b| {
        b.iter(|| {
            lanes.iter_mut().for_each(|l| *l = 0);
            LaneKernel.shifted_mac(&row, 1, k, &mut lanes);
            black_box(lanes[0])
        })
    });
    g.bench_function("shifted_mac_scalar", |b| {
        b.iter(|| {
            lanes.iter_mut().for_each(|l| *l = 0);
            ScalarKernel.shifted_mac(&row, 1, k, &mut lanes);
            black_box(lanes[0])
        })
    });
    g.finish();
}

/// The XNOR-popcount dot product against the 16-bit lane and scalar
/// kernels, on ±magnitude operands (what a binarized layer actually
/// feeds them). All three are bit-identical on these inputs (the quant
/// crate's certificates prove it); this measures what the 1-bit
/// datapath buys per reduction — the microarchitectural basis for the
/// `WeightPrecision::W1` energy scaling.
fn bench_xnor_kernels(c: &mut Criterion) {
    use shidiannao_quant::{XnorLaneKernel, XnorScalarKernel};

    let val_mag = Fx::from_f32(0.5);
    let wt_mag = Fx::from_f32(0.25);
    let vals: Vec<Fx> = (0..256)
        .map(|i| if (i * 7) % 3 == 0 { val_mag } else { -val_mag })
        .collect();
    let wts: Vec<Fx> = (0..256)
        .map(|i| if (i * 11) % 5 < 2 { wt_mag } else { -wt_mag })
        .collect();
    let xs = XnorScalarKernel::new(val_mag, wt_mag);
    let xl = XnorLaneKernel::new(val_mag, wt_mag);
    let mut g = c.benchmark_group("xnor");
    g.sample_size(10_000);
    g.bench_function("dot_xnor_lane", |b| {
        b.iter(|| black_box(xl.dot_raw(&vals, &wts)))
    });
    g.bench_function("dot_xnor_scalar", |b| {
        b.iter(|| black_box(xs.dot_raw(&vals, &wts)))
    });
    g.bench_function("dot_i16_lane", |b| {
        b.iter(|| black_box(LaneKernel.dot_raw(&vals, &wts)))
    });
    g.finish();
}

/// One binarized front-end inference vs one full-precision LeNet-5
/// inference through the prepared session — the wall-clock version of
/// the cascade's per-region cycle advantage (`harness cascade` gates
/// the modeled ratio at ≥ 4x).
fn bench_front_vs_full(c: &mut Criterion) {
    use shidiannao_quant::cascade::{binary_front, full_stage};
    use shidiannao_serve::binarize_pixel;

    let front = binary_front(42).expect("binarizes");
    let full = full_stage(42).expect("builds");
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let front_prepared = accel.prepare(&front.network).expect("prepare front");
    let full_prepared = accel.prepare(&full).expect("prepare full");
    let raw = full.random_input(9);
    let bin = raw.map(|&px| binarize_pixel(px));
    let mut front_session = front_prepared.session();
    let mut full_session = full_prepared.session();
    for _ in 0..16 {
        let _ = front_session.infer_ref(&bin).expect("warm-up");
        let _ = full_session.infer_ref(&raw).expect("warm-up");
    }
    let mut g = c.benchmark_group("cascade_stage");
    g.sample_size(200);
    g.bench_function("front_w1", |b| {
        b.iter(|| {
            black_box(
                front_session
                    .infer_ref(&bin)
                    .expect("front")
                    .stats()
                    .cycles(),
            )
        })
    });
    g.bench_function("full_lenet5", |b| {
        b.iter(|| black_box(full_session.infer_ref(&raw).expect("full").stats().cycles()))
    });
    g.finish();
}

/// Per-region frame differencing — the sensor-side cost every video
/// frame pays before any gating decision. `observe_clean` diffs a frame
/// against an identical predecessor (steady state of a static scene);
/// `observe_dirty` alternates two frames of a panning scene so every
/// region crosses the threshold.
fn bench_frame_diff(c: &mut Criterion) {
    use shidiannao_sensor::{FrameDelta, FrameSource, Motion, RegionGrid, VideoSensor};

    let grid = RegionGrid::new((60, 60), (20, 20), (20, 20));
    let mut cam = VideoSensor::new(60, 60, 7, Motion::Static);
    let frame = cam.next_frame();
    let mut pan = VideoSensor::new(60, 60, 7, Motion::Pan { dx: 3, dy: 1 });
    let (pan_a, pan_b) = (pan.next_frame(), pan.next_frame());
    let mut delta = FrameDelta::new(grid, 8);
    delta.observe(&frame).expect("dims match");
    let mut pan_delta = FrameDelta::new(grid, 8);
    pan_delta.observe(&pan_a).expect("dims match");
    let mut flip = false;
    let mut g = c.benchmark_group("frame_diff");
    g.sample_size(10_000);
    g.bench_function("observe_clean", |b| {
        b.iter(|| black_box(delta.observe(&frame).expect("dims match").dirty_count()))
    });
    g.bench_function("observe_dirty", |b| {
        b.iter(|| {
            flip = !flip;
            let f = if flip { &pan_b } else { &pan_a };
            black_box(pan_delta.observe(f).expect("dims match").dirty_count())
        })
    });
    g.finish();
}

/// Cross-frame NBin residency: a warm `infer_delta_ref` repeat of an
/// unchanged input (hash-compare every row, stream none) against the
/// plain cold-load `infer_ref` (stream every row). The gap is what the
/// video pipeline's per-region residency buys on a static region.
fn bench_delta_load(c: &mut Criterion) {
    use shidiannao_core::NbResidency;

    let net = NetworkBuilder::new("delta", 1, (16, 16))
        .conv(ConvSpec::new(4, (5, 5)))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(10))
        .build(7)
        .expect("valid network");
    let input = net.random_input(9);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("prepare");
    let mut warm = prepared.session();
    let mut residency = NbResidency::new();
    let mut cold = prepared.session();
    for _ in 0..16 {
        let _ = warm
            .infer_delta_ref(&input, &mut residency)
            .expect("warm-up");
        let _ = cold.infer_ref(&input).expect("warm-up");
    }
    let mut g = c.benchmark_group("delta_load");
    g.sample_size(200);
    g.bench_function("warm_delta", |b| {
        b.iter(|| {
            let (inf, dl) = warm.infer_delta_ref(&input, &mut residency).expect("delta");
            black_box((inf.stats().cycles(), dl.rows_streamed))
        })
    });
    g.bench_function("cold_load", |b| {
        b.iter(|| black_box(cold.infer_ref(&input).expect("cold").stats().cycles()))
    });
    g.finish();
}

/// Steady-state cost of one static-scene video frame: every region
/// clean, every result replayed from cache. With the oracle off and no
/// forced refresh this is the frame-diff pass plus the calibrated
/// compare-only accounting — the per-frame floor the motion gate can
/// reach.
fn bench_video_replay(c: &mut Criterion) {
    use shidiannao::video::{VideoConfig, VideoPipeline};
    use shidiannao_sensor::{FrameSource, Motion, RegionGrid, VideoSensor};

    let net = shidiannao_cnn::zoo::gabor().build(1).expect("builds");
    let grid = RegionGrid::new((60, 60), net.input_dims(), (20, 20));
    let config = VideoConfig {
        refresh_interval: 0,
        oracle: false,
        ..VideoConfig::default()
    };
    let mut pipe = VideoPipeline::new(
        Accelerator::new(AcceleratorConfig::paper()),
        net,
        grid,
        config,
    )
    .expect("valid pipeline");
    let mut cam = VideoSensor::new(60, 60, 7, Motion::Static);
    let frame = cam.next_frame();
    for _ in 0..4 {
        let _ = pipe.process_frame(&frame).expect("warm-up");
    }
    let mut g = c.benchmark_group("video");
    g.sample_size(200);
    g.bench_function("static_replay", |b| {
        b.iter(|| {
            let report = pipe.process_frame(&frame).expect("frame");
            black_box((report.total_cycles(), report.ledger().skipped))
        })
    });
    g.finish();
}

criterion_group!(
    hot_path,
    bench_nb_read_modes,
    bench_sb_broadcast,
    bench_small_inference,
    bench_schedule_replay,
    bench_optimized_replay,
    bench_tuner_point,
    bench_batch_lanes,
    bench_reduction_kernels,
    bench_xnor_kernels,
    bench_front_vs_full,
    bench_frame_diff,
    bench_delta_load,
    bench_video_replay
);
criterion_main!(hot_path);
