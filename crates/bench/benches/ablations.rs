//! Ablation benches for the design choices DESIGN.md calls out:
//! inter-PE propagation, PE-array sizing, FIFO depth vs stride, and the
//! 61-bit HFSM instruction encoding vs a raw per-cycle control store.

use criterion::{criterion_group, criterion_main, Criterion};
use shidiannao_bench::experiments::SEED;
use shidiannao_cnn::{zoo, ConvSpec, NetworkBuilder};
use shidiannao_core::compiler::{compile, raw_control_store_bytes};
use shidiannao_core::{Accelerator, AcceleratorConfig};
use std::hint::black_box;

/// Inter-PE propagation on/off: same results, different NBin traffic and
/// (host-side) simulation cost.
fn ablation_propagation(c: &mut Criterion) {
    let net = zoo::lenet5().build(SEED).unwrap();
    let input = net.random_input(SEED);
    let mut g = c.benchmark_group("ablation_propagation");
    g.sample_size(10);
    for (label, cfg) in [
        ("with", AcceleratorConfig::paper()),
        ("without", AcceleratorConfig::paper().without_propagation()),
    ] {
        let accel = Accelerator::new(cfg);
        let reads = accel
            .run(&net, &input)
            .unwrap()
            .stats()
            .total()
            .nbin
            .read_bytes;
        println!("ablation_propagation/{label}: {reads} NBin bytes read");
        g.bench_function(label, |b| {
            b.iter(|| black_box(accel.run(&net, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

/// PE-array sweep around the 8×8 design point.
fn ablation_pe_sweep(c: &mut Criterion) {
    let net = zoo::lenet5().build(SEED).unwrap();
    let input = net.random_input(SEED);
    let mut g = c.benchmark_group("ablation_pe_sweep");
    g.sample_size(10);
    for side in [4usize, 8, 12, 16] {
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(side, side));
        let run = accel.run(&net, &input).unwrap();
        println!(
            "ablation_pe_sweep/{side}x{side}: {} cycles, {:.1}% PE utilization",
            run.stats().cycles(),
            100.0 * run.stats().total().pe_utilization()
        );
        g.bench_function(format!("{side}x{side}"), |b| {
            b.iter(|| black_box(accel.run(&net, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

/// FIFO depth requirement tracks the stride (§5.1 sizing).
fn ablation_fifo_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fifo_depth");
    g.sample_size(10);
    for (sx, sy) in [(1usize, 1usize), (2, 2), (3, 3)] {
        let net = NetworkBuilder::new("fifo", 1, (33, 33))
            .conv(ConvSpec::new(2, (7, 7)).with_stride((sx, sy)))
            .build(SEED)
            .unwrap();
        let input = net.random_input(SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let total = accel.run(&net, &input).unwrap().stats().total();
        println!(
            "ablation_fifo_depth/stride{sx}x{sy}: FIFO-H peak {}, FIFO-V peak {}",
            total.fifo_h_peak, total.fifo_v_peak
        );
        assert_eq!((total.fifo_h_peak, total.fifo_v_peak), (sx, sy));
        g.bench_function(format!("stride{sx}x{sy}"), |b| {
            b.iter(|| black_box(accel.run(&net, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

/// The §7.2 instruction-encoding argument: 61-bit HFSM instructions vs a
/// raw 97-bit-per-cycle control store.
fn ablation_isa_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_isa_size");
    for builder in zoo::all() {
        let net = builder.build(SEED).unwrap();
        let program = compile(&net).unwrap();
        let input = net.random_input(SEED);
        let cycles = Accelerator::new(AcceleratorConfig::paper())
            .run(&net, &input)
            .unwrap()
            .stats()
            .cycles();
        println!(
            "ablation_isa_size/{}: {} B compiled vs {} B raw control store ({}x smaller)",
            net.name(),
            program.bytes(),
            raw_control_store_bytes(cycles),
            raw_control_store_bytes(cycles) / program.bytes() as u64
        );
    }
    let net = zoo::lenet5().build(SEED).unwrap();
    g.bench_function("compile_lenet5", |b| {
        b.iter(|| black_box(compile(&net).unwrap().bytes()))
    });
    g.finish();
}

/// The §10.2 rejected alternative: multi-map packing. Faster on
/// small-map benchmarks, but with multiplied per-cycle buffer traffic —
/// the paper's "poor trade-off", quantified.
fn ablation_multimap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_multimap");
    g.sample_size(10);
    for name in ["CNP", "SimpleConv", "LeNet-5"] {
        let net = zoo::by_name(name).unwrap().build(SEED).unwrap();
        let input = net.random_input(SEED);
        for (label, cfg) in [
            ("baseline", AcceleratorConfig::paper()),
            (
                "packed",
                AcceleratorConfig::paper().with_multi_map_packing(),
            ),
        ] {
            let accel = Accelerator::new(cfg);
            let run = accel.run(&net, &input).unwrap();
            let t = run.stats().total();
            println!(
                "ablation_multimap/{name}/{label}: {} cycles, {:.1}% util, {:.1} SB B/cycle",
                run.stats().cycles(),
                100.0 * t.pe_utilization(),
                t.sb.read_bytes as f64 / t.cycles as f64
            );
            g.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| black_box(accel.run(&net, &input).unwrap().stats().cycles()))
            });
        }
    }
    g.finish();
}

/// Bank-conflict stalls: zero for the stride-1 benchmarks (the six read
/// modes are conflict-free by design), measurable for strided workloads.
fn ablation_bank_conflicts(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bank_conflicts");
    g.sample_size(10);
    for name in ["LeNet-5", "SimpleConv"] {
        let net = zoo::by_name(name).unwrap().build(SEED).unwrap();
        let input = net.random_input(SEED);
        let ideal = Accelerator::new(AcceleratorConfig::paper());
        let stalled = Accelerator::new(AcceleratorConfig::paper().with_bank_conflicts());
        let i = ideal.run(&net, &input).unwrap();
        let s = stalled.run(&net, &input).unwrap();
        println!(
            "ablation_bank_conflicts/{name}: {} ideal cycles, {} conflict stalls ({:+.1}%)",
            i.stats().cycles(),
            i.stats().total().bank_conflict_cycles,
            100.0 * (s.stats().cycles() as f64 / i.stats().cycles() as f64 - 1.0)
        );
        g.bench_function(format!("{name}/stalled"), |b| {
            b.iter(|| black_box(stalled.run(&net, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

/// Weight-precision sweep: the §5 storage/accuracy knob. The datapath
/// stays 16-bit; weights are requantized to narrower storage formats and
/// the output deviation from full precision is reported (narrower weights
/// would shrink the 128 KB SB proportionally).
fn ablation_weight_precision(c: &mut Criterion) {
    let net = zoo::lenet5().build(SEED).unwrap();
    let input = net.random_input(SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let full = accel.run(&net, &input).unwrap().output();
    let mut g = c.benchmark_group("ablation_weight_precision");
    g.sample_size(10);
    for (bits, frac) in [(16u32, 8u32), (12, 8), (8, 7), (6, 5), (4, 3)] {
        let q = net.quantize_weights(bits, frac);
        let out = accel.run(&q, &input).unwrap().output();
        let max_err = full
            .iter()
            .zip(&out)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0f32, f32::max);
        println!(
            "ablation_weight_precision/Q{bits}.{frac}: max output deviation {max_err:.4} \
             (SB would shrink to {:.0} KB)",
            128.0 * bits as f64 / 16.0
        );
        g.bench_function(format!("Q{bits}.{frac}"), |b| {
            b.iter(|| black_box(accel.run(&q, &input).unwrap().stats().cycles()))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_propagation,
    ablation_pe_sweep,
    ablation_fifo_depth,
    ablation_isa_size,
    ablation_multimap,
    ablation_bank_conflicts,
    ablation_weight_precision
);
criterion_main!(ablations);
