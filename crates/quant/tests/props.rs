//! Property-based tests for the quantization subsystem: pack/unpack
//! round trips, XNOR-vs-scalar bit identity across random shapes, and
//! cascade determinism.

use proptest::prelude::*;
use shidiannao_core::kernel::{LaneKernel, ScalarKernel, ValueKernel};
use shidiannao_fixed::Fx;
use shidiannao_quant::{
    cascade::{run_cascade, CascadeConfig},
    pack::pack_signs,
    PackedWeights, WeightPrecision, XnorLaneKernel, XnorScalarKernel,
};

/// Deterministic level sampler shared by the pack properties.
fn levels(precision: WeightPrecision, scale_bits: i16, seed: u64, n: usize) -> Vec<Fx> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let r = z ^ (z >> 31);
            let lv = match precision {
                WeightPrecision::W1 => [scale_bits, -scale_bits][(r % 2) as usize],
                WeightPrecision::W2 => {
                    [scale_bits, -scale_bits, 3 * scale_bits, -3 * scale_bits][(r % 4) as usize]
                }
                WeightPrecision::W16 => unreachable!(),
            };
            Fx::from_bits(lv)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn one_bit_pack_round_trips_exactly(
        n in 0usize..300,
        scale_bits in 1i16..2000,
        seed in 0u64..1_000_000,
    ) {
        let scale = Fx::from_bits(scale_bits);
        let wts = levels(WeightPrecision::W1, scale_bits, seed, n);
        let packed = PackedWeights::pack(&wts, WeightPrecision::W1, scale).unwrap();
        prop_assert_eq!(packed.unpack(), wts);
        prop_assert_eq!(packed.sb_bytes(), n.div_ceil(8));
        prop_assert_eq!(packed.planes().len(), 1);
    }

    #[test]
    fn two_bit_pack_round_trips_exactly(
        n in 0usize..300,
        scale_bits in 1i16..2000,
        seed in 0u64..1_000_000,
    ) {
        let scale = Fx::from_bits(scale_bits);
        let wts = levels(WeightPrecision::W2, scale_bits, seed, n);
        let packed = PackedWeights::pack(&wts, WeightPrecision::W2, scale).unwrap();
        prop_assert_eq!(packed.unpack(), wts);
        prop_assert_eq!(packed.sb_bytes(), (2 * n).div_ceil(8));
        prop_assert_eq!(packed.planes().len(), 2);
    }

    #[test]
    fn packed_dot_equals_the_sixteen_bit_kernels(
        n in 1usize..300,
        scale_bits in 1i16..2000,
        val_bits in 1i16..2000,
        seed in 0u64..1_000_000,
        two_bit in 0u8..2,
    ) {
        let precision = if two_bit == 1 { WeightPrecision::W2 } else { WeightPrecision::W1 };
        let scale = Fx::from_bits(scale_bits);
        let val_mag = Fx::from_bits(val_bits);
        let wts = levels(precision, scale_bits, seed, n);
        let vals = levels(WeightPrecision::W1, val_bits, seed ^ 0xffff, n);
        let packed = PackedWeights::pack(&wts, precision, scale).unwrap();
        let want = ScalarKernel.dot_raw(&vals, &wts);
        prop_assert_eq!(packed.dot_raw_packed(&pack_signs(&vals), val_mag), want);
        prop_assert_eq!(LaneKernel.dot_raw(&vals, &wts), want);
    }

    #[test]
    fn xnor_lane_is_bit_identical_to_xnor_scalar_and_the_engine_kernels(
        n in 1usize..300,
        stride in 1usize..4,
        val_bits in 1i16..3000,
        wt_bits in 1i16..3000,
        seed in 0u64..1_000_000,
    ) {
        let val_mag = Fx::from_bits(val_bits);
        let wt_mag = Fx::from_bits(wt_bits);
        let vals = levels(WeightPrecision::W1, val_bits, seed, n);
        let wts = levels(WeightPrecision::W1, wt_bits, seed ^ 0xaaaa, n);
        let xs = XnorScalarKernel::new(val_mag, wt_mag);
        let xl = XnorLaneKernel::new(val_mag, wt_mag);

        let want = ScalarKernel.dot_raw(&vals, &wts);
        prop_assert_eq!(xs.dot_raw(&vals, &wts), want);
        prop_assert_eq!(xl.dot_raw(&vals, &wts), want);

        let lanes = (n - 1) / stride + 1;
        let k = if seed % 2 == 0 { wt_mag } else { -wt_mag };
        let mut m_ref = vec![0i64; lanes];
        let mut m_xs = vec![0i64; lanes];
        let mut m_xl = vec![0i64; lanes];
        ScalarKernel.shifted_mac(&vals, stride, k, &mut m_ref);
        xs.shifted_mac(&vals, stride, k, &mut m_xs);
        xl.shifted_mac(&vals, stride, k, &mut m_xl);
        prop_assert_eq!(&m_xs, &m_ref);
        prop_assert_eq!(&m_xl, &m_ref);

        let mut s_ref = vec![0i64; lanes];
        let mut s_xl = vec![0i64; lanes];
        ScalarKernel.shifted_sum(&vals, stride, &mut s_ref);
        xl.shifted_sum(&vals, stride, &mut s_xl);
        prop_assert_eq!(&s_xl, &s_ref);

        let mut c_ref = vec![Fx::MIN; lanes];
        let mut c_xl = vec![Fx::MIN; lanes];
        ScalarKernel.shifted_max(&vals, stride, &mut c_ref);
        xl.shifted_max(&vals, stride, &mut c_xl);
        prop_assert_eq!(&c_xl, &c_ref);
    }

}

proptest! {
    // Each case prepares both stages twice; a handful of cases is
    // plenty to pin determinism across seeds and thresholds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cascade_is_a_pure_function_of_its_config(
        seed in 0u64..16,
        threshold_bits in -30i16..120,
    ) {
        let mut cfg = CascadeConfig::smoke();
        cfg.frames = 1;
        cfg.seed = 2015 + seed;
        cfg.threshold = Fx::from_bits(threshold_bits);
        let a = run_cascade(&cfg).unwrap();
        let b = run_cascade(&cfg).unwrap();
        prop_assert_eq!(&a, &b);
        // The escalation set is exactly the above-threshold set, and the
        // aggregates follow from it.
        let escalated: Vec<bool> =
            a.regions.iter().map(|r| r.front_score >= cfg.threshold).collect();
        prop_assert_eq!(
            escalated.iter().filter(|&&e| e).count(),
            a.escalated
        );
        for (r, e) in a.regions.iter().zip(&escalated) {
            prop_assert_eq!(r.escalated(), *e);
        }
        prop_assert_eq!(
            a.cascade_cycles,
            a.front_cycles * a.regions.len() as u64 + a.full_cycles * a.escalated as u64
        );
        prop_assert!(a.front_bit_identical && a.full_bit_identical);
    }
}
