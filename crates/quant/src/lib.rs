//! Binary and low-bit execution modes for the ShiDianNao simulator, and
//! the sensor-side early-exit cascade they unlock.
//!
//! The paper's thesis is moving vision processing next to the sensor;
//! the related work (PISA, convolution-in-pixel sensors) pushes one step
//! further: a binary CNN front-end *in* the sensor that scores every
//! region tile, with full-precision escalation only for the interesting
//! ones. This crate builds that precision axis end to end:
//!
//! * [`pack`] — 1-bit and 2-bit SB weight packing (sign bit-planes in
//!   `u64` words plus a per-group magnitude), exact round trip back to
//!   the 16-bit fixed-point store,
//! * [`kernel`] — the XNOR-popcount value kernels implementing the same
//!   [`ValueKernel`](shidiannao_core::kernel::ValueKernel) trait the
//!   engine's `LaneKernel`/`ScalarKernel` pair implements, certified
//!   bit-identical to each other *and* to the 16-bit kernels on
//!   sign-binarized operands,
//! * [`quantize`] — sign/threshold binarization of trained zoo weights
//!   (per-output-map magnitudes, 1-bit or 2-bit levels) plus the
//!   PLA-based activation binarizer and the accuracy study against the
//!   floating-point golden model,
//! * [`cascade`] — the two-stage early-exit cascade over sensor region
//!   tiles: a binarized front-end network scores every region, only
//!   scores above the escalation threshold run the full-precision
//!   network, and both stages carry simulator-vs-golden bit-identity
//!   certificates.
//!
//! # Why quantized networks replay recorded schedules unchanged
//!
//! Binarization keeps every weight an ordinary [`Fx`] value (`±α`, or
//! the four 2-bit levels `{±1, ±3}·α`), so a quantized network is an
//! ordinary `shidiannao_cnn::Network`: `prepare()` compiles it, the
//! recorded micro-op schedule replays it, and the simulator stays
//! bit-identical to the fixed-point golden reference with **zero**
//! changes to the engine. What the XNOR kernels add is the proof that a
//! real 1-bit datapath computes the *same raw sums* the 16-bit lane
//! kernel computes on those operands — which is what justifies charging
//! the cheaper per-precision energy/area
//! ([`WeightPrecision`](shidiannao_core::WeightPrecision) scaling in
//! `EnergyModel`/`area_with_precision`) against the unchanged cycle
//! counts.

// Quantized paths report failures as typed `QuantError`s rather than
// panicking; contract violations still use `assert!`/`.expect()` which
// these lints deliberately do not cover.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use core::fmt;

pub mod cascade;
pub mod kernel;
pub mod pack;
pub mod quantize;

pub use cascade::{
    binary_front, cascade_tenants, full_stage, run_cascade, CascadeConfig, CascadeOutcome,
    CascadeReport, RegionOutcome,
};
pub use kernel::{certify_xnor, XnorLaneKernel, XnorScalarKernel};
pub use pack::PackedWeights;
pub use quantize::{
    accuracy_study, binarize_stack, quantize_network, sign_pla, AccuracyRow, QuantizedNetwork,
};

// Re-export the precision vocabulary so downstream crates can scale
// energy/area without naming `shidiannao-core` directly.
pub use shidiannao_core::WeightPrecision;

/// A failure in a quantized path.
#[derive(Clone, Debug, PartialEq)]
pub enum QuantError {
    /// A value cannot be packed at the requested precision (not one of
    /// the precision's representable levels for the group's magnitude).
    Pack {
        /// What was wrong.
        reason: String,
    },
    /// The requested precision is not a packed one (`W16` cannot be
    /// bit-plane packed).
    UnpackedPrecision,
    /// Building or rewriting a network failed.
    Network(shidiannao_cnn::NetworkError),
    /// The simulator rejected a quantized run (typed `RunError` from
    /// `prepare()`/`Session`).
    Run(shidiannao_core::RunError),
    /// A sensor region did not fit its frame.
    Stream(shidiannao_sensor::StreamError),
    /// Building the cascade's serve tenants failed.
    Serve(shidiannao_serve::ServeError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Pack { reason } => write!(f, "packing failed: {reason}"),
            QuantError::UnpackedPrecision => {
                write!(
                    f,
                    "16-bit weights are stored directly, not bit-plane packed"
                )
            }
            QuantError::Network(e) => write!(f, "network error: {e}"),
            QuantError::Run(e) => write!(f, "run error: {e}"),
            QuantError::Stream(e) => write!(f, "stream error: {e}"),
            QuantError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for QuantError {}

impl From<shidiannao_cnn::NetworkError> for QuantError {
    fn from(e: shidiannao_cnn::NetworkError) -> QuantError {
        QuantError::Network(e)
    }
}

impl From<shidiannao_core::RunError> for QuantError {
    fn from(e: shidiannao_core::RunError) -> QuantError {
        QuantError::Run(e)
    }
}

impl From<shidiannao_sensor::StreamError> for QuantError {
    fn from(e: shidiannao_sensor::StreamError) -> QuantError {
        QuantError::Stream(e)
    }
}

impl From<shidiannao_serve::ServeError> for QuantError {
    fn from(e: shidiannao_serve::ServeError) -> QuantError {
        QuantError::Serve(e)
    }
}
