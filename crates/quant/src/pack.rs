//! Bit-plane weight packing for the SB.
//!
//! The paper stores 16-bit weights in the synapse buffer; the binary
//! execution mode stores one sign bit per weight (W1) or two bits per
//! weight (W2) plus one shared magnitude per weight group. This module
//! is the storage half of that claim: [`PackedWeights`] holds the
//! planes, round-trips back to the exact `Fx` values, and reports the
//! packed SB footprint the per-precision energy/area scaling charges.
//!
//! # Encoding
//!
//! Both precisions store sign bit-planes in `u64` words, weight `i` at
//! bit `i % 64` of word `i / 64` (bit set ⇔ the factor is `+1`):
//!
//! * **W1** — one plane; weight `i` is `±α` where `α` is the group
//!   scale: `w = b₀·α`, `b₀ ∈ {−1, +1}`.
//! * **W2** — two planes; `w = (2·b₁ + b₀)·s` with `b₁, b₀ ∈ {−1, +1}`,
//!   which spans the four levels `{−3, −1, +1, +3}·s` for step `s`.
//!   `b₁` is the sign; `b₀` distinguishes the outer magnitude on the
//!   positive side and the inner one on the negative side.
//!
//! The scale is itself an ordinary `Fx`, so unpacking reproduces the
//! exact 16-bit values the quantizer wrote into the network — packing
//! is lossless *given* quantized weights, and [`PackedWeights::pack`]
//! rejects any weight that is not one of the precision's levels.

use shidiannao_fixed::Fx;

use crate::QuantError;
use shidiannao_core::WeightPrecision;

/// The sign predicate shared by the packer and the XNOR kernels: zero
/// packs as `+1`, matching `Fx::to_bits() >= 0`.
#[inline]
pub fn sign_is_positive(v: Fx) -> bool {
    v.to_bits() >= 0
}

/// Packs the signs of a slice into `u64` words, element `i` at bit
/// `i % 64` of word `i / 64` (set ⇔ non-negative). This is the load the
/// XNOR lane kernel does per 64-element chunk, exposed so benches and
/// tests can stage operands exactly as the datapath would see them.
pub fn pack_signs(vals: &[Fx]) -> Vec<u64> {
    let mut words = vec![0u64; vals.len().div_ceil(64)];
    for (i, &v) in vals.iter().enumerate() {
        if sign_is_positive(v) {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

/// A weight group packed at 1 or 2 bits per weight.
///
/// # Examples
///
/// ```
/// use shidiannao_fixed::Fx;
/// use shidiannao_quant::{PackedWeights, WeightPrecision};
///
/// let alpha = Fx::from_f32(0.25);
/// let wts = vec![alpha, -alpha, -alpha, alpha, alpha];
/// let packed = PackedWeights::pack(&wts, WeightPrecision::W1, alpha).unwrap();
/// assert_eq!(packed.unpack(), wts); // exact round trip
/// assert_eq!(packed.sb_bytes(), 1); // 5 sign bits vs 10 bytes at 16-bit
/// assert_eq!(packed.baseline_sb_bytes(), 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedWeights {
    precision: WeightPrecision,
    /// Group magnitude: `α` for W1, the step `s` for W2.
    scale: Fx,
    len: usize,
    /// One plane for W1 (`b₀`), two for W2 (`b₁` then `b₀`).
    planes: Vec<Vec<u64>>,
}

impl PackedWeights {
    /// Packs `wts` at `precision` with the given group scale.
    ///
    /// Every weight must be exactly one of the precision's levels for
    /// that scale (`±scale` for W1; `{±1, ±3}·scale` for W2) — the
    /// quantizer guarantees this; anything else is a [`QuantError::Pack`].
    /// `W16` is stored directly in the SB, not bit-plane packed, and
    /// returns [`QuantError::UnpackedPrecision`].
    pub fn pack(
        wts: &[Fx],
        precision: WeightPrecision,
        scale: Fx,
    ) -> Result<PackedWeights, QuantError> {
        if precision == WeightPrecision::W16 {
            return Err(QuantError::UnpackedPrecision);
        }
        let s = scale.to_bits();
        if s <= 0 {
            return Err(QuantError::Pack {
                reason: format!("scale must be positive, got {scale}"),
            });
        }
        let words = wts.len().div_ceil(64);
        let mut planes = match precision {
            WeightPrecision::W1 => vec![vec![0u64; words]],
            WeightPrecision::W2 => vec![vec![0u64; words], vec![0u64; words]],
            WeightPrecision::W16 => unreachable!("rejected above"),
        };
        for (i, &w) in wts.iter().enumerate() {
            let wb = i32::from(w.to_bits());
            let sb = i32::from(s);
            let bit = 1u64 << (i % 64);
            match precision {
                WeightPrecision::W1 => {
                    // w = b₀·α.
                    if wb == sb {
                        planes[0][i / 64] |= bit;
                    } else if wb != -sb {
                        return Err(QuantError::Pack {
                            reason: format!("weight {w} is not ±{scale} (index {i})"),
                        });
                    }
                }
                WeightPrecision::W2 => {
                    // w = (2·b₁ + b₀)·s: +3s → (+,+), +s → (+,−),
                    // −s → (−,+), −3s → (−,−).
                    let (b1, b0) = if wb == 3 * sb {
                        (true, true)
                    } else if wb == sb {
                        (true, false)
                    } else if wb == -sb {
                        (false, true)
                    } else if wb == -3 * sb {
                        (false, false)
                    } else {
                        return Err(QuantError::Pack {
                            reason: format!("weight {w} is not (±1|±3)·{scale} (index {i})"),
                        });
                    };
                    if b1 {
                        planes[0][i / 64] |= bit;
                    }
                    if b0 {
                        planes[1][i / 64] |= bit;
                    }
                }
                WeightPrecision::W16 => unreachable!("rejected above"),
            }
        }
        Ok(PackedWeights {
            precision,
            scale,
            len: wts.len(),
            planes,
        })
    }

    /// Reconstructs the exact `Fx` weight values.
    pub fn unpack(&self) -> Vec<Fx> {
        let s = i32::from(self.scale.to_bits());
        (0..self.len)
            .map(|i| {
                let bit = |p: usize| (self.planes[p][i / 64] >> (i % 64)) & 1 == 1;
                let level = match self.precision {
                    WeightPrecision::W1 => {
                        if bit(0) {
                            1
                        } else {
                            -1
                        }
                    }
                    WeightPrecision::W2 => {
                        let b1: i32 = if bit(0) { 1 } else { -1 };
                        let b0: i32 = if bit(1) { 1 } else { -1 };
                        2 * b1 + b0
                    }
                    WeightPrecision::W16 => unreachable!("pack() rejects W16"),
                };
                // Levels are at most ±3·scale; the quantizer keeps the
                // step small enough that this cannot leave i16 (it
                // packed the same product as an Fx to begin with).
                Fx::from_bits((level * s) as i16)
            })
            .collect()
    }

    /// The packed precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The group magnitude (`α` for W1, the step for W2).
    pub fn scale(&self) -> Fx {
        self.scale
    }

    /// Number of packed weights.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit-planes (`[b₀]` for W1, `[b₁, b₀]` for W2).
    pub fn planes(&self) -> &[Vec<u64>] {
        &self.planes
    }

    /// SB bytes this group occupies packed: `⌈len·bits/8⌉` (the shared
    /// scale rides in the layer descriptor, not the SB).
    pub fn sb_bytes(&self) -> usize {
        (self.len * self.precision.bits() as usize).div_ceil(8)
    }

    /// SB bytes the same group occupies in the 16-bit store.
    pub fn baseline_sb_bytes(&self) -> usize {
        self.len * 2
    }

    /// Raw Q*.16 dot product straight off the packed planes against a
    /// sign-binarized value vector (`vals[i] = ±val_mag`), via
    /// XNOR-popcount per plane. Bit-identical to unpacking and running
    /// the 16-bit kernel — see `kernel` for the argument.
    ///
    /// # Panics
    ///
    /// Panics if `val_signs` has fewer sign words than packed weights.
    pub fn dot_raw_packed(&self, val_signs: &[u64], val_mag: Fx) -> i64 {
        assert!(
            val_signs.len() >= self.len.div_ceil(64),
            "sign words shorter than packed group"
        );
        let mv = i64::from(val_mag.to_bits());
        let ms = i64::from(self.scale.to_bits());
        // Σ signᵥ·signᵤ per plane, via popcount of XNOR. The last
        // word's padding bits cancel by masking both operands.
        let plane_s = |plane: &[u64]| -> i64 {
            let mut s = 0i64;
            for (i, (&a, &b)) in val_signs.iter().zip(plane).enumerate() {
                let valid = self.len - i * 64;
                let mask = if valid >= 64 {
                    u64::MAX
                } else {
                    (1u64 << valid) - 1
                };
                let matches = (!(a ^ b) & mask).count_ones() as i64;
                s += 2 * matches - (valid.min(64) as i64);
            }
            s
        };
        match self.precision {
            WeightPrecision::W1 => plane_s(&self.planes[0]) * mv * ms,
            // Σ v·(2b₁+b₀)·s = (2·s₁ + s₀)·v·s.
            WeightPrecision::W2 => {
                (2 * plane_s(&self.planes[0]) + plane_s(&self.planes[1])) * mv * ms
            }
            WeightPrecision::W16 => unreachable!("pack() rejects W16"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_core::kernel::{ScalarKernel, ValueKernel};

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn levels(precision: WeightPrecision, scale: Fx, seed: u64, n: usize) -> Vec<Fx> {
        let s = scale.to_bits();
        let mut st = seed;
        (0..n)
            .map(|_| {
                let r = splitmix(&mut st);
                let lv = match precision {
                    WeightPrecision::W1 => [s, -s][(r % 2) as usize],
                    WeightPrecision::W2 => [s, -s, 3 * s, -3 * s][(r % 4) as usize],
                    WeightPrecision::W16 => unreachable!(),
                };
                Fx::from_bits(lv)
            })
            .collect()
    }

    #[test]
    fn round_trip_is_exact_across_lengths() {
        for precision in [WeightPrecision::W1, WeightPrecision::W2] {
            for n in [0usize, 1, 5, 63, 64, 65, 200] {
                let scale = Fx::from_bits(37);
                let wts = levels(precision, scale, 0x5eed + n as u64, n);
                let packed = PackedWeights::pack(&wts, precision, scale).unwrap();
                assert_eq!(packed.unpack(), wts, "{precision:?} n={n}");
                assert_eq!(packed.len(), n);
                assert_eq!(
                    packed.sb_bytes(),
                    (n * precision.bits() as usize).div_ceil(8)
                );
                assert_eq!(packed.baseline_sb_bytes(), 2 * n);
            }
        }
    }

    #[test]
    fn pack_rejects_off_level_weights_and_w16() {
        let scale = Fx::from_bits(10);
        let bad = [Fx::from_bits(10), Fx::from_bits(11)];
        assert!(matches!(
            PackedWeights::pack(&bad, WeightPrecision::W1, scale),
            Err(QuantError::Pack { .. })
        ));
        assert!(matches!(
            PackedWeights::pack(&bad, WeightPrecision::W2, scale),
            Err(QuantError::Pack { .. })
        ));
        assert_eq!(
            PackedWeights::pack(&[], WeightPrecision::W16, scale),
            Err(QuantError::UnpackedPrecision)
        );
        assert!(matches!(
            PackedWeights::pack(&[], WeightPrecision::W1, Fx::ZERO),
            Err(QuantError::Pack { .. })
        ));
    }

    #[test]
    fn packed_dot_matches_unpacked_scalar_kernel() {
        let val_mag = Fx::from_bits(200);
        for precision in [WeightPrecision::W1, WeightPrecision::W2] {
            for n in [1usize, 7, 64, 100, 129] {
                let scale = Fx::from_bits(21);
                let wts = levels(precision, scale, 0xabc + n as u64, n);
                let vals = levels(WeightPrecision::W1, val_mag, 0xdef ^ n as u64, n);
                let packed = PackedWeights::pack(&wts, precision, scale).unwrap();
                let signs = pack_signs(&vals);
                assert_eq!(
                    packed.dot_raw_packed(&signs, val_mag),
                    ScalarKernel.dot_raw(&vals, &wts),
                    "{precision:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn sign_packing_puts_element_i_at_bit_i() {
        let vals = [Fx::ONE, -Fx::ONE, Fx::ZERO, -Fx::EPSILON];
        // +, −, + (zero is non-negative), −  →  0b0101.
        assert_eq!(pack_signs(&vals), vec![0b0101]);
        assert_eq!(pack_signs(&[]), Vec::<u64>::new());
    }
}
