//! The sensor-side early-exit cascade.
//!
//! This is the deployment the precision axis exists for: a tiny
//! **binarized** front-end network sits next to the sensor and scores
//! every region tile of every frame; only regions whose score clears
//! the escalation threshold are forwarded to the full-precision
//! network. Most of a surveillance-style scene is boring, so most
//! regions stop at the 1-bit stage — the cascade's cycles and energy
//! are `regions·front + escalated·full` against the all-full-precision
//! baseline's `regions·full`.
//!
//! Both stages run on the real simulator (`prepare()` + schedule
//! replay) and both carry bit-identity certificates against the
//! fixed-point golden reference; the front-end additionally charges the
//! W1 energy/area scaling its XNOR datapath earns (see `kernel` for why
//! that is sound). Accuracy is measured against the oracle that runs
//! the full-precision network on *every* region: a miss is an
//! oracle-positive region the front-end declined to escalate.
//!
//! Everything is a pure function of [`CascadeConfig`] — same seed, same
//! outcome set, same report, on any physical thread count (rayon only
//! parallelises the independent per-region inferences).

use std::sync::Arc;

use rayon::prelude::*;
use shidiannao_cnn::{zoo, ConvSpec, FcSpec, Network, NetworkBuilder, PoolSpec};
use shidiannao_core::{Accelerator, AcceleratorConfig, WeightPrecision};
use shidiannao_fixed::Fx;
use shidiannao_sensor::{FrameSource, RegionGrid, SyntheticSensor};
use shidiannao_serve::{binarize_pixel, InputSource, TenantSpec, Traffic};
use shidiannao_tensor::MapStack;

use crate::kernel::certify_xnor;
use crate::quantize::{quantize_network, QuantizedNetwork};
use crate::QuantError;

/// The two-stage cascade scenario: what the sensor sees, how it is
/// tiled, and where the thresholds sit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CascadeConfig {
    /// Sensor seed (drives the synthetic scene).
    pub seed: u64,
    /// Network weight seed (both stages).
    pub net_seed: u64,
    /// Frames to process.
    pub frames: usize,
    /// Sensor frame dimensions.
    pub frame: (usize, usize),
    /// Region tile dimensions (both networks' input size).
    pub region: (usize, usize),
    /// Region tiling stride.
    pub stride: (usize, usize),
    /// Front-end escalation threshold: escalate iff `score ≥ threshold`.
    pub threshold: Fx,
    /// Full-precision decision threshold: a region is *positive* iff
    /// the full network's max output is `≥ decision`.
    pub decision: Fx,
}

impl CascadeConfig {
    /// The CI smoke scenario: 4 frames of 64×64, 3×3 regions each.
    pub fn smoke() -> CascadeConfig {
        CascadeConfig {
            seed: 2015,
            net_seed: 42,
            frames: 4,
            frame: (64, 64),
            region: (32, 32),
            stride: (16, 16),
            // Chosen against the smoke scene's score distributions:
            // front scores span −0.04..0.45 (escalating the top third),
            // full-stage maxima cluster at 0.035..0.047.
            threshold: Fx::from_f32(0.25),
            decision: Fx::from_bits(12),
        }
    }

    /// The full scenario: 16 frames of 96×96, 5×5 regions each.
    pub fn full() -> CascadeConfig {
        CascadeConfig {
            frames: 16,
            frame: (96, 96),
            ..CascadeConfig::smoke()
        }
    }

    /// The region grid this config tiles frames with.
    pub fn grid(&self) -> RegionGrid {
        RegionGrid::new(self.frame, self.region, self.stride)
    }

    /// Regions per frame.
    pub fn regions_per_frame(&self) -> usize {
        self.grid().count()
    }
}

/// The front-end topology before binarization: one conv stage, one
/// pool, one score neuron — deliberately tiny, 32×32 input to match the
/// full-precision network's region size.
pub fn front_end() -> NetworkBuilder {
    NetworkBuilder::new("BinaryFront", 1, (32, 32))
        .conv(ConvSpec::new(4, (5, 5)).with_stride((2, 2)))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(1))
}

/// Builds and binarizes the front-end (`W1`, per-group scales).
pub fn binary_front(net_seed: u64) -> Result<QuantizedNetwork, QuantError> {
    let net = front_end().build(net_seed)?;
    quantize_network(&net, WeightPrecision::W1)
}

/// The full-precision second stage: LeNet-5, whose 32×32 input is
/// exactly one region tile.
pub fn full_stage(net_seed: u64) -> Result<Network, QuantError> {
    Ok(zoo::lenet5().build(net_seed)?)
}

/// What happened to one region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CascadeOutcome {
    /// The front-end score stayed below the threshold; the region never
    /// reached the full-precision network.
    Rejected,
    /// The region escalated; `positive` is the full network's verdict.
    Escalated {
        /// Full-precision decision for the region.
        positive: bool,
    },
}

/// One region's record in the cascade run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionOutcome {
    /// Frame index.
    pub frame: u64,
    /// Region index within the frame (row-major grid order).
    pub index: usize,
    /// Region origin in frame pixels.
    pub origin: (usize, usize),
    /// The front-end's score (its single output neuron).
    pub front_score: Fx,
    /// Rejected or escalated (+ full-precision verdict).
    pub outcome: CascadeOutcome,
    /// The oracle's verdict: full-precision network on this region,
    /// regardless of what the cascade did.
    pub oracle_positive: bool,
}

impl RegionOutcome {
    /// `true` if the region escalated to the full-precision stage.
    pub fn escalated(&self) -> bool {
        matches!(self.outcome, CascadeOutcome::Escalated { .. })
    }
}

/// The complete, deterministic result of a cascade run.
#[derive(Clone, Debug, PartialEq)]
pub struct CascadeReport {
    /// The scenario that produced this report.
    pub config: CascadeConfig,
    /// Every region, frame-major then grid order.
    pub regions: Vec<RegionOutcome>,
    /// Regions that escalated.
    pub escalated: usize,
    /// `escalated / regions`.
    pub escalation_rate: f64,
    /// Cycles per front-end inference (data-independent).
    pub front_cycles: u64,
    /// Cycles per full-precision inference (data-independent).
    pub full_cycles: u64,
    /// Energy per front-end inference at the W1 precision scaling, nJ.
    pub front_energy_nj: f64,
    /// Energy per full-precision inference, nJ.
    pub full_energy_nj: f64,
    /// Total cascade cycles: `regions·front + escalated·full`.
    pub cascade_cycles: u64,
    /// Total cascade energy, nJ.
    pub cascade_energy_nj: f64,
    /// Baseline cycles: every region through the full network.
    pub all_full_cycles: u64,
    /// Baseline energy, nJ.
    pub all_full_energy_nj: f64,
    /// Oracle-positive regions the front-end declined to escalate.
    pub missed_positives: usize,
    /// `missed_positives / regions` — the cascade's accuracy delta vs
    /// running the full network everywhere.
    pub accuracy_delta: f64,
    /// Front-end simulator output == fixed-point golden, every region.
    pub front_bit_identical: bool,
    /// Full-stage simulator output == fixed-point golden, every
    /// escalated region.
    pub full_bit_identical: bool,
    /// XNOR kernels certified bit-identical to the 16-bit kernels on
    /// every packed group's magnitudes.
    pub kernel_certified: bool,
    /// Front-end synaptic SB bytes, 1-bit packed.
    pub front_sb_bytes: usize,
    /// The same weights at 16 bits.
    pub front_sb_bytes_baseline: usize,
}

impl CascadeReport {
    /// Fraction of baseline cycles the cascade saved.
    pub fn cycles_saved(&self) -> f64 {
        1.0 - self.cascade_cycles as f64 / self.all_full_cycles as f64
    }

    /// Fraction of baseline energy the cascade saved.
    pub fn energy_saved(&self) -> f64 {
        1.0 - self.cascade_energy_nj / self.all_full_energy_nj
    }

    /// How many times cheaper (in cycles) one front-end inference is
    /// than one full-precision inference.
    pub fn front_advantage(&self) -> f64 {
        self.full_cycles as f64 / self.front_cycles as f64
    }
}

/// Runs the two-stage cascade. Pure in `cfg`: byte-identical reports on
/// every run and every rayon thread count.
pub fn run_cascade(cfg: &CascadeConfig) -> Result<CascadeReport, QuantError> {
    let front = binary_front(cfg.net_seed)?;
    let full = full_stage(cfg.net_seed)?;

    // The front-end charges the W1 energy scaling its XNOR datapath and
    // 1-bit SB earn; cycle counts are untouched (same schedule).
    let mut front_accel = Accelerator::new(AcceleratorConfig::paper());
    let w1_model = front_accel
        .energy_model()
        .with_weight_precision(WeightPrecision::W1);
    front_accel.set_energy_model(w1_model);
    let front_prepared = Arc::new(front_accel.prepare(&front.network)?);

    let full_accel = Accelerator::new(AcceleratorConfig::paper());
    let full_prepared = Arc::new(full_accel.prepare(&full)?);

    // Tile the scene. Inputs are collected up front so the parallel
    // stage is a pure map over an ordered work list.
    /// One tile of the ordered work list: frame, grid index, origin, pixels.
    type WorkItem = (u64, usize, (usize, usize), MapStack<Fx>);
    let grid = cfg.grid();
    let mut sensor = SyntheticSensor::new(cfg.frame.0, cfg.frame.1, cfg.seed);
    let mut work: Vec<WorkItem> = Vec::new();
    for _ in 0..cfg.frames {
        let frame = sensor.next_frame();
        for (index, origin) in grid.origins().enumerate() {
            let raw = frame.try_region_stacked(origin, cfg.region, 1)?;
            work.push((frame.index(), index, origin, raw));
        }
    }

    struct RegionResult {
        outcome: RegionOutcome,
        front_ok: bool,
        full_ok: bool,
    }

    let results: Vec<Result<RegionResult, QuantError>> = work
        .par_iter()
        .map(|(frame, index, origin, raw)| {
            // The front-end sees what the in-sensor comparator emits:
            // the sign-binarized region (same mapping the serve
            // tenant's `BinarizedStream` source applies).
            let bin = raw.map(|&px| binarize_pixel(px));
            let front_run = front_prepared.run(&bin)?;
            let front_out = front_run.output();
            let front_score = front_out.first().copied().unwrap_or(Fx::MIN);
            let front_golden = front.network.forward_fixed(&bin).output();
            let front_ok = front_out == front_golden;

            // Oracle: the full network's verdict on every region, from
            // the golden reference (bit-identical to the simulator).
            let full_golden = full.forward_fixed(raw).output();
            let oracle_positive =
                full_golden.iter().copied().fold(Fx::MIN, Fx::max) >= cfg.decision;

            let escalate = front_score >= cfg.threshold;
            let (outcome, full_ok) = if escalate {
                let full_run = full_prepared.run(raw)?;
                let full_out = full_run.output();
                let positive = full_out.iter().copied().fold(Fx::MIN, Fx::max) >= cfg.decision;
                (
                    CascadeOutcome::Escalated { positive },
                    full_out == full_golden,
                )
            } else {
                (CascadeOutcome::Rejected, true)
            };
            Ok(RegionResult {
                outcome: RegionOutcome {
                    frame: *frame,
                    index: *index,
                    origin: *origin,
                    front_score,
                    outcome,
                    oracle_positive,
                },
                front_ok,
                full_ok,
            })
        })
        .collect();

    let mut regions = Vec::with_capacity(results.len());
    let mut front_bit_identical = true;
    let mut full_bit_identical = true;
    for r in results {
        let r = r?;
        front_bit_identical &= r.front_ok;
        full_bit_identical &= r.full_ok;
        regions.push(r.outcome);
    }

    // Per-inference cycles and energy are data-independent (they depend
    // only on topology), so one probe run of each stage prices the
    // whole scenario.
    let probe = front.network.random_input(cfg.net_seed);
    let front_run = front_prepared.run(&probe)?;
    let front_cycles = front_run.stats().cycles();
    let front_energy_nj = front_run.energy().total_nj();
    let full_probe = full.random_input(cfg.net_seed);
    let full_run = full_prepared.run(&full_probe)?;
    let full_cycles = full_run.stats().cycles();
    let full_energy_nj = full_run.energy().total_nj();

    let total = regions.len();
    let escalated = regions.iter().filter(|r| r.escalated()).count();
    let missed_positives = regions
        .iter()
        .filter(|r| r.oracle_positive && !r.escalated())
        .count();

    let cascade_cycles = front_cycles * total as u64 + full_cycles * escalated as u64;
    let cascade_energy_nj = front_energy_nj * total as f64 + full_energy_nj * escalated as f64;
    let all_full_cycles = full_cycles * total as u64;
    let all_full_energy_nj = full_energy_nj * total as f64;

    // Certify the XNOR kernels on every magnitude the front-end
    // actually uses (binarized inputs are ±ONE).
    let kernel_certified = front
        .packed
        .iter()
        .all(|pw| certify_xnor(Fx::ONE, pw.scale(), cfg.seed ^ 0x5ead, 16));

    Ok(CascadeReport {
        config: *cfg,
        regions,
        escalated,
        escalation_rate: if total == 0 {
            0.0
        } else {
            escalated as f64 / total as f64
        },
        front_cycles,
        full_cycles,
        front_energy_nj,
        full_energy_nj,
        cascade_cycles,
        cascade_energy_nj,
        all_full_cycles,
        all_full_energy_nj,
        missed_positives,
        accuracy_delta: if total == 0 {
            0.0
        } else {
            missed_positives as f64 / total as f64
        },
        front_bit_identical,
        full_bit_identical,
        kernel_certified,
        front_sb_bytes: front.packed_sb_bytes,
        front_sb_bytes_baseline: front.baseline_sb_bytes,
    })
}

/// The cascade as a tenant class of the inference service: a binarized
/// front-end tenant streaming every region of the scenario through the
/// new `BinarizedStream` source, plus an escalation tenant carrying
/// exactly the full-precision load the cascade outcome says survives
/// the front stage. Returns the tenant pair and the report the
/// escalation count came from.
pub fn cascade_tenants(
    cfg: &CascadeConfig,
) -> Result<(Vec<TenantSpec>, CascadeReport), QuantError> {
    let report = run_cascade(cfg)?;
    let front = binary_front(cfg.net_seed)?;
    let full = full_stage(cfg.net_seed)?;
    let total = report.regions.len();
    // The front tenant ticks at sensor rate; the escalation tenant's
    // period stretches so both finish together at the frozen
    // escalation rate.
    let front_period = 2 * report.front_cycles.max(1);
    let esc_count = report.escalated.max(1);
    let esc_period = (front_period * total as u64) / esc_count as u64;
    let tenants = vec![
        TenantSpec::new("cascade-front", front.network)
            .source(InputSource::BinarizedStream {
                seed: cfg.seed,
                frame: cfg.frame,
                stride: cfg.stride,
            })
            .traffic(Traffic::Open {
                period: front_period,
                jitter: 0,
                count: total as u64,
            })
            .weight(2),
        TenantSpec::new("cascade-escalate", full)
            .source(InputSource::Stream {
                seed: cfg.seed,
                frame: cfg.frame,
                stride: cfg.stride,
            })
            .traffic(Traffic::Open {
                period: esc_period,
                jitter: 0,
                count: report.escalated as u64,
            }),
    ];
    Ok((tenants, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cascade_is_deterministic_and_certified() {
        let cfg = CascadeConfig::smoke();
        let a = run_cascade(&cfg).unwrap();
        let b = run_cascade(&cfg).unwrap();
        assert_eq!(a, b, "same config, same report");
        assert_eq!(a.regions.len(), cfg.frames * cfg.regions_per_frame());
        assert!(a.front_bit_identical, "front stage must match golden");
        assert!(a.full_bit_identical, "full stage must match golden");
        assert!(a.kernel_certified, "XNOR kernels must certify");
    }

    #[test]
    fn front_end_is_structurally_cheaper_than_the_full_stage() {
        let cfg = CascadeConfig::smoke();
        let r = run_cascade(&cfg).unwrap();
        assert!(
            r.front_advantage() >= 4.0,
            "front {} vs full {} cycles",
            r.front_cycles,
            r.full_cycles
        );
        // With any escalation rate below 1, the cascade beats the
        // all-full-precision baseline on both axes.
        if r.escalation_rate < 1.0 {
            assert!(r.cascade_cycles < r.all_full_cycles);
            assert!(r.cascade_energy_nj < r.all_full_energy_nj);
        }
    }

    #[test]
    fn escalation_threshold_gates_the_second_stage() {
        // Threshold at MIN escalates everything; at MAX nothing.
        let mut all = CascadeConfig::smoke();
        all.frames = 1;
        all.threshold = Fx::MIN;
        let r = run_cascade(&all).unwrap();
        assert_eq!(r.escalated, r.regions.len());
        assert_eq!(r.missed_positives, 0, "full coverage misses nothing");

        let mut none = all;
        none.threshold = Fx::MAX;
        let r = run_cascade(&none).unwrap();
        assert_eq!(r.escalated, 0);
        assert_eq!(
            r.missed_positives,
            r.regions.iter().filter(|x| x.oracle_positive).count()
        );
    }

    #[test]
    fn tenant_pair_matches_the_cascade_outcome() {
        let mut cfg = CascadeConfig::smoke();
        cfg.frames = 1;
        let (tenants, report) = cascade_tenants(&cfg).unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].name, "cascade-front");
        assert_eq!(tenants[1].name, "cascade-escalate");
        assert!(report.escalated <= report.regions.len());
    }
}
