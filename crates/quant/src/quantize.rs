//! Sign/threshold binarization of trained networks.
//!
//! Quantization is weights-only and per-group: every convolution output
//! map and every classifier row gets one magnitude `α` (the mean
//! absolute weight of the group, the standard BinaryConnect/XNOR-Net
//! scaling), and each weight collapses to
//!
//! * **W1** — `sign(w)·α`,
//! * **W2** — the nearest of `{±1, ±3}·s` with step `s = α/2`,
//!
//! all as ordinary `Fx` values written back through the network's
//! `set_conv_kernel`/`set_fc_row` geometry-checked setters. The
//! quantized network is therefore a plain `shidiannao_cnn::Network`:
//! `prepare()` compiles it and recorded schedules replay it with zero
//! engine changes, while [`PackedWeights`] carries the proof of the
//! 1/2-bit SB footprint. Biases stay 16-bit — they are one word per
//! *output neuron group*, not per synapse, so packing them would save
//! nothing measurable while costing accuracy.
//!
//! Activation binarization reuses the ALU's PLA machinery:
//! [`sign_pla`] is a steep-tanh 16-segment table and [`binarize_stack`]
//! models the 1-bit register capture after it (exact `±mag` snap).
//!
//! [`accuracy_study`] measures what the precision knob costs: the
//! quantized network's fixed-point outputs against the *original*
//! network's `f64` golden forward pass, plus top-1 agreement.

use shidiannao_cnn::{LayerBody, Network};
use shidiannao_fixed::{Fx, Pla};
use shidiannao_tensor::MapStack;

use crate::pack::{sign_is_positive, PackedWeights};
use crate::QuantError;
use shidiannao_core::WeightPrecision;

/// Largest W2 step whose outer level `3·s` still fits in `i16`.
const MAX_W2_STEP_BITS: i16 = i16::MAX / 3;

/// A network with its weights collapsed to a low-bit grid, plus the
/// packed-storage evidence.
#[derive(Clone, Debug)]
pub struct QuantizedNetwork {
    /// The rewritten network — runs on the unchanged engine.
    pub network: Network,
    /// The precision the weights were collapsed to.
    pub precision: WeightPrecision,
    /// One packed group per convolution output map / classifier row, in
    /// layer order (empty for `W16`, which stays in the 16-bit store).
    pub packed: Vec<PackedWeights>,
    /// Total SB bytes for the synaptic weights, packed.
    pub packed_sb_bytes: usize,
    /// Total SB bytes for the same weights in the 16-bit store.
    pub baseline_sb_bytes: usize,
}

impl QuantizedNetwork {
    /// Storage compression vs the 16-bit SB (≈16× for W1, ≈8× for W2).
    pub fn compression(&self) -> f64 {
        if self.packed_sb_bytes == 0 {
            1.0
        } else {
            self.baseline_sb_bytes as f64 / self.packed_sb_bytes as f64
        }
    }
}

/// Per-group magnitude: mean |w|, clamped to at least one LSB.
fn group_alpha(ws: &[Fx]) -> Fx {
    if ws.is_empty() {
        return Fx::EPSILON;
    }
    let mean = ws.iter().map(|w| w.to_f64().abs()).sum::<f64>() / ws.len() as f64;
    Fx::from_f64(mean).max(Fx::EPSILON)
}

/// The group scale actually stored: `α` for W1, the clamped step
/// `s = α/2` for W2.
fn group_scale(ws: &[Fx], precision: WeightPrecision) -> Fx {
    let alpha = group_alpha(ws);
    match precision {
        WeightPrecision::W1 | WeightPrecision::W16 => alpha,
        WeightPrecision::W2 => Fx::from_bits((alpha.to_bits() / 2).clamp(1, MAX_W2_STEP_BITS)),
    }
}

/// Collapses one weight onto the precision's grid for the group scale.
fn level_for(w: Fx, precision: WeightPrecision, scale: Fx) -> Fx {
    let s = scale.to_bits();
    match precision {
        WeightPrecision::W16 => w,
        WeightPrecision::W1 => {
            if sign_is_positive(w) {
                scale
            } else {
                -scale
            }
        }
        WeightPrecision::W2 => {
            // Nearest of {1, 3}·s in magnitude: the midpoint is 2·s.
            let mag = if w.to_bits().unsigned_abs() >= 2 * s.unsigned_abs() {
                3 * s
            } else {
                s
            };
            if sign_is_positive(w) {
                Fx::from_bits(mag)
            } else {
                Fx::from_bits(-mag)
            }
        }
    }
}

/// Rewrites every convolution kernel and classifier row of `net` onto
/// the `precision` grid (per-output-map / per-row scales) and packs the
/// result. `W16` is the identity (no packing, baseline footprint).
pub fn quantize_network(
    net: &Network,
    precision: WeightPrecision,
) -> Result<QuantizedNetwork, QuantError> {
    let mut out = net.clone();
    let mut packed = Vec::new();
    let mut packed_bytes = 0usize;
    let mut baseline_bytes = 0usize;
    for i in 0..net.layers().len() {
        match net.layers()[i].body() {
            LayerBody::Conv { table, weights, .. } => {
                for o in 0..table.out_maps() {
                    let group: Vec<Fx> = (0..table.inputs_of(o).len())
                        .flat_map(|j| weights.kernel(o, j).as_slice().iter().copied())
                        .collect();
                    let scale = group_scale(&group, precision);
                    let quant: Vec<Fx> = group
                        .iter()
                        .map(|&w| level_for(w, precision, scale))
                        .collect();
                    if precision != WeightPrecision::W16 {
                        let pw = PackedWeights::pack(&quant, precision, scale)?;
                        packed_bytes += pw.sb_bytes();
                        baseline_bytes += pw.baseline_sb_bytes();
                        packed.push(pw);
                    } else {
                        baseline_bytes += 2 * quant.len();
                        packed_bytes += 2 * quant.len();
                    }
                    let mut offset = 0usize;
                    for j in 0..table.inputs_of(o).len() {
                        let k = weights.kernel(o, j);
                        let n = k.len();
                        let vals = &quant[offset..offset + n];
                        let mut it = vals.iter().copied();
                        let qk = k.map(|_| it.next().unwrap_or(Fx::ZERO));
                        out.set_conv_kernel(i, o, j, qk)?;
                        offset += n;
                    }
                }
            }
            LayerBody::Fc { weights, .. } => {
                for n in 0..weights.out_count() {
                    let group: Vec<Fx> = weights.row(n).iter().map(|&(_, w)| w).collect();
                    let scale = group_scale(&group, precision);
                    let quant: Vec<Fx> = group
                        .iter()
                        .map(|&w| level_for(w, precision, scale))
                        .collect();
                    if precision != WeightPrecision::W16 {
                        let pw = PackedWeights::pack(&quant, precision, scale)?;
                        packed_bytes += pw.sb_bytes();
                        baseline_bytes += pw.baseline_sb_bytes();
                        packed.push(pw);
                    } else {
                        baseline_bytes += 2 * quant.len();
                        packed_bytes += 2 * quant.len();
                    }
                    out.set_fc_row(i, n, &quant, weights.bias(n))?;
                }
            }
            _ => {}
        }
    }
    Ok(QuantizedNetwork {
        network: out,
        precision,
        packed,
        packed_sb_bytes: packed_bytes,
        baseline_sb_bytes: baseline_bytes,
    })
}

/// The activation binarizer's PLA: a steep tanh (`tanh(64·x)`) over
/// `[-1, 1]`, i.e. the closest thing the ALU's 16-segment interpolator
/// has to a sign function. The 1-bit capture after it is
/// [`binarize_stack`]'s exact snap.
pub fn sign_pla() -> Pla {
    Pla::from_fn(|x| (64.0 * x).tanh(), -1.0, 1.0)
}

/// Binarizes every value of a stack to exactly `±mag`: the PLA drives
/// the value toward ±1, the 1-bit register capture keeps only the sign
/// (zero captures as `+mag`, matching the kernels' sign predicate).
pub fn binarize_stack(stack: &MapStack<Fx>, mag: Fx) -> MapStack<Fx> {
    let pla = sign_pla();
    stack.map(|&v| {
        if sign_is_positive(pla.eval(v)) {
            mag
        } else {
            -mag
        }
    })
}

/// One row of the precision-vs-accuracy study.
#[derive(Clone, Debug, PartialEq)]
pub struct AccuracyRow {
    /// Network name.
    pub net: String,
    /// Precision label (`w16`/`w2`/`w1`).
    pub precision: &'static str,
    /// Mean |quantized fixed-point output − original f64 golden output|
    /// over all inputs and output neurons.
    pub mean_abs_err: f64,
    /// Fraction of inputs whose output argmax matches the original f64
    /// golden model's.
    pub top1_match: f64,
    /// Packed SB bytes for the synaptic weights.
    pub sb_bytes: usize,
    /// 16-bit SB bytes for the same weights.
    pub sb_bytes_baseline: usize,
}

/// Index of the maximum element (ties to the first, the usual argmax).
fn argmax(xs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Quantizes `net` at `precision` and measures it against the original
/// network's `f64` golden forward pass over `inputs` deterministic
/// random inputs seeded from `seed`.
pub fn accuracy_study(
    net: &Network,
    precision: WeightPrecision,
    inputs: usize,
    seed: u64,
) -> Result<AccuracyRow, QuantError> {
    let q = quantize_network(net, precision)?;
    let mut abs_err = 0.0f64;
    let mut terms = 0usize;
    let mut matches = 0usize;
    for k in 0..inputs {
        let input = net.random_input(seed ^ (k as u64).wrapping_mul(0x9e37_79b9));
        let golden_stacks = net.forward_f32(&input.map(|&v| v.to_f32()));
        let golden: Vec<f64> = golden_stacks
            .last()
            .map(|s| s.flatten().iter().map(|&v| f64::from(v)).collect())
            .unwrap_or_default();
        let quant: Vec<f64> = q
            .network
            .forward_fixed(&input)
            .output()
            .iter()
            .map(|v| v.to_f64())
            .collect();
        for (g, v) in golden.iter().zip(&quant) {
            abs_err += (g - v).abs();
            terms += 1;
        }
        if !golden.is_empty() && argmax(&golden) == argmax(&quant) {
            matches += 1;
        }
    }
    Ok(AccuracyRow {
        net: net.name().to_string(),
        precision: precision.label(),
        mean_abs_err: if terms == 0 {
            0.0
        } else {
            abs_err / terms as f64
        },
        top1_match: if inputs == 0 {
            1.0
        } else {
            matches as f64 / inputs as f64
        },
        sb_bytes: q.packed_sb_bytes,
        sb_bytes_baseline: q.baseline_sb_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn w1_collapses_every_group_to_two_levels() {
        let net = zoo::gabor().build(42).unwrap();
        let q = quantize_network(&net, WeightPrecision::W1).unwrap();
        for layer in q.network.layers() {
            match layer.body() {
                LayerBody::Conv { table, weights, .. } => {
                    for o in 0..table.out_maps() {
                        let mut mags = std::collections::BTreeSet::new();
                        for j in 0..table.inputs_of(o).len() {
                            for &w in weights.kernel(o, j).as_slice() {
                                mags.insert(w.to_bits().unsigned_abs());
                            }
                        }
                        assert!(mags.len() <= 1, "one magnitude per output map");
                    }
                }
                LayerBody::Fc { weights, .. } => {
                    for n in 0..weights.out_count() {
                        let mut mags = std::collections::BTreeSet::new();
                        for &(_, w) in weights.row(n) {
                            mags.insert(w.to_bits().unsigned_abs());
                        }
                        assert!(mags.len() <= 1, "one magnitude per row");
                    }
                }
                _ => {}
            }
        }
        // 1-bit packing shrinks the SB by ~16×.
        // Small per-group remainders (⌈len/8⌉ bytes) keep this below the
        // asymptotic 16×, but it must clear 8× comfortably.
        assert!(q.compression() > 8.0, "compression {}", q.compression());
        assert!(!q.packed.is_empty());
    }

    #[test]
    fn w2_levels_are_one_and_three_steps() {
        let net = zoo::simple_conv().build(7).unwrap();
        let q = quantize_network(&net, WeightPrecision::W2).unwrap();
        for pw in &q.packed {
            let s = pw.scale().to_bits().unsigned_abs();
            for w in pw.unpack() {
                let m = w.to_bits().unsigned_abs();
                assert!(m == s || m == 3 * s, "level {m} vs step {s}");
            }
        }
        assert!(q.compression() > 6.0, "compression {}", q.compression());
    }

    #[test]
    fn w16_is_the_identity() {
        let net = zoo::gabor().build(42).unwrap();
        let q = quantize_network(&net, WeightPrecision::W16).unwrap();
        let input = net.random_input(3);
        assert_eq!(
            q.network.forward_fixed(&input).output(),
            net.forward_fixed(&input).output()
        );
        assert!(q.packed.is_empty());
        assert_eq!(q.packed_sb_bytes, q.baseline_sb_bytes);
    }

    #[test]
    fn quantized_network_runs_on_the_unchanged_engine_bit_identically() {
        use shidiannao_core::{Accelerator, AcceleratorConfig};
        let net = zoo::gabor().build(42).unwrap();
        let q = quantize_network(&net, WeightPrecision::W1).unwrap();
        let input = net.random_input(11);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let run = accel.run(&q.network, &input).unwrap();
        assert_eq!(run.output(), q.network.forward_fixed(&input).output());
    }

    #[test]
    fn binarize_stack_is_pure_signs() {
        let stack = MapStack::from_fn(4, 4, 2, |m| {
            shidiannao_tensor::FeatureMap::from_fn(4, 4, |x, y| {
                Fx::from_f32((x as f32 - 1.5) * 0.3 + (y as f32 - 1.5) * 0.1 + m as f32 * 0.05)
            })
        });
        let mag = Fx::from_bits(100);
        let b = binarize_stack(&stack, mag);
        for m in b.iter() {
            for &v in m.as_slice() {
                assert!(v == mag || v == -mag);
            }
        }
    }

    #[test]
    fn accuracy_degrades_monotonically_with_precision() {
        let net = zoo::gabor().build(42).unwrap();
        let w16 = accuracy_study(&net, WeightPrecision::W16, 4, 99).unwrap();
        let w1 = accuracy_study(&net, WeightPrecision::W1, 4, 99).unwrap();
        // W16's only error vs f64 is fixed-point rounding; W1 adds
        // quantization error on top.
        assert!(w16.mean_abs_err <= w1.mean_abs_err);
        assert!(w1.sb_bytes * 8 < w1.sb_bytes_baseline);
        assert_eq!(w16.precision, "w16");
        assert_eq!(w1.precision, "w1");
    }
}
