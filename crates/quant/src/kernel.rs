//! XNOR-popcount value kernels.
//!
//! A binary layer's operands are sign-binarized: every value is
//! `±val_mag` and every weight `±wt_mag`. On such operands each product
//! is `±(val_mag·wt_mag)` and the whole dot product collapses to
//!
//! ```text
//! dot = s · val_mag · wt_mag,   s = Σᵢ (signᵥᵢ XNOR signᵤᵢ ? +1 : −1)
//! ```
//!
//! which is what a 1-bit datapath computes: XNOR the sign bits,
//! popcount, `s = 2·matches − n`. Both kernels here implement the same
//! [`ValueKernel`] trait the engine's 16-bit `LaneKernel`/`ScalarKernel`
//! pair implements:
//!
//! * [`XnorScalarKernel`] — the literal per-element reference,
//! * [`XnorLaneKernel`] — 64 sign bits packed per `u64` word, one XNOR +
//!   popcount per chunk.
//!
//! # Bit-identity contract
//!
//! On genuinely sign-binarized operands all four kernels agree exactly:
//! each elementwise product is the *same* `i64` value
//! (`±val_mag·wt_mag` in raw-bit arithmetic), the partial sums cannot
//! approach the `i64` edge (31-bit products, far fewer than 2^20
//! terms), and overflow-free integer addition is associative — so the
//! popcount re-association changes nothing. [`certify_xnor`] checks
//! this exhaustively over splitmix-driven random sign patterns; the
//! cascade bench runs it as one of its gates. That equivalence is what
//! justifies charging the XNOR datapath's cheaper per-precision
//! energy/area (`WeightPrecision` scaling) against unchanged cycle
//! counts and bit-identical outputs.

use shidiannao_core::kernel::{LaneKernel, ScalarKernel, ValueKernel};
use shidiannao_fixed::Fx;

use crate::pack::sign_is_positive;

/// The reference XNOR kernel: per-element sign agreement in the exact
/// order the cycle-accurate executors issue operations. Only operand
/// *signs* are read; magnitudes come from the kernel itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XnorScalarKernel {
    /// Magnitude of every binarized value (`|v|`).
    pub val_mag: Fx,
    /// Magnitude of every binarized weight (`|w|`).
    pub wt_mag: Fx,
}

/// The production XNOR kernel: packs 64 sign bits per `u64` word and
/// reduces each chunk with one XNOR + popcount.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XnorLaneKernel {
    /// Magnitude of every binarized value (`|v|`).
    pub val_mag: Fx,
    /// Magnitude of every binarized weight (`|w|`).
    pub wt_mag: Fx,
}

impl XnorScalarKernel {
    /// Creates a kernel for operands binarized to `±val_mag` / `±wt_mag`.
    pub fn new(val_mag: Fx, wt_mag: Fx) -> XnorScalarKernel {
        XnorScalarKernel { val_mag, wt_mag }
    }
}

impl XnorLaneKernel {
    /// Creates a kernel for operands binarized to `±val_mag` / `±wt_mag`.
    pub fn new(val_mag: Fx, wt_mag: Fx) -> XnorLaneKernel {
        XnorLaneKernel { val_mag, wt_mag }
    }
}

/// Raw product magnitude of one binarized MAC: `val_mag·wt_mag` in
/// Q*.16 raw-bit arithmetic.
#[inline]
fn prod_mag(val_mag: Fx, wt_mag: Fx) -> i64 {
    i64::from(val_mag.to_bits()) * i64::from(wt_mag.to_bits())
}

/// Packs one up-to-64-element chunk of signs into a word (element `j`
/// at bit `j`, set ⇔ non-negative).
#[inline]
fn sign_word(chunk: &[Fx]) -> u64 {
    let mut w = 0u64;
    for (j, &v) in chunk.iter().enumerate() {
        w |= u64::from(sign_is_positive(v)) << j;
    }
    w
}

/// `s = Σ signᵥ·signᵤ` over equal-length slices via XNOR-popcount on
/// 64-wide sign words, per-element on the remainder.
#[inline]
pub fn xnor_popcount_dot(vals: &[Fx], wts: &[Fx]) -> i64 {
    debug_assert_eq!(vals.len(), wts.len(), "dot operand mismatch");
    let mut s = 0i64;
    let mut vc = vals.chunks_exact(64);
    let mut wc = wts.chunks_exact(64);
    for (v, w) in (&mut vc).zip(&mut wc) {
        let matches = i64::from((!(sign_word(v) ^ sign_word(w))).count_ones());
        s += 2 * matches - 64;
    }
    for (v, w) in vc.remainder().iter().zip(wc.remainder()) {
        s += if sign_is_positive(*v) == sign_is_positive(*w) {
            1
        } else {
            -1
        };
    }
    s
}

impl ValueKernel for XnorScalarKernel {
    fn dot_raw(&self, vals: &[Fx], wts: &[Fx]) -> i64 {
        debug_assert_eq!(vals.len(), wts.len(), "dot operand mismatch");
        let pm = prod_mag(self.val_mag, self.wt_mag);
        let mut sum = 0i64;
        for (v, w) in vals.iter().zip(wts) {
            sum += if sign_is_positive(*v) == sign_is_positive(*w) {
                pm
            } else {
                -pm
            };
        }
        sum
    }

    fn shifted_mac(&self, row: &[Fx], stride: usize, k: Fx, lanes: &mut [i64]) {
        let pm = prod_mag(self.val_mag, self.wt_mag);
        let ks = sign_is_positive(k);
        for (i, l) in lanes.iter_mut().enumerate() {
            *l += if sign_is_positive(row[i * stride]) == ks {
                pm
            } else {
                -pm
            };
        }
    }

    fn shifted_max(&self, row: &[Fx], stride: usize, cmps: &mut [Fx]) {
        // Max is a pure comparator either way — identical to the 16-bit
        // reference kernel.
        ScalarKernel.shifted_max(row, stride, cmps);
    }

    fn shifted_sum(&self, row: &[Fx], stride: usize, lanes: &mut [i64]) {
        // A binarized value's raw bits are ±val_mag's bits.
        let mv = i64::from(self.val_mag.to_bits());
        for (i, l) in lanes.iter_mut().enumerate() {
            *l += if sign_is_positive(row[i * stride]) {
                mv
            } else {
                -mv
            };
        }
    }
}

impl ValueKernel for XnorLaneKernel {
    fn dot_raw(&self, vals: &[Fx], wts: &[Fx]) -> i64 {
        xnor_popcount_dot(vals, wts) * prod_mag(self.val_mag, self.wt_mag)
    }

    fn shifted_mac(&self, row: &[Fx], stride: usize, k: Fx, lanes: &mut [i64]) {
        let pm = prod_mag(self.val_mag, self.wt_mag);
        // k's sign flips every lane uniformly: fold it into the step.
        let pm = if sign_is_positive(k) { pm } else { -pm };
        if stride == 1 {
            let row = &row[..lanes.len()];
            for (l, &v) in lanes.iter_mut().zip(row) {
                // Branchless sign-select keeps the unit-stride hot loop
                // vectorizable: +pm when non-negative, −pm otherwise.
                let sel = i64::from(v.to_bits() >> 15); // 0 or −1
                *l += (pm ^ sel) - sel; // pm or −pm
            }
        } else {
            for (i, l) in lanes.iter_mut().enumerate() {
                *l += if sign_is_positive(row[i * stride]) {
                    pm
                } else {
                    -pm
                };
            }
        }
    }

    fn shifted_max(&self, row: &[Fx], stride: usize, cmps: &mut [Fx]) {
        LaneKernel.shifted_max(row, stride, cmps);
    }

    fn shifted_sum(&self, row: &[Fx], stride: usize, lanes: &mut [i64]) {
        let mv = i64::from(self.val_mag.to_bits());
        for (i, l) in lanes.iter_mut().enumerate() {
            let v = row[i * stride].to_bits();
            let sel = i64::from(v >> 15);
            *l += (mv ^ sel) - sel;
        }
    }
}

/// Certifies the XNOR kernels bit-identical to each other *and* to the
/// engine's 16-bit kernels on sign-binarized operands, over `trials`
/// splitmix-driven random shapes (lengths 1–200, strides 1–3, all four
/// `ValueKernel` operations). Returns `true` iff every comparison
/// agreed exactly — the cascade bench runs this as a gate.
pub fn certify_xnor(val_mag: Fx, wt_mag: Fx, seed: u64, trials: usize) -> bool {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let xs = XnorScalarKernel::new(val_mag, wt_mag);
    let xl = XnorLaneKernel::new(val_mag, wt_mag);
    for _ in 0..trials {
        let n = (next() % 200 + 1) as usize;
        let vals: Vec<Fx> = (0..n)
            .map(|_| if next() % 2 == 0 { val_mag } else { -val_mag })
            .collect();
        let wts: Vec<Fx> = (0..n)
            .map(|_| if next() % 2 == 0 { wt_mag } else { -wt_mag })
            .collect();
        let want = ScalarKernel.dot_raw(&vals, &wts);
        if xs.dot_raw(&vals, &wts) != want
            || xl.dot_raw(&vals, &wts) != want
            || LaneKernel.dot_raw(&vals, &wts) != want
        {
            return false;
        }
        let stride = (next() % 3 + 1) as usize;
        let lanes = (n - 1) / stride + 1;
        let k = if next() % 2 == 0 { wt_mag } else { -wt_mag };
        let mut m_ref = vec![0i64; lanes];
        let mut m_xs = vec![0i64; lanes];
        let mut m_xl = vec![0i64; lanes];
        ScalarKernel.shifted_mac(&vals, stride, k, &mut m_ref);
        xs.shifted_mac(&vals, stride, k, &mut m_xs);
        xl.shifted_mac(&vals, stride, k, &mut m_xl);
        if m_xs != m_ref || m_xl != m_ref {
            return false;
        }
        let mut s_ref = vec![0i64; lanes];
        let mut s_xs = vec![0i64; lanes];
        let mut s_xl = vec![0i64; lanes];
        ScalarKernel.shifted_sum(&vals, stride, &mut s_ref);
        xs.shifted_sum(&vals, stride, &mut s_xs);
        xl.shifted_sum(&vals, stride, &mut s_xl);
        if s_xs != s_ref || s_xl != s_ref {
            return false;
        }
        let mut c_ref = vec![Fx::MIN; lanes];
        let mut c_xs = vec![Fx::MIN; lanes];
        let mut c_xl = vec![Fx::MIN; lanes];
        ScalarKernel.shifted_max(&vals, stride, &mut c_ref);
        xs.shifted_max(&vals, stride, &mut c_xs);
        xl.shifted_max(&vals, stride, &mut c_xl);
        if c_xs != c_ref || c_xl != c_ref {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xnor_kernels_match_sixteen_bit_kernels_on_binarized_operands() {
        assert!(certify_xnor(Fx::ONE, Fx::from_bits(37), 0x5eed_cafe, 64));
        assert!(certify_xnor(
            Fx::from_bits(200),
            Fx::from_bits(1),
            0xdead_beef,
            64
        ));
    }

    #[test]
    fn popcount_dot_handles_chunk_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 128, 130] {
            let vals: Vec<Fx> = (0..n)
                .map(|i| if i % 3 == 0 { Fx::ONE } else { -Fx::ONE })
                .collect();
            let wts: Vec<Fx> = (0..n)
                .map(|i| if i % 5 == 0 { -Fx::ONE } else { Fx::ONE })
                .collect();
            let want: i64 = vals
                .iter()
                .zip(&wts)
                .map(|(v, w)| {
                    if sign_is_positive(*v) == sign_is_positive(*w) {
                        1
                    } else {
                        -1
                    }
                })
                .sum();
            assert_eq!(xnor_popcount_dot(&vals, &wts), want, "n={n}");
        }
    }

    #[test]
    fn certify_fails_on_a_broken_kernel_premise() {
        // Sanity that the certificate is not vacuous: a "binarized"
        // magnitude of zero collapses every XNOR dot to 0 while the
        // 16-bit kernels still see ±0 = 0 operands — those agree — so
        // instead check a direct mismatch case by hand.
        let xs = XnorScalarKernel::new(Fx::ONE, Fx::ONE);
        let vals = [Fx::from_f32(0.5)]; // NOT ±1: premise violated
        let wts = [Fx::ONE];
        let xnor = xs.dot_raw(&vals, &wts);
        let exact = ScalarKernel.dot_raw(&vals, &wts);
        assert_ne!(xnor, exact, "off-premise operands must disagree");
    }
}
