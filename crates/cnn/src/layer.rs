//! Layer descriptors for the four CNN layer families of §3.

use crate::ConnectionTable;
use core::fmt;
use shidiannao_fixed::{Fx, Pla};

/// The non-linear activation applied by the ALU after a layer's
/// accumulation (§5.2).
///
/// In fixed-point execution the activation is evaluated through the ALU's
/// 16-segment piecewise-linear interpolator, so the golden reference and
/// the simulator share identical (approximated) semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Activation {
    /// No activation: the accumulated value passes through unchanged.
    #[default]
    None,
    /// Hyperbolic tangent via the ALU PLA.
    Tanh,
    /// Logistic sigmoid via the ALU PLA.
    Sigmoid,
}

impl Activation {
    /// The PLA table the ALU would load for this activation, or `None` when
    /// the value bypasses the ALU.
    pub fn pla(self) -> Option<Pla> {
        match self {
            Activation::None => None,
            Activation::Tanh => Some(Pla::tanh()),
            Activation::Sigmoid => Some(Pla::sigmoid()),
        }
    }

    /// Applies the activation in `f32` (for the floating-point reference).
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Applies the activation through a pre-built PLA table (fixed-point
    /// path). `pla` must come from [`Activation::pla`] on the same variant.
    pub fn apply_fixed(self, x: Fx, pla: Option<&Pla>) -> Fx {
        match (self, pla) {
            (Activation::None, _) => x,
            (_, Some(p)) => p.eval(x),
            (_, None) => x,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::None => "none",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        };
        f.write_str(s)
    }
}

/// Pooling operator (§3, formula (2)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling: the PE comparator path.
    Max,
    /// Average pooling: PE adder path plus an ALU division.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolKind::Max => "max",
            PoolKind::Avg => "avg",
        })
    }
}

/// How a pooling layer sizes its output when the input is not an exact
/// multiple of the stride. Table 2's benchmarks use both conventions (e.g.
/// Face Recog. S2 maps 21→11, ceiling; Face Align. S4 maps 21→10, floor),
/// so the choice is per-layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Truncate: trailing rows/columns that do not fill a window are
    /// dropped.
    #[default]
    Floor,
    /// Cover: a final partial window (clipped at the input edge) produces
    /// one more output.
    Ceil,
}

/// How a convolutional layer's output maps connect to its input maps.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Connectivity {
    /// Every output map reads every input map.
    Full,
    /// Exactly this many (input, output) kernel pairs, distributed by
    /// [`ConnectionTable::spread`].
    Pairs(usize),
    /// An explicit table.
    Table(ConnectionTable),
}

/// Specification of a convolutional layer (formula (1)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Number of output feature maps.
    pub out_maps: usize,
    /// Kernel dimensions `(Kx, Ky)`.
    pub kernel: (usize, usize),
    /// Window step `(Sx, Sy)`.
    pub stride: (usize, usize),
    /// Input-to-output map connectivity.
    pub connectivity: Connectivity,
    /// ALU activation applied to each output neuron.
    pub activation: Activation,
}

impl ConvSpec {
    /// A fully-connected convolution with stride 1 and the given kernel.
    pub fn new(out_maps: usize, kernel: (usize, usize)) -> ConvSpec {
        ConvSpec {
            out_maps,
            kernel,
            stride: (1, 1),
            connectivity: Connectivity::Full,
            activation: Activation::Tanh,
        }
    }

    /// Overrides the connectivity to an exact kernel-pair count (Table 2's
    /// `#` column).
    pub fn with_pairs(mut self, pairs: usize) -> ConvSpec {
        self.connectivity = Connectivity::Pairs(pairs);
        self
    }

    /// Overrides the connectivity with an explicit table.
    pub fn with_table(mut self, table: ConnectionTable) -> ConvSpec {
        self.connectivity = Connectivity::Table(table);
        self
    }

    /// Overrides the stride.
    pub fn with_stride(mut self, stride: (usize, usize)) -> ConvSpec {
        self.stride = stride;
        self
    }

    /// Overrides the activation.
    pub fn with_activation(mut self, activation: Activation) -> ConvSpec {
        self.activation = activation;
        self
    }
}

/// Specification of a pooling layer (formula (2)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Pooling window `(Kx, Ky)`.
    pub window: (usize, usize),
    /// Window step; in the common case equal to the window
    /// (non-overlapping).
    pub stride: (usize, usize),
    /// Max or average pooling.
    pub kind: PoolKind,
    /// Edge handling for inputs not divisible by the stride.
    pub rounding: Rounding,
    /// Optional activation (classical CNNs apply one; "recent studies no
    /// longer suggest that", §3).
    pub activation: Activation,
}

impl PoolSpec {
    /// Non-overlapping max pooling with the given square-ish window.
    pub fn max(window: (usize, usize)) -> PoolSpec {
        PoolSpec {
            window,
            stride: window,
            kind: PoolKind::Max,
            rounding: Rounding::Floor,
            activation: Activation::None,
        }
    }

    /// Non-overlapping average pooling with the given window.
    pub fn avg(window: (usize, usize)) -> PoolSpec {
        PoolSpec {
            kind: PoolKind::Avg,
            ..PoolSpec::max(window)
        }
    }

    /// Overrides the stride (overlapping pooling is handled like a
    /// convolution by the accelerator, §8.2).
    pub fn with_stride(mut self, stride: (usize, usize)) -> PoolSpec {
        self.stride = stride;
        self
    }

    /// Selects ceiling rounding (a trailing clipped window).
    pub fn with_ceil(mut self) -> PoolSpec {
        self.rounding = Rounding::Ceil;
        self
    }

    /// Overrides the activation.
    pub fn with_activation(mut self, activation: Activation) -> PoolSpec {
        self.activation = activation;
        self
    }
}

/// Specification of a (fully or partially connected) classifier layer
/// (formula (7)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FcSpec {
    /// Number of output neurons.
    pub out_neurons: usize,
    /// Synapses per output neuron; `None` means fully connected. Some
    /// Table 2 classifiers are sparse (e.g. MPCNN F6 has 6 000 synapses for
    /// 180 × 300 neurons): each output then reads a deterministic
    /// contiguous (wrapping) block of inputs.
    pub synapses_per_output: Option<usize>,
    /// ALU activation.
    pub activation: Activation,
}

impl FcSpec {
    /// A fully-connected classifier with `tanh` activation.
    pub fn new(out_neurons: usize) -> FcSpec {
        FcSpec {
            out_neurons,
            synapses_per_output: None,
            activation: Activation::Tanh,
        }
    }

    /// Limits each output to `count` synapses.
    pub fn with_synapses_per_output(mut self, count: usize) -> FcSpec {
        self.synapses_per_output = Some(count);
        self
    }

    /// Overrides the activation.
    pub fn with_activation(mut self, activation: Activation) -> FcSpec {
        self.activation = activation;
        self
    }
}

/// Specification of a Local Response Normalization layer (formula (3)):
/// `O = I / (k + α · Σⱼ Iⱼ²)` with `j` ranging over a window of `M`
/// adjacent maps at the same position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrnSpec {
    /// Cross-map window size `M` (the sum covers `mi − M/2 ..= mi + M/2`,
    /// clipped).
    pub window_maps: usize,
    /// Additive constant `k`.
    pub k: f32,
    /// Scale `α`.
    pub alpha: f32,
}

impl LrnSpec {
    /// AlexNet-flavoured defaults: 5-map window, `k = 2`, `α = 10⁻⁴`.
    pub fn new() -> LrnSpec {
        LrnSpec {
            window_maps: 5,
            k: 2.0,
            alpha: 1e-4,
        }
    }

    /// Quantized `k` as the ALU sees it.
    pub fn k_fx(&self) -> Fx {
        Fx::from_f32(self.k)
    }

    /// Quantized `α` as the ALU sees it.
    pub fn alpha_fx(&self) -> Fx {
        Fx::from_f32(self.alpha)
    }
}

impl Default for LrnSpec {
    fn default() -> LrnSpec {
        LrnSpec::new()
    }
}

/// Specification of a Local Contrast Normalization layer (formulae (4)–(6)):
/// subtractive normalization with a Gaussian window followed by divisive
/// normalization by the local standard deviation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LcnSpec {
    /// Spatial Gaussian window side (odd; e.g. 5 or 9).
    pub window: usize,
}

impl LcnSpec {
    /// Creates an LCN spec.
    ///
    /// # Panics
    ///
    /// Panics if `window` is even or zero.
    pub fn new(window: usize) -> LcnSpec {
        assert!(window % 2 == 1, "LCN window must be odd, got {window}");
        LcnSpec { window }
    }
}

/// A layer specification as pushed into a
/// [`NetworkBuilder`](crate::NetworkBuilder); geometry is resolved (and
/// validated) when the network is built.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerSpec {
    /// Convolutional layer.
    Conv(ConvSpec),
    /// Pooling layer.
    Pool(PoolSpec),
    /// Classifier (fully/partially connected) layer.
    Fc(FcSpec),
    /// Local Response Normalization layer.
    Lrn(LrnSpec),
    /// Local Contrast Normalization layer.
    Lcn(LcnSpec),
}

impl LayerSpec {
    /// The layer family, used by performance models and the scheduler.
    pub fn kind(&self) -> LayerKind {
        match self {
            LayerSpec::Conv(_) => LayerKind::Conv,
            LayerSpec::Pool(_) => LayerKind::Pool,
            LayerSpec::Fc(_) => LayerKind::Fc,
            LayerSpec::Lrn(_) => LayerKind::Lrn,
            LayerSpec::Lcn(_) => LayerKind::Lcn,
        }
    }
}

/// The layer family (Table 2's C / S / F naming plus the two normalization
/// types).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerKind {
    /// Convolutional ("C").
    Conv,
    /// Pooling ("S", subsampling).
    Pool,
    /// Classifier ("F", fully connected).
    Fc,
    /// Local Response Normalization.
    Lrn,
    /// Local Contrast Normalization.
    Lcn,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerKind::Conv => "conv",
            LayerKind::Pool => "pool",
            LayerKind::Fc => "fc",
            LayerKind::Lrn => "lrn",
            LayerKind::Lcn => "lcn",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_f32_shapes() {
        assert_eq!(Activation::None.apply_f32(3.0), 3.0);
        assert!((Activation::Tanh.apply_f32(1.0) - 0.7615942).abs() < 1e-6);
        assert!((Activation::Sigmoid.apply_f32(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn activation_fixed_uses_pla() {
        let act = Activation::Tanh;
        let pla = act.pla();
        let y = act.apply_fixed(Fx::from_f32(0.5), pla.as_ref());
        assert!((y.to_f32() - 0.5f32.tanh()).abs() < 0.02);
        assert_eq!(Activation::None.pla(), None);
    }

    #[test]
    fn conv_spec_builders_chain() {
        let s = ConvSpec::new(16, (5, 5))
            .with_pairs(60)
            .with_stride((2, 2))
            .with_activation(Activation::Sigmoid);
        assert_eq!(s.out_maps, 16);
        assert_eq!(s.stride, (2, 2));
        assert_eq!(s.connectivity, Connectivity::Pairs(60));
        assert_eq!(s.activation, Activation::Sigmoid);
    }

    #[test]
    fn pool_spec_defaults_non_overlapping() {
        let s = PoolSpec::max((2, 2));
        assert_eq!(s.stride, (2, 2));
        assert_eq!(s.kind, PoolKind::Max);
        assert_eq!(s.rounding, Rounding::Floor);
        let c = PoolSpec::avg((3, 3)).with_ceil();
        assert_eq!(c.kind, PoolKind::Avg);
        assert_eq!(c.rounding, Rounding::Ceil);
    }

    #[test]
    fn fc_spec_partial_synapses() {
        let s = FcSpec::new(300).with_synapses_per_output(20);
        assert_eq!(s.synapses_per_output, Some(20));
    }

    #[test]
    fn lrn_quantizes_parameters() {
        let s = LrnSpec::new();
        assert_eq!(s.k_fx(), Fx::from_f32(2.0));
        assert_eq!(LrnSpec::default(), LrnSpec::new());
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn lcn_rejects_even_window() {
        let _ = LcnSpec::new(4);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(LayerKind::Conv.to_string(), "conv");
        assert_eq!(
            LayerSpec::Pool(PoolSpec::max((2, 2))).kind(),
            LayerKind::Pool
        );
        assert_eq!(Activation::Tanh.to_string(), "tanh");
        assert_eq!(PoolKind::Avg.to_string(), "avg");
    }
}
