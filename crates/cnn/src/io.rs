//! Binary model serialization.
//!
//! The paper's deployment model assumes "off-line training by the service
//! provider" (§3): trained weights are produced elsewhere and shipped to
//! the sensor. This module defines the container for that: a compact
//! little-endian binary format (`SDNN`, version 1) holding the topology
//! and the 16-bit fixed-point weights, so a [`Network`] round-trips
//! through files byte-exactly.

use crate::layer::{Activation, LcnSpec, LrnSpec, PoolKind, Rounding};
use crate::network::{gaussian_window, Layer, LayerBody, Network};
use crate::weights::{ConvWeights, FcWeights};
use crate::ConnectionTable;
use core::fmt;
use shidiannao_fixed::Fx;
use shidiannao_tensor::FeatureMap;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"SDNN";
const VERSION: u16 = 1;

/// Error produced while reading a model file.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid `SDNN` model (message explains).
    Corrupt(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "model i/o failed: {e}"),
            FormatError::Corrupt(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> FormatError {
        FormatError::Io(e)
    }
}

struct Reader<R> {
    inner: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> Result<u8, FormatError> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn u16(&mut self) -> Result<u16, FormatError> {
        let mut b = [0u8; 2];
        self.inner.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn usize32(&mut self) -> Result<usize, FormatError> {
        Ok(self.u32()? as usize)
    }

    fn f32(&mut self) -> Result<f32, FormatError> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    fn fx(&mut self) -> Result<Fx, FormatError> {
        let mut b = [0u8; 2];
        self.inner.read_exact(&mut b)?;
        Ok(Fx::from_bits(i16::from_le_bytes(b)))
    }
}

struct Writer<W> {
    inner: W,
}

impl<W: Write> Writer<W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.inner.write_all(&[v])
    }

    fn u16(&mut self, v: u16) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    fn f32(&mut self, v: f32) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    fn fx(&mut self, v: Fx) -> io::Result<()> {
        self.inner.write_all(&v.to_bits().to_le_bytes())
    }
}

fn act_code(a: Activation) -> u8 {
    match a {
        Activation::None => 0,
        Activation::Tanh => 1,
        Activation::Sigmoid => 2,
    }
}

fn act_from(code: u8) -> Result<Activation, FormatError> {
    Ok(match code {
        0 => Activation::None,
        1 => Activation::Tanh,
        2 => Activation::Sigmoid,
        other => return Err(FormatError::Corrupt(format!("activation code {other}"))),
    })
}

/// Serializes a network to any writer.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn save<W: Write>(network: &Network, writer: W) -> io::Result<()> {
    let mut w = Writer { inner: writer };
    w.inner.write_all(MAGIC)?;
    w.u16(VERSION)?;
    let name = network.name().as_bytes();
    w.u16(name.len() as u16)?;
    w.inner.write_all(name)?;
    w.u32(network.input_maps() as u32)?;
    w.u32(network.input_dims().0 as u32)?;
    w.u32(network.input_dims().1 as u32)?;
    w.u32(network.layers().len() as u32)?;
    for layer in network.layers() {
        match layer.body() {
            LayerBody::Conv {
                table,
                kernel,
                stride,
                weights,
                activation,
            } => {
                w.u8(0)?;
                w.u32(layer.out_maps() as u32)?;
                w.u32(kernel.0 as u32)?;
                w.u32(kernel.1 as u32)?;
                w.u32(stride.0 as u32)?;
                w.u32(stride.1 as u32)?;
                w.u8(act_code(*activation))?;
                for o in 0..layer.out_maps() {
                    let conn = table.inputs_of(o);
                    w.u32(conn.len() as u32)?;
                    for &i in conn {
                        w.u32(i as u32)?;
                    }
                    w.fx(weights.bias(o))?;
                    for j in 0..conn.len() {
                        for v in weights.kernel(o, j).iter() {
                            w.fx(*v)?;
                        }
                    }
                }
            }
            LayerBody::Pool {
                window,
                stride,
                kind,
                rounding,
                activation,
            } => {
                w.u8(1)?;
                w.u32(window.0 as u32)?;
                w.u32(window.1 as u32)?;
                w.u32(stride.0 as u32)?;
                w.u32(stride.1 as u32)?;
                w.u8(u8::from(*kind == PoolKind::Avg))?;
                w.u8(u8::from(*rounding == Rounding::Ceil))?;
                w.u8(act_code(*activation))?;
            }
            LayerBody::Fc {
                weights,
                activation,
            } => {
                w.u8(2)?;
                w.u32(weights.out_count() as u32)?;
                w.u8(act_code(*activation))?;
                for n in 0..weights.out_count() {
                    let row = weights.row(n);
                    w.u32(row.len() as u32)?;
                    w.fx(weights.bias(n))?;
                    for &(i, v) in row {
                        w.u32(i as u32)?;
                        w.fx(v)?;
                    }
                }
            }
            LayerBody::Lrn(spec) => {
                w.u8(3)?;
                w.u32(spec.window_maps as u32)?;
                w.f32(spec.k)?;
                w.f32(spec.alpha)?;
            }
            LayerBody::Lcn { spec, .. } => {
                w.u8(4)?;
                w.u32(spec.window as u32)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a network from any reader.
///
/// # Errors
///
/// Returns [`FormatError`] on I/O failure, a bad magic/version, or
/// inconsistent geometry.
pub fn load<R: Read>(reader: R) -> Result<Network, FormatError> {
    let mut r = Reader { inner: reader };
    let mut magic = [0u8; 4];
    r.inner.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(FormatError::Corrupt("bad magic".into()));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(FormatError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let name_len = r.u16()? as usize;
    let mut name_bytes = vec![0u8; name_len];
    r.inner.read_exact(&mut name_bytes)?;
    let name = String::from_utf8(name_bytes)
        .map_err(|_| FormatError::Corrupt("name is not UTF-8".into()))?;
    let input_maps = r.usize32()?;
    let input_dims = (r.usize32()?, r.usize32()?);
    if input_maps == 0 || input_dims.0 == 0 || input_dims.1 == 0 {
        return Err(FormatError::Corrupt("empty input".into()));
    }
    let layer_count = r.usize32()?;
    if layer_count == 0 || layer_count > 1024 {
        return Err(FormatError::Corrupt(format!("layer count {layer_count}")));
    }

    let mut layers = Vec::with_capacity(layer_count);
    let mut maps = input_maps;
    let mut dims = input_dims;
    for index in 0..layer_count {
        let corrupt = |msg: &str| FormatError::Corrupt(format!("layer {index}: {msg}"));
        let tag = r.u8()?;
        let layer = match tag {
            0 => {
                let out_maps = r.usize32()?;
                let kernel = (r.usize32()?, r.usize32()?);
                let stride = (r.usize32()?, r.usize32()?);
                let activation = act_from(r.u8()?)?;
                if out_maps == 0 || kernel.0 == 0 || kernel.1 == 0 {
                    return Err(corrupt("degenerate conv"));
                }
                if kernel.0 > dims.0 || kernel.1 > dims.1 || stride.0 == 0 || stride.1 == 0 {
                    return Err(corrupt("kernel exceeds input"));
                }
                let mut lists = Vec::with_capacity(out_maps);
                let mut kernels = Vec::with_capacity(out_maps);
                let mut biases = Vec::with_capacity(out_maps);
                for _ in 0..out_maps {
                    let conn_len = r.usize32()?;
                    if conn_len == 0 || conn_len > maps {
                        return Err(corrupt("bad connection count"));
                    }
                    let mut conn = Vec::with_capacity(conn_len);
                    for _ in 0..conn_len {
                        let i = r.usize32()?;
                        if i >= maps {
                            return Err(corrupt("connection out of range"));
                        }
                        conn.push(i);
                    }
                    biases.push(r.fx()?);
                    let mut ks = Vec::with_capacity(conn_len);
                    for _ in 0..conn_len {
                        let mut k = FeatureMap::filled(kernel.0, kernel.1, Fx::ZERO);
                        for ky in 0..kernel.1 {
                            for kx in 0..kernel.0 {
                                k[(kx, ky)] = r.fx()?;
                            }
                        }
                        ks.push(k);
                    }
                    lists.push(conn);
                    kernels.push(ks);
                }
                let table = ConnectionTable::from_lists(maps, lists);
                let out_dims = (
                    (dims.0 - kernel.0) / stride.0 + 1,
                    (dims.1 - kernel.1) / stride.1 + 1,
                );
                Layer::from_parts(
                    index,
                    maps,
                    dims,
                    out_maps,
                    out_dims,
                    LayerBody::Conv {
                        table,
                        kernel,
                        stride,
                        weights: ConvWeights::from_parts(kernels, biases),
                        activation,
                    },
                )
            }
            1 => {
                let window = (r.usize32()?, r.usize32()?);
                let stride = (r.usize32()?, r.usize32()?);
                let kind = if r.u8()? == 1 {
                    PoolKind::Avg
                } else {
                    PoolKind::Max
                };
                let rounding = if r.u8()? == 1 {
                    Rounding::Ceil
                } else {
                    Rounding::Floor
                };
                let activation = act_from(r.u8()?)?;
                if window.0 == 0
                    || window.1 == 0
                    || stride.0 == 0
                    || stride.1 == 0
                    || window.0 > dims.0
                    || window.1 > dims.1
                {
                    return Err(corrupt("degenerate pooling"));
                }
                if rounding == Rounding::Ceil && stride != window {
                    return Err(corrupt("ceil pooling requires stride == window"));
                }
                let extent = |n: usize, k: usize, s: usize| match rounding {
                    Rounding::Floor => (n - k) / s + 1,
                    Rounding::Ceil => (n - k).div_ceil(s) + 1,
                };
                let out_dims = (
                    extent(dims.0, window.0, stride.0),
                    extent(dims.1, window.1, stride.1),
                );
                Layer::from_parts(
                    index,
                    maps,
                    dims,
                    maps,
                    out_dims,
                    LayerBody::Pool {
                        window,
                        stride,
                        kind,
                        rounding,
                        activation,
                    },
                )
            }
            2 => {
                let out_count = r.usize32()?;
                let activation = act_from(r.u8()?)?;
                let in_count = maps * dims.0 * dims.1;
                if out_count == 0 {
                    return Err(corrupt("degenerate classifier"));
                }
                let mut rows = Vec::with_capacity(out_count);
                let mut biases = Vec::with_capacity(out_count);
                for _ in 0..out_count {
                    let row_len = r.usize32()?;
                    if row_len == 0 || row_len > in_count {
                        return Err(corrupt("bad row length"));
                    }
                    biases.push(r.fx()?);
                    let mut row = Vec::with_capacity(row_len);
                    let mut prev: Option<usize> = None;
                    for _ in 0..row_len {
                        let i = r.usize32()?;
                        if i >= in_count || prev.is_some_and(|p| p >= i) {
                            return Err(corrupt("row indices must ascend in range"));
                        }
                        prev = Some(i);
                        row.push((i, r.fx()?));
                    }
                    rows.push(row);
                }
                Layer::from_parts(
                    index,
                    maps,
                    dims,
                    out_count,
                    (1, 1),
                    LayerBody::Fc {
                        weights: FcWeights::from_parts(rows, biases, in_count),
                        activation,
                    },
                )
            }
            3 => {
                let window_maps = r.usize32()?;
                let (k, alpha) = (r.f32()?, r.f32()?);
                if window_maps == 0 {
                    return Err(corrupt("zero LRN window"));
                }
                Layer::from_parts(
                    index,
                    maps,
                    dims,
                    maps,
                    dims,
                    LayerBody::Lrn(LrnSpec {
                        window_maps,
                        k,
                        alpha,
                    }),
                )
            }
            4 => {
                let window = r.usize32()?;
                if window % 2 == 0 || window == 0 || window > dims.0 || window > dims.1 {
                    return Err(corrupt("bad LCN window"));
                }
                let gauss = gaussian_window(window, maps);
                Layer::from_parts(
                    index,
                    maps,
                    dims,
                    maps,
                    dims,
                    LayerBody::Lcn {
                        spec: LcnSpec::new(window),
                        gauss,
                    },
                )
            }
            other => return Err(corrupt(&format!("unknown layer tag {other}"))),
        };
        maps = layer.out_maps();
        dims = layer.out_dims();
        layers.push(layer);
    }
    Ok(Network::from_parts(name, input_maps, input_dims, layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn round_trip(net: &Network) -> Network {
        let mut buf = Vec::new();
        save(net, &mut buf).unwrap();
        load(buf.as_slice()).unwrap()
    }

    #[test]
    fn every_benchmark_round_trips_byte_exactly() {
        for b in zoo::all() {
            let net = b.build(9).unwrap();
            let loaded = round_trip(&net);
            assert_eq!(loaded, net, "{}", net.name());
        }
    }

    #[test]
    fn extended_networks_round_trip() {
        for b in zoo::extended::all() {
            let net = b.build(9).unwrap();
            assert_eq!(round_trip(&net), net, "{}", net.name());
        }
    }

    #[test]
    fn loaded_networks_run_identically() {
        let net = zoo::gabor().build(3).unwrap();
        let loaded = round_trip(&net);
        let input = net.random_input(4);
        assert_eq!(
            loaded.forward_fixed(&input).output(),
            net.forward_fixed(&input).output()
        );
    }

    #[test]
    fn save_is_deterministic() {
        let net = zoo::lenet5().build(1).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&net, &mut a).unwrap();
        save(&net, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_files_are_rejected() {
        let net = zoo::gabor().build(1).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_connection_is_rejected() {
        let net = zoo::gabor().build(1).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        // Flip a byte inside the header region to a nonsense layer count.
        let name_len = net.name().len();
        let layer_count_pos = 4 + 2 + 2 + name_len + 12;
        buf[layer_count_pos] = 0xFF;
        buf[layer_count_pos + 1] = 0xFF;
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let net = zoo::gabor().build(1).unwrap();
        let mut buf = Vec::new();
        save(&net, &mut buf).unwrap();
        buf[4] = 99;
        let err = load(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
