//! Network construction, validation, and the forward executors.

use crate::layer::{
    Activation, Connectivity, ConvSpec, FcSpec, LayerKind, LayerSpec, LcnSpec, LrnSpec, PoolKind,
    PoolSpec, Rounding,
};
use crate::reference;
use crate::weights::{ConvWeights, FcWeights};
use crate::ConnectionTable;
use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};

/// Error produced while assembling a [`Network`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The builder holds no layers.
    Empty,
    /// A layer's geometry is inconsistent with its input (message explains).
    Geometry(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => f.write_str("network has no layers"),
            NetworkError::Geometry(msg) => write!(f, "invalid layer geometry: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Incrementally describes a CNN; [`NetworkBuilder::build`] validates the
/// geometry, generates deterministic fixed-point weights, and produces a
/// [`Network`].
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::{ConvSpec, FcSpec, NetworkBuilder, PoolSpec};
///
/// let net = NetworkBuilder::new("tiny", 1, (12, 12))
///     .conv(ConvSpec::new(4, (3, 3)))
///     .pool(PoolSpec::max((2, 2)))
///     .fc(FcSpec::new(10))
///     .build(1)
///     .unwrap();
/// assert_eq!(net.layers().len(), 3);
/// assert_eq!(net.output_count(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    input_maps: usize,
    input_dims: (usize, usize),
    specs: Vec<LayerSpec>,
}

impl NetworkBuilder {
    /// Starts a network taking `input_maps` feature maps of
    /// `input_dims = (width, height)` pixels.
    pub fn new(
        name: impl Into<String>,
        input_maps: usize,
        input_dims: (usize, usize),
    ) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            input_maps,
            input_dims,
            specs: Vec::new(),
        }
    }

    /// Appends a convolutional layer.
    pub fn conv(mut self, spec: ConvSpec) -> NetworkBuilder {
        self.specs.push(LayerSpec::Conv(spec));
        self
    }

    /// Appends a pooling layer.
    pub fn pool(mut self, spec: PoolSpec) -> NetworkBuilder {
        self.specs.push(LayerSpec::Pool(spec));
        self
    }

    /// Appends a classifier layer.
    pub fn fc(mut self, spec: FcSpec) -> NetworkBuilder {
        self.specs.push(LayerSpec::Fc(spec));
        self
    }

    /// Appends an LRN layer.
    pub fn lrn(mut self, spec: LrnSpec) -> NetworkBuilder {
        self.specs.push(LayerSpec::Lrn(spec));
        self
    }

    /// Appends an LCN layer.
    pub fn lcn(mut self, spec: LcnSpec) -> NetworkBuilder {
        self.specs.push(LayerSpec::Lcn(spec));
        self
    }

    /// Appends an arbitrary layer spec.
    pub fn push(mut self, spec: LayerSpec) -> NetworkBuilder {
        self.specs.push(spec);
        self
    }

    /// The layer specs pushed so far.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Validates the geometry, generates weights from `seed`, and produces
    /// the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] when the builder is empty or a layer cannot
    /// be applied to its input shape.
    pub fn build(&self, seed: u64) -> Result<Network, NetworkError> {
        if self.specs.is_empty() {
            return Err(NetworkError::Empty);
        }
        if self.input_maps == 0 || self.input_dims.0 == 0 || self.input_dims.1 == 0 {
            return Err(NetworkError::Geometry("empty input".into()));
        }
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut maps = self.input_maps;
        let mut dims = self.input_dims;
        for (index, spec) in self.specs.iter().enumerate() {
            // One RNG stream per layer: weights do not shift when earlier
            // layers change shape.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let layer = resolve_layer(index, maps, dims, spec, &mut rng)?;
            maps = layer.out_maps;
            dims = layer.out_dims;
            layers.push(layer);
        }
        Ok(Network {
            name: self.name.clone(),
            input_maps: self.input_maps,
            input_dims: self.input_dims,
            layers,
        })
    }
}

fn resolve_layer(
    index: usize,
    in_maps: usize,
    in_dims: (usize, usize),
    spec: &LayerSpec,
    rng: &mut StdRng,
) -> Result<Layer, NetworkError> {
    let geo = |msg: String| NetworkError::Geometry(format!("layer {index}: {msg}"));
    match spec {
        LayerSpec::Conv(c) => {
            if c.kernel.0 == 0 || c.kernel.1 == 0 || c.stride.0 == 0 || c.stride.1 == 0 {
                return Err(geo("zero kernel or stride".into()));
            }
            if c.kernel.0 > in_dims.0 || c.kernel.1 > in_dims.1 {
                return Err(geo(format!(
                    "kernel {}x{} exceeds input {}x{}",
                    c.kernel.0, c.kernel.1, in_dims.0, in_dims.1
                )));
            }
            if c.out_maps == 0 {
                return Err(geo("zero output maps".into()));
            }
            let table = match &c.connectivity {
                Connectivity::Full => ConnectionTable::full(in_maps, c.out_maps),
                Connectivity::Pairs(p) => {
                    if *p == 0 || *p > in_maps * c.out_maps {
                        return Err(geo(format!("bad pair count {p}")));
                    }
                    ConnectionTable::spread(in_maps, c.out_maps, *p)
                }
                Connectivity::Table(t) => {
                    if t.in_maps() != in_maps || t.out_maps() != c.out_maps {
                        return Err(geo("connection table shape mismatch".into()));
                    }
                    t.clone()
                }
            };
            let out_dims = (
                (in_dims.0 - c.kernel.0) / c.stride.0 + 1,
                (in_dims.1 - c.kernel.1) / c.stride.1 + 1,
            );
            let weights = ConvWeights::generate(&table, c.kernel, rng);
            Ok(Layer {
                index,
                in_maps,
                in_dims,
                out_maps: c.out_maps,
                out_dims,
                body: LayerBody::Conv {
                    table,
                    kernel: c.kernel,
                    stride: c.stride,
                    weights,
                    activation: c.activation,
                },
            })
        }
        LayerSpec::Pool(p) => {
            if p.window.0 == 0 || p.window.1 == 0 || p.stride.0 == 0 || p.stride.1 == 0 {
                return Err(geo("zero window or stride".into()));
            }
            if p.window.0 > in_dims.0 || p.window.1 > in_dims.1 {
                return Err(geo(format!(
                    "window {}x{} exceeds input {}x{}",
                    p.window.0, p.window.1, in_dims.0, in_dims.1
                )));
            }
            if p.rounding == Rounding::Ceil && p.stride != p.window {
                return Err(geo(
                    "ceiling rounding requires non-overlapping pooling (stride == window)".into(),
                ));
            }
            let extent = |n: usize, k: usize, s: usize| match p.rounding {
                Rounding::Floor => (n - k) / s + 1,
                Rounding::Ceil => (n - k).div_ceil(s) + 1,
            };
            let out_dims = (
                extent(in_dims.0, p.window.0, p.stride.0),
                extent(in_dims.1, p.window.1, p.stride.1),
            );
            Ok(Layer {
                index,
                in_maps,
                in_dims,
                out_maps: in_maps,
                out_dims,
                body: LayerBody::Pool {
                    window: p.window,
                    stride: p.stride,
                    kind: p.kind,
                    rounding: p.rounding,
                    activation: p.activation,
                },
            })
        }
        LayerSpec::Fc(f) => {
            if f.out_neurons == 0 {
                return Err(geo("zero output neurons".into()));
            }
            let in_count = in_maps * in_dims.0 * in_dims.1;
            if let Some(spo) = f.synapses_per_output {
                if spo == 0 || spo > in_count {
                    return Err(geo(format!(
                        "synapses per output {spo} out of range for {in_count} inputs"
                    )));
                }
            }
            let weights = FcWeights::generate(in_count, f.out_neurons, f.synapses_per_output, rng);
            Ok(Layer {
                index,
                in_maps,
                in_dims,
                out_maps: f.out_neurons,
                out_dims: (1, 1),
                body: LayerBody::Fc {
                    weights,
                    activation: f.activation,
                },
            })
        }
        LayerSpec::Lrn(l) => {
            if l.window_maps == 0 {
                return Err(geo("zero LRN map window".into()));
            }
            Ok(Layer {
                index,
                in_maps,
                in_dims,
                out_maps: in_maps,
                out_dims: in_dims,
                body: LayerBody::Lrn(*l),
            })
        }
        LayerSpec::Lcn(l) => {
            if l.window > in_dims.0 || l.window > in_dims.1 {
                return Err(geo(format!(
                    "LCN window {} exceeds input {}x{}",
                    l.window, in_dims.0, in_dims.1
                )));
            }
            let gauss = gaussian_window(l.window, in_maps);
            Ok(Layer {
                index,
                in_maps,
                in_dims,
                out_maps: in_maps,
                out_dims: in_dims,
                body: LayerBody::Lcn { spec: *l, gauss },
            })
        }
    }
}

/// A normalized Gaussian weighting window `ω` (formula (6)): quantized to
/// fixed point with `Σ_{j,p,q} ω ≈ 1` across all `maps` input maps.
pub(crate) fn gaussian_window(window: usize, maps: usize) -> FeatureMap<Fx> {
    let sigma = window as f64 / 4.0;
    let c = (window / 2) as f64;
    let raw = FeatureMap::from_fn(window, window, |x, y| {
        let (dx, dy) = (x as f64 - c, y as f64 - c);
        (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
    });
    let total: f64 = raw.iter().sum::<f64>() * maps as f64;
    raw.map(|v| Fx::from_f64(v / total))
}

/// A fully resolved layer: geometry plus fixed-point weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Layer {
    index: usize,
    in_maps: usize,
    in_dims: (usize, usize),
    out_maps: usize,
    out_dims: (usize, usize),
    body: LayerBody,
}

/// The kind-specific contents of a resolved [`Layer`]. Fields are public:
/// the simulator's layer executors consume them directly.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerBody {
    /// Convolutional layer (formula (1)).
    Conv {
        /// Which input maps feed each output map.
        table: ConnectionTable,
        /// Kernel `(Kx, Ky)`.
        kernel: (usize, usize),
        /// Stride `(Sx, Sy)`.
        stride: (usize, usize),
        /// Kernels and biases.
        weights: ConvWeights,
        /// ALU activation.
        activation: Activation,
    },
    /// Pooling layer (formula (2)).
    Pool {
        /// Window `(Kx, Ky)`.
        window: (usize, usize),
        /// Stride `(Sx, Sy)`.
        stride: (usize, usize),
        /// Max or average.
        kind: PoolKind,
        /// Edge rounding convention.
        rounding: Rounding,
        /// ALU activation.
        activation: Activation,
    },
    /// Classifier layer (formula (7)).
    Fc {
        /// Synapse rows and biases.
        weights: FcWeights,
        /// ALU activation.
        activation: Activation,
    },
    /// Local Response Normalization (formula (3)).
    Lrn(LrnSpec),
    /// Local Contrast Normalization (formulae (4)–(6)).
    Lcn {
        /// Parameters.
        spec: LcnSpec,
        /// Quantized Gaussian window `ω`.
        gauss: FeatureMap<Fx>,
    },
}

impl Layer {
    /// Assembles a resolved layer (the deserialization path).
    pub(crate) fn from_parts(
        index: usize,
        in_maps: usize,
        in_dims: (usize, usize),
        out_maps: usize,
        out_dims: (usize, usize),
        body: LayerBody,
    ) -> Layer {
        Layer {
            index,
            in_maps,
            in_dims,
            out_maps,
            out_dims,
            body,
        }
    }

    /// Position of the layer within its network (0-based).
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Input map count.
    #[inline]
    pub fn in_maps(&self) -> usize {
        self.in_maps
    }

    /// Input map dimensions `(width, height)`.
    #[inline]
    pub fn in_dims(&self) -> (usize, usize) {
        self.in_dims
    }

    /// Output map count (for classifiers: output neurons).
    #[inline]
    pub fn out_maps(&self) -> usize {
        self.out_maps
    }

    /// Output map dimensions (classifiers: `(1, 1)`).
    #[inline]
    pub fn out_dims(&self) -> (usize, usize) {
        self.out_dims
    }

    /// The kind-specific contents.
    #[inline]
    pub fn body(&self) -> &LayerBody {
        &self.body
    }

    /// The layer family.
    pub fn kind(&self) -> LayerKind {
        match self.body {
            LayerBody::Conv { .. } => LayerKind::Conv,
            LayerBody::Pool { .. } => LayerKind::Pool,
            LayerBody::Fc { .. } => LayerKind::Fc,
            LayerBody::Lrn(_) => LayerKind::Lrn,
            LayerBody::Lcn { .. } => LayerKind::Lcn,
        }
    }

    /// A Table 2 style label such as `C1`, `S2`, `F5` (1-based index).
    pub fn label(&self) -> String {
        let letter = match self.kind() {
            LayerKind::Conv => 'C',
            LayerKind::Pool => 'S',
            LayerKind::Fc => 'F',
            LayerKind::Lrn | LayerKind::Lcn => 'N',
        };
        format!("{letter}{}", self.index + 1)
    }

    /// Total input neurons.
    #[inline]
    pub fn in_neurons(&self) -> usize {
        self.in_maps * self.in_dims.0 * self.in_dims.1
    }

    /// Total output neurons.
    #[inline]
    pub fn out_neurons(&self) -> usize {
        self.out_maps * self.out_dims.0 * self.out_dims.1
    }

    /// Number of synaptic weights held for this layer (0 for pooling and
    /// normalization, matching Table 1's accounting).
    pub fn synapse_count(&self) -> usize {
        match &self.body {
            LayerBody::Conv { weights, .. } => weights.synapse_count(),
            LayerBody::Fc { weights, .. } => weights.synapse_count(),
            _ => 0,
        }
    }
}

/// A validated CNN with deterministic fixed-point weights.
///
/// See [`NetworkBuilder`] for construction and [`crate::zoo`] for the ten
/// paper benchmarks.
#[derive(Clone, Debug, PartialEq)]
pub struct Network {
    name: String,
    input_maps: usize,
    input_dims: (usize, usize),
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from resolved layers (the deserialization
    /// path; geometry is assumed validated by the caller).
    pub(crate) fn from_parts(
        name: String,
        input_maps: usize,
        input_dims: (usize, usize),
        layers: Vec<Layer>,
    ) -> Network {
        Network {
            name,
            input_maps,
            input_dims,
            layers,
        }
    }

    /// The network's name (e.g. `"LeNet-5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input feature maps.
    #[inline]
    pub fn input_maps(&self) -> usize {
        self.input_maps
    }

    /// Input map dimensions `(width, height)`.
    #[inline]
    pub fn input_dims(&self) -> (usize, usize) {
        self.input_dims
    }

    /// The resolved layers, in execution order.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of output values the final layer produces.
    pub fn output_count(&self) -> usize {
        self.layers.last().map_or(0, Layer::out_neurons)
    }

    /// A deterministic pseudo-random input stack with values in `[-1, 1]`.
    pub fn random_input(&self, seed: u64) -> MapStack<Fx> {
        let mut rng = StdRng::seed_from_u64(seed);
        MapStack::from_fn(
            self.input_dims.0,
            self.input_dims.1,
            self.input_maps,
            |_| {
                FeatureMap::from_fn(self.input_dims.0, self.input_dims.1, |_, _| {
                    Fx::from_f32(rng.gen_range(-1.0..1.0))
                })
            },
        )
    }

    /// Replaces a convolution kernel with explicit (e.g. trained) weights:
    /// output map `o`'s `j`-th connected input of layer `layer_index`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Geometry`] if the indices do not name a
    /// convolution kernel or the dimensions differ.
    pub fn set_conv_kernel(
        &mut self,
        layer_index: usize,
        o: usize,
        j: usize,
        kernel: FeatureMap<Fx>,
    ) -> Result<(), NetworkError> {
        let geo = |msg: &str| NetworkError::Geometry(format!("layer {layer_index}: {msg}"));
        let layer = self
            .layers
            .get_mut(layer_index)
            .ok_or_else(|| geo("no such layer"))?;
        let LayerBody::Conv {
            table,
            weights,
            kernel: dims,
            ..
        } = &mut layer.body
        else {
            return Err(geo("not a convolutional layer"));
        };
        if o >= table.out_maps() || j >= table.inputs_of(o).len() {
            return Err(geo("kernel index out of range"));
        }
        if kernel.dims() != *dims {
            return Err(geo("kernel dimensions differ"));
        }
        weights.set_kernel(o, j, kernel);
        Ok(())
    }

    /// Sets a convolution output map's bias.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Geometry`] on a bad index.
    pub fn set_conv_bias(
        &mut self,
        layer_index: usize,
        o: usize,
        bias: Fx,
    ) -> Result<(), NetworkError> {
        let geo = |msg: &str| NetworkError::Geometry(format!("layer {layer_index}: {msg}"));
        let layer = self
            .layers
            .get_mut(layer_index)
            .ok_or_else(|| geo("no such layer"))?;
        let LayerBody::Conv { weights, .. } = &mut layer.body else {
            return Err(geo("not a convolutional layer"));
        };
        if o >= weights.out_maps() {
            return Err(geo("output map out of range"));
        }
        weights.set_bias(o, bias);
        Ok(())
    }

    /// Replaces a classifier output's weights (one value per existing
    /// synapse, ascending input order) and bias.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Geometry`] on a bad index or a length
    /// mismatch.
    pub fn set_fc_row(
        &mut self,
        layer_index: usize,
        n: usize,
        values: &[Fx],
        bias: Fx,
    ) -> Result<(), NetworkError> {
        let geo = |msg: &str| NetworkError::Geometry(format!("layer {layer_index}: {msg}"));
        let layer = self
            .layers
            .get_mut(layer_index)
            .ok_or_else(|| geo("no such layer"))?;
        let LayerBody::Fc { weights, .. } = &mut layer.body else {
            return Err(geo("not a classifier layer"));
        };
        if n >= weights.out_count() {
            return Err(geo("output neuron out of range"));
        }
        if values.len() != weights.row(n).len() {
            return Err(geo("row length differs"));
        }
        weights.set_row_weights(n, values);
        weights.set_bias(n, bias);
        Ok(())
    }

    /// Returns a copy with every synaptic weight and bias requantized to
    /// `Q(total_bits).(frac_bits)` storage — the weight-precision knob of
    /// the §5 accuracy/storage trade-off (narrower weights would shrink
    /// the SB proportionally). The datapath stays 16-bit.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported format (see
    /// [`Fx::quantized`](shidiannao_fixed::Fx::quantized)).
    pub fn quantize_weights(&self, total_bits: u32, frac_bits: u32) -> Network {
        let mut out = self.clone();
        for i in 0..out.layers.len() {
            match out.layers[i].body.clone() {
                LayerBody::Conv {
                    table,
                    kernel,
                    weights,
                    ..
                } => {
                    for o in 0..table.out_maps() {
                        out.set_conv_bias(i, o, weights.bias(o).quantized(total_bits, frac_bits))
                            .expect("same geometry");
                        for j in 0..table.inputs_of(o).len() {
                            let k = weights
                                .kernel(o, j)
                                .map(|v| v.quantized(total_bits, frac_bits));
                            out.set_conv_kernel(i, o, j, k).expect("same geometry");
                        }
                    }
                    let _ = kernel;
                }
                LayerBody::Fc { weights, .. } => {
                    for n in 0..weights.out_count() {
                        let row: Vec<Fx> = weights
                            .row(n)
                            .iter()
                            .map(|&(_, w)| w.quantized(total_bits, frac_bits))
                            .collect();
                        out.set_fc_row(
                            i,
                            n,
                            &row,
                            weights.bias(n).quantized(total_bits, frac_bits),
                        )
                        .expect("same geometry");
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Runs the fixed-point golden reference, recording every layer's
    /// output. This is the semantics the cycle-level simulator must
    /// reproduce bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the network's input shape.
    pub fn forward_fixed(&self, input: &MapStack<Fx>) -> ForwardTrace {
        assert_eq!(
            (input.len(), input.map_dims()),
            (self.input_maps, self.input_dims),
            "input shape mismatch for network {}",
            self.name
        );
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for layer in &self.layers {
            let next = reference::forward_layer_fixed(layer, &current);
            activations.push(next.clone());
            current = next;
        }
        ForwardTrace { activations }
    }

    /// Runs a 32-bit floating-point forward pass with the same (quantized)
    /// weights, for accuracy comparisons against the fixed-point path.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the network's input shape.
    pub fn forward_f32(&self, input: &MapStack<f32>) -> Vec<MapStack<f32>> {
        assert_eq!(
            (input.len(), input.map_dims()),
            (self.input_maps, self.input_dims),
            "input shape mismatch for network {}",
            self.name
        );
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for layer in &self.layers {
            let next = reference::forward_layer_f32(layer, &current);
            outs.push(next.clone());
            current = next;
        }
        outs
    }
}

/// The per-layer outputs of a fixed-point forward pass.
#[derive(Clone, Debug, PartialEq)]
pub struct ForwardTrace {
    activations: Vec<MapStack<Fx>>,
}

impl ForwardTrace {
    /// The output of layer `i` (0-based), or `None` when out of range.
    pub fn layer_output(&self, i: usize) -> Option<&MapStack<Fx>> {
        self.activations.get(i)
    }

    /// Number of recorded layer outputs.
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// `true` when no layers were executed.
    pub fn is_empty(&self) -> bool {
        self.activations.is_empty()
    }

    /// The final layer's output, flattened map-major.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn output(&self) -> Vec<Fx> {
        self.activations
            .last()
            .expect("forward trace is never empty for a built network")
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};

    fn tiny() -> NetworkBuilder {
        NetworkBuilder::new("tiny", 1, (12, 12))
            .conv(ConvSpec::new(4, (3, 3)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(10))
    }

    #[test]
    fn build_resolves_geometry() {
        let net = tiny().build(1).unwrap();
        let l = net.layers();
        assert_eq!(l[0].out_dims(), (10, 10));
        assert_eq!(l[1].out_dims(), (5, 5));
        assert_eq!(l[1].out_maps(), 4);
        assert_eq!(l[2].out_neurons(), 10);
        assert_eq!(l[2].in_neurons(), 100);
        assert_eq!(net.output_count(), 10);
    }

    #[test]
    fn labels_follow_table2_style() {
        let net = tiny().build(1).unwrap();
        let labels: Vec<_> = net.layers().iter().map(Layer::label).collect();
        assert_eq!(labels, ["C1", "S2", "F3"]);
    }

    #[test]
    fn empty_network_rejected() {
        let err = NetworkBuilder::new("none", 1, (4, 4)).build(0);
        assert_eq!(err.unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn oversized_kernel_rejected() {
        let err = NetworkBuilder::new("bad", 1, (4, 4))
            .conv(ConvSpec::new(2, (5, 5)))
            .build(0)
            .unwrap_err();
        assert!(matches!(err, NetworkError::Geometry(_)));
        assert!(err.to_string().contains("exceeds input"));
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny().build(7).unwrap();
        let b = tiny().build(7).unwrap();
        assert_eq!(a, b);
        let c = tiny().build(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn weight_streams_are_per_layer() {
        // Changing an earlier layer's own randomness draw must not shift
        // later layers' weights: the conv kernel sizes differ (different
        // numbers of samples drawn for layer 0) while the FC layer keeps
        // the same shape — its weights must be identical.
        let a = NetworkBuilder::new("a", 1, (13, 13))
            .conv(ConvSpec::new(4, (4, 4)).with_stride((3, 3)))
            .fc(FcSpec::new(5))
            .build(3)
            .unwrap();
        let b = NetworkBuilder::new("b", 1, (13, 13))
            .conv(ConvSpec::new(4, (2, 2)).with_stride((3, 3)))
            .fc(FcSpec::new(5))
            .build(3)
            .unwrap();
        assert_eq!(a.layers()[1].out_neurons(), b.layers()[1].out_neurons());
        assert_eq!(a.layers()[1].in_neurons(), b.layers()[1].in_neurons());
        let (LayerBody::Fc { weights: wa, .. }, LayerBody::Fc { weights: wb, .. }) =
            (a.layers()[1].body(), b.layers()[1].body())
        else {
            panic!("expected classifiers");
        };
        assert_eq!(wa, wb);
    }

    #[test]
    fn forward_shapes_match_geometry() {
        let net = tiny().build(1).unwrap();
        let input = net.random_input(2);
        let trace = net.forward_fixed(&input);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.layer_output(0).unwrap().map_dims(), (10, 10));
        assert_eq!(trace.layer_output(1).unwrap().map_dims(), (5, 5));
        assert_eq!(trace.output().len(), 10);
        assert!(trace.layer_output(3).is_none());
    }

    #[test]
    fn random_input_is_deterministic_and_bounded() {
        let net = tiny().build(1).unwrap();
        let a = net.random_input(5);
        let b = net.random_input(5);
        assert_eq!(a, b);
        for m in &a {
            for v in m {
                assert!(v.to_f32().abs() <= 1.0);
            }
        }
    }

    #[test]
    fn f32_and_fixed_paths_agree_loosely() {
        let net = tiny().build(4).unwrap();
        let input = net.random_input(9);
        let fixed = net.forward_fixed(&input);
        let f32_in = input.map(|v| v.to_f32());
        let float = net.forward_f32(&f32_in);
        let out_fixed = fixed.output();
        let out_float = float.last().unwrap().flatten();
        for (a, b) in out_fixed.iter().zip(&out_float) {
            assert!(
                (a.to_f32() - b).abs() < 0.1,
                "fixed {} vs float {b}",
                a.to_f32()
            );
        }
    }

    #[test]
    fn sparse_fc_builds() {
        let net = NetworkBuilder::new("sparse", 1, (6, 6))
            .fc(FcSpec::new(4).with_synapses_per_output(9))
            .build(0)
            .unwrap();
        assert_eq!(net.layers()[0].synapse_count(), 36);
    }

    #[test]
    fn lrn_and_lcn_preserve_shape() {
        let net = NetworkBuilder::new("norm", 3, (8, 8))
            .lrn(LrnSpec::new())
            .lcn(LcnSpec::new(5))
            .build(0)
            .unwrap();
        let input = net.random_input(1);
        let trace = net.forward_fixed(&input);
        assert_eq!(trace.layer_output(0).unwrap().map_dims(), (8, 8));
        assert_eq!(trace.layer_output(1).unwrap().len(), 3);
    }

    #[test]
    fn weight_editing_round_trips() {
        use shidiannao_tensor::FeatureMap;
        let mut net = tiny().build(1).unwrap();
        let k = FeatureMap::filled(3, 3, Fx::from_f32(0.25));
        net.set_conv_kernel(0, 1, 0, k.clone()).unwrap();
        net.set_conv_bias(0, 1, Fx::from_f32(0.5)).unwrap();
        let LayerBody::Conv { weights, .. } = net.layers()[0].body() else {
            panic!()
        };
        assert_eq!(weights.kernel(1, 0), &k);
        assert_eq!(weights.bias(1), Fx::from_f32(0.5));
        // FC row: 100 inputs → row length 100.
        let row = vec![Fx::EPSILON; 100];
        net.set_fc_row(2, 3, &row, Fx::ZERO).unwrap();
        let LayerBody::Fc { weights, .. } = net.layers()[2].body() else {
            panic!()
        };
        assert!(weights.row(3).iter().all(|&(_, w)| w == Fx::EPSILON));
    }

    #[test]
    fn weight_editing_rejects_bad_targets() {
        use shidiannao_tensor::FeatureMap;
        let mut net = tiny().build(1).unwrap();
        let k3 = FeatureMap::filled(3, 3, Fx::ZERO);
        let k5 = FeatureMap::filled(5, 5, Fx::ZERO);
        assert!(
            net.set_conv_kernel(1, 0, 0, k3.clone()).is_err(),
            "pool layer"
        );
        assert!(net.set_conv_kernel(0, 9, 0, k3.clone()).is_err(), "bad map");
        assert!(net.set_conv_kernel(0, 0, 0, k5).is_err(), "wrong dims");
        assert!(net.set_conv_kernel(7, 0, 0, k3).is_err(), "no such layer");
        assert!(net.set_conv_bias(2, 0, Fx::ZERO).is_err(), "fc not conv");
        assert!(net.set_fc_row(0, 0, &[], Fx::ZERO).is_err(), "conv not fc");
        assert!(
            net.set_fc_row(2, 0, &[Fx::ZERO; 3], Fx::ZERO).is_err(),
            "length"
        );
        assert!(
            net.set_fc_row(2, 99, &[Fx::ZERO; 100], Fx::ZERO).is_err(),
            "index"
        );
    }

    #[test]
    fn weight_quantization_degrades_gracefully() {
        let net = tiny().build(3).unwrap();
        let input = net.random_input(4);
        let full = net.forward_fixed(&input).output();
        // Identity quantization changes nothing.
        let same = net.quantize_weights(16, 8);
        assert_eq!(same.forward_fixed(&input).output(), full);
        // 8-bit weights stay close; 4-bit weights drift further.
        let err = |n: &Network| {
            let out = n.forward_fixed(&input).output();
            full.iter()
                .zip(&out)
                .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
                .fold(0.0f32, f32::max)
        };
        let e8 = err(&net.quantize_weights(8, 7));
        let e4 = err(&net.quantize_weights(4, 3));
        assert!(e8 < 0.2, "8-bit error {e8}");
        assert!(
            e8 <= e4,
            "coarser weights cannot be more accurate: {e8} vs {e4}"
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(NetworkError::Empty.to_string(), "network has no layers");
        let g = NetworkError::Geometry("oops".into());
        assert_eq!(g.to_string(), "invalid layer geometry: oops");
    }
}
