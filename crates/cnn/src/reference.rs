//! The golden reference executors.
//!
//! [`forward_layer_fixed`] defines the **canonical fixed-point semantics**
//! of every layer type: accumulation in the widened [`Accum`] register,
//! truncating read-out, ALU activations through the 16-segment PLA, ALU
//! divisions. The cycle-level simulator in `shidiannao-core` must reproduce
//! these results bit-for-bit — integration tests enforce that.
//!
//! [`forward_layer_f32`] mirrors the same computation in `f32` (with the
//! already-quantized weights) for accuracy comparisons.

use crate::layer::{Activation, LrnSpec, PoolKind};
use crate::network::{Layer, LayerBody};
use shidiannao_fixed::{Accum, Fx, Pla};
use shidiannao_tensor::{FeatureMap, MapStack};

/// Executes one layer in fixed point.
///
/// # Panics
///
/// Panics if `input` does not match the layer's declared input shape.
pub fn forward_layer_fixed(layer: &Layer, input: &MapStack<Fx>) -> MapStack<Fx> {
    assert_eq!(
        (input.len(), input.map_dims()),
        (layer.in_maps(), layer.in_dims()),
        "layer {} fed wrong input shape",
        layer.index()
    );
    match layer.body() {
        LayerBody::Conv {
            table,
            kernel,
            stride,
            weights,
            activation,
        } => {
            let (ow, oh) = layer.out_dims();
            let pla = activation.pla();
            MapStack::from_fn(ow, oh, layer.out_maps(), |o| {
                FeatureMap::from_fn(ow, oh, |x, y| {
                    let mut acc = Accum::from_fx(weights.bias(o));
                    for (j, &im) in table.inputs_of(o).iter().enumerate() {
                        let k = weights.kernel(o, j);
                        let map = &input[im];
                        for ky in 0..kernel.1 {
                            for kx in 0..kernel.0 {
                                acc.mac(map[(x * stride.0 + kx, y * stride.1 + ky)], k[(kx, ky)]);
                            }
                        }
                    }
                    activation.apply_fixed(acc.to_fx(), pla.as_ref())
                })
            })
        }
        LayerBody::Pool {
            window,
            stride,
            kind,
            activation,
            ..
        } => {
            let (ow, oh) = layer.out_dims();
            let (iw, ih) = layer.in_dims();
            let pla = activation.pla();
            MapStack::from_fn(ow, oh, layer.out_maps(), |m| {
                let map = &input[m];
                FeatureMap::from_fn(ow, oh, |x, y| {
                    let x0 = x * stride.0;
                    let y0 = y * stride.1;
                    // Ceiling-rounded layers clip trailing windows at the
                    // input edge (§layer::Rounding).
                    let x1 = (x0 + window.0).min(iw);
                    let y1 = (y0 + window.1).min(ih);
                    let v = match kind {
                        PoolKind::Max => {
                            let mut best = Fx::MIN;
                            for yy in y0..y1 {
                                for xx in x0..x1 {
                                    best = best.max(map[(xx, yy)]);
                                }
                            }
                            best
                        }
                        PoolKind::Avg => {
                            let mut acc = Accum::new();
                            for yy in y0..y1 {
                                for xx in x0..x1 {
                                    acc.add_fx(map[(xx, yy)]);
                                }
                            }
                            acc.mean((x1 - x0) * (y1 - y0))
                        }
                    };
                    activation.apply_fixed(v, pla.as_ref())
                })
            })
        }
        LayerBody::Fc {
            weights,
            activation,
        } => {
            let flat = input.flatten();
            let pla = activation.pla();
            MapStack::from_fn(1, 1, layer.out_maps(), |n| {
                let mut acc = Accum::from_fx(weights.bias(n));
                for &(i, w) in weights.row(n) {
                    acc.mac(flat[i], w);
                }
                FeatureMap::filled(1, 1, activation.apply_fixed(acc.to_fx(), pla.as_ref()))
            })
        }
        LayerBody::Lrn(spec) => lrn_fixed(layer, input, spec),
        LayerBody::Lcn { gauss, .. } => lcn_fixed(layer, input, gauss),
    }
}

/// LRN per formula (3), following the Fig. 15 decomposition: element-wise
/// square (NFU), cross-map matrix addition (NFU), scale-and-offset plus
/// division (ALU): `O = I / (k + α · Σⱼ Iⱼ²)`.
fn lrn_fixed(layer: &Layer, input: &MapStack<Fx>, spec: &LrnSpec) -> MapStack<Fx> {
    let (w, h) = layer.in_dims();
    let maps = layer.in_maps();
    let half = spec.window_maps / 2;
    let (k, alpha) = (spec.k_fx(), spec.alpha_fx());
    MapStack::from_fn(w, h, maps, |mi| {
        let lo = mi.saturating_sub(half);
        let hi = (mi + half).min(maps - 1);
        FeatureMap::from_fn(w, h, |x, y| {
            let mut acc = Accum::new();
            for j in lo..=hi {
                let v = input[j][(x, y)];
                acc.mac(v, v);
            }
            let denom = k + alpha * acc.to_fx();
            input[mi][(x, y)] / denom
        })
    })
}

/// LCN per formulae (4)–(6), following the Fig. 16 decomposition: a
/// Gaussian-weighted subtractive pass (convolutional sub-layer + matrix
/// subtraction), a weighted-variance pass (square + convolutional
/// sub-layer), an ALU square root (PLA) and division. Window positions
/// falling outside the map are skipped (edge clipping).
fn lcn_fixed(layer: &Layer, input: &MapStack<Fx>, gauss: &FeatureMap<Fx>) -> MapStack<Fx> {
    let (w, h) = layer.in_dims();
    let maps = layer.in_maps();
    let win = gauss.width();
    let half = win / 2;
    let sqrt_pla = Pla::from_fn(|x| x.max(0.0).sqrt(), 0.0, 127.0);

    // Weighted cross-map local mean μ(x, y).
    let mu = FeatureMap::from_fn(w, h, |x, y| {
        let mut acc = Accum::new();
        for j in 0..maps {
            for q in 0..win {
                for p in 0..win {
                    let (xx, yy) = (x + p, y + q);
                    if xx < half || yy < half || xx - half >= w || yy - half >= h {
                        continue;
                    }
                    acc.mac(gauss[(p, q)], input[j][(xx - half, yy - half)]);
                }
            }
        }
        acc.to_fx()
    });

    // Subtractive normalization v = I − μ.
    let v: Vec<FeatureMap<Fx>> = (0..maps)
        .map(|j| FeatureMap::from_fn(w, h, |x, y| input[j][(x, y)] - mu[(x, y)]))
        .collect();

    // Weighted local standard deviation δ = √(Σ ω v²).
    let delta = FeatureMap::from_fn(w, h, |x, y| {
        let mut acc = Accum::new();
        for vj in &v {
            for q in 0..win {
                for p in 0..win {
                    let (xx, yy) = (x + p, y + q);
                    if xx < half || yy < half || xx - half >= w || yy - half >= h {
                        continue;
                    }
                    let s = vj[(xx - half, yy - half)].squared();
                    acc.mac(gauss[(p, q)], s);
                }
            }
        }
        sqrt_pla.eval(acc.to_fx())
    });

    // Divisive normalization by max(mean(δ), δ).
    let mut sum = Accum::new();
    for d in delta.iter() {
        sum.add_fx(*d);
    }
    let mean_delta = sum.mean(w * h);
    MapStack::from_fn(w, h, maps, |j| {
        FeatureMap::from_fn(w, h, |x, y| {
            let d = mean_delta.max(delta[(x, y)]);
            if d == Fx::ZERO {
                v[j][(x, y)]
            } else {
                v[j][(x, y)] / d
            }
        })
    })
}

/// Executes one layer in `f32` with the quantized weights.
///
/// # Panics
///
/// Panics if `input` does not match the layer's declared input shape.
pub fn forward_layer_f32(layer: &Layer, input: &MapStack<f32>) -> MapStack<f32> {
    assert_eq!(
        (input.len(), input.map_dims()),
        (layer.in_maps(), layer.in_dims()),
        "layer {} fed wrong input shape",
        layer.index()
    );
    match layer.body() {
        LayerBody::Conv {
            table,
            kernel,
            stride,
            weights,
            activation,
        } => {
            let (ow, oh) = layer.out_dims();
            MapStack::from_fn(ow, oh, layer.out_maps(), |o| {
                FeatureMap::from_fn(ow, oh, |x, y| {
                    let mut acc = weights.bias(o).to_f32();
                    for (j, &im) in table.inputs_of(o).iter().enumerate() {
                        let k = weights.kernel(o, j);
                        let map = &input[im];
                        for ky in 0..kernel.1 {
                            for kx in 0..kernel.0 {
                                acc += map[(x * stride.0 + kx, y * stride.1 + ky)]
                                    * k[(kx, ky)].to_f32();
                            }
                        }
                    }
                    activation.apply_f32(acc)
                })
            })
        }
        LayerBody::Pool {
            window,
            stride,
            kind,
            activation,
            ..
        } => {
            let (ow, oh) = layer.out_dims();
            let (iw, ih) = layer.in_dims();
            MapStack::from_fn(ow, oh, layer.out_maps(), |m| {
                let map = &input[m];
                FeatureMap::from_fn(ow, oh, |x, y| {
                    let x0 = x * stride.0;
                    let y0 = y * stride.1;
                    let x1 = (x0 + window.0).min(iw);
                    let y1 = (y0 + window.1).min(ih);
                    let v = match kind {
                        PoolKind::Max => {
                            let mut best = f32::MIN;
                            for yy in y0..y1 {
                                for xx in x0..x1 {
                                    best = best.max(map[(xx, yy)]);
                                }
                            }
                            best
                        }
                        PoolKind::Avg => {
                            let mut s = 0.0;
                            for yy in y0..y1 {
                                for xx in x0..x1 {
                                    s += map[(xx, yy)];
                                }
                            }
                            s / ((x1 - x0) * (y1 - y0)) as f32
                        }
                    };
                    activation.apply_f32(v)
                })
            })
        }
        LayerBody::Fc {
            weights,
            activation,
        } => {
            let flat = input.flatten();
            MapStack::from_fn(1, 1, layer.out_maps(), |n| {
                let mut acc = weights.bias(n).to_f32();
                for &(i, w) in weights.row(n) {
                    acc += flat[i] * w.to_f32();
                }
                FeatureMap::filled(1, 1, activation.apply_f32(acc))
            })
        }
        LayerBody::Lrn(spec) => {
            let (w, h) = layer.in_dims();
            let maps = layer.in_maps();
            let half = spec.window_maps / 2;
            MapStack::from_fn(w, h, maps, |mi| {
                let lo = mi.saturating_sub(half);
                let hi = (mi + half).min(maps - 1);
                FeatureMap::from_fn(w, h, |x, y| {
                    let s: f32 = (lo..=hi).map(|j| input[j][(x, y)].powi(2)).sum();
                    input[mi][(x, y)] / (spec.k + spec.alpha * s)
                })
            })
        }
        LayerBody::Lcn { gauss, .. } => {
            // Float mirror of `lcn_fixed` (same clipping, same weights).
            let (w, h) = layer.in_dims();
            let maps = layer.in_maps();
            let win = gauss.width();
            let half = win / 2;
            let weight = |p: usize, q: usize| gauss[(p, q)].to_f32();
            let mu = FeatureMap::from_fn(w, h, |x, y| {
                let mut s = 0.0;
                for j in 0..maps {
                    for q in 0..win {
                        for p in 0..win {
                            let (xx, yy) = (x + p, y + q);
                            if xx < half || yy < half || xx - half >= w || yy - half >= h {
                                continue;
                            }
                            s += weight(p, q) * input[j][(xx - half, yy - half)];
                        }
                    }
                }
                s
            });
            let v: Vec<FeatureMap<f32>> = (0..maps)
                .map(|j| FeatureMap::from_fn(w, h, |x, y| input[j][(x, y)] - mu[(x, y)]))
                .collect();
            let delta = FeatureMap::from_fn(w, h, |x, y| {
                let mut s = 0.0;
                for vj in &v {
                    for q in 0..win {
                        for p in 0..win {
                            let (xx, yy) = (x + p, y + q);
                            if xx < half || yy < half || xx - half >= w || yy - half >= h {
                                continue;
                            }
                            s += weight(p, q) * vj[(xx - half, yy - half)].powi(2);
                        }
                    }
                }
                s.max(0.0).sqrt()
            });
            let mean_delta = delta.iter().sum::<f32>() / (w * h) as f32;
            MapStack::from_fn(w, h, maps, |j| {
                FeatureMap::from_fn(w, h, |x, y| {
                    let d = mean_delta.max(delta[(x, y)]);
                    if d == 0.0 {
                        v[j][(x, y)]
                    } else {
                        v[j][(x, y)] / d
                    }
                })
            })
        }
    }
}

/// Applies an activation to every element of a stack — the NFU + ALU pass
/// used when a decomposed normalization sub-layer finishes.
pub fn activate_stack(stack: &MapStack<Fx>, activation: Activation) -> MapStack<Fx> {
    let pla = activation.pla();
    stack.map(|v| activation.apply_fixed(*v, pla.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};
    use crate::network::NetworkBuilder;

    #[test]
    fn conv_hand_example() {
        // 1 input map 3×3 of ones, one 2×2 kernel of ones, no activation,
        // bias forced by seed — verify the sum structurally instead: use
        // uniform input so every output equals bias + Σ kernel.
        let net = NetworkBuilder::new("t", 1, (3, 3))
            .conv(ConvSpec::new(1, (2, 2)).with_activation(Activation::None))
            .build(11)
            .unwrap();
        let input = MapStack::filled(3, 3, 1, Fx::ONE);
        let out = net.forward_fixed(&input);
        let o = out.layer_output(0).unwrap();
        assert_eq!(o.map_dims(), (2, 2));
        // All four outputs identical under uniform input.
        let v = o[0][(0, 0)];
        assert!(o[0].iter().all(|&x| x == v));
        // And equal to bias + kernel sum (full-precision accumulate).
        let LayerBody::Conv { weights, .. } = net.layers()[0].body() else {
            panic!()
        };
        let mut acc = Accum::from_fx(weights.bias(0));
        for kv in weights.kernel(0, 0).iter() {
            acc.mac(Fx::ONE, *kv);
        }
        assert_eq!(v, acc.to_fx());
    }

    #[test]
    fn max_pool_hand_example() {
        let net = NetworkBuilder::new("t", 1, (4, 4))
            .pool(PoolSpec::max((2, 2)))
            .build(0)
            .unwrap();
        let map = FeatureMap::from_fn(4, 4, |x, y| Fx::from_int((y * 4 + x) as i32 % 7));
        let mut stack = MapStack::new(4, 4);
        stack.push(map).unwrap();
        let out = net.forward_fixed(&stack);
        let o = out.layer_output(0).unwrap();
        // values: row0 0 1 2 3 / row1 4 5 6 0 / row2 1 2 3 4 / row3 5 6 0 1
        assert_eq!(o[0][(0, 0)], Fx::from_int(5));
        assert_eq!(o[0][(1, 0)], Fx::from_int(6));
        assert_eq!(o[0][(0, 1)], Fx::from_int(6));
        assert_eq!(o[0][(1, 1)], Fx::from_int(4));
    }

    #[test]
    fn avg_pool_divides_by_window() {
        let net = NetworkBuilder::new("t", 1, (2, 2))
            .pool(PoolSpec::avg((2, 2)))
            .build(0)
            .unwrap();
        let map = FeatureMap::from_vec(
            2,
            2,
            vec![
                Fx::from_int(1),
                Fx::from_int(2),
                Fx::from_int(3),
                Fx::from_int(6),
            ],
        )
        .unwrap();
        let mut stack = MapStack::new(2, 2);
        stack.push(map).unwrap();
        let out = net.forward_fixed(&stack);
        assert_eq!(out.layer_output(0).unwrap()[0][(0, 0)], Fx::from_int(3));
    }

    #[test]
    fn ceil_pooling_clips_trailing_window() {
        let net = NetworkBuilder::new("t", 1, (5, 4))
            .pool(PoolSpec::max((2, 2)).with_ceil())
            .build(0)
            .unwrap();
        assert_eq!(net.layers()[0].out_dims(), (3, 2));
        let map = FeatureMap::from_fn(5, 4, |x, y| Fx::from_int((x + y) as i32));
        let mut stack = MapStack::new(5, 4);
        stack.push(map).unwrap();
        let out = net.forward_fixed(&stack);
        // Last column window covers only x=4: max(4+y0, 4+y0+1).
        assert_eq!(out.layer_output(0).unwrap()[0][(2, 0)], Fx::from_int(5));
    }

    #[test]
    fn fc_matches_manual_dot_product() {
        let net = NetworkBuilder::new("t", 1, (2, 2))
            .fc(FcSpec::new(3).with_activation(Activation::None))
            .build(5)
            .unwrap();
        let input = net.random_input(1);
        let out = net.forward_fixed(&input);
        let flat = input.flatten();
        let LayerBody::Fc { weights, .. } = net.layers()[0].body() else {
            panic!()
        };
        for n in 0..3 {
            let mut acc = Accum::from_fx(weights.bias(n));
            for &(i, w) in weights.row(n) {
                acc.mac(flat[i], w);
            }
            assert_eq!(out.output()[n], acc.to_fx());
        }
    }

    #[test]
    fn lrn_suppresses_when_neighbours_large() {
        use crate::layer::LrnSpec;
        let spec = LrnSpec {
            window_maps: 3,
            k: 1.0,
            alpha: 0.5,
        };
        let net = NetworkBuilder::new("t", 3, (1, 1))
            .lrn(spec)
            .build(0)
            .unwrap();
        let mut weak = MapStack::new(1, 1);
        for v in [1.0f32, 0.1, 0.1] {
            weak.push(FeatureMap::filled(1, 1, Fx::from_f32(v)))
                .unwrap();
        }
        let mut strong = MapStack::new(1, 1);
        for v in [1.0f32, 4.0, 4.0] {
            strong
                .push(FeatureMap::filled(1, 1, Fx::from_f32(v)))
                .unwrap();
        }
        let ow = net.forward_fixed(&weak).output()[0];
        let os = net.forward_fixed(&strong).output()[0];
        assert!(os < ow, "competition should suppress: {os:?} !< {ow:?}");
    }

    #[test]
    fn lcn_centres_constant_input_near_zero() {
        use crate::layer::LcnSpec;
        let net = NetworkBuilder::new("t", 1, (9, 9))
            .lcn(LcnSpec::new(5))
            .build(0)
            .unwrap();
        let input = MapStack::filled(9, 9, 1, Fx::from_f32(0.5));
        let out = net.forward_fixed(&input);
        // Interior of a constant map has v ≈ 0 after subtractive
        // normalization.
        let centre = out.layer_output(0).unwrap()[0][(4, 4)];
        assert!(centre.to_f32().abs() < 0.1, "centre = {centre}");
    }

    #[test]
    fn fixed_tracks_float_through_deep_stack() {
        let net = NetworkBuilder::new("t", 1, (16, 16))
            .conv(ConvSpec::new(4, (3, 3)))
            .pool(PoolSpec::avg((2, 2)))
            .conv(ConvSpec::new(6, (3, 3)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(8))
            .build(21)
            .unwrap();
        let input = net.random_input(3);
        let fixed = net.forward_fixed(&input).output();
        let float = net.forward_f32(&input.map(|v| v.to_f32()));
        for (a, b) in fixed.iter().zip(float.last().unwrap().flatten()) {
            assert!((a.to_f32() - b).abs() < 0.15, "{} vs {b}", a.to_f32());
        }
    }

    #[test]
    fn activate_stack_applies_pla() {
        let s = MapStack::filled(2, 2, 1, Fx::from_f32(0.5));
        let t = activate_stack(&s, Activation::Tanh);
        assert!((t[0][(0, 0)].to_f32() - 0.5f32.tanh()).abs() < 0.02);
    }
}
