//! CNN model definitions, golden-reference execution, and the paper's
//! benchmark networks.
//!
//! This crate is the machine-learning substrate of the ShiDianNao
//! reproduction. It provides:
//!
//! * layer descriptors for the four layer families of §3 — convolutional,
//!   pooling, classifier, and normalization (LRN / LCN) — via [`LayerSpec`],
//! * a validated [`Network`] built with [`NetworkBuilder`], holding
//!   deterministic 16-bit fixed-point weights,
//! * a **golden reference executor** ([`Network::forward_fixed`]) whose
//!   fixed-point semantics the cycle-level simulator must match
//!   bit-for-bit, plus an `f32` executor for accuracy comparisons,
//! * per-layer operation counts ([`ops`]) feeding the CPU/GPU/DianNao
//!   performance models,
//! * storage accounting reproducing Table 1 ([`storage`]),
//! * the ten benchmark CNNs of Table 2 ([`zoo`]).
//!
//! # Examples
//!
//! ```
//! use shidiannao_cnn::zoo;
//!
//! let net = zoo::lenet5().build(42).unwrap();
//! let input = net.random_input(7);
//! let out = net.forward_fixed(&input);
//! assert_eq!(out.output().len(), 10); // ten digit classes
//! ```

mod connect;
pub mod io;
mod layer;
mod network;
pub mod ops;
pub mod reference;
pub mod storage;
mod weights;
pub mod zoo;

pub use connect::ConnectionTable;
pub use layer::{
    Activation, Connectivity, ConvSpec, FcSpec, LayerKind, LayerSpec, LcnSpec, LrnSpec, PoolKind,
    PoolSpec, Rounding,
};
pub use network::{ForwardTrace, Layer, LayerBody, Network, NetworkBuilder, NetworkError};
pub use weights::{ConvWeights, FcWeights};

#[cfg(test)]
mod tests {
    #[test]
    fn zoo_is_reachable_from_crate_root() {
        assert_eq!(crate::zoo::all().len(), 10);
    }
}
