//! Weight containers and deterministic initialisation.
//!
//! The paper evaluates layer *shapes*, not trained weights; recognition
//! accuracy comes from the cited CNN papers (Table 1). We therefore
//! generate weights pseudo-randomly from a seed — scaled by `1/√fan_in` so
//! activations stay inside the Q7.8 range — and quantize them once to
//! [`Fx`]. Both the golden reference and the simulator then operate on the
//! identical fixed-point weights.

use crate::ConnectionTable;
use rand::rngs::StdRng;
use rand::Rng;
use shidiannao_fixed::Fx;
use shidiannao_tensor::FeatureMap;

/// Kernels and biases of a convolutional layer.
///
/// One `Kx × Ky` kernel exists per connected (input, output) map pair of
/// the layer's [`ConnectionTable`]; kernels for output map `o` are stored
/// in the order of `table.inputs_of(o)`. Each output map has one bias
/// (`β^{mi,mo}` is folded to a per-output-map bias, as in LeNet-5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvWeights {
    kernels: Vec<Vec<FeatureMap<Fx>>>,
    biases: Vec<Fx>,
}

impl ConvWeights {
    /// Assembles weights from explicit kernels and biases (the
    /// deserialization path; `kernels[o][j]` pairs with
    /// `table.inputs_of(o)[j]`).
    pub(crate) fn from_parts(kernels: Vec<Vec<FeatureMap<Fx>>>, biases: Vec<Fx>) -> ConvWeights {
        assert_eq!(kernels.len(), biases.len(), "one bias per output map");
        ConvWeights { kernels, biases }
    }

    /// Generates deterministic weights for the given connectivity and
    /// kernel size.
    pub fn generate(
        table: &ConnectionTable,
        kernel: (usize, usize),
        rng: &mut StdRng,
    ) -> ConvWeights {
        let mut kernels = Vec::with_capacity(table.out_maps());
        let mut biases = Vec::with_capacity(table.out_maps());
        for o in 0..table.out_maps() {
            let fan_in = (table.inputs_of(o).len() * kernel.0 * kernel.1).max(1);
            let scale = 1.0 / (fan_in as f32).sqrt();
            let maps = table
                .inputs_of(o)
                .iter()
                .map(|_| {
                    FeatureMap::from_fn(kernel.0, kernel.1, |_, _| {
                        Fx::from_f32(rng.gen_range(-scale..scale))
                    })
                })
                .collect();
            kernels.push(maps);
            biases.push(Fx::from_f32(rng.gen_range(-0.1f32..0.1) * scale));
        }
        ConvWeights { kernels, biases }
    }

    /// The kernel between output map `o` and its `j`-th connected input map
    /// (in `ConnectionTable::inputs_of(o)` order).
    ///
    /// # Panics
    ///
    /// Panics if `o` or `j` is out of range.
    #[inline]
    pub fn kernel(&self, o: usize, j: usize) -> &FeatureMap<Fx> {
        &self.kernels[o][j]
    }

    /// The bias of output map `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    #[inline]
    pub fn bias(&self, o: usize) -> Fx {
        self.biases[o]
    }

    pub(crate) fn set_kernel(&mut self, o: usize, j: usize, kernel: FeatureMap<Fx>) {
        assert_eq!(
            kernel.dims(),
            self.kernels[o][j].dims(),
            "replacement kernel must keep its dimensions"
        );
        self.kernels[o][j] = kernel;
    }

    pub(crate) fn set_bias(&mut self, o: usize, bias: Fx) {
        self.biases[o] = bias;
    }

    /// Number of output maps.
    #[inline]
    pub fn out_maps(&self) -> usize {
        self.kernels.len()
    }

    /// Total number of synaptic weights (kernels × kernel area), the value
    /// Table 1 reports as "Synapses Size" (×2 bytes).
    pub fn synapse_count(&self) -> usize {
        self.kernels.iter().flatten().map(FeatureMap::len).sum()
    }
}

/// Synapse rows and biases of a classifier layer.
///
/// Each output neuron stores its (input index, weight) pairs in ascending
/// input order. Fully-connected rows cover every input; sparse rows (e.g.
/// MPCNN F6) cover a deterministic contiguous wrapping block starting at
/// `(n × in_count) / out_count`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FcWeights {
    rows: Vec<Vec<(usize, Fx)>>,
    biases: Vec<Fx>,
    in_count: usize,
}

impl FcWeights {
    /// Assembles weights from explicit rows and biases (the
    /// deserialization path; rows must be sorted by input index).
    pub(crate) fn from_parts(
        rows: Vec<Vec<(usize, Fx)>>,
        biases: Vec<Fx>,
        in_count: usize,
    ) -> FcWeights {
        assert_eq!(rows.len(), biases.len(), "one bias per output");
        for row in &rows {
            assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "rows must be sorted"
            );
        }
        FcWeights {
            rows,
            biases,
            in_count,
        }
    }

    /// Generates deterministic weights for `out_count` outputs over
    /// `in_count` inputs, each output reading `synapses_per_output` inputs
    /// (or all of them when `None`).
    ///
    /// # Panics
    ///
    /// Panics if `in_count` or `out_count` is zero, or
    /// `synapses_per_output` exceeds `in_count`.
    pub fn generate(
        in_count: usize,
        out_count: usize,
        synapses_per_output: Option<usize>,
        rng: &mut StdRng,
    ) -> FcWeights {
        assert!(in_count > 0 && out_count > 0, "degenerate classifier");
        let spo = synapses_per_output.unwrap_or(in_count);
        assert!(
            spo > 0 && spo <= in_count,
            "synapses per output {spo} out of range for {in_count} inputs"
        );
        let scale = 1.0 / (spo as f32).sqrt();
        let mut rows = Vec::with_capacity(out_count);
        let mut biases = Vec::with_capacity(out_count);
        for n in 0..out_count {
            let start = (n * in_count) / out_count;
            let mut row: Vec<(usize, Fx)> = (0..spo)
                .map(|j| {
                    (
                        (start + j) % in_count,
                        Fx::from_f32(rng.gen_range(-scale..scale)),
                    )
                })
                .collect();
            row.sort_unstable_by_key(|&(i, _)| i);
            rows.push(row);
            biases.push(Fx::from_f32(rng.gen_range(-0.1f32..0.1) * scale));
        }
        FcWeights {
            rows,
            biases,
            in_count,
        }
    }

    /// The (input index, weight) pairs of output neuron `n`, ascending by
    /// input index.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn row(&self, n: usize) -> &[(usize, Fx)] {
        &self.rows[n]
    }

    /// The bias of output neuron `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn bias(&self, n: usize) -> Fx {
        self.biases[n]
    }

    pub(crate) fn set_row_weights(&mut self, n: usize, values: &[Fx]) {
        assert_eq!(values.len(), self.rows[n].len(), "row length is fixed");
        for (slot, &v) in self.rows[n].iter_mut().zip(values) {
            slot.1 = v;
        }
    }

    pub(crate) fn set_bias(&mut self, n: usize, bias: Fx) {
        self.biases[n] = bias;
    }

    /// Number of input neurons.
    #[inline]
    pub fn in_count(&self) -> usize {
        self.in_count
    }

    /// Number of output neurons.
    #[inline]
    pub fn out_count(&self) -> usize {
        self.rows.len()
    }

    /// Total synapse count across all outputs.
    pub fn synapse_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// `true` when every output reads every input.
    pub fn is_fully_connected(&self) -> bool {
        self.synapse_count() == self.in_count * self.out_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn conv_weights_follow_table_shape() {
        let table = ConnectionTable::lenet_c3();
        let w = ConvWeights::generate(&table, (5, 5), &mut rng());
        assert_eq!(w.out_maps(), 16);
        assert_eq!(w.synapse_count(), 60 * 25);
        assert_eq!(w.kernel(0, 0).dims(), (5, 5));
        assert_eq!(w.kernel(15, 5).dims(), (5, 5));
    }

    #[test]
    fn conv_weights_are_deterministic() {
        let table = ConnectionTable::full(2, 2);
        let a = ConvWeights::generate(&table, (3, 3), &mut rng());
        let b = ConvWeights::generate(&table, (3, 3), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn conv_weights_bounded_by_fan_in_scale() {
        let table = ConnectionTable::full(6, 1);
        let w = ConvWeights::generate(&table, (5, 5), &mut rng());
        let bound = 1.0 / (150.0f32).sqrt() + 1.0 / 256.0;
        for j in 0..6 {
            for v in w.kernel(0, j).iter() {
                assert!(v.to_f32().abs() <= bound);
            }
        }
    }

    #[test]
    fn fc_full_rows_cover_all_inputs() {
        let w = FcWeights::generate(400, 120, None, &mut rng());
        assert_eq!(w.synapse_count(), 48_000);
        assert!(w.is_fully_connected());
        let row = w.row(0);
        assert_eq!(row.len(), 400);
        assert!(row.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    fn fc_sparse_rows_have_exact_synapses() {
        // MPCNN F6: 180 inputs, 300 outputs, 6 000 synapses = 20 each.
        let w = FcWeights::generate(180, 300, Some(20), &mut rng());
        assert_eq!(w.synapse_count(), 6_000);
        assert!(!w.is_fully_connected());
        for n in 0..300 {
            let row = w.row(n);
            assert_eq!(row.len(), 20);
            assert!(row.windows(2).all(|p| p[0].0 < p[1].0));
            assert!(row.iter().all(|&(i, _)| i < 180));
        }
    }

    #[test]
    fn fc_sparse_blocks_shift_with_output_index() {
        let w = FcWeights::generate(100, 10, Some(10), &mut rng());
        assert_eq!(w.row(0)[0].0, 0);
        assert_eq!(w.row(5)[0].0, 50);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fc_rejects_oversized_spo() {
        let _ = FcWeights::generate(10, 2, Some(11), &mut rng());
    }
}
