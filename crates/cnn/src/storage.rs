//! Storage accounting reproducing Table 1.
//!
//! Table 1 reports, per benchmark CNN, the *largest layer size*, the
//! *synapses size*, and the *total storage* in KB. Cross-checking the
//! paper's numbers shows the accounting is:
//!
//! * a "layer size" is a map set's neuron count × 2 bytes (16-bit neurons),
//!   with the network input counted as a layer,
//! * "synapses size" is the total synaptic weight count × 2 bytes
//!   (convolution kernels and classifier rows; pooling has none),
//! * "total storage" is the sum of **all** layer sizes plus the synapses.
//!
//! With these rules our reconstructed topologies reproduce the paper's
//! numbers to the printed 0.01 KB for eight of the ten benchmarks (see
//! EXPERIMENTS.md for the two documented discrepancies).

use crate::network::Network;

/// Storage requirements of a network under Table 1's accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageReport {
    name: String,
    layer_bytes: Vec<(String, usize)>,
    synapse_bytes: usize,
}

impl StorageReport {
    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-layer neuron storage in bytes, `("Input", …)` first, then one
    /// entry per layer labelled Table 2 style.
    pub fn layer_bytes(&self) -> &[(String, usize)] {
        &self.layer_bytes
    }

    /// The largest single layer in bytes (Table 1 column 1).
    pub fn largest_layer_bytes(&self) -> usize {
        self.layer_bytes.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Synaptic weight storage in bytes (Table 1 column 2).
    pub fn synapse_bytes(&self) -> usize {
        self.synapse_bytes
    }

    /// All neuron layers plus synapses, in bytes (Table 1 column 3).
    pub fn total_bytes(&self) -> usize {
        self.layer_bytes.iter().map(|&(_, b)| b).sum::<usize>() + self.synapse_bytes
    }

    /// Largest layer in KB.
    pub fn largest_layer_kb(&self) -> f64 {
        kb(self.largest_layer_bytes())
    }

    /// Synapses in KB.
    pub fn synapse_kb(&self) -> f64 {
        kb(self.synapse_bytes)
    }

    /// Total storage in KB.
    pub fn total_kb(&self) -> f64 {
        kb(self.total_bytes())
    }

    /// The peak simultaneous neuron storage an accelerator needs: the
    /// largest input + output pair over all layers (NBin and NBout must
    /// each hold a whole layer, §6).
    pub fn peak_neuron_pair_bytes(&self) -> usize {
        self.layer_bytes
            .windows(2)
            .map(|w| w[0].1 + w[1].1)
            .max()
            .unwrap_or(0)
    }
}

/// Converts bytes to KB (1 KB = 1024 bytes).
pub fn kb(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

/// Computes the Table 1 storage report for a network.
pub fn report(network: &Network) -> StorageReport {
    let mut layer_bytes = Vec::with_capacity(network.layers().len() + 1);
    let input_neurons = network.input_maps() * network.input_dims().0 * network.input_dims().1;
    layer_bytes.push(("Input".to_string(), input_neurons * 2));
    let mut synapse_bytes = 0;
    for layer in network.layers() {
        layer_bytes.push((layer.label(), layer.out_neurons() * 2));
        synapse_bytes += layer.synapse_count() * 2;
    }
    StorageReport {
        name: network.name().to_string(),
        layer_bytes,
        synapse_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn close(actual: f64, expect: f64) -> bool {
        (actual - expect).abs() < 0.01
    }

    #[test]
    fn lenet5_matches_table1_exactly() {
        let r = report(&zoo::lenet5().build(0).unwrap());
        assert!(
            close(r.largest_layer_kb(), 9.19),
            "{}",
            r.largest_layer_kb()
        );
        assert!(close(r.synapse_kb(), 118.30), "{}", r.synapse_kb());
        assert!(close(r.total_kb(), 136.11), "{}", r.total_kb());
    }

    #[test]
    fn cnp_matches_table1_exactly() {
        let r = report(&zoo::cnp().build(0).unwrap());
        assert!(
            close(r.largest_layer_kb(), 15.19),
            "{}",
            r.largest_layer_kb()
        );
        assert!(close(r.synapse_kb(), 28.17), "{}", r.synapse_kb());
        assert!(close(r.total_kb(), 56.38), "{}", r.total_kb());
    }

    #[test]
    fn layer_breakdown_includes_input() {
        let r = report(&zoo::lenet5().build(0).unwrap());
        assert_eq!(r.layer_bytes()[0].0, "Input");
        assert_eq!(r.layer_bytes()[0].1, 32 * 32 * 2);
        assert_eq!(r.layer_bytes().len(), 8);
        assert_eq!(r.name(), "LeNet-5");
    }

    #[test]
    fn peak_pair_is_below_total() {
        let r = report(&zoo::lenet5().build(0).unwrap());
        assert!(r.peak_neuron_pair_bytes() > 0);
        assert!(r.peak_neuron_pair_bytes() + r.synapse_bytes() <= r.total_bytes());
    }

    #[test]
    fn kb_conversion() {
        assert_eq!(kb(2048), 2.0);
    }
}
