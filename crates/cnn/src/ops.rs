//! Per-layer operation counts.
//!
//! The CPU, GPU, and DianNao performance models (and the paper's GOP/s
//! accounting) consume arithmetic-operation counts per layer. Counts follow
//! the fixed-point datapath: one MAC per synapse-input product, comparisons
//! for max pooling, ALU divisions for average pooling / normalization, one
//! ALU activation per activated output neuron.

use crate::layer::{LayerKind, PoolKind};
use crate::network::{Layer, LayerBody, Network};
use crate::Activation;
use core::fmt;

/// Operation counts for one layer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerOps {
    /// Table 2 style label (`C1`, `S2`, …).
    pub label: String,
    /// Layer family.
    pub kind: Option<LayerKind>,
    /// Multiply-accumulates.
    pub macs: u64,
    /// Plain additions (average pooling sums, normalization adds).
    pub adds: u64,
    /// Comparisons (max pooling).
    pub cmps: u64,
    /// ALU divisions.
    pub divs: u64,
    /// ALU activation evaluations.
    pub acts: u64,
    /// Input neuron count.
    pub in_neurons: u64,
    /// Output neuron count.
    pub out_neurons: u64,
    /// Synaptic weights held by this layer.
    pub synapses: u64,
}

impl LayerOps {
    /// Total fixed-point operations, counting a MAC as two (multiply +
    /// add), matching the paper's GOP metric ("billions of fixed-point
    /// OPerations").
    pub fn total_fixed_ops(&self) -> u64 {
        2 * self.macs + self.adds + self.cmps + self.divs + self.acts
    }

    /// Element-wise sum of two counts.
    pub fn merge(&self, other: &LayerOps) -> LayerOps {
        LayerOps {
            label: String::new(),
            kind: None,
            macs: self.macs + other.macs,
            adds: self.adds + other.adds,
            cmps: self.cmps + other.cmps,
            divs: self.divs + other.divs,
            acts: self.acts + other.acts,
            in_neurons: self.in_neurons + other.in_neurons,
            out_neurons: self.out_neurons + other.out_neurons,
            synapses: self.synapses + other.synapses,
        }
    }
}

impl fmt::Display for LayerOps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} MACs, {} adds, {} cmps, {} divs, {} acts",
            if self.label.is_empty() {
                "total"
            } else {
                &self.label
            },
            self.macs,
            self.adds,
            self.cmps,
            self.divs,
            self.acts
        )
    }
}

fn act_count(activation: Activation, outputs: u64) -> u64 {
    match activation {
        Activation::None => 0,
        _ => outputs,
    }
}

/// Counts the operations one forward pass of `layer` performs.
pub fn layer_ops(layer: &Layer) -> LayerOps {
    let mut ops = LayerOps {
        label: layer.label(),
        kind: Some(layer.kind()),
        in_neurons: layer.in_neurons() as u64,
        out_neurons: layer.out_neurons() as u64,
        synapses: layer.synapse_count() as u64,
        ..LayerOps::default()
    };
    let (ow, oh) = layer.out_dims();
    match layer.body() {
        LayerBody::Conv {
            table,
            kernel,
            activation,
            ..
        } => {
            let per_neuron: u64 = (kernel.0 * kernel.1) as u64;
            for o in 0..layer.out_maps() {
                ops.macs += (ow * oh) as u64 * per_neuron * table.inputs_of(o).len() as u64;
            }
            ops.acts = act_count(*activation, ops.out_neurons);
        }
        LayerBody::Pool {
            window,
            stride,
            kind,
            activation,
            ..
        } => {
            let (iw, ih) = layer.in_dims();
            // Clipped trailing windows (ceiling rounding) contribute fewer
            // elements; count exactly.
            let mut elems: u64 = 0;
            for oy in 0..oh {
                for ox in 0..ow {
                    let x1 = (ox * stride.0 + window.0).min(iw);
                    let y1 = (oy * stride.1 + window.1).min(ih);
                    elems += ((x1 - ox * stride.0) * (y1 - oy * stride.1)) as u64;
                }
            }
            elems *= layer.out_maps() as u64;
            match kind {
                PoolKind::Max => ops.cmps = elems,
                PoolKind::Avg => {
                    ops.adds = elems;
                    ops.divs = ops.out_neurons;
                }
            }
            ops.acts = act_count(*activation, ops.out_neurons);
        }
        LayerBody::Fc {
            weights,
            activation,
        } => {
            ops.macs = weights.synapse_count() as u64;
            ops.acts = act_count(*activation, ops.out_neurons);
        }
        LayerBody::Lrn(spec) => {
            let half = (spec.window_maps / 2) as u64;
            let maps = layer.in_maps() as u64;
            let per_pos: u64 = (0..maps)
                .map(|mi| {
                    let lo = mi.saturating_sub(half);
                    let hi = (mi + half).min(maps - 1);
                    hi - lo + 1
                })
                .sum();
            let positions = (ow * oh) as u64;
            ops.macs = positions * (per_pos + maps); // squares + α scale
            ops.adds = positions * maps; // k + …
            ops.divs = ops.out_neurons;
        }
        LayerBody::Lcn { gauss, .. } => {
            let maps = layer.in_maps() as u64;
            let positions = (ow * oh) as u64;
            let win = (gauss.width() * gauss.height()) as u64;
            // μ pass + weighted-variance pass (weight MAC and square MAC).
            ops.macs = positions * maps * win * 3;
            // subtraction, plus the mean-of-δ running sum.
            ops.adds = positions * maps + positions;
            ops.acts = positions; // √ via PLA
            ops.divs = ops.out_neurons + 1;
        }
    }
    ops
}

/// Counts the operations of a full forward pass, layer by layer.
pub fn network_ops(network: &Network) -> Vec<LayerOps> {
    network.layers().iter().map(layer_ops).collect()
}

/// Sums [`network_ops`] into a single total.
pub fn network_total(network: &Network) -> LayerOps {
    network_ops(network)
        .iter()
        .fold(LayerOps::default(), |acc, l| acc.merge(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};
    use crate::network::NetworkBuilder;
    use crate::zoo;

    #[test]
    fn conv_macs_follow_formula() {
        // LeNet-5 C1: 6 maps × 28×28 × 25 MACs = 117 600.
        let net = zoo::lenet5().build(0).unwrap();
        let ops = layer_ops(&net.layers()[0]);
        assert_eq!(ops.macs, 6 * 28 * 28 * 25);
        assert_eq!(ops.acts, 6 * 28 * 28);
        assert_eq!(ops.label, "C1");
    }

    #[test]
    fn partial_conv_macs_follow_table() {
        // LeNet-5 C3: 60 kernel pairs × 10×10 × 25 = 150 000 MACs.
        let net = zoo::lenet5().build(0).unwrap();
        let ops = layer_ops(&net.layers()[2]);
        assert_eq!(ops.macs, 60 * 100 * 25);
    }

    #[test]
    fn pool_counts() {
        let net = NetworkBuilder::new("t", 2, (4, 4))
            .pool(PoolSpec::max((2, 2)))
            .build(0)
            .unwrap();
        let ops = layer_ops(&net.layers()[0]);
        assert_eq!(ops.cmps, 2 * 4 * 4);
        assert_eq!(ops.divs, 0);
        let avg = NetworkBuilder::new("t", 2, (4, 4))
            .pool(PoolSpec::avg((2, 2)))
            .build(0)
            .unwrap();
        let aops = layer_ops(&avg.layers()[0]);
        assert_eq!(aops.adds, 32);
        assert_eq!(aops.divs, 8);
    }

    #[test]
    fn fc_macs_equal_synapses() {
        let net = NetworkBuilder::new("t", 1, (4, 4))
            .fc(FcSpec::new(10))
            .build(0)
            .unwrap();
        let ops = layer_ops(&net.layers()[0]);
        assert_eq!(ops.macs, 160);
        assert_eq!(ops.synapses, 160);
    }

    #[test]
    fn total_fixed_ops_weighs_macs_double() {
        let ops = LayerOps {
            macs: 10,
            adds: 3,
            cmps: 2,
            divs: 1,
            acts: 4,
            ..LayerOps::default()
        };
        assert_eq!(ops.total_fixed_ops(), 30);
    }

    #[test]
    fn merge_and_network_total() {
        let net = NetworkBuilder::new("t", 1, (8, 8))
            .conv(ConvSpec::new(2, (3, 3)))
            .pool(PoolSpec::max((2, 2)))
            .build(0)
            .unwrap();
        let per = network_ops(&net);
        let total = network_total(&net);
        assert_eq!(total.macs, per[0].macs);
        assert_eq!(total.cmps, per[1].cmps);
        assert_eq!(per.len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let net = zoo::lenet5().build(0).unwrap();
        let s = layer_ops(&net.layers()[0]).to_string();
        assert!(s.starts_with("C1:"));
        assert!(s.contains("MACs"));
    }
}
