//! Input-map → output-map connection tables for convolutional layers.

use core::fmt;

/// Which input feature maps feed each output feature map of a convolutional
/// layer — the paper's `A_mo` set in formula (1).
///
/// Classic CNNs connect output maps to *subsets* of the input maps (e.g.
/// LeNet-5's C3 uses 60 kernels instead of the 6 × 16 = 96 of full
/// connectivity), and Table 2's kernel counts reflect this. A table stores,
/// per output map, the sorted list of connected input maps; one `Kx × Ky`
/// kernel exists per connected pair, so [`ConnectionTable::pair_count`] is
/// exactly the Table 2 kernel count.
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::ConnectionTable;
/// let full = ConnectionTable::full(6, 16);
/// assert_eq!(full.pair_count(), 96);
/// let lenet = ConnectionTable::lenet_c3();
/// assert_eq!(lenet.pair_count(), 60);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConnectionTable {
    in_maps: usize,
    // inputs[o] = sorted connected input-map indices for output map o.
    inputs: Vec<Vec<usize>>,
}

impl ConnectionTable {
    /// Full connectivity: every output map reads every input map.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn full(in_maps: usize, out_maps: usize) -> ConnectionTable {
        assert!(in_maps > 0 && out_maps > 0, "map counts must be non-zero");
        ConnectionTable {
            in_maps,
            inputs: vec![(0..in_maps).collect(); out_maps],
        }
    }

    /// Deterministic partial connectivity with exactly `pairs` kernels,
    /// distributed as evenly as possible across output maps, each map's
    /// connections forming a contiguous (wrapping) run of input maps.
    ///
    /// This reconstructs the Table 2 benchmarks whose kernel counts are
    /// below full connectivity (e.g. CNP C3: 61 kernels for 6 × 16 maps).
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is zero, exceeds `in_maps × out_maps`, or would
    /// give some output map more connections than there are input maps.
    pub fn spread(in_maps: usize, out_maps: usize, pairs: usize) -> ConnectionTable {
        assert!(in_maps > 0 && out_maps > 0, "map counts must be non-zero");
        assert!(
            (1..=in_maps * out_maps).contains(&pairs),
            "pair count {pairs} out of range for {in_maps}x{out_maps} maps"
        );
        let base = pairs / out_maps;
        let extra = pairs % out_maps;
        let mut inputs = Vec::with_capacity(out_maps);
        for o in 0..out_maps {
            let count = base + usize::from(o < extra);
            assert!(
                count <= in_maps,
                "output map {o} would need {count} connections but only {in_maps} inputs exist"
            );
            let start = (o * in_maps) / out_maps;
            let mut conn: Vec<usize> = (0..count).map(|j| (start + j) % in_maps).collect();
            conn.sort_unstable();
            inputs.push(conn);
        }
        ConnectionTable { in_maps, inputs }
    }

    /// The classic LeNet-5 C3 connection scheme (60 kernels between 6 input
    /// and 16 output maps), as published by LeCun et al.
    pub fn lenet_c3() -> ConnectionTable {
        let mut inputs = Vec::with_capacity(16);
        // Maps 0–5: three consecutive inputs.
        for o in 0..6 {
            inputs.push((0..3).map(|j| (o + j) % 6).collect());
        }
        // Maps 6–11: four consecutive inputs.
        for o in 0..6 {
            inputs.push((0..4).map(|j| (o + j) % 6).collect());
        }
        // Maps 12–14: four non-contiguous inputs.
        inputs.push(vec![0, 1, 3, 4]);
        inputs.push(vec![1, 2, 4, 5]);
        inputs.push(vec![0, 2, 3, 5]);
        // Map 15: all six.
        inputs.push((0..6).collect());
        let mut inputs: Vec<Vec<usize>> = inputs;
        for conn in &mut inputs {
            conn.sort_unstable();
        }
        ConnectionTable { in_maps: 6, inputs }
    }

    /// Builds a table from explicit per-output-map input lists.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty, unsorted after normalization is
    /// impossible (duplicate entries), or references an input ≥ `in_maps`.
    pub fn from_lists(in_maps: usize, lists: Vec<Vec<usize>>) -> ConnectionTable {
        assert!(!lists.is_empty(), "at least one output map required");
        let mut inputs = lists;
        for (o, conn) in inputs.iter_mut().enumerate() {
            assert!(!conn.is_empty(), "output map {o} has no inputs");
            conn.sort_unstable();
            conn.dedup();
            assert!(
                *conn.last().unwrap() < in_maps,
                "output map {o} references input beyond {in_maps}"
            );
        }
        ConnectionTable { in_maps, inputs }
    }

    /// Number of input maps the table reads from.
    #[inline]
    pub fn in_maps(&self) -> usize {
        self.in_maps
    }

    /// Number of output maps the table produces.
    #[inline]
    pub fn out_maps(&self) -> usize {
        self.inputs.len()
    }

    /// The sorted input maps connected to output map `o` (the paper's
    /// `A_mo`).
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    #[inline]
    pub fn inputs_of(&self, o: usize) -> &[usize] {
        &self.inputs[o]
    }

    /// Total number of connected (input, output) pairs — i.e. the number of
    /// `Kx × Ky` kernels (Table 2's `#`).
    pub fn pair_count(&self) -> usize {
        self.inputs.iter().map(Vec::len).sum()
    }

    /// `true` if every output map connects to every input map.
    pub fn is_full(&self) -> bool {
        self.pair_count() == self.in_maps * self.out_maps()
    }
}

impl fmt::Debug for ConnectionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConnectionTable {{ {} in, {} out, {} pairs }}",
            self.in_maps,
            self.out_maps(),
            self.pair_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table_counts() {
        let t = ConnectionTable::full(6, 16);
        assert_eq!(t.pair_count(), 96);
        assert!(t.is_full());
        assert_eq!(t.inputs_of(15), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn lenet_c3_matches_the_classic_sixty() {
        let t = ConnectionTable::lenet_c3();
        assert_eq!(t.in_maps(), 6);
        assert_eq!(t.out_maps(), 16);
        assert_eq!(t.pair_count(), 60);
        assert!(!t.is_full());
        assert_eq!(t.inputs_of(0).len(), 3);
        assert_eq!(t.inputs_of(6).len(), 4);
        assert_eq!(t.inputs_of(15).len(), 6);
    }

    #[test]
    fn spread_hits_exact_pair_counts() {
        // CNP C3: 61 kernels between 6 and 16 maps.
        let t = ConnectionTable::spread(6, 16, 61);
        assert_eq!(t.pair_count(), 61);
        // Every list sorted, unique, within range.
        for o in 0..16 {
            let conn = t.inputs_of(o);
            assert!(conn.windows(2).all(|w| w[0] < w[1]));
            assert!(conn.iter().all(|&i| i < 6));
        }
    }

    #[test]
    fn spread_full_when_pairs_saturate() {
        let t = ConnectionTable::spread(4, 4, 16);
        assert!(t.is_full());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spread_rejects_too_many_pairs() {
        let _ = ConnectionTable::spread(2, 2, 5);
    }

    #[test]
    fn spread_balances_within_one() {
        let t = ConnectionTable::spread(20, 25, 125); // Face Recog. C3
        assert_eq!(t.pair_count(), 125);
        let sizes: Vec<_> = (0..25).map(|o| t.inputs_of(o).len()).collect();
        assert!(sizes.iter().all(|&s| s == 5));
    }

    #[test]
    fn from_lists_normalizes() {
        let t = ConnectionTable::from_lists(4, vec![vec![2, 0], vec![3]]);
        assert_eq!(t.inputs_of(0), &[0, 2]);
        assert_eq!(t.out_maps(), 2);
    }

    #[test]
    #[should_panic(expected = "references input beyond")]
    fn from_lists_validates_range() {
        let _ = ConnectionTable::from_lists(2, vec![vec![2]]);
    }

    #[test]
    fn debug_reports_counts() {
        let t = ConnectionTable::full(2, 3);
        assert_eq!(format!("{t:?}"), "ConnectionTable { 2 in, 3 out, 6 pairs }");
    }
}
