//! The ten benchmark CNNs of Table 2.
//!
//! Each function returns a [`NetworkBuilder`] encoding the paper's layer
//! shapes and kernel counts. The reconstructions were cross-validated
//! against Table 1's storage numbers: eight of the ten reproduce the
//! printed KB figures to ±0.01 KB. Two rows of the paper are internally
//! inconsistent and are reconstructed best-effort (documented per function
//! and in EXPERIMENTS.md):
//!
//! * **Face Recog.** — our topology reproduces the largest-layer and
//!   synapse columns exactly; the total column only fits if the paper's
//!   30.05 is a digit transposition of 39.05.
//! * **NEO** — Table 1's 4.50 / 3.63 / 16.03 row cannot be produced by any
//!   Garcia-style topology we could construct; we encode a plausible
//!   neocognitron-flavoured network matching the largest-layer column.

use crate::connect::ConnectionTable;
use crate::layer::{Activation, ConvSpec, FcSpec, PoolSpec};
use crate::network::NetworkBuilder;

/// CNP (Poulet, Han & LeCun, FPL 2009): 42×42 face detection.
pub fn cnp() -> NetworkBuilder {
    NetworkBuilder::new("CNP", 1, (42, 42))
        .conv(ConvSpec::new(6, (7, 7)))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(16, (7, 7)).with_pairs(61))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(80, (6, 6)).with_pairs(305))
        .fc(FcSpec::new(2))
}

/// MPCNN (Nagi et al., ICSIPA 2011): max-pooling CNN for hand-gesture
/// recognition, 32×32 input.
pub fn mpcnn() -> NetworkBuilder {
    NetworkBuilder::new("MPCNN", 1, (32, 32))
        .conv(ConvSpec::new(20, (5, 5)))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(20, (5, 5)).with_pairs(400))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(20, (3, 3)).with_pairs(400))
        .fc(FcSpec::new(300).with_synapses_per_output(20))
        .fc(FcSpec::new(6))
}

/// Face Recog. (Lawrence et al., IEEE TNN 1997): 23×28 face recognition.
///
/// Reproduces Table 1's largest-layer (21.33 KB) and synapse (4.50 KB)
/// columns exactly; our total is 39.05 KB where the paper prints 30.05
/// (apparent digit transposition).
pub fn face_recog() -> NetworkBuilder {
    NetworkBuilder::new("FaceRecog", 1, (23, 28))
        .conv(ConvSpec::new(20, (3, 3)))
        .pool(PoolSpec::max((2, 2)).with_ceil())
        .conv(ConvSpec::new(25, (3, 3)).with_pairs(125))
        .pool(PoolSpec::max((2, 2)).with_ceil())
        .fc(FcSpec::new(40).with_synapses_per_output(25))
}

/// LeNet-5 (LeCun et al., Proc. IEEE 1998): 32×32 digit recognition, the
/// paper's running example. Uses the classic C3 connection table and
/// average pooling.
pub fn lenet5() -> NetworkBuilder {
    NetworkBuilder::new("LeNet-5", 1, (32, 32))
        .conv(ConvSpec::new(6, (5, 5)))
        .pool(PoolSpec::avg((2, 2)))
        .conv(ConvSpec::new(16, (5, 5)).with_table(ConnectionTable::lenet_c3()))
        .pool(PoolSpec::avg((2, 2)))
        .fc(FcSpec::new(120))
        .fc(FcSpec::new(84))
        .fc(FcSpec::new(10).with_activation(Activation::None))
}

/// Simple Conv (Simard, Steinkraus & Platt, ICDAR 2003): 29×29 document
/// analysis with stride-2 convolutions. Its C2 layer produces 5×5 output
/// maps — smaller than an 8×8 PE array — which is why ShiDianNao loses to
/// DianNao on this single benchmark (§10.2).
pub fn simple_conv() -> NetworkBuilder {
    NetworkBuilder::new("SimpleConv", 1, (29, 29))
        .conv(ConvSpec::new(5, (5, 5)).with_stride((2, 2)))
        .conv(
            ConvSpec::new(50, (5, 5))
                .with_stride((2, 2))
                .with_pairs(250),
        )
        .fc(FcSpec::new(100).with_synapses_per_output(50))
        .fc(FcSpec::new(10))
}

/// CFF (Garcia & Delakis, IEEE PAMI 2004): the convolutional face finder,
/// 32×36 input.
pub fn cff() -> NetworkBuilder {
    NetworkBuilder::new("CFF", 1, (32, 36))
        .conv(ConvSpec::new(4, (5, 5)))
        .pool(PoolSpec::avg((2, 2)))
        .conv(ConvSpec::new(14, (3, 3)).with_pairs(20))
        .pool(PoolSpec::avg((2, 2)))
        .conv(ConvSpec::new(14, (6, 7)).with_pairs(14))
        .fc(FcSpec::new(1))
}

/// NEO (Nebauer, IEEE TNN 1998): neocognitron-style evaluation network.
///
/// Best-effort reconstruction (see module docs): matches Table 1's
/// largest-layer column (4.50 KB); synapses compute to 8.63 KB against the
/// printed 3.63 KB.
pub fn neo() -> NetworkBuilder {
    NetworkBuilder::new("NEO", 1, (28, 28))
        .conv(ConvSpec::new(4, (5, 5)))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(16, (3, 3)).with_pairs(20))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(10))
        .fc(FcSpec::new(14))
}

/// ConvNN (Delakis & Garcia, VISAPP 2008): text detection over 64×36 RGB
/// regions — the benchmark §10.2 uses for the 20 fps frame-rate analysis.
pub fn convnn() -> NetworkBuilder {
    NetworkBuilder::new("ConvNN", 3, (64, 36))
        .conv(ConvSpec::new(12, (5, 5)).with_pairs(12))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(14, (3, 3)).with_pairs(60))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(14, (14, 7)).with_pairs(14))
        .fc(FcSpec::new(1))
}

/// Gabor (Kwolek, ICANN 2005): face detection over 20×20 Gabor-filtered
/// windows.
pub fn gabor() -> NetworkBuilder {
    NetworkBuilder::new("Gabor", 1, (20, 20))
        .conv(ConvSpec::new(4, (5, 5)))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(14, (3, 3)).with_pairs(20))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(14, (3, 3)).with_pairs(14))
        .fc(FcSpec::new(1))
}

/// Face align. (Duffner & Garcia, VISAPP 2008): 46×56 face alignment.
pub fn face_align() -> NetworkBuilder {
    NetworkBuilder::new("FaceAlign", 1, (46, 56))
        .conv(ConvSpec::new(4, (7, 7)))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(3, (5, 5)).with_pairs(6))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(60))
        .fc(FcSpec::new(4))
}

/// Networks beyond Table 2, exercising the layer types the benchmarks do
/// not: LRN and LCN normalization (§3, §8.4) and a pure classifier stack
/// (the DNN contrast of §1). All fit the paper's 288 KB on-chip SRAM.
pub mod extended {
    use super::*;
    use crate::layer::{LcnSpec, LrnSpec};

    /// An AlexNet-flavoured small CNN: convolutions followed by LRN
    /// layers (the §3 "recent studies also suggest the use of
    /// normalization layers" case), sized for the 32×32 sensor window.
    pub fn alexnet_lite() -> NetworkBuilder {
        NetworkBuilder::new("AlexNet-lite", 1, (32, 32))
            .conv(ConvSpec::new(8, (5, 5)))
            .lrn(LrnSpec {
                window_maps: 5,
                k: 2.0,
                alpha: 0.25,
            })
            .pool(PoolSpec::max((2, 2)))
            .conv(ConvSpec::new(16, (5, 5)).with_pairs(64))
            .lrn(LrnSpec {
                window_maps: 5,
                k: 2.0,
                alpha: 0.25,
            })
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(32))
            .fc(FcSpec::new(10).with_activation(Activation::None))
    }

    /// A Jarrett-style architecture with local contrast normalization
    /// after each filter bank (the Fig. 16 decomposition's workload).
    pub fn jarrett_lcn() -> NetworkBuilder {
        NetworkBuilder::new("Jarrett-LCN", 1, (24, 24))
            .conv(ConvSpec::new(6, (5, 5)))
            .lcn(LcnSpec::new(5))
            .pool(PoolSpec::avg((2, 2)))
            .conv(ConvSpec::new(12, (3, 3)).with_pairs(24))
            .lcn(LcnSpec::new(3))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(10))
    }

    /// A pure classifier stack — the DNN-style network §1 contrasts with
    /// CNNs (no weight sharing; every synapse independent). Small enough
    /// that even its dense layers fit the SB.
    pub fn mlp_digits() -> NetworkBuilder {
        NetworkBuilder::new("MLP-digits", 1, (16, 16))
            .fc(FcSpec::new(64))
            .fc(FcSpec::new(32))
            .fc(FcSpec::new(10).with_activation(Activation::None))
    }

    /// All extended networks.
    pub fn all() -> Vec<NetworkBuilder> {
        vec![alexnet_lite(), jarrett_lcn(), mlp_digits()]
    }
}

/// All ten benchmarks in Table 1 / Figure 18 order.
pub fn all() -> Vec<NetworkBuilder> {
    vec![
        cnp(),
        mpcnn(),
        face_recog(),
        lenet5(),
        simple_conv(),
        cff(),
        neo(),
        convnn(),
        gabor(),
        face_align(),
    ]
}

/// Looks a benchmark up by its Table 1 name (case-insensitive).
pub fn by_name(name: &str) -> Option<NetworkBuilder> {
    all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage;

    #[test]
    fn all_ten_build() {
        for b in all() {
            let net = b.build(1).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(net.output_count() >= 1, "{}", net.name());
        }
    }

    #[test]
    fn layer_shapes_match_table2() {
        let net = cnp().build(0).unwrap();
        let dims: Vec<_> = net
            .layers()
            .iter()
            .map(|l| (l.out_maps(), l.out_dims()))
            .collect();
        assert_eq!(
            dims,
            vec![
                (6, (36, 36)),
                (6, (18, 18)),
                (16, (12, 12)),
                (16, (6, 6)),
                (80, (1, 1)),
                (2, (1, 1)),
            ]
        );
    }

    #[test]
    fn convnn_matches_table2() {
        let net = convnn().build(0).unwrap();
        let dims: Vec<_> = net
            .layers()
            .iter()
            .map(|l| (l.out_maps(), l.out_dims()))
            .collect();
        assert_eq!(
            dims,
            vec![
                (12, (60, 32)),
                (12, (30, 16)),
                (14, (28, 14)),
                (14, (14, 7)),
                (14, (1, 1)),
                (1, (1, 1)),
            ]
        );
    }

    #[test]
    fn face_recog_uses_ceiling_pooling() {
        let net = face_recog().build(0).unwrap();
        assert_eq!(net.layers()[1].out_dims(), (11, 13));
        assert_eq!(net.layers()[3].out_dims(), (5, 6));
    }

    #[test]
    fn simple_conv_c2_is_five_by_five() {
        // The §10.2 under-utilisation case: C2 output maps are 5×5.
        let net = simple_conv().build(0).unwrap();
        assert_eq!(net.layers()[1].out_dims(), (5, 5));
        assert_eq!(net.layers()[1].out_maps(), 50);
    }

    #[test]
    fn synapse_counts_match_table1() {
        let expect: &[(&str, usize)] = &[
            ("CNP", 14_423),
            ("MPCNN", 21_900),
            ("FaceRecog", 2_305),
            ("LeNet-5", 60_570),
            ("SimpleConv", 12_375),
            ("CFF", 882),
            ("ConvNN", 2_226),
            ("Gabor", 420),
            ("FaceAlign", 14_986),
        ];
        for &(name, syn) in expect {
            let net = by_name(name).unwrap().build(0).unwrap();
            let total: usize = net.layers().iter().map(|l| l.synapse_count()).sum();
            assert_eq!(total, syn, "{name}");
        }
    }

    #[test]
    fn storage_totals_match_table1_where_consistent() {
        let expect: &[(&str, f64, f64, f64)] = &[
            ("CNP", 15.19, 28.17, 56.38),
            ("MPCNN", 30.63, 42.77, 88.89),
            ("LeNet-5", 9.19, 118.30, 136.11),
            ("SimpleConv", 2.44, 24.17, 30.12),
            ("CFF", 7.00, 1.72, 18.49),
            ("ConvNN", 45.00, 4.35, 87.53),
            ("Gabor", 2.00, 0.82, 5.36),
            ("FaceAlign", 15.63, 29.27, 56.39),
        ];
        for &(name, largest, syn, total) in expect {
            let r = storage::report(&by_name(name).unwrap().build(0).unwrap());
            assert!(
                (r.largest_layer_kb() - largest).abs() < 0.01,
                "{name} largest {} vs {largest}",
                r.largest_layer_kb()
            );
            assert!(
                (r.synapse_kb() - syn).abs() < 0.01,
                "{name} syn {} vs {syn}",
                r.synapse_kb()
            );
            assert!(
                (r.total_kb() - total).abs() < 0.01,
                "{name} total {} vs {total}",
                r.total_kb()
            );
        }
    }

    #[test]
    fn face_recog_partial_columns_match() {
        let r = storage::report(&face_recog().build(0).unwrap());
        assert!((r.largest_layer_kb() - 21.33).abs() < 0.01);
        assert!((r.synapse_kb() - 4.50).abs() < 0.01);
        // Documented discrepancy: paper prints 30.05, consistent topologies
        // give 39.05 (digit transposition).
        assert!((r.total_kb() - 39.05).abs() < 0.01);
    }

    #[test]
    fn neo_matches_largest_layer_column() {
        let r = storage::report(&neo().build(0).unwrap());
        assert!((r.largest_layer_kb() - 4.50).abs() < 0.01);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("lenet-5").is_some());
        assert!(by_name("LENET-5").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_benchmark_fits_288kb_sram() {
        // §6: 288 KB on-chip SRAM "is sufficient for all 10 practical CNNs".
        for b in all() {
            let r = storage::report(&b.build(0).unwrap());
            assert!(
                r.total_kb() < 288.0,
                "{} needs {} KB",
                r.name(),
                r.total_kb()
            );
        }
    }

    #[test]
    fn extended_networks_build_and_fit_on_chip() {
        for b in extended::all() {
            let net = b.build(2).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            let r = storage::report(&net);
            assert!(
                r.total_kb() < 288.0,
                "{} needs {} KB",
                net.name(),
                r.total_kb()
            );
            let out = net.forward_fixed(&net.random_input(3));
            assert_eq!(out.output().len(), net.output_count());
        }
        assert_eq!(extended::all().len(), 3);
    }

    #[test]
    fn extended_networks_exercise_normalization() {
        use crate::layer::LayerKind;
        let kinds: Vec<LayerKind> = extended::alexnet_lite()
            .build(1)
            .unwrap()
            .layers()
            .iter()
            .map(|l| l.kind())
            .collect();
        assert!(kinds.contains(&LayerKind::Lrn));
        let kinds: Vec<LayerKind> = extended::jarrett_lcn()
            .build(1)
            .unwrap()
            .layers()
            .iter()
            .map(|l| l.kind())
            .collect();
        assert!(kinds.contains(&LayerKind::Lcn));
        let mlp = extended::mlp_digits().build(1).unwrap();
        assert!(mlp.layers().iter().all(|l| l.kind() == LayerKind::Fc));
        // DNN-style: no weight sharing, synapses = full dense count.
        assert_eq!(mlp.layers()[0].synapse_count(), 256 * 64);
    }

    #[test]
    fn forward_pass_runs_on_every_benchmark() {
        for b in all() {
            let net = b.build(3).unwrap();
            let input = net.random_input(1);
            let out = net.forward_fixed(&input);
            assert_eq!(out.output().len(), net.output_count(), "{}", net.name());
        }
    }
}
