//! Property-based tests for the CNN substrate: connection tables, weight
//! containers, geometry resolution, storage accounting, and the
//! fixed-vs-float error bound.

use proptest::prelude::*;
use shidiannao_cnn::{storage, ConnectionTable, ConvSpec, FcSpec, NetworkBuilder, PoolSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spread_tables_always_hit_the_pair_count(
        in_maps in 1usize..12,
        out_maps in 1usize..12,
        frac in 1usize..=100,
    ) {
        let max_pairs = in_maps * out_maps;
        let pairs = (max_pairs * frac / 100).max(out_maps.min(max_pairs)).min(max_pairs);
        // `spread` requires per-map counts ≤ in_maps; the even split
        // guarantees that whenever pairs ≤ in×out and pairs ≥ out… except
        // when out > pairs. Clamp as zoo does.
        prop_assume!(pairs >= out_maps || pairs >= 1);
        let pairs = pairs.max(out_maps.min(max_pairs)).min(max_pairs);
        prop_assume!(pairs.div_ceil(out_maps) <= in_maps);
        let t = ConnectionTable::spread(in_maps, out_maps, pairs);
        prop_assert_eq!(t.pair_count(), pairs);
        for o in 0..out_maps {
            let conn = t.inputs_of(o);
            prop_assert!(!conn.is_empty() || pairs < out_maps);
            prop_assert!(conn.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            prop_assert!(conn.iter().all(|&i| i < in_maps));
        }
    }

    #[test]
    fn conv_geometry_matches_the_formula(
        w in 4usize..40,
        h in 4usize..40,
        kx in 1usize..6,
        ky in 1usize..6,
        sx in 1usize..4,
        sy in 1usize..4,
    ) {
        prop_assume!(kx <= w && ky <= h);
        let net = NetworkBuilder::new("p", 1, (w, h))
            .conv(ConvSpec::new(2, (kx, ky)).with_stride((sx, sy)))
            .build(0)
            .unwrap();
        let out = net.layers()[0].out_dims();
        prop_assert_eq!(out, ((w - kx) / sx + 1, (h - ky) / sy + 1));
    }

    #[test]
    fn pool_ceiling_never_undercounts(
        w in 4usize..40,
        h in 4usize..40,
        win in 2usize..5,
    ) {
        prop_assume!(win <= w && win <= h);
        let floor = NetworkBuilder::new("f", 1, (w, h))
            .pool(PoolSpec::max((win, win)))
            .build(0)
            .unwrap();
        let ceil = NetworkBuilder::new("c", 1, (w, h))
            .pool(PoolSpec::max((win, win)).with_ceil())
            .build(0)
            .unwrap();
        let (fw, fh) = floor.layers()[0].out_dims();
        let (cw, ch) = ceil.layers()[0].out_dims();
        prop_assert!(cw >= fw && ch >= fh);
        prop_assert!(cw <= fw + 1 && ch <= fh + 1);
        // Ceiling covers every input neuron; floor may drop a remainder.
        prop_assert!(cw * win >= w && ch * win >= h);
    }

    #[test]
    fn storage_total_is_layers_plus_synapses(
        w in 8usize..24,
        maps in 1usize..4,
        out in 1usize..20,
        seed in 0u64..100,
    ) {
        let net = NetworkBuilder::new("p", maps, (w, w))
            .conv(ConvSpec::new(3, (3, 3)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(out))
            .build(seed)
            .unwrap();
        let r = storage::report(&net);
        let neuron_bytes: usize = r.layer_bytes().iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(r.total_bytes(), neuron_bytes + r.synapse_bytes());
        prop_assert!(r.largest_layer_bytes() <= neuron_bytes);
        let synapses: usize = net.layers().iter().map(|l| l.synapse_count()).sum();
        prop_assert_eq!(r.synapse_bytes(), synapses * 2);
    }

    #[test]
    fn forward_output_shapes_always_match_geometry(
        w in 8usize..20,
        maps in 1usize..3,
        k in 2usize..4,
        seed in 0u64..100,
    ) {
        let net = NetworkBuilder::new("p", maps, (w, w))
            .conv(ConvSpec::new(4, (k, k)))
            .pool(PoolSpec::avg((2, 2)))
            .fc(FcSpec::new(6))
            .build(seed)
            .unwrap();
        let trace = net.forward_fixed(&net.random_input(seed ^ 1));
        for (i, layer) in net.layers().iter().enumerate() {
            let out = trace.layer_output(i).unwrap();
            prop_assert_eq!(out.len(), layer.out_maps());
            prop_assert_eq!(out.map_dims(), layer.out_dims());
        }
    }

    #[test]
    fn fixed_point_error_stays_bounded(
        w in 10usize..18,
        seed in 0u64..200,
    ) {
        // One conv + pool + fc with 1/√fan-in weights: the fixed-point
        // output stays within a small bound of the float output (the §5
        // negligible-loss premise).
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(4, (3, 3)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(8))
            .build(seed)
            .unwrap();
        let input = net.random_input(seed ^ 3);
        let fixed = net.forward_fixed(&input).output();
        let float = net.forward_f32(&input.map(|v| v.to_f32()));
        for (a, b) in fixed.iter().zip(float.last().unwrap().flatten()) {
            prop_assert!((a.to_f32() - b).abs() < 0.15, "{} vs {}", a.to_f32(), b);
        }
    }

    #[test]
    fn builds_are_reproducible(seed in 0u64..1000) {
        let a = NetworkBuilder::new("p", 1, (12, 12))
            .conv(ConvSpec::new(3, (3, 3)))
            .fc(FcSpec::new(5))
            .build(seed)
            .unwrap();
        let b = NetworkBuilder::new("p", 1, (12, 12))
            .conv(ConvSpec::new(3, (3, 3)))
            .fc(FcSpec::new(5))
            .build(seed)
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
