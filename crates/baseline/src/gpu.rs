//! The GPU baseline model (§9's NVIDIA K20M + Caffe).

use shidiannao_cnn::{ops, Network};

/// An analytical model of the paper's GPU baseline.
///
/// The paper's central GPU observation is architectural, not numeric:
/// "the GPU cannot take full advantage of its high computational power
/// because the small computational kernels … map poorly on its 2,496
/// hardware threads" (§10.2). The model reproduces that mechanism: each
/// layer is a kernel launch with a fixed overhead, and compute throughput
/// is peak × occupancy where occupancy is the fraction of the 2,496
/// threads the layer's output neurons can fill. Launch overhead and board
/// power are the calibrated constants (fitted to the paper's mean 28.94×
/// speedup deficit and 4,688× energy ratio; see EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuModel {
    /// Peak throughput in fixed-point-equivalent GOP/s.
    pub peak_gops: f64,
    /// Hardware thread count (K20M: 2,496 CUDA cores).
    pub hardware_threads: f64,
    /// Per-kernel-launch overhead in microseconds (driver + PCIe).
    pub launch_overhead_us: f64,
    /// Board power in watts while executing (K20M TDP-class).
    pub board_power_w: f64,
}

/// Timing and energy of one GPU inference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuRun {
    seconds: f64,
    energy_nj: f64,
}

impl GpuRun {
    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Energy in nanojoules (board power × time, including the GDDR5
    /// traffic the board power subsumes).
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }
}

impl GpuModel {
    /// The calibrated K20M model.
    pub fn k20m() -> GpuModel {
        GpuModel {
            // 3.52 TFLOPS single-precision peak (§9).
            peak_gops: 3520.0,
            hardware_threads: 2496.0,
            launch_overhead_us: 40.0,
            board_power_w: 71.0,
        }
    }

    /// Models one inference of `network`.
    pub fn run(&self, network: &Network) -> GpuRun {
        let mut seconds = 0.0;
        for layer in network.layers() {
            let o = ops::layer_ops(layer);
            // Occupancy: one thread per output neuron is the natural Caffe
            // mapping for these tiny layers.
            let occupancy = (o.out_neurons as f64 / self.hardware_threads).min(1.0);
            let throughput = self.peak_gops * 1e9 * occupancy;
            let compute = o.total_fixed_ops() as f64 / throughput;
            seconds += compute + self.launch_overhead_us * 1e-6;
        }
        GpuRun {
            seconds,
            energy_nj: self.board_power_w * seconds * 1e9,
        }
    }
}

impl Default for GpuModel {
    fn default() -> GpuModel {
        GpuModel::k20m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn k20m_matches_section9_peak() {
        assert_eq!(GpuModel::k20m().peak_gops, 3520.0);
        assert_eq!(GpuModel::default(), GpuModel::k20m());
    }

    #[test]
    fn launch_overhead_dominates_tiny_networks() {
        let gpu = GpuModel::k20m();
        let net = zoo::gabor().build(1).unwrap();
        let run = gpu.run(&net);
        let overhead = net.layers().len() as f64 * gpu.launch_overhead_us * 1e-6;
        // At least 90 % of the time is launch overhead for this tiny CNN.
        assert!(
            overhead / run.seconds() > 0.9,
            "{}",
            overhead / run.seconds()
        );
    }

    #[test]
    fn energy_is_power_times_time() {
        let gpu = GpuModel::k20m();
        let run = gpu.run(&zoo::lenet5().build(1).unwrap());
        assert!((run.energy_nj() - gpu.board_power_w * run.seconds() * 1e9).abs() < 1.0);
    }

    #[test]
    fn occupancy_penalises_small_layers() {
        // A layer with few output neurons uses a sliver of the GPU.
        let gpu = GpuModel::k20m();
        let small = gpu.run(&zoo::cff().build(1).unwrap());
        let big = gpu.run(&zoo::convnn().build(1).unwrap());
        assert!(big.seconds() > small.seconds());
    }
}
