//! The comparison baselines of §9: a resized DianNao accelerator model
//! (with its DianNao-FreeMem ideal variant), an analytical CPU model, an
//! analytical GPU model, and the DRAM cost model they share.
//!
//! These are the *substitutes* for the paper's measured baselines (Intel
//! Xeon E7-8830, NVIDIA K20M + Caffe, and the authors' re-implemented
//! 8 × 8 DianNao): we have none of that hardware, and the paper uses the
//! baselines only as comparison points for Figs. 18–19. Each model is
//! mechanistic where the paper describes mechanism (DianNao's 8 × 8 NFU,
//! its 62.5 GB/s memory interface, 1 KB/1 KB/16 KB buffers; the GPU's
//! under-occupancy on tiny kernels) and calibrated where the paper gives
//! only measurements (CPU effective throughput, GPU launch overhead, DRAM
//! energy per byte). Calibration constants are documented inline and the
//! resulting mean ratios are checked against the paper in
//! `tests/figures.rs` (repository root) and EXPERIMENTS.md.

mod cpu;
mod diannao;
mod dram;
mod gpu;

pub use cpu::CpuModel;
pub use diannao::{BaselineLayer, BaselineRun, DianNao, DianNaoConfig};
pub use dram::DramModel;
pub use gpu::{GpuModel, GpuRun};
