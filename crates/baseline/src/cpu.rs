//! The SIMD CPU baseline model (§9's Intel Xeon E7-8830 + GCC 4.4.7).

use shidiannao_cnn::{ops, Network};

/// An analytical model of the paper's CPU baseline.
///
/// We cannot measure a 2011 Xeon E7-8830; the paper reports only the
/// resulting speedups (ShiDianNao is 46.38× faster on average, Fig. 18).
/// The model charges each layer `ops / (frequency × effective_ops)` plus a
/// fixed per-layer software overhead (loop setup, cache warm-up, function
/// dispatch — the costs that dominate tiny CNN layers on a general-purpose
/// core). `effective_ops_per_cycle` is the single calibrated constant: it
/// reflects how poorly small-kernel CNN loops used the 256-bit SIMD units
/// under GCC 4.4.7 auto-vectorization, and is fitted so the *mean* Fig. 18
/// speedup matches the paper; the per-benchmark spread then emerges from
/// layer mixes, not from per-benchmark tuning (see EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Core clock in GHz (E7-8830: 2.13 GHz).
    pub frequency_ghz: f64,
    /// Sustained fixed-point-equivalent operations per cycle.
    pub effective_ops_per_cycle: f64,
    /// Per-layer software overhead in microseconds.
    pub layer_overhead_us: f64,
}

impl CpuModel {
    /// The calibrated Xeon E7-8830 model.
    pub fn xeon_e7_8830() -> CpuModel {
        CpuModel {
            frequency_ghz: 2.13,
            effective_ops_per_cycle: 0.71,
            layer_overhead_us: 2.0,
        }
    }

    /// Seconds for one inference of `network`.
    pub fn run_seconds(&self, network: &Network) -> f64 {
        let mut seconds = 0.0;
        for layer in network.layers() {
            let o = ops::layer_ops(layer);
            let work = o.total_fixed_ops() as f64;
            seconds += work / (self.effective_ops_per_cycle * self.frequency_ghz * 1e9);
            seconds += self.layer_overhead_us * 1e-6;
        }
        seconds
    }
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel::xeon_e7_8830()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn defaults_are_the_xeon() {
        assert_eq!(CpuModel::default(), CpuModel::xeon_e7_8830());
        assert_eq!(CpuModel::xeon_e7_8830().frequency_ghz, 2.13);
    }

    #[test]
    fn bigger_networks_take_longer() {
        let cpu = CpuModel::xeon_e7_8830();
        let small = cpu.run_seconds(&zoo::gabor().build(1).unwrap());
        let big = cpu.run_seconds(&zoo::lenet5().build(1).unwrap());
        assert!(big > small);
        assert!(small > 0.0);
    }

    #[test]
    fn overhead_floors_tiny_networks() {
        let cpu = CpuModel::xeon_e7_8830();
        let net = zoo::gabor().build(1).unwrap();
        let floor = net.layers().len() as f64 * cpu.layer_overhead_us * 1e-6;
        assert!(cpu.run_seconds(&net) >= floor);
    }
}
