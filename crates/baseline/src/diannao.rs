//! The resized DianNao accelerator model (§9's "Accelerator" baseline).

use crate::dram::DramModel;
use shidiannao_cnn::{ops, LayerKind, Network};

/// Parameters of the re-implemented DianNao (§9, Table 3).
///
/// "We implemented an 8 × 8 DianNao-NFU (8 hardware neurons, each
/// processes 8 input neurons and 8 synapses per cycle) with a 62.5 GB/s
/// bandwidth memory model … 1 KB NBin/NBout and 16 KB SB."
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DianNaoConfig {
    /// Hardware output neurons (`Nn = 8`).
    pub hw_neurons: usize,
    /// Synapses each hardware neuron consumes per cycle (`Tn = 8`).
    pub synapses_per_neuron: usize,
    /// NBin capacity in bytes (1 KB).
    pub nbin_bytes: usize,
    /// NBout capacity in bytes (1 KB).
    pub nbout_bytes: usize,
    /// SB capacity in bytes (16 KB).
    pub sb_bytes: usize,
    /// Clock in GHz.
    pub frequency_ghz: f64,
    /// Off-chip memory interface.
    pub dram: DramModel,
}

impl DianNaoConfig {
    /// The §9 configuration.
    pub fn paper() -> DianNaoConfig {
        DianNaoConfig {
            hw_neurons: 8,
            synapses_per_neuron: 8,
            nbin_bytes: 1024,
            nbout_bytes: 1024,
            sb_bytes: 16 * 1024,
            frequency_ghz: 1.0,
            dram: DramModel::vision_sensor(),
        }
    }

    /// Peak MACs per cycle (`Nn × Tn = 64`, matching ShiDianNao's 64 PEs —
    /// the paper resizes DianNao "to have a comparable amount of
    /// arithmetic operators").
    pub fn macs_per_cycle(&self) -> usize {
        self.hw_neurons * self.synapses_per_neuron
    }
}

impl Default for DianNaoConfig {
    fn default() -> DianNaoConfig {
        DianNaoConfig::paper()
    }
}

/// Per-event on-chip energies for the DianNao datapath, in picojoules.
///
/// The NFU operator cost matches ShiDianNao's PE cost (same 16-bit
/// fixed-point multipliers/adders at 65 nm); the SRAM costs differ because
/// DianNao reads `Nn × Tn` *different* synapses every cycle (§11: it
/// "does not implement specialized hardware to exploit data locality …
/// but instead treats them as 1D data vectors") where ShiDianNao
/// broadcasts one.
#[derive(Clone, Copy, Debug, PartialEq)]
struct DianNaoEnergy {
    mac_pj: f64,
    sram_byte_pj: f64,
    idle_pj_per_cycle: f64,
}

const ENERGY: DianNaoEnergy = DianNaoEnergy {
    mac_pj: 5.5,
    sram_byte_pj: 3.2,
    idle_pj_per_cycle: 43.0,
};

/// DRAM row-buffer locality penalty for DianNao's access pattern: its
/// per-window strided gathers and tile re-streams touch DRAM in short
/// scattered bursts, paying row activations that ShiDianNao's single
/// sequential image fetch does not. Applied to DianNao's DRAM *energy*
/// (the bandwidth figure is the sustained-stream spec).
const DRAM_SCATTER_ENERGY_FACTOR: f64 = 5.0;

/// Fixed DMA turnaround per 512-byte NBin/NBout refill chunk, in cycles.
const DMA_CHUNK_LATENCY: u64 = 18;

/// One layer's share of a DianNao inference.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineLayer {
    /// Table 2 style label.
    pub label: String,
    /// NFU compute cycles.
    pub compute_cycles: u64,
    /// Memory-transfer cycles (serial with compute on the shared channel).
    pub memory_cycles: u64,
    /// DRAM bytes moved for this layer.
    pub dram_bytes: u64,
}

impl BaselineLayer {
    /// Total cycles this layer contributes.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles + self.memory_cycles
    }

    /// `true` when the layer spends more cycles on memory than compute —
    /// the §11 "DianNao still needs frequent memory accesses" signature.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// The timing/energy/traffic outcome of one DianNao inference.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRun {
    layers: Vec<BaselineLayer>,
    cycles: u64,
    dram_bytes: u64,
    onchip_nj: f64,
    dram_nj: f64,
    frequency_ghz: f64,
}

impl BaselineRun {
    /// Execution cycles (compute and DMA overlapped per layer).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.frequency_ghz * 1e9)
    }

    /// Bytes moved over the off-chip interface.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// Total energy including DRAM (the Fig. 19 "DianNao" series).
    pub fn energy_nj(&self) -> f64 {
        self.onchip_nj + self.dram_nj
    }

    /// Energy with free main memory (the Fig. 19 "DianNao-FreeMem" ideal:
    /// "we assume that main memory accesses incur no energy cost").
    pub fn energy_free_mem_nj(&self) -> f64 {
        self.onchip_nj
    }

    /// Per-layer breakdown, in execution order.
    pub fn layers(&self) -> &[BaselineLayer] {
        &self.layers
    }
}

/// The resized DianNao accelerator model.
///
/// Timing per layer: the NFU retires `Nn` output neurons in parallel,
/// each consuming `Tn` synapse-input pairs per cycle, so a layer whose
/// outputs each need `m` MACs takes `⌈out/Nn⌉ × ⌈m/Tn⌉` cycles (lane
/// tails are the 1D-vector inefficiency). DMA overlaps compute (DianNao's
/// three DMAs), so layer time is `max(compute, traffic/bandwidth)`.
///
/// Traffic per layer: synapses stream from DRAM when the CNN's synapses
/// exceed the 16 KB SB (all ten benchmarks except the smallest); layer
/// inputs re-stream per output tile when they exceed the 1 KB NBin;
/// every intermediate layer spills to DRAM and returns because neither
/// 1 KB buffer can hold a feature map (this is exactly the "DianNao still
/// needs frequent memory accesses to execute a CNN" of §11).
///
/// # Examples
///
/// ```
/// use shidiannao_baseline::DianNao;
/// use shidiannao_cnn::zoo;
///
/// let net = zoo::lenet5().build(1).unwrap();
/// let run = DianNao::new(Default::default()).run(&net);
/// assert!(run.cycles() > 0);
/// assert!(run.energy_nj() > run.energy_free_mem_nj());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DianNao {
    config: DianNaoConfig,
}

impl DianNao {
    /// Creates the model.
    pub fn new(config: DianNaoConfig) -> DianNao {
        DianNao { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DianNaoConfig {
        &self.config
    }

    /// Models one inference of `network`.
    pub fn run(&self, network: &Network) -> BaselineRun {
        let cfg = &self.config;
        let nn = cfg.hw_neurons as u64;
        let tn = cfg.synapses_per_neuron as u64;
        let total_synapse_bytes: u64 = network
            .layers()
            .iter()
            .map(|l| l.synapse_count() as u64 * 2)
            .sum();
        let synapses_fit_sb = total_synapse_bytes <= cfg.sb_bytes as u64;

        let mut layers_out: Vec<BaselineLayer> = Vec::with_capacity(network.layers().len());
        let mut cycles: u64 = 0;
        let mut dram_bytes: u64 = 0;
        let mut onchip_pj: f64 = 0.0;

        for (i, layer) in network.layers().iter().enumerate() {
            let o = ops::layer_ops(layer);
            let out = o.out_neurons.max(1);
            let in_bytes = o.in_neurons * 2;
            let out_bytes = o.out_neurons * 2;
            let macs_per_out = o.macs.div_ceil(out);
            let (ow, oh) = layer.out_dims();

            // --- compute cycles ---
            // Conv: DianNao parallelises the Nn hardware neurons across
            // output feature maps at one spatial position (the Tn-wide
            // input read is shared by broadcast); positions iterate
            // serially and Tn-lane tails are wasted (the 1D-vector
            // inefficiency of §11).
            let compute = match layer.kind() {
                LayerKind::Conv => {
                    let positions = (ow * oh) as u64;
                    let groups = (layer.out_maps() as u64).div_ceil(nn);
                    positions * groups * macs_per_out.div_ceil(tn)
                }
                LayerKind::Fc => out.div_ceil(nn) * macs_per_out.div_ceil(tn),
                LayerKind::Pool => (o.cmps + o.adds).div_ceil(nn * tn) + o.divs.div_ceil(nn),
                LayerKind::Lrn | LayerKind::Lcn => {
                    (o.macs + o.adds).div_ceil(nn * tn) + o.divs.div_ceil(nn)
                }
            };

            // --- DRAM traffic ---
            let mut traffic: u64 = 0;
            // Inputs: the 1 KB NBin cannot hold a feature map, so every
            // position-group re-streams its input window (conv) or each
            // Nn-output tile re-streams its rows (classifier); only
            // layers that fit NBin outright stream once.
            let in_traffic = if in_bytes <= cfg.nbin_bytes as u64 {
                in_bytes
            } else {
                match layer.kind() {
                    LayerKind::Conv => {
                        let positions = (ow * oh) as u64;
                        let groups = (layer.out_maps() as u64).div_ceil(nn);
                        positions * groups * macs_per_out * 2
                    }
                    LayerKind::Fc => out.div_ceil(nn) * macs_per_out * 2,
                    _ => in_bytes,
                }
            };
            traffic += in_traffic;
            // Synapses stream from DRAM unless the whole CNN fits the SB.
            if !synapses_fit_sb {
                traffic += o.synapses * 2;
            }
            // Outputs spill unless they fit NBout and this is the final
            // layer handed to the host.
            let is_last = i + 1 == network.layers().len();
            if !is_last || out_bytes > cfg.nbout_bytes as u64 {
                traffic += out_bytes;
            }

            dram_bytes += traffic;
            // A single shared memory channel refills the tiny
            // double-buffered NBin in 512-byte chunks; each chunk pays a
            // fixed DMA turnaround on top of the 62.5 B/cycle stream, and
            // the channel is not overlapped with compute (the three DMAs
            // of the original design contend on one interface).
            let mem_cycles =
                cfg.dram.transfer_cycles(traffic) + traffic.div_ceil(512) * DMA_CHUNK_LATENCY;
            cycles += compute + mem_cycles;
            layers_out.push(BaselineLayer {
                label: layer.label(),
                compute_cycles: compute,
                memory_cycles: mem_cycles,
                dram_bytes: traffic,
            });

            // --- on-chip energy ---
            // MAC-equivalent work plus the wide SRAM streams: Nn×Tn
            // synapses + Tn neurons per compute cycle, plus clock/leakage
            // on every (stall-extended) cycle.
            let work = o.macs + o.adds + o.cmps + o.divs + o.acts;
            let sram_bytes = compute * (nn * tn + tn) * 2 + (in_bytes + out_bytes);
            onchip_pj += work as f64 * ENERGY.mac_pj
                + sram_bytes as f64 * ENERGY.sram_byte_pj
                + (compute + mem_cycles) as f64 * ENERGY.idle_pj_per_cycle;
        }

        BaselineRun {
            layers: layers_out,
            cycles,
            dram_bytes,
            onchip_nj: onchip_pj / 1000.0,
            dram_nj: cfg.dram.transfer_energy_nj(dram_bytes) * DRAM_SCATTER_ENERGY_FACTOR,
            frequency_ghz: cfg.frequency_ghz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn config_matches_section9() {
        let c = DianNaoConfig::paper();
        assert_eq!(c.macs_per_cycle(), 64);
        assert_eq!(c.nbin_bytes, 1024);
        assert_eq!(c.sb_bytes, 16 * 1024);
    }

    #[test]
    fn lenet_fc_layers_are_memory_bound() {
        // F5 streams 96 KB of synapses at 62.5 B/cycle ≈ 1 572 cycles
        // against 750 compute cycles: the layer must be memory-bound.
        let net = zoo::lenet5().build(1).unwrap();
        let full = DianNao::new(DianNaoConfig::paper()).run(&net);
        let mut free = DianNaoConfig::paper();
        free.dram.bytes_per_cycle = f64::INFINITY;
        let unbound = DianNao::new(free).run(&net);
        assert!(
            full.cycles() > unbound.cycles(),
            "{} vs {}",
            full.cycles(),
            unbound.cycles()
        );
    }

    #[test]
    fn free_mem_variant_drops_dram_energy_only() {
        let net = zoo::cnp().build(1).unwrap();
        let run = DianNao::new(DianNaoConfig::paper()).run(&net);
        assert!(run.energy_nj() > run.energy_free_mem_nj());
        assert!(run.dram_bytes() > 0);
    }

    #[test]
    fn dram_traffic_includes_synapses_when_sb_overflows() {
        // LeNet-5 synapses (118 KB) exceed the 16 KB SB; CFF's (1.7 KB)
        // do not.
        let cff = zoo::cff().build(1).unwrap();
        let cff_syn: u64 = cff
            .layers()
            .iter()
            .map(|l| l.synapse_count() as u64 * 2)
            .sum();
        assert!(cff_syn <= 16 * 1024, "CFF fits the SB");
        let fits = DianNao::new(DianNaoConfig::paper()).run(&cff);
        let mut tiny_sb = DianNaoConfig::paper();
        tiny_sb.sb_bytes = 1;
        let spills = DianNao::new(tiny_sb).run(&cff);
        // With the SB too small, exactly the synapse bytes are added to
        // the DRAM traffic.
        assert_eq!(spills.dram_bytes() - fits.dram_bytes(), cff_syn);
        // LeNet-5's synapses never fit, so they always stream.
        let lenet = zoo::lenet5().build(1).unwrap();
        let lenet_syn: u64 = lenet
            .layers()
            .iter()
            .map(|l| l.synapse_count() as u64 * 2)
            .sum();
        assert!(
            DianNao::new(DianNaoConfig::paper())
                .run(&lenet)
                .dram_bytes()
                > lenet_syn
        );
    }

    #[test]
    fn layer_breakdown_sums_to_total() {
        let net = zoo::lenet5().build(1).unwrap();
        let run = DianNao::new(DianNaoConfig::paper()).run(&net);
        let sum: u64 = run.layers().iter().map(BaselineLayer::cycles).sum();
        assert_eq!(sum, run.cycles());
        let traffic: u64 = run.layers().iter().map(|l| l.dram_bytes).sum();
        assert_eq!(traffic, run.dram_bytes());
        assert_eq!(run.layers().len(), 7);
        assert_eq!(run.layers()[0].label, "C1");
    }

    #[test]
    fn lenet_classifier_layers_are_memory_bound() {
        // F5 streams 96 KB of synapses: the §11 signature.
        let net = zoo::lenet5().build(1).unwrap();
        let run = DianNao::new(DianNaoConfig::paper()).run(&net);
        let f5 = run.layers().iter().find(|l| l.label == "F5").unwrap();
        assert!(f5.is_memory_bound(), "{f5:?}");
    }

    #[test]
    fn seconds_follow_frequency() {
        let net = zoo::gabor().build(1).unwrap();
        let run = DianNao::new(DianNaoConfig::paper()).run(&net);
        assert!((run.seconds() - run.cycles() as f64 * 1e-9).abs() < 1e-15);
    }
}
