//! The off-chip DRAM model shared by the baselines.

/// Bandwidth and energy of the off-chip memory interface.
///
/// The paper resizes DianNao to a "62.5 GB/s bandwidth memory model
/// instead of the original 250 GB/s (unrealistic in a vision sensor)" and
/// uses CACTI 6.0 for DRAM access energy (§9). We have neither CACTI nor
/// the authors' DRAM configuration; the per-byte energy below is a
/// CACTI-class constant calibrated so the DianNao-to-ShiDianNao mean
/// energy ratio lands near the paper's 63.48× (Fig. 19) — see
/// EXPERIMENTS.md for the calibration record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bytes per accelerator cycle (62.5 GB/s at
    /// 1 GHz = 62.5 B/cycle).
    pub bytes_per_cycle: f64,
    /// Energy per byte moved, in picojoules.
    pub energy_per_byte_pj: f64,
}

impl DramModel {
    /// The §9 memory model: 62.5 GB/s, CACTI-class per-byte energy.
    pub fn vision_sensor() -> DramModel {
        DramModel {
            bytes_per_cycle: 62.5,
            energy_per_byte_pj: 334.0,
        }
    }

    /// Cycles to move `bytes` at the sustained bandwidth.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Energy to move `bytes`, in nanojoules.
    pub fn transfer_energy_nj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_pj / 1000.0
    }
}

impl Default for DramModel {
    fn default() -> DramModel {
        DramModel::vision_sensor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_sensor_matches_section9() {
        let d = DramModel::vision_sensor();
        assert_eq!(d.bytes_per_cycle, 62.5);
        assert_eq!(d, DramModel::default());
    }

    #[test]
    fn transfer_cycles_round_up() {
        let d = DramModel::vision_sensor();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(62), 1);
        assert_eq!(d.transfer_cycles(63), 2);
        assert_eq!(d.transfer_cycles(625), 10);
    }

    #[test]
    fn energy_scales_linearly() {
        let d = DramModel::vision_sensor();
        assert!((d.transfer_energy_nj(2000) - 2.0 * d.transfer_energy_nj(1000)).abs() < 1e-9);
        assert_eq!(d.transfer_energy_nj(0), 0.0);
    }
}
