//! Property-based tests for feature-map and window geometry.

use proptest::prelude::*;
use shidiannao_tensor::{FeatureMap, MapStack, WindowGrid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexing_matches_row_major_layout(
        w in 1usize..40,
        h in 1usize..40,
    ) {
        let m = FeatureMap::from_fn(w, h, |x, y| y * w + x);
        for ((x, y), &v) in m.indexed_iter() {
            prop_assert_eq!(v, y * w + x);
            prop_assert_eq!(m[(x, y)], v);
            prop_assert_eq!(m.get(x, y), Some(&v));
        }
        prop_assert_eq!(m.as_slice().len(), w * h);
    }

    #[test]
    fn windows_cover_exactly_the_strided_grid(
        w in 1usize..30,
        h in 1usize..30,
        kx in 1usize..6,
        ky in 1usize..6,
        sx in 1usize..4,
        sy in 1usize..4,
    ) {
        prop_assume!(kx <= w && ky <= h);
        let g = WindowGrid::new((w, h), (kx, ky), (sx, sy)).unwrap();
        let (ow, oh) = g.output_dims();
        let mut count = 0usize;
        for win in g.windows() {
            let (ox, oy) = win.output();
            prop_assert!(ox < ow && oy < oh);
            prop_assert_eq!(win.origin(), (ox * sx, oy * sy));
            // Every covered input coordinate is in bounds.
            for (ix, iy) in win.inputs() {
                prop_assert!(ix < w && iy < h, "({ix},{iy}) out of ({w},{h})");
            }
            prop_assert_eq!(win.inputs().count(), kx * ky);
            count += 1;
        }
        prop_assert_eq!(count, g.output_len());
    }

    #[test]
    fn overlap_predicate_matches_definition(
        k in 1usize..6,
        s in 1usize..6,
    ) {
        let dim = k.max(s) * 3;
        let g = WindowGrid::new((dim, dim), (k, k), (s, s)).unwrap();
        prop_assert_eq!(g.windows_overlap(), s < k);
    }

    #[test]
    fn stack_flatten_is_map_major(
        w in 1usize..10,
        h in 1usize..10,
        n in 1usize..5,
    ) {
        let s = MapStack::from_fn(w, h, n, |m| {
            FeatureMap::from_fn(w, h, move |x, y| (m, x, y))
        });
        let flat = s.flatten();
        prop_assert_eq!(flat.len(), n * w * h);
        for (i, &(m, x, y)) in flat.iter().enumerate() {
            prop_assert_eq!(i, m * w * h + y * w + x);
        }
    }

    #[test]
    fn zip_with_is_elementwise(
        w in 1usize..12,
        h in 1usize..12,
    ) {
        let a = FeatureMap::from_fn(w, h, |x, y| (x + y) as i64);
        let b = FeatureMap::from_fn(w, h, |x, y| (x * y) as i64);
        let c = a.zip_with(&b, |p, q| p + q).unwrap();
        for ((x, y), &v) in c.indexed_iter() {
            prop_assert_eq!(v, (x + y + x * y) as i64);
        }
    }
}
