//! Ordered collections of same-sized feature maps.

use crate::{FeatureMap, ShapeError};
use core::fmt;
use core::ops::Index;

/// An ordered stack of same-sized [`FeatureMap`]s — a layer's input or
/// output (the paper's "#mi"/"#mo" indexed map sets).
///
/// All maps in a stack share one `(width, height)`; the invariant is
/// enforced at construction and on [`MapStack::push`].
///
/// # Examples
///
/// ```
/// use shidiannao_tensor::{FeatureMap, MapStack};
/// let mut stack = MapStack::new(3, 3);
/// stack.push(FeatureMap::filled(3, 3, 1u8)).unwrap();
/// stack.push(FeatureMap::filled(3, 3, 2u8)).unwrap();
/// assert_eq!(stack.len(), 2);
/// assert_eq!(stack[1][(0, 0)], 2);
/// ```
/// Removes and returns the bin entry whose capacity best fits `needed`
/// elements: an exact match wins outright, otherwise the smallest
/// capacity that still holds `needed`, otherwise the largest available
/// (so the inevitable regrowth starts as close to `needed` as it can).
fn take_best_fit<T>(bin: &mut Vec<FeatureMap<T>>, needed: usize) -> Option<FeatureMap<T>> {
    let mut best: Option<(usize, usize)> = None;
    for (i, m) in bin.iter().enumerate() {
        let cap = m.capacity();
        if cap == needed {
            best = Some((i, cap));
            break;
        }
        let better = match best {
            None => true,
            Some((_, best_cap)) if best_cap >= needed => cap >= needed && cap < best_cap,
            Some((_, best_cap)) => cap > best_cap,
        };
        if better {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| bin.swap_remove(i))
}

#[derive(PartialEq, Eq, Hash)]
pub struct MapStack<T> {
    width: usize,
    height: usize,
    maps: Vec<FeatureMap<T>>,
}

impl<T: Clone> Clone for MapStack<T> {
    fn clone(&self) -> MapStack<T> {
        MapStack {
            width: self.width,
            height: self.height,
            maps: self.maps.clone(),
        }
    }

    /// Capacity-reusing clone: delegates to `Vec::clone_from`, which in
    /// turn `clone_from`s each [`FeatureMap`] — so re-loading a stack of
    /// the same (or smaller) shape allocates nothing.
    fn clone_from(&mut self, source: &MapStack<T>) {
        self.width = source.width;
        self.height = source.height;
        self.maps.clone_from(&source.maps);
    }
}

impl<T> MapStack<T> {
    /// Creates an empty stack accepting `width × height` maps.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> MapStack<T> {
        assert!(
            width > 0 && height > 0,
            "map stack must have non-empty maps"
        );
        MapStack {
            width,
            height,
            maps: Vec::new(),
        }
    }

    /// Creates a stack of `count` maps, each produced by `f(map_index)`.
    ///
    /// # Panics
    ///
    /// Panics if a produced map has the wrong dimensions.
    pub fn from_fn(
        width: usize,
        height: usize,
        count: usize,
        mut f: impl FnMut(usize) -> FeatureMap<T>,
    ) -> MapStack<T> {
        let mut stack = MapStack::new(width, height);
        for i in 0..count {
            stack.push(f(i)).unwrap_or_else(|e| panic!("map #{i}: {e}"));
        }
        stack
    }

    /// Creates a stack of `count` maps all filled with `value`.
    pub fn filled(width: usize, height: usize, count: usize, value: T) -> MapStack<T>
    where
        T: Clone,
    {
        MapStack::from_fn(width, height, count, |_| {
            FeatureMap::filled(width, height, value.clone())
        })
    }

    /// Reshapes the stack in place to `count` maps of `width × height`,
    /// every element set to `value`, reusing existing map storage (see
    /// [`FeatureMap::refill`]) — the NB output buffers recycle their
    /// retired stacks through this.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn refill(&mut self, width: usize, height: usize, count: usize, value: T)
    where
        T: Clone,
    {
        assert!(
            width > 0 && height > 0,
            "map stack must have non-empty maps"
        );
        self.width = width;
        self.height = height;
        self.maps.truncate(count);
        for m in &mut self.maps {
            m.refill(width, height, value.clone());
        }
        while self.maps.len() < count {
            self.maps
                .push(FeatureMap::filled(width, height, value.clone()));
        }
    }

    /// [`MapStack::refill`] that never drops map storage: every held map
    /// is parked in `bin`, then the stack is rebuilt from the best
    /// capacity fits — so a buffer cycling through layer shapes of
    /// varying map counts reaches its high-water mark within a run or
    /// two and then churns nothing. (A plain LIFO pop converges far too
    /// slowly: classifier layers flood the bin with 1×1 maps, and one of
    /// them lands in a large-shape slot and regrows on every run.)
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn refill_recycling(
        &mut self,
        width: usize,
        height: usize,
        count: usize,
        value: T,
        bin: &mut Vec<FeatureMap<T>>,
    ) where
        T: Clone,
    {
        assert!(
            width > 0 && height > 0,
            "map stack must have non-empty maps"
        );
        self.width = width;
        self.height = height;
        let needed = width * height;
        while let Some(m) = self.maps.pop() {
            bin.push(m);
        }
        for _ in 0..count {
            let m = match take_best_fit(bin, needed) {
                Some(mut m) => {
                    m.refill(width, height, value.clone());
                    m
                }
                None => FeatureMap::filled(width, height, value.clone()),
            };
            self.maps.push(m);
        }
    }

    /// Capacity-reusing `clone_from` that never drops map storage: maps
    /// are parked in `bin` and reclaimed by best capacity fit before
    /// allocating (see [`MapStack::refill_recycling`]).
    pub fn clone_from_recycling(&mut self, source: &MapStack<T>, bin: &mut Vec<FeatureMap<T>>)
    where
        T: Clone,
    {
        self.width = source.width;
        self.height = source.height;
        let needed = source.width * source.height;
        while let Some(m) = self.maps.pop() {
            bin.push(m);
        }
        for src in &source.maps {
            let m = match take_best_fit(bin, needed) {
                Some(mut m) => {
                    m.clone_from(src);
                    m
                }
                None => src.clone(),
            };
            self.maps.push(m);
        }
    }

    /// Appends a map.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the map's dimensions differ from the
    /// stack's.
    pub fn push(&mut self, map: FeatureMap<T>) -> Result<(), ShapeError> {
        if map.dims() != (self.width, self.height) {
            return Err(ShapeError::new(format!(
                "stack holds {}x{} maps but got {}x{}",
                self.width,
                self.height,
                map.width(),
                map.height()
            )));
        }
        self.maps.push(map);
        Ok(())
    }

    /// Per-map width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Per-map height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Per-map `(width, height)`.
    #[inline]
    pub fn map_dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of maps.
    #[inline]
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// `true` if the stack holds no maps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Total neuron count across all maps.
    #[inline]
    pub fn neuron_count(&self) -> usize {
        self.maps.len() * self.width * self.height
    }

    /// The map at `index`, or `None` if out of range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&FeatureMap<T>> {
        self.maps.get(index)
    }

    /// Mutable access to the map at `index`.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut FeatureMap<T>> {
        self.maps.get_mut(index)
    }

    /// Iterates over the maps.
    pub fn iter(&self) -> core::slice::Iter<'_, FeatureMap<T>> {
        self.maps.iter()
    }

    /// Produces a new stack by applying `f` to every element of every map.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> MapStack<U> {
        MapStack {
            width: self.width,
            height: self.height,
            maps: self.maps.iter().map(|m| m.map(&mut f)).collect(),
        }
    }

    /// Flattens the stack into a single vector, map-major then row-major —
    /// the order a classifier layer consumes its inputs (#ni numbering).
    pub fn flatten(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.neuron_count());
        for m in &self.maps {
            out.extend_from_slice(m.as_slice());
        }
        out
    }
}

impl<T: fmt::Debug> fmt::Debug for MapStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MapStack {{ {} maps of {}x{} }}",
            self.maps.len(),
            self.width,
            self.height
        )
    }
}

impl<T> Index<usize> for MapStack<T> {
    type Output = FeatureMap<T>;
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    fn index(&self, index: usize) -> &FeatureMap<T> {
        &self.maps[index]
    }
}

impl<'a, T> IntoIterator for &'a MapStack<T> {
    type Item = &'a FeatureMap<T>;
    type IntoIter = core::slice::Iter<'a, FeatureMap<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.maps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_dims() {
        let mut s = MapStack::new(2, 2);
        assert!(s.push(FeatureMap::filled(2, 2, 0u8)).is_ok());
        assert!(s.push(FeatureMap::filled(3, 2, 0u8)).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_fn_builds_indexed_maps() {
        let s = MapStack::from_fn(2, 2, 3, |i| FeatureMap::filled(2, 2, i));
        assert_eq!(s.len(), 3);
        assert_eq!(s[2][(1, 1)], 2);
        assert_eq!(s.neuron_count(), 12);
    }

    #[test]
    fn flatten_is_map_major_row_major() {
        let s = MapStack::from_fn(2, 2, 2, |i| {
            FeatureMap::from_fn(2, 2, move |x, y| 100 * i + 10 * y + x)
        });
        assert_eq!(s.flatten(), vec![0, 1, 10, 11, 100, 101, 110, 111]);
    }

    #[test]
    fn map_transforms_all_elements() {
        let s = MapStack::filled(2, 2, 2, 3i32);
        let t = s.map(|v| v * v);
        assert_eq!(t[0][(0, 0)], 9);
        assert_eq!(t.map_dims(), (2, 2));
    }

    #[test]
    fn get_and_iter() {
        let s = MapStack::filled(1, 1, 2, 7u8);
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        assert!(!s.is_empty());
        assert!(MapStack::<u8>::new(1, 1).is_empty());
    }

    #[test]
    fn get_mut_writes_through() {
        let mut s = MapStack::filled(1, 1, 1, 0u8);
        s.get_mut(0).unwrap()[(0, 0)] = 5;
        assert_eq!(s[0][(0, 0)], 5);
    }

    #[test]
    fn refill_reshapes_in_place() {
        let mut s = MapStack::filled(4, 4, 3, 9u8);
        s.refill(2, 2, 5, 0u8);
        assert_eq!(s.map_dims(), (2, 2));
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|m| m.iter().all(|&v| v == 0)));
        s.refill(3, 1, 1, 2u8);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].as_slice(), &[2, 2, 2]);
    }

    #[test]
    fn clone_from_matches_clone() {
        let src = MapStack::from_fn(2, 2, 2, |i| FeatureMap::filled(2, 2, i));
        let mut dst = MapStack::filled(3, 3, 4, 0usize);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn refill_recycling_parks_and_reuses_maps() {
        let mut bin = Vec::new();
        let mut s = MapStack::filled(4, 4, 5, 9u8);
        s.refill_recycling(2, 2, 2, 0u8, &mut bin);
        assert_eq!(s.len(), 2);
        assert_eq!(bin.len(), 3);
        s.refill_recycling(3, 3, 4, 1u8, &mut bin);
        assert_eq!(s.len(), 4);
        assert_eq!(bin.len(), 1);
        assert_eq!(s.map_dims(), (3, 3));
        assert!(s.iter().all(|m| m.iter().all(|&v| v == 1)));
    }

    #[test]
    fn clone_from_recycling_matches_clone() {
        let src = MapStack::from_fn(2, 2, 3, |i| FeatureMap::filled(2, 2, i));
        let mut bin = Vec::new();
        let mut dst = MapStack::filled(3, 3, 5, 0usize);
        dst.clone_from_recycling(&src, &mut bin);
        assert_eq!(dst, src);
        assert_eq!(bin.len(), 2);
        let small = MapStack::filled(1, 1, 1, 7usize);
        dst.clone_from_recycling(&small, &mut bin);
        assert_eq!(dst, small);
        // Growing again drains the bin before allocating.
        dst.clone_from_recycling(&src, &mut bin);
        assert_eq!(dst, src);
        assert_eq!(bin.len(), 2);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = MapStack::<u8>::new(4, 4);
        assert!(format!("{s:?}").contains("0 maps of 4x4"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dims_panic() {
        let _ = MapStack::<u8>::new(4, 0);
    }
}
