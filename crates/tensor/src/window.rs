//! Sliding-window geometry shared by convolutional, pooling, and
//! normalization layers.

use crate::ShapeError;
use core::fmt;

/// The geometry of a `Kx × Ky` window sliding over an input feature map with
/// step `(Sx, Sy)`.
///
/// The paper's formula (1): output `(a, b)` reads inputs
/// `(a·Sx + i, b·Sy + j)` for `i < Kx, j < Ky`. `WindowGrid` captures that
/// relation, computes the output dimensions, and enumerates windows.
///
/// # Examples
///
/// ```
/// use shidiannao_tensor::WindowGrid;
/// // LeNet-5 C1: 32×32 input, 5×5 kernel, stride 1 → 28×28 outputs.
/// let g = WindowGrid::new((32, 32), (5, 5), (1, 1)).unwrap();
/// assert_eq!(g.output_dims(), (28, 28));
/// // A pooling layer: window == stride → non-overlapping.
/// let p = WindowGrid::new((28, 28), (2, 2), (2, 2)).unwrap();
/// assert!(!p.windows_overlap());
/// assert_eq!(p.output_dims(), (14, 14));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WindowGrid {
    input: (usize, usize),
    kernel: (usize, usize),
    stride: (usize, usize),
}

impl WindowGrid {
    /// Creates a window grid.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if any dimension is zero or the kernel exceeds
    /// the input.
    pub fn new(
        input: (usize, usize),
        kernel: (usize, usize),
        stride: (usize, usize),
    ) -> Result<WindowGrid, ShapeError> {
        if input.0 == 0 || input.1 == 0 || kernel.0 == 0 || kernel.1 == 0 {
            return Err(ShapeError::new("window dimensions must be non-zero"));
        }
        if stride.0 == 0 || stride.1 == 0 {
            return Err(ShapeError::new("stride must be non-zero"));
        }
        if kernel.0 > input.0 || kernel.1 > input.1 {
            return Err(ShapeError::new(format!(
                "kernel {}x{} exceeds input {}x{}",
                kernel.0, kernel.1, input.0, input.1
            )));
        }
        Ok(WindowGrid {
            input,
            kernel,
            stride,
        })
    }

    /// Input `(Nx, Ny)`.
    #[inline]
    pub fn input_dims(self) -> (usize, usize) {
        self.input
    }

    /// Kernel `(Kx, Ky)`.
    #[inline]
    pub fn kernel_dims(self) -> (usize, usize) {
        self.kernel
    }

    /// Stride `(Sx, Sy)`.
    #[inline]
    pub fn stride(self) -> (usize, usize) {
        self.stride
    }

    /// Output feature-map dimensions: `((Nx−Kx)/Sx + 1, (Ny−Ky)/Sy + 1)`
    /// (valid convolution, as in all of the paper's benchmarks).
    #[inline]
    pub fn output_dims(self) -> (usize, usize) {
        (
            (self.input.0 - self.kernel.0) / self.stride.0 + 1,
            (self.input.1 - self.kernel.1) / self.stride.1 + 1,
        )
    }

    /// Number of output neurons the grid produces.
    #[inline]
    pub fn output_len(self) -> usize {
        let (w, h) = self.output_dims();
        w * h
    }

    /// `true` when adjacent windows share input neurons (`stride < kernel`
    /// in either direction) — the case where inter-PE data propagation pays
    /// off (§5.1).
    #[inline]
    pub fn windows_overlap(self) -> bool {
        self.stride.0 < self.kernel.0 || self.stride.1 < self.kernel.1
    }

    /// The window feeding output neuron `(ox, oy)`, or `None` if that output
    /// does not exist.
    pub fn window(self, ox: usize, oy: usize) -> Option<Window> {
        let (ow, oh) = self.output_dims();
        if ox >= ow || oy >= oh {
            return None;
        }
        Some(Window {
            out: (ox, oy),
            origin: (ox * self.stride.0, oy * self.stride.1),
            kernel: self.kernel,
        })
    }

    /// Iterates over all windows in output row-major order.
    pub fn windows(self) -> Windows {
        Windows {
            grid: self,
            next: 0,
        }
    }
}

impl fmt::Display for WindowGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} input, {}x{} kernel, {}x{} stride",
            self.input.0, self.input.1, self.kernel.0, self.kernel.1, self.stride.0, self.stride.1
        )
    }
}

/// One sliding-window placement: the output neuron it computes and the input
/// rectangle it reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Window {
    out: (usize, usize),
    origin: (usize, usize),
    kernel: (usize, usize),
}

impl Window {
    /// The output-neuron coordinates `(ox, oy)` this window computes.
    #[inline]
    pub fn output(self) -> (usize, usize) {
        self.out
    }

    /// The top-left input coordinate of the window.
    #[inline]
    pub fn origin(self) -> (usize, usize) {
        self.origin
    }

    /// Iterates the input coordinates covered by the window, row-major
    /// within the window (the kernel sweep order of Fig. 13: `kx` fastest).
    pub fn inputs(self) -> impl Iterator<Item = (usize, usize)> {
        let (x0, y0) = self.origin;
        let (kx, ky) = self.kernel;
        (0..ky).flat_map(move |j| (0..kx).map(move |i| (x0 + i, y0 + j)))
    }

    /// The input coordinate for kernel offset `(i, j)`.
    #[inline]
    pub fn input_at(self, i: usize, j: usize) -> (usize, usize) {
        (self.origin.0 + i, self.origin.1 + j)
    }
}

/// Iterator over a [`WindowGrid`]'s windows in output row-major order.
#[derive(Clone, Debug)]
pub struct Windows {
    grid: WindowGrid,
    next: usize,
}

impl Iterator for Windows {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        let (ow, _) = self.grid.output_dims();
        let w = self.grid.window(self.next % ow, self.next / ow)?;
        self.next += 1;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.output_len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Windows {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometry() {
        assert!(WindowGrid::new((4, 4), (5, 5), (1, 1)).is_err());
        assert!(WindowGrid::new((4, 4), (0, 2), (1, 1)).is_err());
        assert!(WindowGrid::new((4, 4), (2, 2), (0, 1)).is_err());
        assert!(WindowGrid::new((0, 4), (2, 2), (1, 1)).is_err());
    }

    #[test]
    fn lenet_layer_shapes() {
        // All spatial shape transitions of LeNet-5 (Table 2).
        let c1 = WindowGrid::new((32, 32), (5, 5), (1, 1)).unwrap();
        assert_eq!(c1.output_dims(), (28, 28));
        let s2 = WindowGrid::new((28, 28), (2, 2), (2, 2)).unwrap();
        assert_eq!(s2.output_dims(), (14, 14));
        let c3 = WindowGrid::new((14, 14), (5, 5), (1, 1)).unwrap();
        assert_eq!(c3.output_dims(), (10, 10));
        let s4 = WindowGrid::new((10, 10), (2, 2), (2, 2)).unwrap();
        assert_eq!(s4.output_dims(), (5, 5));
        let f5 = WindowGrid::new((5, 5), (5, 5), (1, 1)).unwrap();
        assert_eq!(f5.output_dims(), (1, 1));
    }

    #[test]
    fn overlap_detection() {
        assert!(WindowGrid::new((8, 8), (3, 3), (1, 1))
            .unwrap()
            .windows_overlap());
        assert!(!WindowGrid::new((8, 8), (2, 2), (2, 2))
            .unwrap()
            .windows_overlap());
        assert!(WindowGrid::new((8, 8), (3, 3), (3, 1))
            .unwrap()
            .windows_overlap());
    }

    #[test]
    fn window_coordinates_follow_stride() {
        let g = WindowGrid::new((6, 6), (2, 2), (2, 2)).unwrap();
        let w = g.window(1, 2).unwrap();
        assert_eq!(w.output(), (1, 2));
        assert_eq!(w.origin(), (2, 4));
        assert_eq!(w.input_at(1, 0), (3, 4));
        assert!(g.window(3, 0).is_none());
    }

    #[test]
    fn window_inputs_are_row_major_kx_fastest() {
        let g = WindowGrid::new((4, 4), (2, 2), (1, 1)).unwrap();
        let w = g.window(1, 1).unwrap();
        let coords: Vec<_> = w.inputs().collect();
        assert_eq!(coords, [(1, 1), (2, 1), (1, 2), (2, 2)]);
    }

    #[test]
    fn windows_iterator_covers_all_outputs() {
        let g = WindowGrid::new((5, 4), (2, 2), (1, 1)).unwrap();
        let all: Vec<_> = g.windows().map(Window::output).collect();
        assert_eq!(all.len(), g.output_len());
        assert_eq!(all[0], (0, 0));
        assert_eq!(all[1], (1, 0)); // row-major
        assert_eq!(*all.last().unwrap(), (3, 2));
        assert_eq!(g.windows().len(), 12);
    }

    #[test]
    fn every_input_covered_exactly_once_when_non_overlapping() {
        let g = WindowGrid::new((6, 6), (2, 3), (2, 3)).unwrap();
        let mut seen = [0u8; 36];
        for w in g.windows() {
            for (x, y) in w.inputs() {
                seen[y * 6 + x] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn display_is_informative() {
        let g = WindowGrid::new((32, 32), (5, 5), (1, 1)).unwrap();
        assert_eq!(g.to_string(), "32x32 input, 5x5 kernel, 1x1 stride");
    }
}
