//! 2D feature maps and sliding-window geometry for the ShiDianNao
//! reproduction.
//!
//! CNN layers in the paper operate on "2D arrays of input pixels/neurons"
//! (§3) — *feature maps*. This crate provides:
//!
//! * [`FeatureMap`] — a dense row-major 2D array of neurons,
//! * [`MapStack`] — an ordered collection of same-sized feature maps (the
//!   input or output of a layer),
//! * [`WindowGrid`] — the sliding-window geometry (`Kx × Ky` kernel, `Sx ×
//!   Sy` stride) shared by convolutional, pooling, and normalization layers,
//!
//! all generic over the element type so the same containers serve the
//! `f32` golden model and the 16-bit fixed-point datapath.
//!
//! # Examples
//!
//! ```
//! use shidiannao_tensor::{FeatureMap, WindowGrid};
//!
//! let map = FeatureMap::from_fn(4, 4, |x, y| (x + 10 * y) as i32);
//! assert_eq!(map[(2, 1)], 12);
//!
//! // A 3×3 kernel sliding by 1 over a 4×4 input yields 2×2 outputs.
//! let grid = WindowGrid::new((4, 4), (3, 3), (1, 1)).unwrap();
//! assert_eq!(grid.output_dims(), (2, 2));
//! ```

mod map;
mod stack;
mod window;

pub use map::FeatureMap;
pub use stack::MapStack;
pub use window::{Window, WindowGrid, Windows};

use core::fmt;

/// Error returned when feature-map dimensions are inconsistent with an
/// operation (mismatched sizes, kernels larger than their input, zero-sized
/// shapes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with a human-readable explanation.
    pub fn new(message: impl Into<String>) -> ShapeError {
        ShapeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_displays_message() {
        let e = ShapeError::new("kernel 5x5 exceeds input 3x3");
        assert_eq!(
            e.to_string(),
            "shape mismatch: kernel 5x5 exceeds input 3x3"
        );
    }

    #[test]
    fn shape_error_is_send_sync_error() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ShapeError>();
    }
}
