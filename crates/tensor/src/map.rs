//! Dense 2D feature maps.

use crate::ShapeError;
use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense, row-major 2D feature map of neurons/pixels.
///
/// Coordinates follow the paper's `(x, y)` convention where `x` indexes the
/// column (row direction of travel) and `y` the row; `width` is the paper's
/// `Nx`, `height` is `Ny`. Storage is row-major: element `(x, y)` lives at
/// `y * width + x`, matching how NB banks hold Px-wide row segments
/// (Fig. 11).
///
/// # Examples
///
/// ```
/// use shidiannao_tensor::FeatureMap;
/// let mut m = FeatureMap::filled(3, 2, 0u8);
/// m[(2, 1)] = 7;
/// assert_eq!(m.row(1), &[0, 0, 7]);
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct FeatureMap<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone> Clone for FeatureMap<T> {
    fn clone(&self) -> FeatureMap<T> {
        FeatureMap {
            width: self.width,
            height: self.height,
            data: self.data.clone(),
        }
    }

    /// Capacity-reusing clone: when `self`'s storage already holds enough
    /// capacity, no allocation happens — the steady-state requirement of
    /// the zero-allocation session datapath.
    fn clone_from(&mut self, source: &FeatureMap<T>) {
        self.width = source.width;
        self.height = source.height;
        self.data.clone_from(&source.data);
    }
}

impl<T> FeatureMap<T> {
    /// Creates a map of the given dimensions with every element initialised
    /// to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: T) -> FeatureMap<T>
    where
        T: Clone,
    {
        assert!(width > 0 && height > 0, "feature map must be non-empty");
        FeatureMap {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a map whose element at `(x, y)` is `f(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> FeatureMap<T> {
        assert!(width > 0 && height > 0, "feature map must be non-empty");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        FeatureMap {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != width * height` or a
    /// dimension is zero.
    pub fn from_vec(
        width: usize,
        height: usize,
        data: Vec<T>,
    ) -> Result<FeatureMap<T>, ShapeError> {
        if width == 0 || height == 0 {
            return Err(ShapeError::new("feature map must be non-empty"));
        }
        if data.len() != width * height {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot form a {width}x{height} map",
                data.len()
            )));
        }
        Ok(FeatureMap {
            width,
            height,
            data,
        })
    }

    /// Reshapes the map in place to `width × height` with every element
    /// set to `value`, reusing the existing storage — allocation-free once
    /// the backing vector has grown to its high-water mark.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn refill(&mut self, width: usize, height: usize, value: T)
    where
        T: Clone,
    {
        assert!(width > 0 && height > 0, "feature map must be non-empty");
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, value);
    }

    /// Map width (`Nx`: number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height (`Ny`: number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of neurons in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Elements the backing storage can hold without reallocating —
    /// what a recycling pool consults to match retired maps to new
    /// shapes (see `MapStack::refill_recycling`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Always `false`: maps are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the element at `(x, y)`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Mutable access to the element at `(x, y)`, or `None` if out of
    /// bounds.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> Option<&mut T> {
        if x < self.width && y < self.height {
            Some(&mut self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// The `y`-th row as a slice (a bank-width read of the map).
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// The raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the map and returns its row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates over `((x, y), &value)` in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i % w, i / w), v))
    }

    /// Produces a new map by applying `f` to every element.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> FeatureMap<U> {
        FeatureMap {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Element-wise combination of two same-shaped maps (the NFU's
    /// matrix-addition primitive uses this shape check).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if dimensions differ.
    pub fn zip_with<U, V>(
        &self,
        other: &FeatureMap<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Result<FeatureMap<V>, ShapeError> {
        if self.dims() != other.dims() {
            return Err(ShapeError::new(format!(
                "cannot combine {}x{} with {}x{}",
                self.width, self.height, other.width, other.height
            )));
        }
        Ok(FeatureMap {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for FeatureMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FeatureMap {}x{} [", self.width, self.height)?;
        for y in 0..self.height {
            writeln!(f, "  {:?}", self.row(y))?;
        }
        write!(f, "]")
    }
}

impl<T> Index<(usize, usize)> for FeatureMap<T> {
    type Output = T;
    /// Indexes by `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for FeatureMap<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        &mut self.data[y * self.width + x]
    }
}

impl<'a, T> IntoIterator for &'a FeatureMap<T> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = FeatureMap::from_fn(3, 2, |x, y| 10 * y + x);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m[(1, 1)], 11);
        assert_eq!(m.row(0), &[0, 1, 2]);
    }

    #[test]
    fn get_bounds_checks() {
        let m = FeatureMap::filled(2, 2, 5u8);
        assert_eq!(m.get(1, 1), Some(&5));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn get_mut_writes() {
        let mut m = FeatureMap::filled(2, 2, 0u8);
        *m.get_mut(0, 1).unwrap() = 9;
        assert_eq!(m[(0, 1)], 9);
        assert!(m.get_mut(5, 5).is_none());
    }

    #[test]
    fn from_vec_validates() {
        assert!(FeatureMap::from_vec(2, 2, vec![1, 2, 3, 4]).is_ok());
        assert!(FeatureMap::from_vec(2, 2, vec![1, 2, 3]).is_err());
        assert!(FeatureMap::from_vec(0, 2, Vec::<i32>::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dims_panic() {
        let _ = FeatureMap::filled(0, 3, 1u8);
    }

    #[test]
    fn indexed_iter_yields_coordinates() {
        let m = FeatureMap::from_fn(2, 2, |x, y| (x, y));
        for ((x, y), v) in m.indexed_iter() {
            assert_eq!(*v, (x, y));
        }
        assert_eq!(m.indexed_iter().count(), 4);
    }

    #[test]
    fn map_preserves_shape() {
        let m = FeatureMap::from_fn(3, 2, |x, _| x as i32);
        let doubled = m.map(|v| v * 2);
        assert_eq!(doubled.dims(), (3, 2));
        assert_eq!(doubled[(2, 0)], 4);
    }

    #[test]
    fn zip_with_checks_shape() {
        let a = FeatureMap::filled(2, 2, 1i32);
        let b = FeatureMap::filled(2, 2, 2i32);
        let c = a.zip_with(&b, |x, y| x + y).unwrap();
        assert_eq!(c.as_slice(), &[3, 3, 3, 3]);
        let d = FeatureMap::filled(3, 2, 0i32);
        assert!(a.zip_with(&d, |x, y| x + y).is_err());
    }

    #[test]
    fn into_vec_roundtrip() {
        let m = FeatureMap::from_fn(2, 3, |x, y| x + y);
        let v = m.clone().into_vec();
        assert_eq!(FeatureMap::from_vec(2, 3, v).unwrap(), m);
    }

    #[test]
    fn debug_is_never_empty() {
        let m = FeatureMap::filled(1, 1, 0u8);
        assert!(format!("{m:?}").contains("FeatureMap 1x1"));
    }

    #[test]
    fn refill_reshapes_in_place() {
        let mut m = FeatureMap::filled(4, 4, 7u8);
        m.refill(2, 3, 1u8);
        assert_eq!(m.dims(), (2, 3));
        assert!(m.iter().all(|&v| v == 1));
    }

    #[test]
    fn clone_from_matches_clone() {
        let src = FeatureMap::from_fn(3, 2, |x, y| x + 10 * y);
        let mut dst = FeatureMap::filled(5, 5, 0usize);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn len_and_is_empty() {
        let m = FeatureMap::filled(4, 3, 0u8);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert_eq!(m.iter().count(), 12);
        assert_eq!((&m).into_iter().count(), 12);
    }
}
