//! Seeded, deterministic fault injection for the ShiDianNao simulator.
//!
//! ShiDianNao deploys next to the sensor in embedded devices (§2, §10.2),
//! where SRAM soft errors, datapath faults, and corrupted scanline streams
//! are operating conditions rather than exceptions. This crate models them
//! as a *replayable* fault layer:
//!
//! * [`FaultPlan`] — every fault decision is a pure hash of
//!   `(seed, site, layer, address)`, so a faulty SRAM cell stays faulty
//!   for a whole layer epoch and the exact same faults replay from a
//!   single `u64` seed regardless of access order or run path,
//! * [`SramProtection`] — none / parity-detect / SECDED-correct word
//!   codes, with the storage and codec overheads the energy/area models
//!   charge,
//! * [`PeStuck`] — stuck-at faults in PE accumulator read-out and FIFO
//!   datapaths,
//! * [`ScanlineFault`] — dropped or corrupted sensor scanlines.
//!
//! The crate is dependency-light (only the fixed-point type) so the core
//! simulator, the sensor front-end, and the bench harness can all share
//! one fault vocabulary.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use core::fmt;
use shidiannao_fixed::Fx;

/// Word-level SRAM protection code (per 16-bit data word).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SramProtection {
    /// Raw SRAM: every flip silently corrupts data.
    #[default]
    None,
    /// One parity bit per word (17/16): detects any odd number of flips
    /// (detected errors abort the run); even-bit flips pass silently.
    Parity,
    /// Hamming SECDED (22/16): corrects single-bit flips, detects (but
    /// cannot correct) double-bit flips.
    Secded,
}

impl SramProtection {
    /// Every protection level, in increasing strength.
    pub const ALL: [SramProtection; 3] = [
        SramProtection::None,
        SramProtection::Parity,
        SramProtection::Secded,
    ];

    /// Check bits stored per 16-bit word (0 / 1 / 6).
    #[inline]
    pub fn check_bits(self) -> u32 {
        match self {
            SramProtection::None => 0,
            SramProtection::Parity => 1,
            SramProtection::Secded => 6,
        }
    }

    /// Storage overhead factor: `(16 + check_bits) / 16`. Scales SRAM
    /// area and per-byte access energy.
    #[inline]
    pub fn storage_overhead(self) -> f64 {
        (16.0 + self.check_bits() as f64) / 16.0
    }

    /// Encoder/decoder logic overhead per access — a first-order factor
    /// for the XOR tree (parity) or syndrome decode + correction mux
    /// (SECDED) on the SRAM access path.
    #[inline]
    pub fn logic_overhead(self) -> f64 {
        match self {
            SramProtection::None => 1.0,
            SramProtection::Parity => 1.05,
            SramProtection::Secded => 1.25,
        }
    }

    /// Stable lowercase label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            SramProtection::None => "none",
            SramProtection::Parity => "parity",
            SramProtection::Secded => "secded",
        }
    }
}

impl fmt::Display for SramProtection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which on-chip memory a fault struck (also the hash-domain separator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Neuron-buffer reads in the NBin role (the six Fig. 10 modes).
    NbIn,
    /// Staged NBout re-reads (the decomposed LCN sub-layers).
    NbOut,
    /// Synapse-buffer reads (weights and biases).
    Sb,
    /// Instruction-buffer fetches.
    Ib,
    /// PE datapath state (stuck-at faults).
    Pe,
    /// Sensor scanline stream.
    Scanline,
}

impl FaultSite {
    fn domain(self) -> u64 {
        match self {
            FaultSite::NbIn => 0x4E42_494E,
            FaultSite::NbOut => 0x4E42_4F55,
            FaultSite::Sb => 0x5342_5342,
            FaultSite::Ib => 0x4942_4942,
            FaultSite::Pe => 0x5045_5045,
            FaultSite::Scanline => 0x5343_414E,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NbIn => "nbin",
            FaultSite::NbOut => "nbout",
            FaultSite::Sb => "sb",
            FaultSite::Ib => "ib",
            FaultSite::Pe => "pe",
            FaultSite::Scanline => "scanline",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 64-bit finalizer of `splitmix64` — the only mixing primitive the
/// fault layer uses, so every decision is a cheap pure function.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Hashes `(seed, site, layer, address)` into a uniform `u64`.
#[inline]
fn mix(seed: u64, site: FaultSite, layer: u64, addr: [u64; 3]) -> u64 {
    let mut h = splitmix64(seed ^ 0x5851_F42D_4C95_7F2D);
    for (i, w) in [site.domain(), layer, addr[0], addr[1], addr[2]]
        .into_iter()
        .enumerate()
    {
        h = splitmix64(h ^ w.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    }
    h
}

#[inline]
fn rate_to_threshold(rate: f64) -> u64 {
    // Saturating cast: a rate of 1.0 (or more) faults every access.
    (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64
}

/// Fault rates and protection for building a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed replaying the entire fault pattern.
    pub seed: u64,
    /// Per-word bit-flip probability on neuron-buffer reads.
    pub nb_flip_rate: f64,
    /// Per-word bit-flip probability on synapse-buffer reads.
    pub sb_flip_rate: f64,
    /// Per-fetch bit-flip probability on instruction words.
    pub ib_flip_rate: f64,
    /// Probability that a PE has a stuck-at datapath fault.
    pub pe_stuck_rate: f64,
    /// Per-scanline probability of a dropped or corrupted row.
    pub scanline_rate: f64,
    /// Fraction of SRAM flips that strike two bits of the same word
    /// (the multi-bit-upset share; defeats parity, saturates SECDED).
    pub double_flip_share: f64,
    /// SRAM protection code in force.
    pub protection: SramProtection,
}

impl FaultConfig {
    /// A fault-free configuration.
    pub fn zero() -> FaultConfig {
        FaultConfig {
            seed: 0,
            nb_flip_rate: 0.0,
            sb_flip_rate: 0.0,
            ib_flip_rate: 0.0,
            pe_stuck_rate: 0.0,
            scanline_rate: 0.0,
            double_flip_share: 0.0,
            protection: SramProtection::None,
        }
    }

    /// One rate for every SRAM site (the bench sweep's knob), with a 10 %
    /// multi-bit-upset share and a matching PE/scanline rate.
    pub fn uniform(seed: u64, rate: f64, protection: SramProtection) -> FaultConfig {
        FaultConfig {
            seed,
            nb_flip_rate: rate,
            sb_flip_rate: rate,
            ib_flip_rate: rate,
            pe_stuck_rate: rate,
            scanline_rate: rate,
            double_flip_share: 0.1,
            protection,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::zero()
    }
}

/// A compiled, copyable fault plan: thresholds in hash space plus the
/// protection code. Every fault decision is a pure function of the plan
/// and the access address, so the same plan replays the same faults on
/// any run path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    nb_threshold: u64,
    sb_threshold: u64,
    ib_threshold: u64,
    pe_threshold: u64,
    scan_threshold: u64,
    double_threshold: u64,
    protection: SramProtection,
}

impl FaultPlan {
    /// Compiles a configuration into a plan.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            seed: cfg.seed,
            nb_threshold: rate_to_threshold(cfg.nb_flip_rate),
            sb_threshold: rate_to_threshold(cfg.sb_flip_rate),
            ib_threshold: rate_to_threshold(cfg.ib_flip_rate),
            pe_threshold: rate_to_threshold(cfg.pe_stuck_rate),
            scan_threshold: rate_to_threshold(cfg.scanline_rate),
            double_threshold: rate_to_threshold(cfg.double_flip_share),
            protection: cfg.protection,
        }
    }

    /// The fault-free plan (what a plain [`session`] runs under).
    ///
    /// [`session`]: https://docs.rs/shidiannao-core
    pub fn none() -> FaultPlan {
        FaultPlan::new(FaultConfig::zero())
    }

    /// The seed the plan replays from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The protection code in force.
    #[inline]
    pub fn protection(&self) -> SramProtection {
        self.protection
    }

    /// `true` when no fault of any kind can ever fire.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.nb_threshold == 0
            && self.sb_threshold == 0
            && self.ib_threshold == 0
            && self.pe_threshold == 0
            && self.scan_threshold == 0
    }

    /// `true` when an SRAM read/fetch can fault (the simulator's
    /// fast-path check).
    #[inline]
    pub fn has_sram_faults(&self) -> bool {
        self.nb_threshold != 0 || self.sb_threshold != 0 || self.ib_threshold != 0
    }

    /// `true` when the sensor stream can fault.
    #[inline]
    pub fn has_scanline_faults(&self) -> bool {
        self.scan_threshold != 0
    }

    /// Derives a sibling plan with the same rates and protection but a
    /// deterministically re-mixed seed — used by the degradation
    /// pipeline's per-(frame, region, attempt) retries.
    pub fn with_salt(self, salt: u64) -> FaultPlan {
        FaultPlan {
            seed: splitmix64(self.seed ^ splitmix64(salt ^ 0xD1B5_4A32_D192_ED03)),
            ..self
        }
    }

    fn threshold_of(&self, site: FaultSite) -> u64 {
        match site {
            FaultSite::NbIn | FaultSite::NbOut => self.nb_threshold,
            FaultSite::Sb => self.sb_threshold,
            FaultSite::Ib => self.ib_threshold,
            FaultSite::Pe => self.pe_threshold,
            FaultSite::Scanline => self.scan_threshold,
        }
    }

    /// The raw fault decision for one word access: `None` when the word
    /// is clean, otherwise the flip mask (1 or 2 bits set).
    #[inline]
    pub fn flip_mask(&self, site: FaultSite, layer: usize, addr: [u64; 3]) -> Option<u16> {
        let t = self.threshold_of(site);
        if t == 0 {
            return None;
        }
        let h = mix(self.seed, site, layer as u64, addr);
        if h >= t {
            return None;
        }
        let h2 = splitmix64(h);
        let bit1 = (h2 >> 8) % 16;
        let mut mask = 1u16 << bit1;
        if h2 < self.double_threshold {
            let bit2 = (bit1 + 1 + ((h2 >> 24) % 15)) % 16;
            mask |= 1 << bit2;
        }
        Some(mask)
    }

    /// The stuck-at fault (if any) of the PE at mesh position `(x, y)` —
    /// a per-PE manufacturing/wear fault, independent of layers.
    pub fn pe_stuck(&self, x: usize, y: usize) -> Option<PeStuck> {
        if self.pe_threshold == 0 {
            return None;
        }
        let h = mix(self.seed, FaultSite::Pe, 0, [x as u64, y as u64, 0]);
        if h >= self.pe_threshold {
            return None;
        }
        let h2 = splitmix64(h);
        let mask = 1u16 << ((h2 >> 8) % 16);
        Some(PeStuck {
            mask,
            value: if h2 & 1 == 0 { 0 } else { mask },
            target: if (h2 >> 4) & 1 == 0 {
                PeStuckTarget::Output
            } else {
                PeStuckTarget::Fifo
            },
        })
    }

    /// The scanline fault (if any) striking row `row` of frame `frame`.
    pub fn scanline_fault(&self, frame: u64, row: u64) -> Option<ScanlineFault> {
        if self.scan_threshold == 0 {
            return None;
        }
        let h = mix(self.seed, FaultSite::Scanline, 0, [frame, row, 0]);
        if h >= self.scan_threshold {
            return None;
        }
        let h2 = splitmix64(h);
        if h2 & 1 == 0 {
            Some(ScanlineFault::Dropped)
        } else {
            Some(ScanlineFault::Corrupted {
                xor: ((h2 >> 8) as u8) | 1,
                burst: h2 >> 16,
            })
        }
    }
}

/// Hash-domain separator for shard-level episode decisions, keeping them
/// independent of the word-level [`FaultSite`] domains.
const SHARD_DOMAIN: u64 = 0x5348_5244; // "SHRD"

/// What kind of whole-shard failure episode strikes an accelerator
/// instance in a simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShardEpisodeKind {
    /// The shard dies at onset: in-flight work is lost, queued work must
    /// be failed over, and the shard stays dead until the cluster
    /// respawns a warm replacement.
    Crash,
    /// The shard keeps working but every execution takes
    /// `factor_x16 / 16` times its clean cycles (thermal throttling, a
    /// degraded link, a noisy neighbour).
    Slow {
        /// Cycle-cost multiplier in sixteenths (`32` = 2x slower).
        factor_x16: u32,
    },
    /// The shard's SRAMs suffer an elevated fault-rate episode: requests
    /// dispatched during the episode run under `faults` instead of the
    /// tenant's own (usually clean) fault environment.
    SramBurst {
        /// The fault environment in force for the episode.
        faults: FaultConfig,
    },
}

impl ShardEpisodeKind {
    /// Stable lowercase label (used in reports and event logs).
    pub fn label(&self) -> &'static str {
        match self {
            ShardEpisodeKind::Crash => "crash",
            ShardEpisodeKind::Slow { .. } => "slow",
            ShardEpisodeKind::SramBurst { .. } => "sram-burst",
        }
    }
}

/// One deterministic shard failure episode on the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardEpisode {
    /// Virtual cycle the episode begins.
    pub onset: u64,
    /// Episode length in cycles (crash outages instead end at the
    /// cluster's warm respawn, which depends on detection latency).
    pub duration: u64,
    /// What happens to the shard.
    pub kind: ShardEpisodeKind,
}

impl ShardEpisode {
    /// Whether the episode covers virtual cycle `t`.
    #[inline]
    pub fn covers(&self, t: u64) -> bool {
        t >= self.onset && t < self.onset.saturating_add(self.duration)
    }
}

/// Rates and shapes for building a [`ShardFaultPlan`] — the cluster-level
/// analogue of [`FaultConfig`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardFaultConfig {
    /// Seed replaying the entire episode pattern.
    pub seed: u64,
    /// Epoch length in cycles; each `(shard, epoch)` slot draws at most
    /// one episode, so expected episodes per shard per cycle is
    /// `(crash + slow + sram_burst rates) / epoch_cycles`.
    pub epoch_cycles: u64,
    /// Per-slot probability that a crash episode begins.
    pub crash_rate: f64,
    /// Per-slot probability that a slow episode begins.
    pub slow_rate: f64,
    /// Per-slot probability that an elevated-SRAM-fault episode begins.
    pub sram_burst_rate: f64,
    /// Minimum episode duration in cycles.
    pub min_duration: u64,
    /// Maximum episode duration in cycles.
    pub max_duration: u64,
    /// Word flip rate in force during an SRAM-burst episode.
    pub burst_flip_rate: f64,
    /// SRAM protection assumed during burst episodes (detected flips
    /// abort and retry; only protection-defeating flips corrupt).
    pub burst_protection: SramProtection,
}

impl ShardFaultConfig {
    /// No shard-level failures ever.
    pub fn zero() -> ShardFaultConfig {
        ShardFaultConfig {
            seed: 0,
            epoch_cycles: 1,
            crash_rate: 0.0,
            slow_rate: 0.0,
            sram_burst_rate: 0.0,
            min_duration: 0,
            max_duration: 0,
            burst_flip_rate: 0.0,
            burst_protection: SramProtection::None,
        }
    }
}

impl Default for ShardFaultConfig {
    fn default() -> ShardFaultConfig {
        ShardFaultConfig::zero()
    }
}

/// A compiled shard-level fault plan: every episode is a pure function of
/// `(seed, shard, epoch)`, so a chaos scenario replays bit-identically
/// from one `u64` seed regardless of shard count, iteration order, or
/// physical thread count — exactly like [`FaultPlan`] at word level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardFaultPlan {
    seed: u64,
    epoch_cycles: u64,
    crash_threshold: u64,
    slow_threshold: u64,
    sram_threshold: u64,
    min_duration: u64,
    max_duration: u64,
    burst_flip_rate: f64,
    burst_protection: SramProtection,
}

impl ShardFaultPlan {
    /// Compiles a configuration into a plan.
    pub fn new(cfg: ShardFaultConfig) -> ShardFaultPlan {
        ShardFaultPlan {
            seed: cfg.seed,
            epoch_cycles: cfg.epoch_cycles.max(1),
            crash_threshold: rate_to_threshold(cfg.crash_rate),
            slow_threshold: rate_to_threshold(cfg.slow_rate),
            sram_threshold: rate_to_threshold(cfg.sram_burst_rate),
            min_duration: cfg.min_duration,
            max_duration: cfg.max_duration.max(cfg.min_duration),
            burst_flip_rate: cfg.burst_flip_rate,
            burst_protection: cfg.burst_protection,
        }
    }

    /// The episode-free plan.
    pub fn none() -> ShardFaultPlan {
        ShardFaultPlan::new(ShardFaultConfig::zero())
    }

    /// `true` when no episode of any kind can ever fire.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.crash_threshold == 0 && self.slow_threshold == 0 && self.sram_threshold == 0
    }

    /// The epoch containing virtual cycle `t`.
    #[inline]
    pub fn epoch_of(&self, t: u64) -> u64 {
        t / self.epoch_cycles
    }

    fn draw(&self, shard: u64, epoch: u64, lane: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ SHARD_DOMAIN.rotate_left(17));
        for w in [SHARD_DOMAIN, shard, epoch, lane] {
            h = splitmix64(h ^ w.wrapping_add(0x9E37_79B9_7F4A_7C15));
        }
        h
    }

    /// The episode (if any) that `shard` draws in `epoch`. At most one
    /// per slot; crash takes priority over slow over SRAM burst. Onset is
    /// jittered within the epoch, and the duration draw is uniform in
    /// `[min_duration, max_duration]`.
    pub fn episode(&self, shard: u64, epoch: u64) -> Option<ShardEpisode> {
        if self.is_zero() {
            return None;
        }
        let kind = if self.draw(shard, epoch, 0) < self.crash_threshold {
            ShardEpisodeKind::Crash
        } else if self.draw(shard, epoch, 1) < self.slow_threshold {
            let factor_x16 = 32 << (self.draw(shard, epoch, 4) % 2); // 2x or 4x
            ShardEpisodeKind::Slow { factor_x16 }
        } else if self.draw(shard, epoch, 2) < self.sram_threshold {
            ShardEpisodeKind::SramBurst {
                faults: FaultConfig::uniform(
                    self.draw(shard, epoch, 5),
                    self.burst_flip_rate,
                    self.burst_protection,
                ),
            }
        } else {
            return None;
        };
        let onset = epoch
            .saturating_mul(self.epoch_cycles)
            .saturating_add(self.draw(shard, epoch, 3) % self.epoch_cycles);
        let span = self.max_duration - self.min_duration;
        let duration = self
            .min_duration
            .saturating_add(if span == 0 {
                0
            } else {
                self.draw(shard, epoch, 6) % (span + 1)
            })
            .max(1);
        Some(ShardEpisode {
            onset,
            duration,
            kind,
        })
    }

    /// How many past epochs an episode can reach into the present from.
    fn lookback_epochs(&self) -> u64 {
        self.max_duration / self.epoch_cycles + 1
    }

    /// The non-crash episode covering cycle `t` on `shard`, preferring
    /// the most recent onset when several overlap. Crash episodes are
    /// excluded because a crash outage ends at the cluster's respawn, not
    /// at the episode's nominal duration.
    pub fn degradation_at(&self, shard: u64, t: u64) -> Option<ShardEpisode> {
        if self.is_zero() {
            return None;
        }
        let epoch = self.epoch_of(t);
        let first = epoch.saturating_sub(self.lookback_epochs());
        (first..=epoch)
            .rev()
            .filter_map(|e| self.episode(shard, e))
            .find(|ep| ep.covers(t) && !matches!(ep.kind, ShardEpisodeKind::Crash))
    }

    /// The earliest crash onset at or after cycle `from` on `shard`,
    /// scanning at most `max_epochs` epochs ahead (`None` when no crash
    /// occurs within the scan horizon).
    pub fn next_crash_onset(&self, shard: u64, from: u64, max_epochs: u64) -> Option<u64> {
        if self.crash_threshold == 0 {
            return None;
        }
        let first = self.epoch_of(from);
        (first..first.saturating_add(max_epochs))
            .filter_map(|e| self.episode(shard, e))
            .find(|ep| matches!(ep.kind, ShardEpisodeKind::Crash) && ep.onset >= from)
            .map(|ep| ep.onset)
    }
}

/// How an executor responds to detected faults and deadline pressure:
/// bounded retries under salted replans, then skip, all under an optional
/// cycle budget.
///
/// Shared vocabulary between the streaming pipeline's
/// `process_frame_degraded` (per-frame budget) and the serve crate's
/// scheduler (per-request deadline slack as the budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Attempts after the first before a faulted unit of work is dropped.
    pub max_retries: u32,
    /// Cycle budget (the watchdog): once spent, remaining work is dropped
    /// unrun. `None` disables the watchdog.
    pub frame_cycle_budget: Option<u64>,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            max_retries: 2,
            frame_cycle_budget: None,
        }
    }
}

/// A stuck-at fault in one PE's datapath: the masked bit always reads as
/// `value`'s bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeStuck {
    /// The stuck bit (exactly one bit set).
    pub mask: u16,
    /// The value the stuck bit reads as (`0` or `mask`).
    pub value: u16,
    /// Which datapath the fault sits on.
    pub target: PeStuckTarget,
}

/// Where in the PE a stuck-at fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeStuckTarget {
    /// The accumulator/comparator read-out path (every result the PE
    /// produces).
    Output,
    /// The inter-PE FIFO read port (every value a neighbour pops).
    Fifo,
}

impl PeStuck {
    /// Applies the stuck bit to a 16-bit datapath value.
    #[inline]
    pub fn apply_bits(&self, bits: i16) -> i16 {
        ((bits as u16 & !self.mask) | self.value) as i16
    }

    /// Applies the stuck bit to a fixed-point value.
    #[inline]
    pub fn apply(&self, v: Fx) -> Fx {
        Fx::from_bits(self.apply_bits(v.to_bits()))
    }
}

/// A fault on the sensor's scanline stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanlineFault {
    /// The row never arrived; the row buffer holds the previous row.
    Dropped,
    /// A burst of pixels in the row is bit-corrupted.
    Corrupted {
        /// XOR pattern applied to each corrupted pixel (never zero).
        xor: u8,
        /// Seed the sensor scales into the burst's start and length.
        burst: u64,
    },
}

/// A detected-uncorrectable SRAM error: the protection code saw the flip
/// but could not (or does not) correct it, so the run aborts instead of
/// silently corrupting data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectedFault {
    /// The memory the fault struck.
    pub site: FaultSite,
    /// Layer epoch (0 = the load phase / first layer's reads).
    pub layer: usize,
    /// Site-specific word address.
    pub addr: [u64; 3],
    /// `true` for a double-bit upset (what saturates SECDED).
    pub double_bit: bool,
    /// The protection code that raised the detection.
    pub protection: SramProtection,
}

impl fmt::Display for DetectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detected an uncorrectable {}-bit fault in {} (layer {}, word {:?})",
            self.protection,
            if self.double_bit { "double" } else { "single" },
            self.site,
            self.layer,
            self.addr
        )
    }
}

impl std::error::Error for DetectedFault {}

/// Counters for what the fault layer did during one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faulted neuron-buffer word reads (NBin modes + staged NBout).
    pub nb_faults: u64,
    /// Faulted synapse-buffer word reads.
    pub sb_faults: u64,
    /// Faulted instruction fetches.
    pub ib_faults: u64,
    /// Flips that reached the datapath unnoticed (silent corruption).
    pub silent: u64,
    /// Flips corrected in place (SECDED single-bit).
    pub corrected: u64,
    /// Flips detected but not corrected (aborts the run).
    pub detected: u64,
    /// Double-bit upsets among the injected faults.
    pub double_bit: u64,
}

impl FaultStats {
    /// Total faulted word accesses.
    pub fn total_faults(&self) -> u64 {
        self.nb_faults + self.sb_faults + self.ib_faults
    }

    /// Element-wise accumulation.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.nb_faults += other.nb_faults;
        self.sb_faults += other.sb_faults;
        self.ib_faults += other.ib_faults;
        self.silent += other.silent;
        self.corrected += other.corrected;
        self.detected += other.detected;
        self.double_bit += other.double_bit;
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults (nb {}, sb {}, ib {}): {} silent, {} corrected, {} detected",
            self.total_faults(),
            self.nb_faults,
            self.sb_faults,
            self.ib_faults,
            self.silent,
            self.corrected,
            self.detected
        )
    }
}

/// A plan plus its running counters — the object the simulator threads
/// through an execution.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultState {
    plan: FaultPlan,
    stats: FaultStats,
}

impl FaultState {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            stats: FaultStats::default(),
        }
    }

    /// A fault-free state.
    pub fn none() -> FaultState {
        FaultState::new(FaultPlan::none())
    }

    /// The plan in force.
    #[inline]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// `true` when SRAM reads need fault filtering (the hot-path gate:
    /// a zero-rate plan must add no per-read work).
    #[inline]
    pub fn active(&self) -> bool {
        self.plan.has_sram_faults()
    }

    /// Counters since the last [`FaultState::reset_stats`].
    #[inline]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Zeroes the counters (each run starts fresh).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Folds a precomputed batch of fault outcomes into the running
    /// counters — the schedule-replay path resolves a whole layer's worth
    /// of address-pure fault decisions ahead of time (decisions are pure
    /// functions of `(seed, site, layer, address)`, so order does not
    /// matter) and accounts them in one call instead of per access.
    pub fn absorb_stats(&mut self, delta: &FaultStats) {
        self.stats.absorb(delta);
    }

    fn count_site(&mut self, site: FaultSite) {
        match site {
            FaultSite::NbIn | FaultSite::NbOut => self.stats.nb_faults += 1,
            FaultSite::Sb => self.stats.sb_faults += 1,
            FaultSite::Ib => self.stats.ib_faults += 1,
            FaultSite::Pe | FaultSite::Scanline => {}
        }
    }

    fn resolve(
        &mut self,
        site: FaultSite,
        layer: usize,
        addr: [u64; 3],
        mask: u16,
    ) -> Result<u16, DetectedFault> {
        self.count_site(site);
        let double = mask.count_ones() > 1;
        if double {
            self.stats.double_bit += 1;
        }
        let detected = DetectedFault {
            site,
            layer,
            addr,
            double_bit: double,
            protection: self.plan.protection,
        };
        match self.plan.protection {
            SramProtection::None => {
                self.stats.silent += 1;
                Ok(mask)
            }
            // Parity detects odd flip counts; an even (double) flip
            // preserves parity and slips through silently.
            SramProtection::Parity => {
                if double {
                    self.stats.silent += 1;
                    Ok(mask)
                } else {
                    self.stats.detected += 1;
                    Err(detected)
                }
            }
            // SECDED corrects singles, detects-but-cannot-correct
            // doubles.
            SramProtection::Secded => {
                if double {
                    self.stats.detected += 1;
                    Err(detected)
                } else {
                    self.stats.corrected += 1;
                    Ok(0)
                }
            }
        }
    }

    /// Filters one 16-bit data word read from an SRAM: returns the value
    /// as the datapath sees it, or the detection that aborts the run.
    ///
    /// # Errors
    ///
    /// Returns [`DetectedFault`] when the protection code detects an
    /// uncorrectable flip.
    #[inline]
    pub fn filter_value(
        &mut self,
        site: FaultSite,
        layer: usize,
        addr: [u64; 3],
        v: Fx,
    ) -> Result<Fx, DetectedFault> {
        match self.plan.flip_mask(site, layer, addr) {
            None => Ok(v),
            Some(mask) => {
                let applied = self.resolve(site, layer, addr, mask)?;
                Ok(Fx::from_bits(v.to_bits() ^ applied as i16))
            }
        }
    }

    /// Filters one value-free word access (instruction fetches): the
    /// datapath consequence of a silent instruction flip is not modeled —
    /// it is counted, and under protection it detects/corrects exactly
    /// like a data word.
    ///
    /// # Errors
    ///
    /// Returns [`DetectedFault`] when the protection code detects an
    /// uncorrectable flip.
    #[inline]
    pub fn filter_word(
        &mut self,
        site: FaultSite,
        layer: usize,
        addr: [u64; 3],
    ) -> Result<(), DetectedFault> {
        match self.plan.flip_mask(site, layer, addr) {
            None => Ok(()),
            Some(mask) => {
                let _ = self.resolve(site, layer, addr, mask)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64, protection: SramProtection) -> FaultPlan {
        FaultPlan::new(FaultConfig::uniform(42, rate, protection))
    }

    #[test]
    fn zero_plan_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_zero());
        assert!(!p.has_sram_faults());
        assert!(!p.has_scanline_faults());
        for a in 0..1000u64 {
            assert_eq!(p.flip_mask(FaultSite::NbIn, 0, [a, 1, 2]), None);
        }
        assert_eq!(p.pe_stuck(3, 3), None);
        assert_eq!(p.scanline_fault(0, 7), None);
    }

    #[test]
    fn decisions_are_pure_and_seeded() {
        let a = plan(0.01, SramProtection::None);
        let b = plan(0.01, SramProtection::None);
        let c = FaultPlan::new(FaultConfig::uniform(43, 0.01, SramProtection::None));
        let mut diverged = false;
        for addr in 0..10_000u64 {
            let m1 = a.flip_mask(FaultSite::Sb, 2, [addr, 0, 0]);
            assert_eq!(m1, b.flip_mask(FaultSite::Sb, 2, [addr, 0, 0]));
            if m1 != c.flip_mask(FaultSite::Sb, 2, [addr, 0, 0]) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must produce different faults");
    }

    #[test]
    fn rate_controls_fault_frequency() {
        let p = plan(0.01, SramProtection::None);
        let hits = (0..100_000u64)
            .filter(|&a| p.flip_mask(FaultSite::NbIn, 0, [a, 0, 0]).is_some())
            .count();
        // 1 % ± generous slack.
        assert!((500..2000).contains(&hits), "{hits}");
    }

    #[test]
    fn double_share_produces_two_bit_masks() {
        let p = plan(0.05, SramProtection::None);
        let mut singles = 0;
        let mut doubles = 0;
        for a in 0..100_000u64 {
            if let Some(m) = p.flip_mask(FaultSite::NbIn, 1, [a, 0, 0]) {
                match m.count_ones() {
                    1 => singles += 1,
                    2 => doubles += 1,
                    n => panic!("mask with {n} bits"),
                }
            }
        }
        assert!(singles > 0 && doubles > 0);
        // ~10 % of faults are double-bit.
        let share = doubles as f64 / (singles + doubles) as f64;
        assert!((0.05..0.2).contains(&share), "{share}");
    }

    #[test]
    fn protection_semantics() {
        // Find a single-bit and a double-bit fault address.
        let p_none = plan(0.05, SramProtection::None);
        let single = (0..100_000u64)
            .find(|&a| {
                p_none
                    .flip_mask(FaultSite::NbIn, 0, [a, 0, 0])
                    .is_some_and(|m| m.count_ones() == 1)
            })
            .expect("single-bit fault exists");
        let double = (0..100_000u64)
            .find(|&a| {
                p_none
                    .flip_mask(FaultSite::NbIn, 0, [a, 0, 0])
                    .is_some_and(|m| m.count_ones() == 2)
            })
            .expect("double-bit fault exists");
        let v = Fx::from_f32(1.25);

        // None: both corrupt silently.
        let mut s = FaultState::new(p_none);
        assert_ne!(s.filter_value(FaultSite::NbIn, 0, [single, 0, 0], v), Ok(v));
        assert_ne!(s.filter_value(FaultSite::NbIn, 0, [double, 0, 0], v), Ok(v));
        assert_eq!(s.stats().silent, 2);
        assert_eq!(s.stats().double_bit, 1);

        // Parity: single detected, double slips through.
        let mut s = FaultState::new(plan(0.05, SramProtection::Parity));
        assert!(s
            .filter_value(FaultSite::NbIn, 0, [single, 0, 0], v)
            .is_err());
        let d = s.filter_value(FaultSite::NbIn, 0, [double, 0, 0], v);
        assert!(d.is_ok() && d != Ok(v));
        assert_eq!((s.stats().detected, s.stats().silent), (1, 1));

        // SECDED: single corrected, double detected.
        let mut s = FaultState::new(plan(0.05, SramProtection::Secded));
        assert_eq!(s.filter_value(FaultSite::NbIn, 0, [single, 0, 0], v), Ok(v));
        let err = s
            .filter_value(FaultSite::NbIn, 0, [double, 0, 0], v)
            .expect_err("double-bit detected");
        assert!(err.double_bit);
        assert!(err.to_string().contains("double-bit"));
        assert_eq!((s.stats().corrected, s.stats().detected), (1, 1));
    }

    #[test]
    fn sites_are_domain_separated() {
        let p = plan(0.01, SramProtection::None);
        let mut differs = false;
        for a in 0..10_000u64 {
            if p.flip_mask(FaultSite::NbIn, 0, [a, 0, 0])
                != p.flip_mask(FaultSite::Sb, 0, [a, 0, 0])
            {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn pe_stuck_is_per_position_and_applies_bits() {
        let p = plan(0.2, SramProtection::None);
        let stuck = (0..64)
            .filter_map(|i| p.pe_stuck(i % 8, i / 8))
            .collect::<Vec<_>>();
        assert!(!stuck.is_empty(), "20 % of 64 PEs should include faults");
        for f in &stuck {
            assert_eq!(f.mask.count_ones(), 1);
            assert!(f.value == 0 || f.value == f.mask);
            let v = Fx::from_f32(-0.75);
            let out = f.apply(v);
            assert_eq!(out.to_bits() as u16 & f.mask, f.value);
            assert_eq!(out.to_bits() as u16 & !f.mask, v.to_bits() as u16 & !f.mask);
        }
        assert_eq!(p.pe_stuck(0, 0), p.pe_stuck(0, 0));
    }

    #[test]
    fn scanline_faults_fire_and_replay() {
        let p = plan(0.05, SramProtection::None);
        let faults: Vec<_> = (0..2000u64)
            .filter_map(|row| p.scanline_fault(3, row).map(|f| (row, f)))
            .collect();
        assert!(!faults.is_empty());
        assert!(faults
            .iter()
            .any(|(_, f)| matches!(f, ScanlineFault::Dropped)));
        assert!(faults
            .iter()
            .any(|(_, f)| matches!(f, ScanlineFault::Corrupted { .. })));
        for (row, f) in &faults {
            assert_eq!(p.scanline_fault(3, *row), Some(*f));
            if let ScanlineFault::Corrupted { xor, .. } = f {
                assert_ne!(*xor, 0, "corruption must change the pixel");
            }
        }
    }

    #[test]
    fn with_salt_changes_the_pattern_deterministically() {
        let p = plan(0.01, SramProtection::None);
        let salted = p.with_salt(7);
        assert_eq!(salted, p.with_salt(7));
        assert_ne!(salted.seed(), p.seed());
        assert_eq!(p.with_salt(8).protection(), p.protection());
    }

    #[test]
    fn protection_overheads() {
        assert_eq!(SramProtection::None.storage_overhead(), 1.0);
        assert_eq!(SramProtection::Parity.storage_overhead(), 17.0 / 16.0);
        assert_eq!(SramProtection::Secded.storage_overhead(), 22.0 / 16.0);
        assert!(SramProtection::Parity.logic_overhead() > 1.0);
        assert!(SramProtection::Secded.logic_overhead() > SramProtection::Parity.logic_overhead());
        assert_eq!(SramProtection::Secded.label(), "secded");
        assert_eq!(format!("{}", SramProtection::Parity), "parity");
    }

    #[test]
    fn stats_absorb_and_display() {
        let mut a = FaultStats {
            nb_faults: 1,
            sb_faults: 2,
            ib_faults: 3,
            silent: 4,
            corrected: 5,
            detected: 6,
            double_bit: 7,
        };
        a.absorb(&a.clone());
        assert_eq!(a.total_faults(), 12);
        assert_eq!(a.silent, 8);
        assert!(a.to_string().contains("12 faults"));
    }

    fn chaos_plan(seed: u64) -> ShardFaultPlan {
        ShardFaultPlan::new(ShardFaultConfig {
            seed,
            epoch_cycles: 10_000,
            crash_rate: 0.1,
            slow_rate: 0.2,
            sram_burst_rate: 0.2,
            min_duration: 5_000,
            max_duration: 20_000,
            burst_flip_rate: 1e-4,
            burst_protection: SramProtection::Parity,
        })
    }

    #[test]
    fn zero_shard_plan_never_draws_episodes() {
        let p = ShardFaultPlan::none();
        assert!(p.is_zero());
        for (s, e) in (0..4u64).flat_map(|s| (0..100u64).map(move |e| (s, e))) {
            assert_eq!(p.episode(s, e), None);
        }
        assert_eq!(p.degradation_at(0, 12_345), None);
        assert_eq!(p.next_crash_onset(0, 0, 1_000), None);
    }

    #[test]
    fn shard_episodes_are_pure_seeded_and_shard_separated() {
        let a = chaos_plan(7);
        let b = chaos_plan(7);
        let c = chaos_plan(8);
        let mut seed_diverged = false;
        let mut shard_diverged = false;
        for e in 0..200u64 {
            assert_eq!(a.episode(0, e), b.episode(0, e));
            if a.episode(0, e) != c.episode(0, e) {
                seed_diverged = true;
            }
            if a.episode(0, e) != a.episode(1, e) {
                shard_diverged = true;
            }
        }
        assert!(seed_diverged, "different seeds must differ");
        assert!(shard_diverged, "different shards must differ");
    }

    #[test]
    fn shard_episodes_cover_all_three_kinds() {
        let p = chaos_plan(3);
        let (mut crash, mut slow, mut burst) = (0u32, 0u32, 0u32);
        for s in 0..4u64 {
            for e in 0..100u64 {
                match p.episode(s, e).map(|ep| ep.kind) {
                    Some(ShardEpisodeKind::Crash) => crash += 1,
                    Some(ShardEpisodeKind::Slow { factor_x16 }) => {
                        assert!(factor_x16 == 32 || factor_x16 == 64);
                        slow += 1;
                    }
                    Some(ShardEpisodeKind::SramBurst { faults }) => {
                        assert_eq!(faults.protection, SramProtection::Parity);
                        assert!(faults.nb_flip_rate > 0.0);
                        burst += 1;
                    }
                    None => {}
                }
            }
        }
        assert!(crash > 0 && slow > 0 && burst > 0, "{crash}/{slow}/{burst}");
    }

    #[test]
    fn shard_episode_windows_and_queries_agree() {
        let p = chaos_plan(11);
        for s in 0..3u64 {
            for e in 0..100u64 {
                let Some(ep) = p.episode(s, e) else { continue };
                assert!(ep.onset >= e * 10_000 && ep.onset < (e + 1) * 10_000);
                assert!((5_000..=20_000).contains(&ep.duration));
                assert!(ep.covers(ep.onset));
                assert!(!ep.covers(ep.onset + ep.duration));
                if !matches!(ep.kind, ShardEpisodeKind::Crash) {
                    // The mid-episode degradation query finds a covering
                    // episode (possibly a more recent overlapping one).
                    let mid = ep.onset + ep.duration / 2;
                    let found = p.degradation_at(s, mid).expect("episode covers mid");
                    assert!(found.covers(mid));
                }
            }
        }
    }

    #[test]
    fn next_crash_onset_is_monotone_and_consistent() {
        let p = chaos_plan(5);
        let first = p.next_crash_onset(0, 0, 500).expect("crashes exist");
        let ep = p.episode(0, p.epoch_of(first)).expect("episode at onset");
        assert_eq!(ep.kind, ShardEpisodeKind::Crash);
        assert_eq!(ep.onset, first);
        let after = p
            .next_crash_onset(0, first + 1, 500)
            .expect("more crashes in horizon");
        assert!(after > first);
        // Beyond the horizon: bounded scan returns None rather than
        // spinning forever.
        assert_eq!(p.next_crash_onset(0, u64::MAX - 1, 4), None);
    }

    #[test]
    fn filter_word_counts_ib_fetches() {
        let mut s = FaultState::new(plan(0.05, SramProtection::None));
        let mut faulted = 0;
        for f in 0..10_000u64 {
            if s.filter_word(FaultSite::Ib, 1, [f, 0, 0]).is_err() {
                unreachable!("unprotected words never detect");
            }
            faulted = s.stats().ib_faults;
        }
        assert!(faulted > 0);
        assert_eq!(s.stats().total_faults(), s.stats().ib_faults);
        s.reset_stats();
        assert_eq!(s.stats().total_faults(), 0);
    }
}
