//! The multi-tenant inference service: session pooling, the virtual-clock
//! event loop, and deterministic parallel batch execution.
//!
//! # Determinism model
//!
//! The service is a discrete-event simulation over a cycle-granular
//! virtual clock. Every scheduling decision — admission order, tenant
//! pick, EDF pick, drop, completion time — is a pure function of the
//! scenario, because modelled inference cycles depend only on network
//! topology (not input data) and all randomness is seeded splitmix64.
//!
//! Physical parallelism never touches that decision sequence: the event
//! loop picks a *batch* of requests (one per free virtual worker at the
//! current virtual time), executes the batch's pure inference functions
//! on however many OS threads are configured, then folds the results
//! back in batch order. Running with 1 thread or 16 produces the same
//! [`ServiceReport`], byte for byte — which is what lets the benchmark
//! harness gate on report equality across worker counts.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use shidiannao_core::{Accelerator, AcceleratorConfig, PreparedNetwork, RunError, Session};
use shidiannao_faults::{FaultPlan, FaultStats};
use shidiannao_sensor::StreamError;

use crate::loadgen::{TenantGen, TenantSpec, Traffic};
use crate::queue::{BoundedQueue, Request};
use crate::scheduler::FairScheduler;
use crate::splitmix64;
use crate::stats::{hash_output, HistogramSummary, RequestSample, TenantStats};

/// Service-level configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Accelerator model shared by all tenants.
    pub accel: AcceleratorConfig,
    /// Modelled worker pool size — a *scenario* parameter that shapes
    /// the schedule (more virtual workers = more concurrent service).
    pub virtual_workers: usize,
    /// OS threads used to execute a dispatched batch; `0` means the
    /// machine's available parallelism. Changing this never changes the
    /// report — it only changes wall-clock speed.
    pub physical_threads: usize,
    /// Permutes the processing order of same-cycle arrivals across
    /// tenants (`0` = tenant-index order). Outcomes are invariant to
    /// this salt because queues are per-tenant; the property tests turn
    /// it to prove exactly that.
    pub admission_salt: u64,
    /// Completed requests retained per tenant for bit-identity
    /// certification against direct `Session::infer`.
    pub samples_per_tenant: usize,
    /// Maximum inferences served by one schedule replay (`1` disables
    /// batching). When a worker picks a request from a *fault-free*
    /// tenant, up to `max_batch - 1` more queued requests of the same
    /// tenant ride along as follower lanes of a single
    /// `Session::infer_batch` call: the leader pays the full calibrated
    /// clean cycles, each follower only the marginal cycles (clean minus
    /// the Load phase — its input streams into the double-buffered NBin
    /// while the previous lane computes). Purely a scenario parameter;
    /// reports stay byte-identical across `physical_threads`.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            accel: AcceleratorConfig::paper(),
            virtual_workers: 2,
            physical_threads: 0,
            admission_salt: 0,
            samples_per_tenant: 8,
            max_batch: 1,
        }
    }
}

/// A failure configuring or running the service.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// No tenants were configured.
    NoTenants,
    /// `virtual_workers` was zero.
    NoWorkers,
    /// A tenant specification failed validation.
    Spec {
        /// Offending tenant.
        tenant: String,
        /// What was wrong.
        reason: String,
    },
    /// Preparing a tenant's network for the accelerator failed.
    Prepare {
        /// Offending tenant.
        tenant: String,
        /// Underlying accelerator error.
        error: RunError,
    },
    /// A request failed with an error other than a detected fault
    /// (detected faults are handled by retry/degrade, never surfaced).
    Execute {
        /// Offending tenant.
        tenant: String,
        /// Underlying accelerator error.
        error: RunError,
    },
    /// Building a streaming input failed.
    Input {
        /// Offending tenant.
        tenant: String,
        /// Underlying sensor error.
        error: StreamError,
    },
    /// No healthy shard in the cluster could accept a request (all
    /// shards down, draining, or full).
    ShardUnavailable {
        /// Tenant whose request could not be placed.
        tenant: String,
    },
    /// A request exhausted its failover retry budget before any shard
    /// served it.
    RetryBudgetExhausted {
        /// Owning tenant.
        tenant: String,
        /// Per-tenant request sequence number.
        seq: u64,
        /// The budget that was exhausted (failover rounds).
        budget: u32,
    },
    /// A draining shard failed to empty its queues before the drain
    /// deadline; the remaining requests were forcibly migrated.
    DrainTimeout {
        /// The shard that timed out.
        shard: String,
        /// Requests still queued at the deadline (all migrated).
        pending: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoTenants => write!(f, "service has no tenants"),
            ServeError::NoWorkers => write!(f, "virtual worker pool must be non-empty"),
            ServeError::Spec { tenant, reason } => {
                write!(f, "tenant {tenant}: invalid spec: {reason}")
            }
            ServeError::Prepare { tenant, error } => {
                write!(f, "tenant {tenant}: prepare failed: {error}")
            }
            ServeError::Execute { tenant, error } => {
                write!(f, "tenant {tenant}: execution failed: {error}")
            }
            ServeError::Input { tenant, error } => {
                write!(f, "tenant {tenant}: input failed: {error}")
            }
            ServeError::ShardUnavailable { tenant } => {
                write!(f, "tenant {tenant}: no healthy shard available")
            }
            ServeError::RetryBudgetExhausted {
                tenant,
                seq,
                budget,
            } => {
                write!(
                    f,
                    "tenant {tenant}: request {seq} exhausted its retry budget of {budget} failovers"
                )
            }
            ServeError::DrainTimeout { shard, pending } => {
                write!(
                    f,
                    "shard {shard}: drain deadline expired with {pending} requests queued"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Stable salt for request attempt `attempt` of request `seq` of tenant
/// `tenant` — the contract that lets an auditor replay any scheduled
/// execution with a direct `PreparedNetwork::session_with_faults` +
/// `Session::infer` and get bit-identical output.
pub fn request_salt(tenant: usize, seq: u64, attempt: u32) -> u64 {
    splitmix64(((tenant as u64) << 48) ^ (seq << 8) ^ u64::from(attempt))
}

/// Per-tenant slice of a [`ServiceReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct TenantReport {
    /// Tenant name from the spec.
    pub name: String,
    /// Fair-share weight.
    pub weight: u32,
    /// Calibrated clean cycles per inference (input-independent).
    pub clean_cycles: u64,
    /// All SLO counters, the latency histogram, and retained samples.
    pub stats: TenantStats,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
}

impl TenantReport {
    /// Latency percentile summary.
    pub fn latency(&self) -> HistogramSummary {
        self.stats.latency.summary()
    }

    /// Completed requests (ok + degraded).
    pub fn completed(&self) -> u64 {
        self.stats.completed()
    }
}

/// What one service run produced. Two runs of the same scenario compare
/// equal regardless of physical thread count — `PartialEq` is the
/// determinism contract the harness and property tests gate on.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Virtual worker pool size the scenario ran with.
    pub virtual_workers: usize,
    /// Virtual cycle at which the last request resolved.
    pub end_cycles: u64,
    /// `end_cycles` at the modelled clock frequency.
    pub elapsed_seconds: f64,
    /// Per-tenant results, in spec order.
    pub tenants: Vec<TenantReport>,
}

impl ServiceReport {
    /// Whether every tenant's ledger balances: issued = ok + degraded +
    /// dropped (faulty/deadline) + rejected.
    pub fn accounting_consistent(&self) -> bool {
        self.tenants.iter().all(|t| t.stats.accounting_consistent())
    }

    /// Sum of a counter over tenants, e.g. `report.total(|s| s.rejected)`.
    pub fn total(&self, f: impl Fn(&TenantStats) -> u64) -> u64 {
        self.tenants.iter().map(|t| f(&t.stats)).sum()
    }
}

/// The multi-tenant inference service. See the crate docs for the model.
#[derive(Clone, Debug)]
pub struct InferenceService {
    config: ServeConfig,
    tenants: Vec<TenantSpec>,
}

/// One dispatched request travelling to a physical execution slot. When
/// `followers` is non-empty the job is a batched replay: the leader
/// (`seq`) plus follower sequence numbers execute as the lanes of one
/// `Session::infer_batch` call.
///
/// Shared with the cluster layer, which dispatches the same job shape
/// per shard — under the shard's *effective* fault plan (a burst episode
/// overrides the tenant's environment) and with a failover-round salt
/// base so re-executions draw fresh fault patterns.
pub(crate) struct Job<'p> {
    pub(crate) tenant: usize,
    pub(crate) seq: u64,
    pub(crate) slack: u64,
    pub(crate) followers: Vec<u64>,
    /// Base fault plan for this execution (before per-attempt salting).
    pub(crate) plan: FaultPlan,
    /// First salted-attempt index: `round × (max_retries + 1)` for a
    /// request on its `round`-th failover, so a re-executed request never
    /// replays the fault pattern that already failed it.
    pub(crate) attempt_base: u32,
    pub(crate) session: Session<'p>,
}

/// How a single execution resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Clean on the first attempt.
    Ok,
    /// Completed after ≥ 1 salted retry.
    Degraded,
    /// Retries exhausted with faults still detected.
    DroppedFaulty,
    /// Deadline slack consumed by wasted attempts; gave up.
    DroppedBudget,
}

/// The execution result folded back into the event loop.
pub(crate) struct Exec {
    pub(crate) outcome: Outcome,
    /// Worker cycles consumed by the leader, including aborted attempts.
    /// Follower lanes are charged separately at their marginal cost.
    pub(crate) cycles: u64,
    /// Absolute index of the final attempt (`attempt_base` = no retries).
    pub(crate) retries: u32,
    pub(crate) output_hash: u64,
    pub(crate) fault: FaultStats,
    /// Output hashes of batched follower lanes, in lane order (empty for
    /// unbatched jobs).
    pub(crate) follower_hashes: Vec<u64>,
}

impl InferenceService {
    /// Validates the scenario and builds the service.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when the scenario is structurally
    /// invalid (no tenants/workers, zero-capacity queue, streaming frame
    /// smaller than the network input, …).
    pub fn new(
        config: ServeConfig,
        tenants: Vec<TenantSpec>,
    ) -> Result<InferenceService, ServeError> {
        if tenants.is_empty() {
            return Err(ServeError::NoTenants);
        }
        if config.virtual_workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        for spec in &tenants {
            let fail = |reason: &str| ServeError::Spec {
                tenant: spec.name.clone(),
                reason: reason.to_string(),
            };
            if spec.queue_capacity == 0 {
                return Err(fail("queue capacity must be at least 1"));
            }
            if let Traffic::Closed { clients, .. } = spec.traffic {
                if clients == 0 {
                    return Err(fail("closed-loop traffic needs at least one client"));
                }
            }
            if let Some((frame, stride)) = spec.source.stream_geometry() {
                let dims = spec.network.input_dims();
                if frame.0 < dims.0 || frame.1 < dims.1 {
                    return Err(fail("streaming frame smaller than network input"));
                }
                if stride.0 == 0 || stride.1 == 0 {
                    return Err(fail("streaming stride must be non-zero"));
                }
            }
        }
        Ok(InferenceService { config, tenants })
    }

    /// The tenant specifications, in report order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the scenario to completion and reports.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when a network cannot be prepared or a
    /// request fails with a non-fault accelerator error.
    pub fn run(&self) -> Result<ServiceReport, ServeError> {
        let accel = Accelerator::new(self.config.accel.clone());
        let mut prepared = Vec::with_capacity(self.tenants.len());
        for spec in &self.tenants {
            prepared.push(
                accel
                    .prepare(&spec.network)
                    .map_err(|error| ServeError::Prepare {
                        tenant: spec.name.clone(),
                        error,
                    })?,
            );
        }

        // Calibrate per-tenant clean cycles (input-independent): the
        // fairness charge and the deadline estimator both need the cost
        // before the first real request runs. The marginal cost of a
        // batched follower lane is the clean cycles minus the Load phase
        // (stats always report Load first): a follower's input streams
        // into the double-buffered NBin while the preceding lane
        // computes, so only its compute cycles extend the replay.
        let mut clean_cycles = Vec::with_capacity(self.tenants.len());
        let mut marginal_cycles = Vec::with_capacity(self.tenants.len());
        for (spec, prep) in self.tenants.iter().zip(&prepared) {
            let mut session = prep.session();
            let inference = session
                .infer(&spec.network.random_input(0))
                .map_err(|error| ServeError::Execute {
                    tenant: spec.name.clone(),
                    error,
                })?;
            let clean = inference.stats().cycles();
            let load = inference.stats().layers().first().map_or(0, |l| l.cycles);
            clean_cycles.push(clean);
            marginal_cycles.push(clean - load);
        }

        self.event_loop(&prepared, &clean_cycles, &marginal_cycles)
    }

    /// The discrete-event loop over the virtual clock.
    fn event_loop(
        &self,
        prepared: &[PreparedNetwork],
        clean_cycles: &[u64],
        marginal_cycles: &[u64],
    ) -> Result<ServiceReport, ServeError> {
        let n = self.tenants.len();
        let weights: Vec<u32> = self.tenants.iter().map(|t| t.weight).collect();
        let mut scheduler = FairScheduler::new(&weights, clean_cycles);
        let mut queues: Vec<BoundedQueue> = self
            .tenants
            .iter()
            .map(|t| BoundedQueue::new(t.queue_capacity))
            .collect();
        let mut gens: Vec<TenantGen> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| TenantGen::new(t, spec.traffic))
            .collect();
        let mut stats: Vec<TenantStats> = vec![TenantStats::default(); n];
        let mut pools: Vec<Vec<Session<'_>>> = (0..n).map(|_| Vec::new()).collect();
        let mut worker_free: Vec<u64> = vec![0; self.config.virtual_workers];
        let threads = if self.config.physical_threads != 0 {
            self.config.physical_threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        };

        let permkey = |t: usize| {
            if self.config.admission_salt == 0 {
                t as u64
            } else {
                splitmix64(self.config.admission_salt ^ (t as u64))
            }
        };

        let mut now: u64 = 0;
        let mut end_cycles: u64 = 0;
        loop {
            // Phase 1 — admit every arrival due at or before `now`.
            // Rejected closed-loop callers may immediately re-issue at
            // the same cycle, so drain until quiescent.
            loop {
                let mut due: Vec<(u64, u64, usize, u64)> = Vec::new();
                for (t, gen) in gens.iter_mut().enumerate() {
                    while let Some((at, _)) = gen.peek() {
                        if at > now {
                            break;
                        }
                        if let Some((at, seq)) = gen.pop() {
                            stats[t].issued += 1;
                            due.push((at, permkey(t), t, seq));
                        }
                    }
                }
                if due.is_empty() {
                    break;
                }
                due.sort_unstable();
                for (at, _, t, seq) in due {
                    let request = Request {
                        tenant: t,
                        seq,
                        arrival: at,
                        deadline: at.saturating_add(self.tenants[t].deadline_cycles),
                    };
                    match queues[t].admit(request) {
                        Ok(depth) => {
                            stats[t].depth_sum += depth as u64;
                            stats[t].depth_samples += 1;
                            stats[t].depth_max = stats[t].depth_max.max(depth);
                        }
                        Err(_full) => {
                            stats[t].rejected += 1;
                            end_cycles = end_cycles.max(at);
                            gens[t].on_resolved(at);
                        }
                    }
                }
            }

            // Phase 2 — fill free virtual workers, dropping requests
            // that expired while queued. A leader picked from a
            // fault-free tenant pulls up to `max_batch - 1` more queued
            // requests of the same tenant (EDF order) along as follower
            // lanes of one schedule replay; each follower is charged its
            // marginal cycles in the fairness ledger right here, at
            // dispatch time, like the leader's pick-time charge.
            let mut batch: Vec<Job<'_>> = Vec::new();
            let mut meta: Vec<(usize, Request, Vec<Request>)> = Vec::new();
            for (w, free_at) in worker_free.iter().enumerate() {
                if *free_at > now {
                    continue;
                }
                let picked = loop {
                    match scheduler.pick(&mut queues) {
                        None => break None,
                        Some(r) => {
                            if now > r.deadline {
                                stats[r.tenant].dropped_deadline += 1;
                                end_cycles = end_cycles.max(now);
                                gens[r.tenant].on_resolved(now);
                                continue;
                            }
                            break Some(r);
                        }
                    }
                };
                let Some(request) = picked else { break };
                let t = request.tenant;
                let mut followers: Vec<Request> = Vec::new();
                if self.config.max_batch > 1 && FaultPlan::new(self.tenants[t].faults).is_zero() {
                    while followers.len() + 1 < self.config.max_batch {
                        let Some(r) = queues[t].pop_earliest_deadline() else {
                            break;
                        };
                        if now > r.deadline {
                            stats[t].dropped_deadline += 1;
                            end_cycles = end_cycles.max(now);
                            gens[t].on_resolved(now);
                            continue;
                        }
                        scheduler.charge(t, marginal_cycles[t]);
                        followers.push(r);
                    }
                }
                let session = pools[t].pop().unwrap_or_else(|| prepared[t].session());
                batch.push(Job {
                    tenant: t,
                    seq: request.seq,
                    slack: request.deadline.saturating_sub(now),
                    followers: followers.iter().map(|r| r.seq).collect(),
                    plan: FaultPlan::new(self.tenants[t].faults),
                    attempt_base: 0,
                    session,
                });
                meta.push((w, request, followers));
            }

            // Phase 3 — execute the batch's pure inference functions on
            // physical threads, then fold results back in batch order.
            let results = run_batch(&self.tenants, batch, threads);
            for ((w, request, followers), (result, session)) in meta.into_iter().zip(results) {
                pools[request.tenant].push(session);
                let exec = result?;
                let marginal = marginal_cycles[request.tenant];
                // The worker holds the replay for the leader's cycles
                // plus one marginal slice per follower lane; every lane
                // of the batch completes together when the replay ends.
                let finish = now
                    .saturating_add(exec.cycles)
                    .saturating_add(marginal.saturating_mul(followers.len() as u64));
                worker_free[w] = finish;
                end_cycles = end_cycles.max(finish);
                let st = &mut stats[request.tenant];
                st.service_cycles += exec.cycles;
                st.retries += u64::from(exec.retries);
                st.fault.absorb(&exec.fault);
                match exec.outcome {
                    Outcome::Ok | Outcome::Degraded => {
                        if exec.outcome == Outcome::Ok {
                            st.ok += 1;
                        } else {
                            st.degraded += 1;
                        }
                        st.latency.record(finish - request.arrival);
                        if finish > request.deadline {
                            st.deadline_misses += 1;
                        }
                        st.output_hash ^= exec.output_hash;
                        if st.samples.len() < self.config.samples_per_tenant {
                            st.samples.push(RequestSample {
                                seq: request.seq,
                                attempt: exec.retries,
                                output_hash: exec.output_hash,
                            });
                        }
                    }
                    Outcome::DroppedFaulty => st.dropped_faulty += 1,
                    Outcome::DroppedBudget => st.dropped_deadline += 1,
                }
                gens[request.tenant].on_resolved(finish);
                // Follower lanes only form for fault-free tenants, so
                // they always complete cleanly; each pays marginal
                // cycles and counts toward `batched`.
                debug_assert!(followers.is_empty() || exec.outcome == Outcome::Ok);
                for (follower, &hash) in followers.iter().zip(&exec.follower_hashes) {
                    st.service_cycles += marginal;
                    st.ok += 1;
                    st.batched += 1;
                    st.latency.record(finish - follower.arrival);
                    if finish > follower.deadline {
                        st.deadline_misses += 1;
                    }
                    st.output_hash ^= hash;
                    if st.samples.len() < self.config.samples_per_tenant {
                        st.samples.push(RequestSample {
                            seq: follower.seq,
                            attempt: 0,
                            output_hash: hash,
                        });
                    }
                    gens[request.tenant].on_resolved(finish);
                }
            }

            // Phase 4 — terminate or advance the clock to the next event.
            let next_arrival = gens.iter().filter_map(|g| g.peek().map(|(t, _)| t)).min();
            let next_completion = worker_free.iter().copied().filter(|&f| f > now).min();
            let queues_empty = queues.iter().all(BoundedQueue::is_empty);
            if next_arrival.is_none() && next_completion.is_none() && queues_empty {
                break;
            }
            if let Some(a) = next_arrival {
                if a <= now {
                    // A zero-think closed-loop caller re-issued at the
                    // current cycle; admit it before moving time.
                    continue;
                }
            }
            now = match (next_arrival, next_completion) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break, // queues drain next iteration
            };
        }

        let cycle_seconds = 1e-9 / self.config.accel.frequency_ghz;
        let elapsed_seconds = end_cycles as f64 * cycle_seconds;
        let tenants = self
            .tenants
            .iter()
            .zip(stats)
            .zip(clean_cycles)
            .map(|((spec, stats), &clean)| {
                let throughput_rps = if elapsed_seconds > 0.0 {
                    stats.completed() as f64 / elapsed_seconds
                } else {
                    0.0
                };
                TenantReport {
                    name: spec.name.clone(),
                    weight: spec.weight,
                    clean_cycles: clean,
                    stats,
                    throughput_rps,
                }
            })
            .collect();
        Ok(ServiceReport {
            virtual_workers: self.config.virtual_workers,
            end_cycles,
            elapsed_seconds,
            tenants,
        })
    }
}

/// Executes one request to resolution: salted retries under the job's
/// base fault plan, bounded by the retry budget and the deadline slack.
/// Batched jobs (non-empty `followers`) divert to [`execute_batch`].
pub(crate) fn execute_one<'p>(
    spec: &TenantSpec,
    job: Job<'p>,
) -> (Result<Exec, ServeError>, Session<'p>) {
    if !job.followers.is_empty() {
        return execute_batch(spec, job);
    }
    let mut session = job.session;
    let input = match spec.build_input(job.seq) {
        Ok(input) => input,
        Err(error) => {
            return (
                Err(ServeError::Input {
                    tenant: spec.name.clone(),
                    error,
                }),
                session,
            )
        }
    };
    let base = job.plan;
    let mut cycles: u64 = 0;
    let mut fault = FaultStats::default();
    for attempt in job.attempt_base..=job.attempt_base.saturating_add(spec.max_retries) {
        session.set_fault_plan(base.with_salt(request_salt(job.tenant, job.seq, attempt)));
        match session.infer(&input) {
            Ok(inference) => {
                cycles += inference.stats().cycles();
                fault.absorb(inference.fault_stats());
                let outcome = if attempt == job.attempt_base {
                    Outcome::Ok
                } else {
                    Outcome::Degraded
                };
                return (
                    Ok(Exec {
                        outcome,
                        cycles,
                        retries: attempt,
                        output_hash: hash_output(inference.output()),
                        fault,
                        follower_hashes: Vec::new(),
                    }),
                    session,
                );
            }
            Err(RunError::FaultDetected(_)) => {
                cycles += session.last_cycles();
                fault.absorb(session.fault_stats());
                if cycles >= job.slack {
                    return (
                        Ok(Exec {
                            outcome: Outcome::DroppedBudget,
                            cycles,
                            retries: attempt,
                            output_hash: 0,
                            fault,
                            follower_hashes: Vec::new(),
                        }),
                        session,
                    );
                }
            }
            Err(error) => {
                return (
                    Err(ServeError::Execute {
                        tenant: spec.name.clone(),
                        error,
                    }),
                    session,
                )
            }
        }
    }
    (
        Ok(Exec {
            outcome: Outcome::DroppedFaulty,
            cycles,
            retries: job.attempt_base.saturating_add(spec.max_retries),
            output_hash: 0,
            fault,
            follower_hashes: Vec::new(),
        }),
        session,
    )
}

/// Executes a batched job: the leader and its follower lanes run as one
/// `Session::infer_batch` schedule replay. Followers only form for
/// tenants with a zero fault plan, so the salted plan draws no faults and
/// every lane is bit-identical to a direct clean `Session::infer` of its
/// input — which is exactly what the retained samples certify.
fn execute_batch<'p>(spec: &TenantSpec, job: Job<'p>) -> (Result<Exec, ServeError>, Session<'p>) {
    let mut session = job.session;
    let attempt_base = job.attempt_base;
    let mut inputs = Vec::with_capacity(1 + job.followers.len());
    for &seq in std::iter::once(&job.seq).chain(&job.followers) {
        match spec.build_input(seq) {
            Ok(input) => inputs.push(input),
            Err(error) => {
                return (
                    Err(ServeError::Input {
                        tenant: spec.name.clone(),
                        error,
                    }),
                    session,
                )
            }
        }
    }
    let base = job.plan;
    debug_assert!(base.is_zero(), "batched lanes require a zero fault plan");
    session.set_fault_plan(base.with_salt(request_salt(job.tenant, job.seq, attempt_base)));
    match session.infer_batch(&inputs) {
        Ok(lanes) => {
            let leader = &lanes[0];
            let exec = Exec {
                outcome: Outcome::Ok,
                cycles: leader.stats().cycles(),
                retries: attempt_base,
                output_hash: hash_output(leader.output()),
                fault: *leader.fault_stats(),
                follower_hashes: lanes[1..].iter().map(|l| hash_output(l.output())).collect(),
            };
            (Ok(exec), session)
        }
        Err(error) => (
            Err(ServeError::Execute {
                tenant: spec.name.clone(),
                error,
            }),
            session,
        ),
    }
}

/// Executes a dispatched batch on up to `threads` OS threads, returning
/// results in batch order. Work distribution uses an atomic index (the
/// same shape as the vendored rayon shim), and because each execution is
/// a pure function of `(spec, seq, salt)`, assignment of jobs to threads
/// cannot affect any result.
pub(crate) type JobResult<'p> = (Result<Exec, ServeError>, Session<'p>);

pub(crate) fn run_batch<'p>(
    specs: &[TenantSpec],
    batch: Vec<Job<'p>>,
    threads: usize,
) -> Vec<JobResult<'p>> {
    let n = batch.len();
    if threads <= 1 || n <= 1 {
        return batch
            .into_iter()
            .map(|job| execute_one(&specs[job.tenant], job))
            .collect();
    }
    let jobs: Vec<Mutex<Option<Job<'p>>>> =
        batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<JobResult<'p>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().expect("job slot poisoned").take();
                if let Some(job) = job {
                    let out = execute_one(&specs[job.tenant], job);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job slot executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{InputSource, Traffic};
    use shidiannao_cnn::zoo;
    use shidiannao_faults::{FaultConfig, SramProtection};

    fn gabor_tenant(count: u64) -> TenantSpec {
        TenantSpec::new("gabor", zoo::gabor().build(1).expect("build gabor")).traffic(
            Traffic::Open {
                period: 2_000,
                jitter: 100,
                count,
            },
        )
    }

    #[test]
    fn single_clean_tenant_completes_everything() {
        let service =
            InferenceService::new(ServeConfig::default(), vec![gabor_tenant(6)]).expect("valid");
        let report = service.run().expect("run");
        let t = &report.tenants[0].stats;
        assert_eq!(t.issued, 6);
        assert_eq!(t.ok, 6);
        assert_eq!(
            t.degraded + t.dropped_faulty + t.dropped_deadline + t.rejected,
            0
        );
        assert!(report.accounting_consistent());
        assert_eq!(t.latency.count(), 6);
        assert!(report.end_cycles > 0);
    }

    fn backlogged_tenant(count: u64) -> TenantSpec {
        gabor_tenant(count)
            .traffic(Traffic::Open {
                period: 10,
                jitter: 0,
                count,
            })
            .queue_capacity(32)
            .deadline_cycles(10_000_000)
    }

    #[test]
    fn report_is_deterministic_across_physical_threads() {
        let mk = |threads| {
            let config = ServeConfig {
                physical_threads: threads,
                max_batch: 8,
                ..ServeConfig::default()
            };
            let faulty = gabor_tenant(10)
                .faults(FaultConfig::uniform(7, 1e-4, SramProtection::Parity))
                .deadline_cycles(20_000);
            InferenceService::new(config, vec![gabor_tenant(8), faulty])
                .expect("valid")
                .run()
                .expect("run")
        };
        let serial = mk(1);
        let wide = mk(4);
        assert_eq!(serial, wide);
    }

    #[test]
    fn bounded_queue_rejects_under_overload() {
        // One virtual worker, arrivals far faster than service: the
        // depth-1 queue must shed load with typed rejections.
        let config = ServeConfig {
            virtual_workers: 1,
            ..ServeConfig::default()
        };
        let tenant = gabor_tenant(12)
            .traffic(Traffic::Open {
                period: 10,
                jitter: 0,
                count: 12,
            })
            .queue_capacity(1)
            .deadline_cycles(1_000_000);
        let report = InferenceService::new(config, vec![tenant])
            .expect("valid")
            .run()
            .expect("run");
        let t = &report.tenants[0].stats;
        assert!(t.rejected > 0, "expected backpressure, got {t:?}");
        assert!(t.ok > 0);
        assert!(report.accounting_consistent());
    }

    #[test]
    fn tight_deadlines_drop_stale_requests() {
        let config = ServeConfig {
            virtual_workers: 1,
            ..ServeConfig::default()
        };
        // Deadline shorter than one service time: whatever queues behind
        // the first request expires before a worker reaches it.
        let tenant = gabor_tenant(8)
            .traffic(Traffic::Open {
                period: 10,
                jitter: 0,
                count: 8,
            })
            .queue_capacity(8)
            .deadline_cycles(1_000);
        let report = InferenceService::new(config, vec![tenant])
            .expect("valid")
            .run()
            .expect("run");
        let t = &report.tenants[0].stats;
        assert!(t.dropped_deadline > 0, "expected expiry drops, got {t:?}");
        assert!(report.accounting_consistent());
    }

    #[test]
    fn faulty_tenant_degrades_not_corrupts() {
        let config = ServeConfig {
            virtual_workers: 1,
            ..ServeConfig::default()
        };
        let tenant = gabor_tenant(20)
            .faults(FaultConfig::uniform(11, 1e-4, SramProtection::Parity))
            .deadline_cycles(1_000_000)
            .max_retries(3);
        let report = InferenceService::new(config, vec![tenant])
            .expect("valid")
            .run()
            .expect("run");
        let t = &report.tenants[0].stats;
        assert!(t.fault.detected > 0, "fault campaign should trip: {t:?}");
        assert!(t.retries > 0);
        assert!(t.degraded > 0 || t.dropped_faulty > 0);
        assert!(report.accounting_consistent());
    }

    #[test]
    fn scheduled_outputs_match_direct_inference() {
        let service =
            InferenceService::new(ServeConfig::default(), vec![gabor_tenant(4)]).expect("valid");
        let report = service.run().expect("run");
        let spec = &service.tenants()[0];
        let accel = Accelerator::new(service.config().accel.clone());
        let prep = accel.prepare(&spec.network).expect("prepare");
        for sample in &report.tenants[0].stats.samples {
            let plan =
                FaultPlan::new(spec.faults).with_salt(request_salt(0, sample.seq, sample.attempt));
            let mut session = prep.session_with_faults(plan);
            let input = spec.build_input(sample.seq).expect("input");
            let inference = session.infer(&input).expect("clean run");
            assert_eq!(hash_output(inference.output()), sample.output_hash);
        }
    }

    #[test]
    fn batched_lanes_match_unbatched_outputs_and_ledger() {
        let mk = |max_batch, threads| {
            let config = ServeConfig {
                virtual_workers: 1,
                physical_threads: threads,
                max_batch,
                ..ServeConfig::default()
            };
            InferenceService::new(config, vec![backlogged_tenant(12)])
                .expect("valid")
                .run()
                .expect("run")
        };
        let unbatched = mk(1, 1);
        let batched = mk(8, 1);
        let u = &unbatched.tenants[0].stats;
        let b = &batched.tenants[0].stats;
        assert_eq!(u.ok, 12);
        assert_eq!(b.ok, 12);
        assert_eq!(u.batched, 0);
        assert!(b.batched > 0, "batching never triggered: {b:?}");
        // Same requests served, bit for bit: the XOR digest of per-request
        // output hashes is order-independent, so it must match exactly.
        assert_eq!(u.output_hash, b.output_hash);
        assert!(unbatched.accounting_consistent());
        assert!(batched.accounting_consistent());
        // Follower lanes pay marginal (clean − Load) cycles, so the
        // batched ledger is strictly cheaper for the same work.
        assert!(b.service_cycles < u.service_cycles);
        // And physical threads still never change a batched report.
        assert_eq!(batched, mk(8, 4));
    }

    #[test]
    fn batched_samples_replay_with_direct_inference() {
        let config = ServeConfig {
            virtual_workers: 1,
            max_batch: 8,
            samples_per_tenant: 12,
            ..ServeConfig::default()
        };
        let service = InferenceService::new(config, vec![backlogged_tenant(12)]).expect("valid");
        let report = service.run().expect("run");
        let stats = &report.tenants[0].stats;
        assert!(stats.batched > 0, "batching never triggered: {stats:?}");
        assert_eq!(stats.samples.len(), 12);
        let spec = &service.tenants()[0];
        let accel = Accelerator::new(service.config().accel.clone());
        let prep = accel.prepare(&spec.network).expect("prepare");
        for sample in &stats.samples {
            let plan =
                FaultPlan::new(spec.faults).with_salt(request_salt(0, sample.seq, sample.attempt));
            let mut session = prep.session_with_faults(plan);
            let input = spec.build_input(sample.seq).expect("input");
            let inference = session.infer(&input).expect("clean run");
            assert_eq!(
                hash_output(inference.output()),
                sample.output_hash,
                "lane for seq {} diverged from direct inference",
                sample.seq
            );
        }
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let net = zoo::gabor().build(1).expect("build gabor");
        assert_eq!(
            InferenceService::new(ServeConfig::default(), vec![]).err(),
            Some(ServeError::NoTenants)
        );
        let config = ServeConfig {
            virtual_workers: 0,
            ..ServeConfig::default()
        };
        assert_eq!(
            InferenceService::new(config, vec![TenantSpec::new("g", net.clone())]).err(),
            Some(ServeError::NoWorkers)
        );
        let bad_queue = TenantSpec::new("g", net.clone()).queue_capacity(0);
        assert!(matches!(
            InferenceService::new(ServeConfig::default(), vec![bad_queue]),
            Err(ServeError::Spec { .. })
        ));
        let bad_frame = TenantSpec::new("g", net).source(InputSource::Stream {
            seed: 0,
            frame: (8, 8),
            stride: (4, 4),
        });
        assert!(matches!(
            InferenceService::new(ServeConfig::default(), vec![bad_frame]),
            Err(ServeError::Spec { .. })
        ));
    }
}
