//! Deadline- and fairness-aware request scheduling.
//!
//! Two policies compose, both fully deterministic:
//!
//! * **across tenants** — weighted fair share: each tenant accumulates a
//!   virtual service counter charged `estimated_cycles × SCALE / weight`
//!   per dispatched request, and the backlogged tenant with the smallest
//!   counter is served next (ties broken by tenant index). A tenant with
//!   weight 3 therefore receives three times the accelerator cycles of a
//!   weight-1 tenant while both are backlogged, measured over the run.
//! * **within a tenant** — earliest deadline first, delegated to
//!   [`BoundedQueue::pop_earliest_deadline`].
//!
//! The charge uses the tenant's *calibrated clean* cycles rather than
//! the realised (fault-inflated) cycles, so a tenant is not penalised in
//! fairness terms for SRAM faults the operator injected — and, more
//! importantly, so the charge is known at pick time before the request
//! executes.

use crate::queue::{BoundedQueue, Request};

/// Fixed-point scale for the virtual service counters, giving weighted
/// division enough resolution that small weights don't alias.
const SCALE: u64 = 1024;

/// Weighted-fair-share tenant selector (see module docs).
#[derive(Clone, Debug)]
pub struct FairScheduler {
    /// Per-tenant accumulated virtual service (scaled).
    vservice: Vec<u64>,
    /// Per-tenant weights (≥ 1).
    weights: Vec<u32>,
    /// Per-tenant estimated clean cycles per request.
    estimates: Vec<u64>,
}

impl FairScheduler {
    /// Creates a scheduler for tenants with the given weights and
    /// per-request cycle estimates. Zero weights are clamped to 1.
    pub fn new(weights: &[u32], estimates: &[u64]) -> FairScheduler {
        debug_assert_eq!(weights.len(), estimates.len());
        FairScheduler {
            vservice: vec![0; weights.len()],
            weights: weights.iter().map(|&w| w.max(1)).collect(),
            estimates: estimates.to_vec(),
        }
    }

    /// The virtual service each tenant has accumulated so far (scaled by
    /// an internal constant; only ratios are meaningful).
    pub fn virtual_service(&self) -> &[u64] {
        &self.vservice
    }

    /// Picks the next request: the backlogged tenant with minimum
    /// weighted virtual service, then EDF within that tenant. Charges the
    /// tenant's estimate at pick time. Returns `None` when every queue is
    /// empty.
    pub fn pick(&mut self, queues: &mut [BoundedQueue]) -> Option<Request> {
        let tenant = (0..queues.len())
            .filter(|&t| !queues[t].is_empty())
            .min_by_key(|&t| (self.vservice[t], t))?;
        let request = queues[tenant].pop_earliest_deadline()?;
        let charge = self.estimates[tenant]
            .saturating_mul(SCALE)
            .saturating_div(u64::from(self.weights[tenant]));
        self.vservice[tenant] = self.vservice[tenant].saturating_add(charge.max(1));
        Some(request)
    }

    /// Charges `cycles` of weighted virtual service to `tenant` outside
    /// of [`FairScheduler::pick`] — how batch *follower* lanes pay their
    /// marginal cost: the leader was charged the full clean estimate at
    /// pick time, and each extra lane riding the same schedule replay
    /// adds only its marginal cycles to the tenant's fair-share ledger.
    pub fn charge(&mut self, tenant: usize, cycles: u64) {
        let charge = cycles
            .saturating_mul(SCALE)
            .saturating_div(u64::from(self.weights[tenant]));
        self.vservice[tenant] = self.vservice[tenant].saturating_add(charge.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(depths: &[usize]) -> Vec<BoundedQueue> {
        depths
            .iter()
            .enumerate()
            .map(|(t, &n)| {
                let mut q = BoundedQueue::new(n.max(1));
                for seq in 0..n as u64 {
                    q.admit(Request {
                        tenant: t,
                        seq,
                        arrival: 0,
                        deadline: 100 + seq,
                    })
                    .expect("capacity");
                }
                q
            })
            .collect()
    }

    #[test]
    fn weighted_share_over_backlog() {
        // Tenant 0 weight 3, tenant 1 weight 1, equal cycle estimates:
        // over 8 picks from deep backlogs, tenant 0 gets 6, tenant 1 gets 2.
        let mut qs = queues(&[8, 8]);
        let mut sched = FairScheduler::new(&[3, 1], &[100, 100]);
        let mut picks = [0u32; 2];
        for _ in 0..8 {
            let r = sched.pick(&mut qs).expect("backlogged");
            picks[r.tenant] += 1;
        }
        assert_eq!(picks, [6, 2]);
    }

    #[test]
    fn cheaper_requests_get_proportionally_more_picks() {
        // Equal weights, tenant 1's requests cost 4x: tenant 0 should be
        // picked ~4x as often so *cycles* stay balanced.
        let mut qs = queues(&[10, 10]);
        let mut sched = FairScheduler::new(&[1, 1], &[100, 400]);
        let mut picks = [0u32; 2];
        for _ in 0..10 {
            let r = sched.pick(&mut qs).expect("backlogged");
            picks[r.tenant] += 1;
        }
        assert_eq!(picks, [8, 2]);
    }

    #[test]
    fn empty_queues_yield_none_and_idle_tenant_skipped() {
        let mut qs = queues(&[0, 3]);
        let mut sched = FairScheduler::new(&[5, 1], &[10, 10]);
        for _ in 0..3 {
            assert_eq!(sched.pick(&mut qs).map(|r| r.tenant), Some(1));
        }
        assert_eq!(sched.pick(&mut qs), None);
    }
}
