//! Bounded per-tenant admission queues with typed backpressure.
//!
//! Every tenant gets its own fixed-capacity queue, so one tenant's burst
//! can neither grow memory without bound nor starve another tenant's
//! queue space. Admission either succeeds (returning the depth the
//! sampler records) or fails with a typed [`QueueFull`] rejection that
//! the service turns into an SLO counter — there is no silent drop and
//! no unbounded growth anywhere on the admission path.

use std::collections::VecDeque;
use std::fmt;

/// One admitted inference request, queued until a worker picks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Index of the owning tenant.
    pub tenant: usize,
    /// Per-tenant sequence number; also keys the deterministic input.
    pub seq: u64,
    /// Virtual-clock cycle the request arrived.
    pub arrival: u64,
    /// Absolute virtual-clock deadline (arrival + tenant SLO).
    pub deadline: u64,
}

/// Typed backpressure: the bounded queue refused an admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue's fixed capacity, already fully occupied.
    pub capacity: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full at capacity {}", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// A fixed-capacity FIFO-admission queue drained in EDF order.
#[derive(Clone, Debug)]
pub struct BoundedQueue {
    capacity: usize,
    items: VecDeque<Request>,
}

impl BoundedQueue {
    /// Creates an empty queue that holds at most `capacity` requests.
    pub fn new(capacity: usize) -> BoundedQueue {
        BoundedQueue {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Admits a request, returning the depth after admission, or rejects
    /// it with [`QueueFull`] backpressure when at capacity.
    pub fn admit(&mut self, request: Request) -> Result<usize, QueueFull> {
        if self.items.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        self.items.push_back(request);
        Ok(self.items.len())
    }

    /// Removes and returns the earliest-deadline request (ties broken by
    /// sequence number, so the order is total and deterministic).
    pub fn pop_earliest_deadline(&mut self) -> Option<Request> {
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.deadline, r.seq))
            .map(|(i, _)| i)?;
        self.items.remove(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, deadline: u64) -> Request {
        Request {
            tenant: 0,
            seq,
            arrival: 0,
            deadline,
        }
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.admit(req(0, 10)), Ok(1));
        assert_eq!(q.admit(req(1, 20)), Ok(2));
        assert_eq!(q.admit(req(2, 30)), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pops_in_deadline_order_with_seq_tiebreak() {
        let mut q = BoundedQueue::new(8);
        for (seq, dl) in [(0u64, 50u64), (1, 10), (2, 10), (3, 40)] {
            q.admit(req(seq, dl)).expect("capacity");
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_earliest_deadline())
            .map(|r| r.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q = BoundedQueue::new(1);
        assert_eq!(q.pop_earliest_deadline(), None);
    }
}
