//! Multi-tenant inference service for the ShiDianNao simulator.
//!
//! The paper's accelerator serves one camera; this crate models the other
//! end of the deployment spectrum from the roadmap — many tenants sharing
//! a small pool of accelerator contexts, the shape a production inference
//! service takes when "shifting vision processing closer to the sensor"
//! meets heavy traffic:
//!
//! * [`InferenceService`] — pools warm [`Session`]s per tenant network
//!   (amortising `Accelerator::prepare` exactly like the streaming
//!   pipeline does for one camera) and schedules requests onto a fixed
//!   pool of *virtual* workers on a cycle-granular virtual clock,
//! * [`BoundedQueue`] — per-tenant admission queues with typed
//!   backpressure ([`QueueFull`]): a slow tenant sheds load instead of
//!   growing memory without bound,
//! * [`FairScheduler`] — earliest-deadline-first within a tenant,
//!   weighted fair share across tenants,
//! * [`DegradePolicy`]-driven degraded execution borrowed from
//!   `shidiannao-faults`: a request whose SRAM faults blow its deadline
//!   slack is retried under a salted plan and finally dropped, never
//!   served silently corrupt data,
//! * [`TenantSpec`] / [`Traffic`] — a deterministic open- and
//!   closed-loop load generator, so the whole service is a pure function
//!   of its scenario: byte-identical reports on every run and every
//!   physical thread count.
//!
//! Determinism is the load-bearing property. The virtual clock advances
//! by *modelled* cycles (which depend only on network topology), never by
//! wall time; physical threads only parallelise the pure
//! input→output inference function between two scheduling decisions, so
//! `physical_threads` can be anything from 1 to the machine width without
//! perturbing a single counter in the [`ServiceReport`].
//!
//! # Examples
//!
//! ```
//! use shidiannao_cnn::zoo;
//! use shidiannao_serve::{InferenceService, ServeConfig, TenantSpec, Traffic};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tenant = TenantSpec::new("lenet5", zoo::lenet5().build(42)?)
//!     .traffic(Traffic::Open { period: 20_000, jitter: 1_000, count: 8 })
//!     .deadline_cycles(60_000);
//! let service = InferenceService::new(ServeConfig::default(), vec![tenant])?;
//! let report = service.run()?;
//! assert_eq!(report.tenants[0].completed(), 8);
//! assert_eq!(report, service.run()?); // deterministic end to end
//! # Ok(())
//! # }
//! ```

// Service paths report failures as typed `ServeError`s rather than
// panicking; contract violations still use `assert!`/`.expect()` which
// these lints deliberately do not cover.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod cluster;
mod health;
mod loadgen;
mod queue;
mod scheduler;
mod service;
mod stats;

pub use cluster::{
    Cluster, ClusterConfig, ClusterReport, ClusterSample, ClusterTenantReport, ShardReport,
    ShardSpec,
};
pub use health::{HealthConfig, ShardState};
pub use loadgen::{binarize_pixel, InputSource, TenantSpec, Traffic};
pub use queue::{BoundedQueue, QueueFull, Request};
pub use scheduler::FairScheduler;
pub use service::{
    request_salt, InferenceService, ServeConfig, ServeError, ServiceReport, TenantReport,
};
pub use stats::{hash_output, FixedHistogram, HistogramSummary, RequestSample, TenantStats};

// Re-export the pieces of the fault vocabulary the service surfaces.
pub use shidiannao_core::Session;
pub use shidiannao_faults::{
    DegradePolicy, FaultConfig, FaultStats, ShardEpisode, ShardEpisodeKind, ShardFaultConfig,
    ShardFaultPlan, SramProtection,
};

/// One step of the splitmix64 sequence — the same generator the fault
/// plan and synthetic sensor use, kept local so the crate has no
/// dependency on their private helpers.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
