//! Deterministic load generation: tenant specifications and open- and
//! closed-loop traffic models on the virtual clock.
//!
//! A tenant bundles a zoo network with its traffic shape, SLO, fault
//! environment, and input source. Arrival times are pure functions of
//! `(spec, seq)` — open-loop jitter comes from splitmix64, closed-loop
//! arrivals from completion times the deterministic scheduler produced —
//! so a scenario replays identically on every run.

use shidiannao_cnn::Network;
use shidiannao_faults::{FaultConfig, FaultPlan};
use shidiannao_fixed::Fx;
use shidiannao_sensor::{
    FaultySensor, FrameSource, Motion, MovingObject, RegionGrid, StreamError, SyntheticSensor,
    VideoSensor,
};
use shidiannao_tensor::MapStack;

use crate::splitmix64;

/// How a tenant offers load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Traffic {
    /// Open loop: request `n` arrives at `(n + 1) × period + jitter_n`
    /// regardless of service progress (a sensor that keeps shuttering).
    Open {
        /// Mean inter-arrival gap in cycles.
        period: u64,
        /// Uniform jitter bound in cycles (`jitter_n < jitter + 1`,
        /// drawn from splitmix64). Keep below `period` for strictly
        /// increasing arrivals; larger values are clamped monotone.
        jitter: u64,
        /// Total requests to issue.
        count: u64,
    },
    /// Closed loop: `clients` callers that each wait for their previous
    /// request to resolve, think, then issue the next one (an RPC
    /// client pool).
    Closed {
        /// Concurrent callers.
        clients: u32,
        /// Think time between a resolution and the next issue, cycles.
        think: u64,
        /// Total requests to issue across all callers.
        count: u64,
    },
}

impl Traffic {
    /// Total requests this traffic model will issue.
    pub fn count(&self) -> u64 {
        match *self {
            Traffic::Open { count, .. } | Traffic::Closed { count, .. } => count,
        }
    }
}

/// Where a tenant's inputs come from. Either way the input for sequence
/// number `seq` is a pure function of the spec, so any worker thread can
/// rebuild it bit-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputSource {
    /// `Network::random_input(seed ^ seq)` — an RPC tenant sending
    /// arbitrary payloads.
    Random {
        /// Base seed, mixed with the request sequence number.
        seed: u64,
    },
    /// Regions tiled out of synthetic sensor frames — a streaming camera
    /// tenant. Request `seq` maps to region `seq % grid.count()` of
    /// frame `seq / grid.count()`. Scanline faults from the tenant's
    /// [`FaultConfig`] corrupt rows deterministically on the way in.
    Stream {
        /// Sensor seed.
        seed: u64,
        /// Sensor frame dimensions `(width, height)`; must contain the
        /// network's input dimensions.
        frame: (usize, usize),
        /// Region tiling stride `(x, y)`.
        stride: (usize, usize),
    },
    /// [`InputSource::Stream`] with every region pixel sign-binarized to
    /// `±1.0` against the mid-scale threshold (pixel ≥ 0.5 → `+1`) — the
    /// input a binary front-end tenant (`shidiannao-quant`) consumes.
    /// The comparator sits in the sensor readout, so a binarized tenant
    /// moves 1-bit pixels instead of 8-bit ones; the stacked input is
    /// still Q7.8 `±ONE` values on the wire into NBin.
    BinarizedStream {
        /// Sensor seed.
        seed: u64,
        /// Sensor frame dimensions `(width, height)`.
        frame: (usize, usize),
        /// Region tiling stride `(x, y)`.
        stride: (usize, usize),
    },
    /// Regions tiled out of a deterministic **video** camera
    /// ([`VideoSensor`]) — a temporally coherent scene whose frames
    /// differ only where the camera or an object moved, the tenant class
    /// the motion-gated video pipeline serves. Same `seq` mapping and
    /// scanline-fault model as [`InputSource::Stream`].
    VideoStream {
        /// Sensor seed (drives the persistent world texture).
        seed: u64,
        /// Sensor frame dimensions `(width, height)`.
        frame: (usize, usize),
        /// Region tiling stride `(x, y)`.
        stride: (usize, usize),
        /// Camera motion of the scene.
        motion: Motion,
        /// Optional moving object crossing the scene.
        object: Option<MovingObject>,
    },
}

impl InputSource {
    /// The `(frame, stride)` geometry of a streaming source, `None` for
    /// [`InputSource::Random`] — one validation path for every stream
    /// flavour.
    pub fn stream_geometry(&self) -> Option<((usize, usize), (usize, usize))> {
        match *self {
            InputSource::Random { .. } => None,
            InputSource::Stream { frame, stride, .. }
            | InputSource::BinarizedStream { frame, stride, .. }
            | InputSource::VideoStream { frame, stride, .. } => Some((frame, stride)),
        }
    }
}

/// One tenant of the service: a network plus traffic, SLO, fault
/// environment, input source, and scheduling weight.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (also keys the report).
    pub name: String,
    /// The tenant's network (one `PreparedNetwork` + session pool each).
    pub network: Network,
    /// Fair-share weight across tenants (≥ 1).
    pub weight: u32,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Relative deadline: a request arriving at `t` must complete by
    /// `t + deadline_cycles` to meet its SLO.
    pub deadline_cycles: u64,
    /// Traffic model.
    pub traffic: Traffic,
    /// Input source.
    pub source: InputSource,
    /// Fault environment ([`FaultConfig::zero`] for a clean tenant).
    pub faults: FaultConfig,
    /// Salted retries before a faulty request is dropped.
    pub max_retries: u32,
}

impl TenantSpec {
    /// A tenant with benign defaults: weight 1, queue capacity 8, one
    /// open-loop request, clean faults, random inputs, 2 retries, and a
    /// deadline of 1M cycles. Chain the builder methods to shape it.
    pub fn new(name: impl Into<String>, network: Network) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            network,
            weight: 1,
            queue_capacity: 8,
            deadline_cycles: 1_000_000,
            traffic: Traffic::Open {
                period: 1,
                jitter: 0,
                count: 1,
            },
            source: InputSource::Random { seed: 0 },
            faults: FaultConfig::zero(),
            max_retries: 2,
        }
    }

    /// Sets the fair-share weight.
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Sets the bounded queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> TenantSpec {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the relative deadline in cycles.
    pub fn deadline_cycles(mut self, cycles: u64) -> TenantSpec {
        self.deadline_cycles = cycles;
        self
    }

    /// Sets the traffic model.
    pub fn traffic(mut self, traffic: Traffic) -> TenantSpec {
        self.traffic = traffic;
        self
    }

    /// Sets the input source.
    pub fn source(mut self, source: InputSource) -> TenantSpec {
        self.source = source;
        self
    }

    /// Sets the fault environment.
    pub fn faults(mut self, faults: FaultConfig) -> TenantSpec {
        self.faults = faults;
        self
    }

    /// Sets the retry budget.
    pub fn max_retries(mut self, retries: u32) -> TenantSpec {
        self.max_retries = retries;
        self
    }

    /// Builds the input for request `seq` — a pure function, safe to
    /// call from any worker thread.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError`] when a streaming region does not fit the
    /// configured frame (callers validate dimensions up front, so this
    /// indicates a mis-built spec).
    pub fn build_input(&self, seq: u64) -> Result<MapStack<Fx>, StreamError> {
        match self.source {
            InputSource::Random { seed } => Ok(self
                .network
                .random_input(splitmix64(seed ^ seq.wrapping_mul(0x9e37_79b9)))),
            InputSource::Stream {
                seed,
                frame,
                stride,
            } => self.stream_region(seed, frame, stride, seq, false),
            InputSource::BinarizedStream {
                seed,
                frame,
                stride,
            } => self.stream_region(seed, frame, stride, seq, true),
            InputSource::VideoStream {
                seed,
                frame,
                stride,
                motion,
                object,
            } => {
                let mut cam = VideoSensor::new(frame.0, frame.1, seed, motion);
                if let Some(o) = object {
                    cam = cam.with_object(o);
                }
                self.stream_region_from(cam, frame, stride, seq, false)
            }
        }
    }

    /// The shared streaming path behind [`InputSource::Stream`] and
    /// [`InputSource::BinarizedStream`].
    fn stream_region(
        &self,
        seed: u64,
        frame: (usize, usize),
        stride: (usize, usize),
        seq: u64,
        binarize: bool,
    ) -> Result<MapStack<Fx>, StreamError> {
        let cam = SyntheticSensor::new(frame.0, frame.1, seed);
        self.stream_region_from(cam, frame, stride, seq, binarize)
    }

    /// Tiles region `seq % regions` of frame `seq / regions` out of any
    /// deterministic camera, scanline faults applied on the way in.
    fn stream_region_from<S: FrameSource>(
        &self,
        camera: S,
        frame: (usize, usize),
        stride: (usize, usize),
        seq: u64,
        binarize: bool,
    ) -> Result<MapStack<Fx>, StreamError> {
        let dims = self.network.input_dims();
        let grid = RegionGrid::new(frame, dims, stride);
        let regions = grid.count() as u64;
        let frame_index = seq / regions;
        let region = (seq % regions) as usize;
        // Frames are cheap (a hash per pixel) and random access
        // is rare, so replay the sensor up to the frame we need.
        // Scanline faults ride the tenant's fault plan, like the
        // streaming pipeline's camera does.
        let mut cam = FaultySensor::new(camera, FaultPlan::new(self.faults));
        let mut f = cam.next_frame();
        for _ in 0..frame_index {
            f = cam.next_frame();
        }
        let (nx, _) = grid.counts();
        let origin = grid.origin(region % nx, region / nx);
        let stack = f.try_region_stacked(origin, dims, self.network.input_maps())?;
        Ok(if binarize {
            stack.map(|&px| binarize_pixel(px))
        } else {
            stack
        })
    }
}

/// Sign-binarizes one sensor pixel against the mid-scale threshold:
/// `[0.5, 1) → +ONE`, `[0, 0.5) → -ONE`.
pub fn binarize_pixel(px: Fx) -> Fx {
    if px >= Fx::from_f32(0.5) {
        Fx::ONE
    } else {
        -Fx::ONE
    }
}

/// Per-tenant arrival generator driven by the service's event loop.
#[derive(Clone, Debug)]
pub(crate) struct TenantGen {
    traffic: Traffic,
    /// Seed for open-loop jitter.
    seed: u64,
    /// Sequence numbers handed out so far.
    issued: u64,
    /// Monotonic clamp for open-loop arrivals under oversized jitter.
    last_time: u64,
    /// Closed loop: pending issue times, kept sorted ascending.
    pending: Vec<u64>,
}

impl TenantGen {
    pub(crate) fn new(tenant: usize, traffic: Traffic) -> TenantGen {
        let mut gen = TenantGen {
            traffic,
            seed: splitmix64(0x6c6f_6164 ^ ((tenant as u64) << 32)),
            issued: 0,
            last_time: 0,
            pending: Vec::new(),
        };
        if let Traffic::Closed {
            clients,
            think,
            count,
        } = traffic
        {
            // Stagger the callers' first issues across one think time so
            // they don't all collide at cycle 0.
            let callers = u64::from(clients).min(count);
            let stagger = if callers > 1 { think / callers } else { 0 };
            gen.pending = (0..callers).map(|c| c * stagger).collect();
        }
        gen
    }

    /// Next arrival `(time, seq)` if the tenant will issue again.
    pub(crate) fn peek(&self) -> Option<(u64, u64)> {
        match self.traffic {
            Traffic::Open {
                period,
                jitter,
                count,
            } => {
                if self.issued >= count {
                    return None;
                }
                let n = self.issued;
                let j = splitmix64(self.seed ^ n) % jitter.saturating_add(1);
                let raw = (n + 1).saturating_mul(period).saturating_add(j);
                Some((raw.max(self.last_time), n))
            }
            Traffic::Closed { .. } => self.pending.first().map(|&t| (t, self.issued)),
        }
    }

    /// Consumes the arrival returned by [`TenantGen::peek`].
    pub(crate) fn pop(&mut self) -> Option<(u64, u64)> {
        let (time, seq) = self.peek()?;
        if matches!(self.traffic, Traffic::Closed { .. }) {
            self.pending.remove(0);
        }
        self.issued += 1;
        self.last_time = time;
        Some((time, seq))
    }

    /// Closed loop only: a caller's request resolved (completed, was
    /// dropped, or was rejected) at `time`; schedule its next issue.
    pub(crate) fn on_resolved(&mut self, time: u64) {
        if let Traffic::Closed { think, count, .. } = self.traffic {
            if self.issued + self.pending.len() as u64 >= count {
                return;
            }
            let at = time.saturating_add(think);
            let pos = self.pending.partition_point(|&t| t <= at);
            self.pending.insert(pos, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_is_monotone_and_bounded() {
        let mut gen = TenantGen::new(
            0,
            Traffic::Open {
                period: 100,
                jitter: 250, // deliberately larger than the period
                count: 50,
            },
        );
        let mut last = 0;
        let mut n = 0;
        while let Some((t, seq)) = gen.pop() {
            assert!(t >= last, "arrival went backwards");
            assert_eq!(seq, n);
            last = t;
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn open_loop_replays_identically() {
        let traffic = Traffic::Open {
            period: 700,
            jitter: 300,
            count: 20,
        };
        let collect = || {
            let mut gen = TenantGen::new(3, traffic);
            std::iter::from_fn(move || gen.pop()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn closed_loop_waits_for_resolution() {
        let mut gen = TenantGen::new(
            0,
            Traffic::Closed {
                clients: 2,
                think: 100,
                count: 4,
            },
        );
        let a = gen.pop().expect("client 0 first issue");
        let b = gen.pop().expect("client 1 first issue");
        assert_eq!((a.1, b.1), (0, 1));
        assert_eq!(gen.peek(), None); // both callers outstanding
        gen.on_resolved(500);
        assert_eq!(gen.peek(), Some((600, 2)));
        gen.pop();
        gen.on_resolved(550);
        assert_eq!(gen.pop(), Some((650, 3)));
        gen.on_resolved(700); // count exhausted: no fifth issue
        assert_eq!(gen.peek(), None);
    }

    #[test]
    fn random_input_is_pure() {
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let spec = TenantSpec::new("g", net).source(InputSource::Random { seed: 9 });
        let a = spec.build_input(4).expect("input");
        let b = spec.build_input(4).expect("input");
        assert_eq!(a.flatten(), b.flatten());
        let c = spec.build_input(5).expect("input");
        assert_ne!(a.flatten(), c.flatten());
    }

    #[test]
    fn binarized_stream_is_pure_sign_of_the_raw_stream() {
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let raw = TenantSpec::new("g", net.clone()).source(InputSource::Stream {
            seed: 5,
            frame: (40, 40),
            stride: (20, 20),
        });
        let bin = TenantSpec::new("g", net).source(InputSource::BinarizedStream {
            seed: 5,
            frame: (40, 40),
            stride: (20, 20),
        });
        for seq in [0u64, 3, 7] {
            let r = raw.build_input(seq).expect("raw region").flatten();
            let b = bin.build_input(seq).expect("binarized region").flatten();
            assert!(b.iter().all(|&v| v == Fx::ONE || v == -Fx::ONE));
            for (r, b) in r.iter().zip(&b) {
                assert_eq!(*b, binarize_pixel(*r), "seq {seq}");
            }
            // Pure replay.
            let again = bin.build_input(seq).expect("replay").flatten();
            assert_eq!(b, again);
        }
    }

    #[test]
    fn stream_input_tiles_regions() {
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let dims = net.input_dims();
        let spec = TenantSpec::new("g", net).source(InputSource::Stream {
            seed: 5,
            frame: (40, 40),
            stride: (20, 20),
        });
        // 40x40 frame, 20x20 regions, stride 20 → 4 regions per frame.
        let r0 = spec.build_input(0).expect("region");
        assert_eq!(r0.map_dims(), dims);
        let r4 = spec.build_input(4).expect("next frame, region 0");
        assert_ne!(r0.flatten(), r4.flatten());
        // Pure replay.
        assert_eq!(r0.flatten(), spec.build_input(0).expect("replay").flatten());
    }

    #[test]
    fn video_stream_is_pure_and_tiles_regions() {
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let dims = net.input_dims();
        let spec = TenantSpec::new("g", net).source(InputSource::VideoStream {
            seed: 5,
            frame: (40, 40),
            stride: (20, 20),
            motion: Motion::Pan { dx: 3, dy: 1 },
            object: None,
        });
        let r0 = spec.build_input(0).expect("region");
        assert_eq!(r0.map_dims(), dims);
        // Panning scene: the same region of the next frame has shifted.
        let r4 = spec.build_input(4).expect("next frame, region 0");
        assert_ne!(r0.flatten(), r4.flatten());
        // Pure replay: sequence numbers alone determine the pixels.
        assert_eq!(r0.flatten(), spec.build_input(0).expect("replay").flatten());
        assert_eq!(r4.flatten(), spec.build_input(4).expect("replay").flatten());
    }

    #[test]
    fn static_video_repeats_frames_exactly() {
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let spec = TenantSpec::new("g", net).source(InputSource::VideoStream {
            seed: 9,
            frame: (40, 40),
            stride: (20, 20),
            motion: Motion::Static,
            object: None,
        });
        // A static clean scene never changes: every frame tiles the same
        // regions, which is exactly what motion gating exploits.
        for region in 0..4u64 {
            let now = spec.build_input(region).expect("frame 0").flatten();
            let next = spec.build_input(region + 4).expect("frame 1").flatten();
            assert_eq!(now, next, "region {region}");
        }
    }

    #[test]
    fn video_stream_composes_with_scanline_faults() {
        use shidiannao_faults::SramProtection;
        let net = shidiannao_cnn::zoo::gabor().build(1).expect("build gabor");
        let source = InputSource::VideoStream {
            seed: 9,
            frame: (40, 40),
            stride: (20, 20),
            motion: Motion::Static,
            object: None,
        };
        let clean = TenantSpec::new("g", net.clone()).source(source);
        let noisy = TenantSpec::new("g", net)
            .source(source)
            .faults(FaultConfig::uniform(7, 0.5, SramProtection::None));
        // Heavy scanline faults corrupt at least one region, but the
        // corruption itself replays deterministically.
        let differs = (0..8u64).any(|seq| {
            clean.build_input(seq).expect("clean").flatten()
                != noisy.build_input(seq).expect("noisy").flatten()
        });
        assert!(differs, "50% scanline faults left all regions untouched");
        for seq in 0..8u64 {
            assert_eq!(
                noisy.build_input(seq).expect("noisy").flatten(),
                noisy.build_input(seq).expect("replay").flatten(),
            );
        }
    }

    #[test]
    fn stream_geometry_covers_every_streaming_source() {
        let geom = ((40, 40), (20, 20));
        let video = InputSource::VideoStream {
            seed: 1,
            frame: geom.0,
            stride: geom.1,
            motion: Motion::Static,
            object: Some(MovingObject {
                size: (8, 8),
                speed: (3, 2),
            }),
        };
        let stream = InputSource::Stream {
            seed: 1,
            frame: geom.0,
            stride: geom.1,
        };
        let binarized = InputSource::BinarizedStream {
            seed: 1,
            frame: geom.0,
            stride: geom.1,
        };
        for src in [video, stream, binarized] {
            assert_eq!(src.stream_geometry(), Some(geom));
        }
        assert_eq!(InputSource::Random { seed: 1 }.stream_geometry(), None);
    }
}
