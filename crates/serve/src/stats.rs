//! Service-level statistics: fixed-bucket latency histograms and
//! per-tenant SLO counters.
//!
//! Everything here is integer arithmetic over virtual-clock cycles, so
//! the numbers a scenario produces are byte-identical across runs,
//! physical thread counts, and machines. The histogram trades exactness
//! for bounded memory the way HDR histograms do: log2 octaves split into
//! four sub-buckets, giving ≤ 25 % relative error on reported quantiles
//! with 256 fixed buckets regardless of how many samples arrive.

use shidiannao_faults::FaultStats;
use shidiannao_fixed::Fx;
use shidiannao_tensor::MapStack;

use crate::splitmix64;

/// Number of histogram buckets: 64 octaves × 4 sub-buckets.
const BUCKETS: usize = 256;

/// A fixed-bucket latency histogram over `u64` cycle counts.
///
/// Values 0–3 get exact buckets; a value `v ≥ 4` lands in the bucket
/// keyed by its top two bits below the leading one, so each bucket spans
/// a quarter octave. Recording is O(1), memory is constant, and the
/// quantiles are deterministic (a quantile reports its bucket's upper
/// bound, an over-estimate of at most 25 %).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedHistogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    max: u64,
}

impl Default for FixedHistogram {
    fn default() -> FixedHistogram {
        FixedHistogram::new()
    }
}

impl FixedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> FixedHistogram {
        FixedHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < 4 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (octave - 2)) & 3) as usize;
        octave * 4 + sub
    }

    /// Inclusive upper bound of bucket `i` — what quantiles report.
    fn upper_bound(i: usize) -> u64 {
        if i < 4 {
            return i as u64;
        }
        let octave = i / 4;
        let sub = (i % 4) as u64;
        let width = 1u64 << (octave - 2);
        (4 + sub) * width + width - 1
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[FixedHistogram::index(v)] += 1;
        self.count += 1;
        self.total += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact — tracked outside the
    /// buckets), `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The `pct`-th percentile (e.g. `50`, `95`, `99`) as the containing
    /// bucket's upper bound, clamped to the observed maximum. `0` when
    /// empty.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(count * pct / 100), clamped into [1, count].
        let rank = (u128::from(self.count) * u128::from(pct))
            .div_ceil(100)
            .clamp(1, u128::from(self.count));
        let mut seen: u128 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += u128::from(n);
            if seen >= rank {
                return FixedHistogram::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one: buckets add element-wise,
    /// counts and sums add, and the exact maximum is preserved. Because
    /// recording is a pure per-sample bucket increment, merging the
    /// histograms of any partition of a sample set equals recording the
    /// union directly — the property the cluster layer relies on to merge
    /// per-shard SLO stats into one deterministic cluster view (proved by
    /// the `merge_equals_record_of_union` property test).
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The standard summary tuple for reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
            mean: self.mean(),
            max: self.max,
        }
    }
}

/// Percentile summary of a [`FixedHistogram`], in cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Median latency (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile latency (bucket upper bound).
    pub p95: u64,
    /// 99th-percentile latency (bucket upper bound).
    pub p99: u64,
    /// Exact mean latency.
    pub mean: f64,
    /// Exact maximum latency.
    pub max: u64,
}

/// A retained per-request record, used by the harness to certify that
/// scheduled execution is bit-identical to a direct `Session::infer`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestSample {
    /// Per-tenant request sequence number (also the input key).
    pub seq: u64,
    /// Salted attempt that produced the output (0 = first try).
    pub attempt: u32,
    /// [`hash_output`] of the final output stack.
    pub output_hash: u64,
}

/// Everything the service accounts per tenant while running.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Requests the load generator issued (admitted + rejected).
    pub issued: u64,
    /// Completed on the first attempt.
    pub ok: u64,
    /// Completed after ≥ 1 salted retry.
    pub degraded: u64,
    /// Dropped: retries exhausted with faults still detected.
    pub dropped_faulty: u64,
    /// Dropped: expired in queue, or retry budget (deadline slack)
    /// exhausted mid-execution.
    pub dropped_deadline: u64,
    /// Rejected at admission by the bounded queue.
    pub rejected: u64,
    /// Completed, but after the deadline (served late, not dropped).
    pub deadline_misses: u64,
    /// Total retry attempts across all requests.
    pub retries: u64,
    /// Completed as a follower lane of a batched schedule replay (a
    /// subset of `ok`): charged marginal cycles instead of the full
    /// calibrated clean cost.
    pub batched: u64,
    /// Worker cycles consumed, including wasted (aborted) attempts.
    pub service_cycles: u64,
    /// Latency (arrival → completion) of completed requests.
    pub latency: FixedHistogram,
    /// Queue depth observed after each successful admission.
    pub depth_sum: u64,
    /// Number of depth observations.
    pub depth_samples: u64,
    /// Maximum observed queue depth.
    pub depth_max: usize,
    /// XOR of per-request output hashes — order-independent digest of
    /// every bit the tenant was served.
    pub output_hash: u64,
    /// What the fault layer did across all attempts.
    pub fault: FaultStats,
    /// First few completed requests, for bit-identity certification.
    pub samples: Vec<RequestSample>,
}

impl TenantStats {
    /// Requests that completed (ok + degraded).
    pub fn completed(&self) -> u64 {
        self.ok + self.degraded
    }

    /// Mean observed queue depth, `0.0` when nothing was admitted.
    pub fn depth_mean(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Whether every issued request is accounted for exactly once.
    pub fn accounting_consistent(&self) -> bool {
        self.issued
            == self.ok + self.degraded + self.dropped_faulty + self.dropped_deadline + self.rejected
    }
}

/// Order-independent 64-bit digest of an output stack's exact bits.
///
/// Each value is mixed with its flat index, so permuted outputs hash
/// differently, but the per-request hashes themselves can be XOR-folded
/// into a tenant digest in any completion order.
pub fn hash_output(stack: &MapStack<Fx>) -> u64 {
    let mut h: u64 = 0x5348_4944_4e41_4f21; // "SHIDNAO!"
    let mut i: u64 = 0;
    for map in stack.iter() {
        for &v in map.as_slice() {
            h = splitmix64(h ^ (v.to_bits() as u16 as u64) ^ (i << 17));
            i += 1;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = FixedHistogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(50), 1);
        assert_eq!(h.percentile(100), 3);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn histogram_percentiles_ordered_and_bounded() {
        let mut h = FixedHistogram::new();
        for i in 0..1000u64 {
            h.record(splitmix64(i) % 100_000);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
        // Quarter-octave buckets: upper bound over-estimates by < 25 %.
        let exact_max = (0..1000u64).map(|i| splitmix64(i) % 100_000).max();
        assert_eq!(Some(s.max), exact_max);
    }

    #[test]
    fn histogram_bucket_roundtrip() {
        for v in (0..64u32).map(|p| 1u64 << p).chain([5, 7, 100, 999, 12345]) {
            let i = FixedHistogram::index(v);
            let hi = FixedHistogram::upper_bound(i);
            assert!(hi >= v, "upper bound {hi} below value {v}");
            // The bound is within a quarter octave of the value.
            assert!(
                u128::from(hi) < u128::from(v) * 5 / 4 + 4,
                "bound {hi} too loose for {v}"
            );
        }
    }

    #[test]
    fn histogram_empty() {
        let h = FixedHistogram::new();
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn hash_output_depends_on_order_and_bits() {
        use shidiannao_tensor::FeatureMap;
        let a = MapStack::from_fn(2, 2, 1, |_| {
            FeatureMap::from_fn(2, 2, |x, y| Fx::from_f32((x + 2 * y) as f32 * 0.25))
        });
        let b = MapStack::from_fn(2, 2, 1, |_| {
            FeatureMap::from_fn(2, 2, |x, y| Fx::from_f32((2 * x + y) as f32 * 0.25))
        });
        assert_ne!(hash_output(&a), hash_output(&b));
        assert_eq!(hash_output(&a), hash_output(&a));
    }

    #[test]
    fn accounting_consistency() {
        let mut t = TenantStats {
            issued: 10,
            ok: 5,
            degraded: 2,
            dropped_faulty: 1,
            dropped_deadline: 1,
            rejected: 1,
            ..TenantStats::default()
        };
        assert!(t.accounting_consistent());
        t.rejected = 2;
        assert!(!t.accounting_consistent());
    }
}
