//! Fault-tolerant sharded cluster serving: N accelerator shards behind
//! consistent-hash routing, made robust against seeded whole-shard
//! failure episodes.
//!
//! The [`Cluster`] generalises [`InferenceService`](crate::InferenceService)
//! from one accelerator to N (possibly heterogeneous) shards, each with
//! its own session pool, admission queues, fair scheduler, and virtual
//! worker pool — all sharing one cluster-wide virtual clock. On top of
//! the word-level `FaultPlan` machinery it layers a shard-level fault
//! model ([`ShardFaultPlan`]): crash, slow-shard, and elevated-SRAM-fault
//! episodes whose onset and duration are pure functions of a seed, so an
//! entire chaos scenario replays bit-identically.
//!
//! # Robustness model
//!
//! * **Routing** — rendezvous (highest-random-weight) hashing picks each
//!   tenant's preferred shard; when it is draining, down, or full, the
//!   request falls back to the least-loaded accepting shard. A crashed
//!   but *undetected* shard still accepts work, exactly like a real
//!   cluster — the heartbeat monitor migrates its queue when detection
//!   lands.
//! * **Detection** — heartbeat sweeps every `heartbeat_cycles`; a
//!   crashed shard is declared down after `miss_threshold` consecutive
//!   misses, a degraded (slow / SRAM-burst) shard enters drain.
//! * **Drain** — a draining shard stops admitting but keeps executing
//!   its backlog; whatever is still queued at the drain deadline is
//!   forcibly migrated (a typed [`ServeError::DrainTimeout`] event).
//! * **Failover** — migrated, lost-in-flight, and unroutable requests
//!   re-route through a retry buffer under an exponential backoff, each
//!   round charged against a per-request retry budget; exhaustion is the
//!   terminal [`ServeError::RetryBudgetExhausted`] outcome. Re-executed
//!   requests run with a fresh salted-attempt base so they never replay
//!   the exact fault pattern that already failed them.
//! * **Respawn** — a down shard's warm replacement starts accepting
//!   `respawn_cycles` after detection.
//!
//! # Determinism
//!
//! Every per-shard virtual clock *is* the cluster clock: completions are
//! computed at dispatch, folded in canonical `(shard, worker)` order,
//! and all cross-shard reductions (routing, migration, retry ordering)
//! break ties on shard/tenant indices. The [`ClusterReport`] is
//! therefore byte-identical across physical thread counts and across
//! the salted shard scan order — and its balancing ledger proves no
//! request was lost or double-counted under any injected failure
//! pattern. A 1-shard cluster with a zero shard-fault plan reduces
//! *exactly* to [`InferenceService`](crate::InferenceService): same
//! counters, same latency histogram, same end cycle.

use std::collections::BTreeMap;

use shidiannao_core::{Accelerator, AcceleratorConfig, PreparedNetwork, Session};
use shidiannao_faults::{
    FaultConfig, FaultPlan, ShardEpisodeKind, ShardFaultConfig, ShardFaultPlan,
};

use crate::health::{backoff, HealthConfig, ShardHealth, ShardState};
use crate::loadgen::{TenantGen, TenantSpec, Traffic};
use crate::queue::{BoundedQueue, Request};
use crate::scheduler::FairScheduler;
use crate::service::{Job, Outcome, ServeError};
use crate::splitmix64;
use crate::stats::{HistogramSummary, RequestSample, TenantStats};

/// Domain separator for the rendezvous routing hash.
const ROUTE_DOMAIN: u64 = 0x524F_5554; // "ROUT"

/// How many epochs ahead crash queries scan — far beyond any scenario
/// length at sane epoch sizes, while keeping every query bounded.
const CRASH_SCAN_EPOCHS: u64 = 4_096;

/// Cap on the human-readable event log retained in a report.
const MAX_EVENTS: usize = 64;

/// One accelerator shard in the cluster.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Shard name for reports and event logs.
    pub name: String,
    /// The shard's accelerator model — shards may be heterogeneous
    /// (different PE grids / buffer sizes), each is calibrated
    /// independently.
    pub accel: AcceleratorConfig,
    /// Modelled worker pool size on this shard.
    pub virtual_workers: usize,
}

impl ShardSpec {
    /// A shard with the given name and the paper's 8×8 configuration.
    pub fn new(name: impl Into<String>) -> ShardSpec {
        ShardSpec {
            name: name.into(),
            accel: AcceleratorConfig::paper(),
            virtual_workers: 2,
        }
    }

    /// Replaces the accelerator model.
    pub fn accel(mut self, accel: AcceleratorConfig) -> ShardSpec {
        self.accel = accel;
        self
    }

    /// Sets the virtual worker pool size.
    pub fn virtual_workers(mut self, workers: usize) -> ShardSpec {
        self.virtual_workers = workers;
        self
    }
}

/// Cluster-level configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The shards, in index order (index = identity for fault plans,
    /// routing tie-breaks, and reports).
    pub shards: Vec<ShardSpec>,
    /// OS threads executing dispatched batches; `0` = machine width.
    /// Never changes the report.
    pub physical_threads: usize,
    /// Permutes the dispatch scan order over shards (`0` = index
    /// order). Shards are independent at dispatch, so the report is
    /// invariant to this salt — the property tests turn it to prove so.
    pub shard_salt: u64,
    /// Permutes same-cycle admission order across tenants, as in
    /// [`ServeConfig`](crate::ServeConfig).
    pub admission_salt: u64,
    /// Completed requests retained per tenant for bit-identity
    /// certification (both per-shard and cluster-level samples).
    pub samples_per_tenant: usize,
    /// Maximum inferences per schedule replay, as in
    /// [`ServeConfig`](crate::ServeConfig). Batching is gated on the
    /// *effective* fault plan: a shard in an SRAM-burst episode stops
    /// forming follower lanes.
    pub max_batch: usize,
    /// The seeded shard-level failure model.
    pub shard_faults: ShardFaultConfig,
    /// Detection, drain, respawn, and retry-budget tunables.
    pub health: HealthConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: vec![ShardSpec::new("shard0")],
            physical_threads: 0,
            shard_salt: 0,
            admission_salt: 0,
            samples_per_tenant: 8,
            max_batch: 1,
            shard_faults: ShardFaultConfig::zero(),
            health: HealthConfig::default(),
        }
    }
}

/// A retained completed request with enough context to replay it against
/// a direct `Session::infer` on the serving shard's accelerator model:
/// build the plan as `FaultPlan::new(faults).with_salt(request_salt(
/// tenant, seq, attempt))` and compare output hashes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSample {
    /// Tenant index in spec order.
    pub tenant: usize,
    /// Per-tenant request sequence number (also the input key).
    pub seq: u64,
    /// Absolute salted attempt that produced the output (failover rounds
    /// shift the attempt base, so this is ≥ `round × (max_retries + 1)`).
    pub attempt: u32,
    /// Shard that served the request (index into the spec's shards).
    pub shard: usize,
    /// The fault environment in force for the execution — the tenant's
    /// own, or the episode's during an SRAM burst.
    pub faults: FaultConfig,
    /// `hash_output` of the served output stack.
    pub output_hash: u64,
}

/// Per-shard slice of a [`ClusterReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// Shard name from the spec.
    pub name: String,
    /// PE grid, for heterogeneous-cluster reports.
    pub pe_cols: usize,
    /// PE grid rows.
    pub pe_rows: usize,
    /// Virtual worker pool size.
    pub virtual_workers: usize,
    /// Calibrated clean cycles per inference, per tenant, on this shard.
    pub clean_cycles: Vec<u64>,
    /// Requests this shard completed (ok + degraded).
    pub completed: u64,
    /// Worker cycles consumed on this shard, including wasted attempts
    /// and work lost to crashes.
    pub service_cycles: u64,
    /// Crash detections on this shard.
    pub crashes: u64,
    /// Drain episodes entered.
    pub drains: u64,
    /// Drains that hit their deadline with work still queued.
    pub drain_timeouts: u64,
    /// Warm respawns completed.
    pub respawns: u64,
    /// State at the end of the run.
    pub final_state: ShardState,
}

/// Cluster-level per-tenant counters that have no per-shard home.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TenantClusterCounters {
    issued: u64,
    rejected: u64,
    budget_exhausted: u64,
    rerouted: u64,
    migrated: u64,
    lost_inflight: u64,
    failovers: u64,
    expired_failover: u64,
}

/// Per-tenant slice of a [`ClusterReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterTenantReport {
    /// Tenant name from the spec.
    pub name: String,
    /// Fair-share weight.
    pub weight: u32,
    /// All SLO counters merged across shards (histograms via
    /// [`FixedHistogram::merge`](crate::FixedHistogram::merge), counters
    /// summed, depth high-water maxed, output digest XOR-folded).
    pub stats: TenantStats,
    /// Requests that exhausted their failover retry budget — the
    /// cluster-only terminal outcome, a sixth ledger class on top of
    /// [`TenantStats`]'s five.
    pub budget_exhausted: u64,
    /// Admissions that landed off the tenant's rendezvous-preferred
    /// shard (preferred was draining, down, or full).
    pub rerouted: u64,
    /// Queued requests forcibly moved off a crashed or drain-expired
    /// shard.
    pub migrated: u64,
    /// Dispatched requests lost to a shard crash mid-execution.
    pub lost_inflight: u64,
    /// Successful re-admissions from the failover retry buffer.
    pub failovers: u64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Retained completed requests with shard + fault-environment
    /// context for replay certification.
    pub samples: Vec<ClusterSample>,
}

impl ClusterTenantReport {
    /// Latency percentile summary.
    pub fn latency(&self) -> HistogramSummary {
        self.stats.latency.summary()
    }

    /// Whether the tenant's six-class ledger balances: every issued
    /// request reached exactly one terminal outcome.
    pub fn accounting_consistent(&self) -> bool {
        self.stats.issued
            == self.stats.ok
                + self.stats.degraded
                + self.stats.dropped_faulty
                + self.stats.dropped_deadline
                + self.stats.rejected
                + self.budget_exhausted
    }
}

/// What one cluster run produced. `PartialEq` is the determinism
/// contract: the same scenario compares equal across physical thread
/// counts and shard scan orders.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Virtual cycle at which the last request resolved.
    pub end_cycles: u64,
    /// `end_cycles` at shard 0's modelled clock frequency (the cluster
    /// shares one virtual clock).
    pub elapsed_seconds: f64,
    /// Per-shard results, in spec order.
    pub shards: Vec<ShardReport>,
    /// Per-tenant results, in spec order.
    pub tenants: Vec<ClusterTenantReport>,
    /// Crash detections across all shards.
    pub crashes_detected: u64,
    /// Warm respawns completed.
    pub respawns: u64,
    /// Drain episodes entered.
    pub drains: u64,
    /// Drains that timed out with work still queued.
    pub drain_timeouts: u64,
    /// Admission-time routing failures (no accepting shard anywhere).
    pub shard_unavailable: u64,
    /// Jobs dispatched under a slow episode's cycle-rate degradation.
    pub slow_dispatches: u64,
    /// Jobs dispatched under an SRAM-burst episode's fault environment.
    pub burst_dispatches: u64,
    /// First [`MAX_EVENTS`] notable events (crash detections, drain
    /// timeouts, budget exhaustions, respawns), in virtual-clock order.
    pub events: Vec<String>,
}

impl ClusterReport {
    /// Whether every tenant's six-class ledger balances.
    pub fn accounting_consistent(&self) -> bool {
        self.tenants.iter().all(|t| t.accounting_consistent())
    }

    /// Sum of a counter over tenants, e.g. `report.total(|s| s.ok)`.
    pub fn total(&self, f: impl Fn(&TenantStats) -> u64) -> u64 {
        self.tenants.iter().map(|t| f(&t.stats)).sum()
    }

    /// Sum of `budget_exhausted` over tenants.
    pub fn total_budget_exhausted(&self) -> u64 {
        self.tenants.iter().map(|t| t.budget_exhausted).sum()
    }
}

/// Why the router could not place a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RouteFail {
    /// Accepting shards exist but every usable queue is full — ordinary
    /// backpressure, counted as a rejection like the single-shard
    /// service's.
    Full,
    /// No shard is accepting at all (everything down or draining) — a
    /// true [`ServeError::ShardUnavailable`] condition.
    Unhealthy,
}

/// An entry waiting in the failover retry buffer.
#[derive(Clone, Copy, Debug)]
struct RetryEntry {
    /// Virtual cycle the entry becomes eligible for re-routing.
    due: u64,
    /// The original request — arrival and deadline are preserved, so
    /// every failover round is charged against the same deadline slack.
    request: Request,
    /// Failover round this entry is on (1 = first failover).
    round: u32,
}

/// Everything the event loop tracks per shard.
struct ShardRuntime<'p> {
    queues: Vec<BoundedQueue>,
    scheduler: FairScheduler,
    worker_free: Vec<u64>,
    pools: Vec<Vec<Session<'p>>>,
    clean_cycles: Vec<u64>,
    marginal_cycles: Vec<u64>,
    health: ShardHealth,
    stats: Vec<TenantStats>,
    crashes: u64,
    drains: u64,
    drain_timeouts: u64,
    respawns: u64,
}

impl ShardRuntime<'_> {
    fn queued(&self) -> usize {
        self.queues.iter().map(BoundedQueue::len).sum()
    }

    /// Routing load metric: queued requests plus busy workers.
    fn load(&self, now: u64) -> usize {
        let busy = self
            .worker_free
            .iter()
            .filter(|&&f| f > now && f != u64::MAX)
            .count();
        self.queued() + busy
    }
}

/// Dispatch-time context paired with each in-flight [`Job`], so results
/// can be folded in canonical `(shard, worker)` order with everything
/// the fold needs to classify, sample, and (on a crash) fail over.
struct DispatchMeta {
    shard: usize,
    worker: usize,
    request: Request,
    followers: Vec<Request>,
    /// Slow-episode cycle multiplier in sixteenths (16 = clean rate).
    factor_x16: u32,
    /// The fault environment the job ran under (for samples).
    faults: FaultConfig,
    /// Failover round the leader is on (0 = never failed over).
    round: u32,
}

/// The sharded, fault-tolerant inference cluster. See the module docs.
#[derive(Clone, Debug)]
pub struct Cluster {
    config: ClusterConfig,
    tenants: Vec<TenantSpec>,
}

impl Cluster {
    /// Validates the scenario and builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when the scenario is structurally
    /// invalid — no tenants, no shards, a shard without workers, or any
    /// of the per-tenant spec violations the single-shard service
    /// rejects.
    pub fn new(config: ClusterConfig, tenants: Vec<TenantSpec>) -> Result<Cluster, ServeError> {
        if tenants.is_empty() {
            return Err(ServeError::NoTenants);
        }
        if config.shards.is_empty() || config.shards.iter().any(|s| s.virtual_workers == 0) {
            return Err(ServeError::NoWorkers);
        }
        for spec in &tenants {
            let fail = |reason: &str| ServeError::Spec {
                tenant: spec.name.clone(),
                reason: reason.to_string(),
            };
            if spec.queue_capacity == 0 {
                return Err(fail("queue capacity must be at least 1"));
            }
            if let Traffic::Closed { clients, .. } = spec.traffic {
                if clients == 0 {
                    return Err(fail("closed-loop traffic needs at least one client"));
                }
            }
            if let Some((frame, stride)) = spec.source.stream_geometry() {
                let dims = spec.network.input_dims();
                if frame.0 < dims.0 || frame.1 < dims.1 {
                    return Err(fail("streaming frame smaller than network input"));
                }
                if stride.0 == 0 || stride.1 == 0 {
                    return Err(fail("streaming stride must be non-zero"));
                }
            }
        }
        Ok(Cluster { config, tenants })
    }

    /// The tenant specifications, in report order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Rendezvous score of `(tenant, shard)` — the consistent-hash
    /// routing key. Pure, so the preferred shard of a tenant never
    /// depends on cluster state.
    fn route_score(tenant: usize, shard: usize) -> u64 {
        splitmix64(splitmix64(ROUTE_DOMAIN ^ ((tenant as u64) << 32)) ^ (shard as u64 + 1))
    }

    /// Runs the scenario to completion and reports.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when a network cannot be prepared on a
    /// shard or a request fails with a non-fault accelerator error.
    pub fn run(&self) -> Result<ClusterReport, ServeError> {
        // Prepare every tenant network on every shard and calibrate the
        // shard-specific clean/marginal costs (heterogeneous PE grids
        // execute the same network in different cycle counts).
        let mut prepared: Vec<Vec<PreparedNetwork>> = Vec::with_capacity(self.config.shards.len());
        let mut calibration: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
        for shard in &self.config.shards {
            let accel = Accelerator::new(shard.accel.clone());
            let mut preps = Vec::with_capacity(self.tenants.len());
            let mut clean_cycles = Vec::with_capacity(self.tenants.len());
            let mut marginal_cycles = Vec::with_capacity(self.tenants.len());
            for spec in &self.tenants {
                let prep = accel
                    .prepare(&spec.network)
                    .map_err(|error| ServeError::Prepare {
                        tenant: spec.name.clone(),
                        error,
                    })?;
                let mut session = prep.session();
                let inference = session
                    .infer(&spec.network.random_input(0))
                    .map_err(|error| ServeError::Execute {
                        tenant: spec.name.clone(),
                        error,
                    })?;
                let clean = inference.stats().cycles();
                let load = inference.stats().layers().first().map_or(0, |l| l.cycles);
                clean_cycles.push(clean);
                marginal_cycles.push(clean - load);
                preps.push(prep);
            }
            prepared.push(preps);
            calibration.push((clean_cycles, marginal_cycles));
        }
        self.event_loop(&prepared, &calibration)
    }

    /// The cluster-wide discrete-event loop. One virtual clock, phases
    /// per iteration: health transitions → failover retries → arrivals
    /// → per-shard dispatch → canonical-order fold → clock advance.
    #[allow(clippy::too_many_lines)]
    fn event_loop(
        &self,
        prepared: &[Vec<PreparedNetwork>],
        calibration: &[(Vec<u64>, Vec<u64>)],
    ) -> Result<ClusterReport, ServeError> {
        let n = self.tenants.len();
        let n_shards = self.config.shards.len();
        let weights: Vec<u32> = self.tenants.iter().map(|t| t.weight).collect();
        let plan = ShardFaultPlan::new(self.config.shard_faults);
        let health_cfg = self.config.health;
        let heartbeat = health_cfg.heartbeat_cycles.max(1);
        // A zero shard-fault plan never produces an episode, so the
        // health machinery is inert; skipping its events makes a
        // 1-shard zero-failure cluster visit exactly the same virtual
        // instants as the plain service — the reduction the property
        // tests gate on.
        let monitor_enabled = !plan.is_zero();

        let mut shards: Vec<ShardRuntime<'_>> = (0..n_shards)
            .map(|s| {
                let (clean, marginal) = calibration[s].clone();
                ShardRuntime {
                    queues: self
                        .tenants
                        .iter()
                        .map(|t| BoundedQueue::new(t.queue_capacity))
                        .collect(),
                    scheduler: FairScheduler::new(&weights, &clean),
                    worker_free: vec![0; self.config.shards[s].virtual_workers],
                    pools: (0..n).map(|_| Vec::new()).collect(),
                    clean_cycles: clean,
                    marginal_cycles: marginal,
                    health: ShardHealth::new(plan.next_crash_onset(s as u64, 0, CRASH_SCAN_EPOCHS)),
                    stats: vec![TenantStats::default(); n],
                    crashes: 0,
                    drains: 0,
                    drain_timeouts: 0,
                    respawns: 0,
                }
            })
            .collect();
        let mut gens: Vec<TenantGen> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| TenantGen::new(t, spec.traffic))
            .collect();
        let mut counters: Vec<TenantClusterCounters> = vec![TenantClusterCounters::default(); n];
        let mut cluster_samples: Vec<Vec<ClusterSample>> = vec![Vec::new(); n];
        let mut retry: Vec<RetryEntry> = Vec::new();
        // Failover round per live request — consulted at dispatch for
        // the salted-attempt base, removed at every terminal outcome.
        let mut rounds: BTreeMap<(usize, u64), u32> = BTreeMap::new();
        let mut events: Vec<String> = Vec::new();
        let mut shard_unavailable: u64 = 0;
        let mut slow_dispatches: u64 = 0;
        let mut burst_dispatches: u64 = 0;
        let threads = if self.config.physical_threads != 0 {
            self.config.physical_threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        };

        let permkey = |t: usize| {
            if self.config.admission_salt == 0 {
                t as u64
            } else {
                splitmix64(self.config.admission_salt ^ (t as u64))
            }
        };
        // Salted dispatch scan order over shards. Shards are mutually
        // independent at dispatch (own queues, scheduler, workers), so
        // this order provably cannot change the report.
        let mut shard_order: Vec<usize> = (0..n_shards).collect();
        if self.config.shard_salt != 0 {
            shard_order.sort_by_key(|&s| splitmix64(self.config.shard_salt ^ (s as u64)));
        }
        let scale = |cycles: u64, factor_x16: u32| -> u64 {
            if factor_x16 == 16 {
                cycles
            } else {
                cycles.saturating_mul(u64::from(factor_x16)) / 16
            }
        };
        let push_event = |events: &mut Vec<String>, now: u64, msg: String| {
            if events.len() < MAX_EVENTS {
                events.push(format!("[{now}] {msg}"));
            }
        };

        let mut now: u64 = 0;
        let mut end_cycles: u64 = 0;
        let mut next_heartbeat: u64 = heartbeat;
        loop {
            // Phase 0a — warm respawns due at `now`: the replacement
            // shard comes up empty, healthy, and with a fresh crash
            // horizon.
            for (s, shard) in shards.iter_mut().enumerate() {
                if let ShardState::Down { respawn_at } = shard.health.state {
                    if respawn_at <= now {
                        shard.health.state = ShardState::Healthy;
                        shard.health.misses = 0;
                        shard.health.crash_onset = plan.next_crash_onset(
                            s as u64,
                            now.saturating_add(1),
                            CRASH_SCAN_EPOCHS,
                        );
                        shard.worker_free.iter_mut().for_each(|f| *f = now);
                        shard.respawns += 1;
                        push_event(
                            &mut events,
                            now,
                            format!("shard {}: warm respawn online", self.config.shards[s].name),
                        );
                    }
                }
            }

            // Phase 0b — heartbeat sweep: crash detection (with queue
            // migration), drain entry/heal, drain-deadline enforcement.
            if monitor_enabled && now >= next_heartbeat {
                for (s, shard) in shards.iter_mut().enumerate() {
                    let state = shard.health.state;
                    match state {
                        ShardState::Down { .. } => {}
                        ShardState::Healthy | ShardState::Draining { .. } => {
                            if shard.health.is_dead(now) {
                                // The shard stopped answering at its
                                // crash onset; declare it down after
                                // enough consecutive misses and migrate
                                // everything still queued on it.
                                shard.health.misses += 1;
                                if shard.health.misses >= health_cfg.miss_threshold {
                                    let respawn_at = now.saturating_add(health_cfg.respawn_cycles);
                                    shard.health.state = ShardState::Down { respawn_at };
                                    shard.health.misses = 0;
                                    shard.crashes += 1;
                                    let migrated = Cluster::migrate_queues(
                                        shard,
                                        &mut retry,
                                        &mut counters,
                                        &rounds,
                                        now,
                                    );
                                    push_event(
                                        &mut events,
                                        now,
                                        format!(
                                            "shard {}: crash detected, {migrated} queued requests migrated, respawn at {respawn_at}",
                                            self.config.shards[s].name
                                        ),
                                    );
                                }
                            } else if let ShardState::Draining { deadline } = state {
                                shard.health.misses = 0;
                                let degraded = plan.degradation_at(s as u64, now).is_some();
                                if !degraded && shard.queued() == 0 {
                                    shard.health.state = ShardState::Healthy;
                                } else if now >= deadline {
                                    let pending = shard.queued();
                                    if pending > 0 {
                                        shard.drain_timeouts += 1;
                                        push_event(
                                            &mut events,
                                            now,
                                            ServeError::DrainTimeout {
                                                shard: self.config.shards[s].name.clone(),
                                                pending,
                                            }
                                            .to_string(),
                                        );
                                        Cluster::migrate_queues(
                                            shard,
                                            &mut retry,
                                            &mut counters,
                                            &rounds,
                                            now,
                                        );
                                    }
                                    shard.health.state = if degraded {
                                        ShardState::Draining {
                                            deadline: now.saturating_add(health_cfg.drain_timeout),
                                        }
                                    } else {
                                        ShardState::Healthy
                                    };
                                }
                            } else {
                                shard.health.misses = 0;
                                if plan.degradation_at(s as u64, now).is_some() {
                                    shard.health.state = ShardState::Draining {
                                        deadline: now.saturating_add(health_cfg.drain_timeout),
                                    };
                                    shard.drains += 1;
                                    push_event(
                                        &mut events,
                                        now,
                                        format!(
                                            "shard {}: degradation episode detected, draining",
                                            self.config.shards[s].name
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                next_heartbeat = (now / heartbeat + 1) * heartbeat;
            }

            // Phase 0c — failover retries due at `now`, in deterministic
            // (due, tenant-permutation, tenant, seq) order: budget check,
            // deadline check, then re-route. A failed re-route burns a
            // round and backs off; success re-admits on the chosen shard.
            if !retry.is_empty() {
                let mut due: Vec<RetryEntry> = Vec::new();
                retry.retain(|e| {
                    if e.due <= now {
                        due.push(*e);
                        false
                    } else {
                        true
                    }
                });
                due.sort_unstable_by_key(|e| {
                    (
                        e.due,
                        permkey(e.request.tenant),
                        e.request.tenant,
                        e.request.seq,
                    )
                });
                for entry in due {
                    let t = entry.request.tenant;
                    if entry.round > health_cfg.retry_budget {
                        counters[t].budget_exhausted += 1;
                        rounds.remove(&(t, entry.request.seq));
                        end_cycles = end_cycles.max(now);
                        gens[t].on_resolved(now);
                        push_event(
                            &mut events,
                            now,
                            ServeError::RetryBudgetExhausted {
                                tenant: self.tenants[t].name.clone(),
                                seq: entry.request.seq,
                                budget: health_cfg.retry_budget,
                            }
                            .to_string(),
                        );
                        continue;
                    }
                    if now > entry.request.deadline {
                        counters[t].expired_failover += 1;
                        rounds.remove(&(t, entry.request.seq));
                        end_cycles = end_cycles.max(now);
                        gens[t].on_resolved(now);
                        continue;
                    }
                    match self.route(&shards, t, now) {
                        Ok((s, fell_back)) => match shards[s].queues[t].admit(entry.request) {
                            Ok(depth) => {
                                let st = &mut shards[s].stats[t];
                                st.depth_sum += depth as u64;
                                st.depth_samples += 1;
                                st.depth_max = st.depth_max.max(depth);
                                counters[t].failovers += 1;
                                if fell_back {
                                    counters[t].rerouted += 1;
                                }
                                rounds.insert((t, entry.request.seq), entry.round);
                            }
                            Err(_full) => {
                                // `route` only returns shards with queue
                                // space, so this is unreachable; treat it
                                // as a routing failure to stay total.
                                retry.push(RetryEntry {
                                    due: now.saturating_add(backoff(
                                        health_cfg.backoff_base,
                                        entry.round,
                                    )),
                                    request: entry.request,
                                    round: entry.round + 1,
                                });
                            }
                        },
                        Err(fail) => {
                            if fail == RouteFail::Unhealthy {
                                shard_unavailable += 1;
                            }
                            retry.push(RetryEntry {
                                due: now
                                    .saturating_add(backoff(health_cfg.backoff_base, entry.round)),
                                request: entry.request,
                                round: entry.round + 1,
                            });
                        }
                    }
                }
            }

            // Phase 1 — admit every arrival due at or before `now`,
            // routing each to a shard. Rejected closed-loop callers may
            // re-issue at the same cycle, so drain until quiescent.
            loop {
                let mut due: Vec<(u64, u64, usize, u64)> = Vec::new();
                for (t, gen) in gens.iter_mut().enumerate() {
                    while let Some((at, _)) = gen.peek() {
                        if at > now {
                            break;
                        }
                        if let Some((at, seq)) = gen.pop() {
                            counters[t].issued += 1;
                            due.push((at, permkey(t), t, seq));
                        }
                    }
                }
                if due.is_empty() {
                    break;
                }
                due.sort_unstable();
                for (at, _, t, seq) in due {
                    let request = Request {
                        tenant: t,
                        seq,
                        arrival: at,
                        deadline: at.saturating_add(self.tenants[t].deadline_cycles),
                    };
                    match self.route(&shards, t, now) {
                        Ok((s, fell_back)) => match shards[s].queues[t].admit(request) {
                            Ok(depth) => {
                                let st = &mut shards[s].stats[t];
                                st.depth_sum += depth as u64;
                                st.depth_samples += 1;
                                st.depth_max = st.depth_max.max(depth);
                                if fell_back {
                                    counters[t].rerouted += 1;
                                }
                            }
                            Err(_full) => {
                                counters[t].rejected += 1;
                                end_cycles = end_cycles.max(at);
                                gens[t].on_resolved(at);
                            }
                        },
                        Err(fail) => {
                            // Ordinary backpressure (everything full) and
                            // true unavailability both shed the request;
                            // only the latter is a cluster-health event.
                            if fail == RouteFail::Unhealthy {
                                shard_unavailable += 1;
                                push_event(
                                    &mut events,
                                    now,
                                    ServeError::ShardUnavailable {
                                        tenant: self.tenants[t].name.clone(),
                                    }
                                    .to_string(),
                                );
                            }
                            counters[t].rejected += 1;
                            end_cycles = end_cycles.max(at);
                            gens[t].on_resolved(at);
                        }
                    }
                }
            }

            // Phase 2 — per-shard dispatch, scanning shards in the
            // salted order. A dead shard (crashed, detected or not)
            // executes nothing; a draining shard keeps working through
            // its backlog. The effective fault plan and cycle rate come
            // from the shard's active episode at dispatch time.
            let mut batch: Vec<Job<'_>> = Vec::new();
            let mut meta: Vec<DispatchMeta> = Vec::new();
            for &s in &shard_order {
                if shards[s].health.is_dead(now) {
                    continue;
                }
                let episode = plan.degradation_at(s as u64, now);
                let factor_x16 = match episode.map(|e| e.kind) {
                    Some(ShardEpisodeKind::Slow { factor_x16 }) => factor_x16,
                    _ => 16,
                };
                let burst = match episode.map(|e| e.kind) {
                    Some(ShardEpisodeKind::SramBurst { faults }) => Some(faults),
                    _ => None,
                };
                for w in 0..shards[s].worker_free.len() {
                    if shards[s].worker_free[w] > now {
                        continue;
                    }
                    let shard = &mut shards[s];
                    let picked = loop {
                        match shard.scheduler.pick(&mut shard.queues) {
                            None => break None,
                            Some(r) => {
                                if now > r.deadline {
                                    shard.stats[r.tenant].dropped_deadline += 1;
                                    rounds.remove(&(r.tenant, r.seq));
                                    end_cycles = end_cycles.max(now);
                                    gens[r.tenant].on_resolved(now);
                                    continue;
                                }
                                break Some(r);
                            }
                        }
                    };
                    let Some(request) = picked else { break };
                    let t = request.tenant;
                    let faults = burst.unwrap_or(self.tenants[t].faults);
                    let eff_plan = FaultPlan::new(faults);
                    let mut followers: Vec<Request> = Vec::new();
                    if self.config.max_batch > 1 && eff_plan.is_zero() {
                        while followers.len() + 1 < self.config.max_batch {
                            let Some(r) = shard.queues[t].pop_earliest_deadline() else {
                                break;
                            };
                            if now > r.deadline {
                                shard.stats[t].dropped_deadline += 1;
                                rounds.remove(&(t, r.seq));
                                end_cycles = end_cycles.max(now);
                                gens[t].on_resolved(now);
                                continue;
                            }
                            shard.scheduler.charge(t, shard.marginal_cycles[t]);
                            followers.push(r);
                        }
                    }
                    let round = rounds.get(&(t, request.seq)).copied().unwrap_or(0);
                    if factor_x16 != 16 {
                        slow_dispatches += 1;
                    }
                    if burst.is_some() {
                        burst_dispatches += 1;
                    }
                    let session = shard.pools[t]
                        .pop()
                        .unwrap_or_else(|| prepared[s][t].session());
                    batch.push(Job {
                        tenant: t,
                        seq: request.seq,
                        slack: request.deadline.saturating_sub(now),
                        followers: followers.iter().map(|r| r.seq).collect(),
                        plan: eff_plan,
                        attempt_base: Job::attempt_base_of(round, &self.tenants[t]),
                        session,
                    });
                    meta.push(DispatchMeta {
                        shard: s,
                        worker: w,
                        request,
                        followers,
                        factor_x16,
                        faults,
                        round,
                    });
                }
            }

            // Phase 3 — execute on physical threads, then fold in
            // canonical (shard, worker) order so the salted scan order
            // above can never leak into any counter, sample, or the
            // closed-loop generators.
            let results = crate::service::run_batch(&self.tenants, batch, threads);
            let mut items: Vec<(DispatchMeta, _)> = meta.into_iter().zip(results).collect();
            items.sort_by_key(|(m, _)| (m.shard, m.worker));
            for (m, (result, session)) in items {
                let (s, w, t) = (m.shard, m.worker, m.request.tenant);
                shards[s].pools[t].push(session);
                let exec = result?;
                let marginal = scale(shards[s].marginal_cycles[t], m.factor_x16);
                let cycles = scale(exec.cycles, m.factor_x16);
                let finish = now
                    .saturating_add(cycles)
                    .saturating_add(marginal.saturating_mul(m.followers.len() as u64));
                // A crash onset strictly inside (dispatch, finish) kills
                // the execution: the worker dies with the shard, and
                // every lane fails over after the client-side timeout.
                let crash_onset = shards[s]
                    .health
                    .crash_onset
                    .filter(|&o| o > now && o < finish);
                if let Some(onset) = crash_onset {
                    shards[s].worker_free[w] = u64::MAX;
                    shards[s].stats[t].service_cycles += onset.saturating_sub(now);
                    for lane in std::iter::once(&m.request).chain(&m.followers) {
                        let r = rounds.get(&(t, lane.seq)).copied().unwrap_or(0);
                        rounds.insert((t, lane.seq), r + 1);
                        counters[t].lost_inflight += 1;
                        retry.push(RetryEntry {
                            due: onset
                                .saturating_add(health_cfg.crash_timeout)
                                .saturating_add(backoff(health_cfg.backoff_base, r)),
                            request: *lane,
                            round: r + 1,
                        });
                    }
                    continue;
                }
                shards[s].worker_free[w] = finish;
                end_cycles = end_cycles.max(finish);
                let st = &mut shards[s].stats[t];
                st.service_cycles += cycles;
                st.retries +=
                    u64::from(exec.retries - Job::attempt_base_of(m.round, &self.tenants[t]));
                st.fault.absorb(&exec.fault);
                match exec.outcome {
                    Outcome::Ok | Outcome::Degraded => {
                        // A request that needed a failover round is
                        // cluster-degraded even when its re-execution
                        // succeeded on the first salted attempt.
                        if exec.outcome == Outcome::Ok && m.round == 0 {
                            st.ok += 1;
                        } else {
                            st.degraded += 1;
                        }
                        st.latency.record(finish - m.request.arrival);
                        if finish > m.request.deadline {
                            st.deadline_misses += 1;
                        }
                        st.output_hash ^= exec.output_hash;
                        if st.samples.len() < self.config.samples_per_tenant {
                            st.samples.push(RequestSample {
                                seq: m.request.seq,
                                attempt: exec.retries,
                                output_hash: exec.output_hash,
                            });
                        }
                        if cluster_samples[t].len() < self.config.samples_per_tenant {
                            cluster_samples[t].push(ClusterSample {
                                tenant: t,
                                seq: m.request.seq,
                                attempt: exec.retries,
                                shard: s,
                                faults: m.faults,
                                output_hash: exec.output_hash,
                            });
                        }
                    }
                    Outcome::DroppedFaulty => st.dropped_faulty += 1,
                    Outcome::DroppedBudget => st.dropped_deadline += 1,
                }
                rounds.remove(&(t, m.request.seq));
                gens[t].on_resolved(finish);
                debug_assert!(m.followers.is_empty() || exec.outcome == Outcome::Ok);
                for (follower, &hash) in m.followers.iter().zip(&exec.follower_hashes) {
                    let st = &mut shards[s].stats[t];
                    st.service_cycles += marginal;
                    if m.round == 0 && rounds.get(&(t, follower.seq)).copied().unwrap_or(0) == 0 {
                        st.ok += 1;
                    } else {
                        st.degraded += 1;
                    }
                    st.batched += 1;
                    st.latency.record(finish - follower.arrival);
                    if finish > follower.deadline {
                        st.deadline_misses += 1;
                    }
                    st.output_hash ^= hash;
                    if st.samples.len() < self.config.samples_per_tenant {
                        st.samples.push(RequestSample {
                            seq: follower.seq,
                            attempt: exec.retries,
                            output_hash: hash,
                        });
                    }
                    if cluster_samples[t].len() < self.config.samples_per_tenant {
                        cluster_samples[t].push(ClusterSample {
                            tenant: t,
                            seq: follower.seq,
                            attempt: exec.retries,
                            shard: s,
                            faults: m.faults,
                            output_hash: hash,
                        });
                    }
                    rounds.remove(&(t, follower.seq));
                    gens[t].on_resolved(finish);
                }
            }

            // Phase 4 — terminate, or advance the clock to the next
            // event: arrival, retry due, completion, or (while work is
            // outstanding) the next heartbeat / respawn / drain deadline
            // the health machinery needs to make progress.
            let next_arrival = gens.iter().filter_map(|g| g.peek().map(|(t, _)| t)).min();
            let next_retry = retry.iter().map(|e| e.due).min();
            let next_completion = shards
                .iter()
                .flat_map(|s| s.worker_free.iter().copied())
                .filter(|&f| f > now && f != u64::MAX)
                .min();
            let queues_empty = shards.iter().all(|s| s.queued() == 0);
            let busy = next_completion.is_some();
            let work = next_arrival.is_some() || next_retry.is_some() || !queues_empty;
            if !work && !busy {
                break;
            }
            if let Some(a) = next_arrival {
                if a <= now {
                    // A zero-think closed-loop caller re-issued at the
                    // current cycle; admit it before moving time.
                    continue;
                }
            }
            let mut candidates: Vec<u64> = Vec::new();
            candidates.extend(next_arrival);
            candidates.extend(next_retry.filter(|&d| d > now));
            candidates.extend(next_completion);
            if monitor_enabled && work {
                candidates.push(next_heartbeat.max(now + 1));
                for shard in &shards {
                    match shard.health.state {
                        ShardState::Down { respawn_at } if respawn_at > now => {
                            candidates.push(respawn_at);
                        }
                        ShardState::Draining { deadline } if deadline > now => {
                            candidates.push(deadline);
                        }
                        _ => {}
                    }
                }
            }
            let Some(next) = candidates.into_iter().min() else {
                break;
            };
            now = next;
        }

        // Merge per-shard views into the cluster report.
        let cycle_seconds = 1e-9 / self.config.shards[0].accel.frequency_ghz;
        let elapsed_seconds = end_cycles as f64 * cycle_seconds;
        let shard_reports: Vec<ShardReport> = shards
            .iter()
            .zip(&self.config.shards)
            .map(|(rt, spec)| ShardReport {
                name: spec.name.clone(),
                pe_cols: spec.accel.pe_cols,
                pe_rows: spec.accel.pe_rows,
                virtual_workers: spec.virtual_workers,
                clean_cycles: rt.clean_cycles.clone(),
                completed: rt.stats.iter().map(TenantStats::completed).sum(),
                service_cycles: rt.stats.iter().map(|st| st.service_cycles).sum(),
                crashes: rt.crashes,
                drains: rt.drains,
                drain_timeouts: rt.drain_timeouts,
                respawns: rt.respawns,
                final_state: rt.health.state,
            })
            .collect();
        let tenants: Vec<ClusterTenantReport> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let mut stats = TenantStats::default();
                for shard in &shards {
                    merge_stats(&mut stats, &shard.stats[t], self.config.samples_per_tenant);
                }
                let cc = counters[t];
                stats.issued = cc.issued;
                stats.rejected += cc.rejected;
                stats.dropped_deadline += cc.expired_failover;
                let throughput_rps = if elapsed_seconds > 0.0 {
                    stats.completed() as f64 / elapsed_seconds
                } else {
                    0.0
                };
                ClusterTenantReport {
                    name: spec.name.clone(),
                    weight: spec.weight,
                    stats,
                    budget_exhausted: cc.budget_exhausted,
                    rerouted: cc.rerouted,
                    migrated: cc.migrated,
                    lost_inflight: cc.lost_inflight,
                    failovers: cc.failovers,
                    throughput_rps,
                    samples: cluster_samples[t].clone(),
                }
            })
            .collect();
        Ok(ClusterReport {
            end_cycles,
            elapsed_seconds,
            crashes_detected: shard_reports.iter().map(|s| s.crashes).sum(),
            respawns: shard_reports.iter().map(|s| s.respawns).sum(),
            drains: shard_reports.iter().map(|s| s.drains).sum(),
            drain_timeouts: shard_reports.iter().map(|s| s.drain_timeouts).sum(),
            shard_unavailable,
            slow_dispatches,
            burst_dispatches,
            shards: shard_reports,
            tenants,
            events,
        })
    }

    /// Routes tenant `t`'s next request: the rendezvous-preferred shard
    /// when it accepts and has queue space, else the least-loaded
    /// accepting shard with space (ties broken by shard index).
    fn route(
        &self,
        shards: &[ShardRuntime<'_>],
        t: usize,
        now: u64,
    ) -> Result<(usize, bool), RouteFail> {
        let preferred = (0..shards.len())
            .max_by_key(|&s| (Cluster::route_score(t, s), s))
            .unwrap_or(0);
        let has_space = |s: usize| shards[s].queues[t].len() < shards[s].queues[t].capacity();
        if shards[preferred].health.state.is_accepting() && has_space(preferred) {
            return Ok((preferred, false));
        }
        let mut any_accepting = false;
        let fallback = (0..shards.len())
            .filter(|&s| {
                let accepting = shards[s].health.state.is_accepting();
                any_accepting |= accepting;
                accepting && has_space(s)
            })
            .min_by_key(|&s| (shards[s].load(now), s));
        match fallback {
            Some(s) => Ok((s, true)),
            None if any_accepting => Err(RouteFail::Full),
            None => Err(RouteFail::Unhealthy),
        }
    }

    /// Empties every queue of a dying or drain-expired shard into the
    /// failover retry buffer (tenant order, EDF order within a tenant —
    /// deterministic). Each migrated request burns one failover round
    /// and becomes eligible for re-routing immediately.
    fn migrate_queues(
        shard: &mut ShardRuntime<'_>,
        retry: &mut Vec<RetryEntry>,
        counters: &mut [TenantClusterCounters],
        rounds: &BTreeMap<(usize, u64), u32>,
        now: u64,
    ) -> usize {
        let mut moved = 0;
        for (t, queue) in shard.queues.iter_mut().enumerate() {
            while let Some(request) = queue.pop_earliest_deadline() {
                let round = rounds.get(&(t, request.seq)).copied().unwrap_or(0);
                counters[t].migrated += 1;
                moved += 1;
                retry.push(RetryEntry {
                    due: now,
                    request,
                    round: round + 1,
                });
            }
        }
        moved
    }
}

impl Job<'_> {
    /// The salted-attempt base for failover round `round` of a tenant:
    /// each round owns a disjoint attempt range so a re-execution never
    /// replays the fault pattern that already failed it.
    pub(crate) fn attempt_base_of(round: u32, spec: &TenantSpec) -> u32 {
        round * (spec.max_retries + 1)
    }
}

/// Folds `from` into `acc`: counters add, the latency histogram merges
/// bucket-wise, depth high-water takes the max, the output digest
/// XOR-folds, and samples concatenate up to `sample_cap`. `issued` and
/// `rejected` live at cluster level and are patched in by the caller.
fn merge_stats(acc: &mut TenantStats, from: &TenantStats, sample_cap: usize) {
    acc.ok += from.ok;
    acc.degraded += from.degraded;
    acc.dropped_faulty += from.dropped_faulty;
    acc.dropped_deadline += from.dropped_deadline;
    acc.deadline_misses += from.deadline_misses;
    acc.retries += from.retries;
    acc.batched += from.batched;
    acc.service_cycles += from.service_cycles;
    acc.latency.merge(&from.latency);
    acc.depth_sum += from.depth_sum;
    acc.depth_samples += from.depth_samples;
    acc.depth_max = acc.depth_max.max(from.depth_max);
    acc.output_hash ^= from.output_hash;
    acc.fault.absorb(&from.fault);
    for sample in &from.samples {
        if acc.samples.len() >= sample_cap {
            break;
        }
        acc.samples.push(*sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{InferenceService, ServeConfig};
    use shidiannao_cnn::zoo;
    use shidiannao_core::Accelerator;
    use shidiannao_faults::SramProtection;

    fn gabor_tenant(count: u64) -> TenantSpec {
        TenantSpec::new("gabor", zoo::gabor().build(1).expect("build gabor"))
            .traffic(Traffic::Open {
                period: 2_000,
                jitter: 100,
                count,
            })
            .deadline_cycles(200_000)
    }

    fn chaos_config(shards: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            shards: (0..shards)
                .map(|s| ShardSpec::new(format!("s{s}")))
                .collect(),
            shard_faults: ShardFaultConfig {
                seed,
                epoch_cycles: 8_000,
                crash_rate: 0.12,
                slow_rate: 0.2,
                sram_burst_rate: 0.2,
                min_duration: 4_000,
                max_duration: 16_000,
                burst_flip_rate: 1e-4,
                burst_protection: SramProtection::Parity,
            },
            health: HealthConfig {
                heartbeat_cycles: 2_000,
                miss_threshold: 2,
                drain_timeout: 10_000,
                respawn_cycles: 12_000,
                crash_timeout: 3_000,
                backoff_base: 500,
                retry_budget: 4,
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn one_shard_zero_faults_matches_plain_service() {
        let tenants = || {
            vec![
                gabor_tenant(8),
                gabor_tenant(6)
                    .traffic(Traffic::Closed {
                        clients: 2,
                        think: 1_000,
                        count: 6,
                    })
                    .weight(2),
            ]
        };
        let service = InferenceService::new(ServeConfig::default(), tenants()).expect("valid");
        let expected = service.run().expect("service run");
        let cluster = Cluster::new(ClusterConfig::default(), tenants()).expect("valid");
        let report = cluster.run().expect("cluster run");
        assert_eq!(report.end_cycles, expected.end_cycles);
        for (c, s) in report.tenants.iter().zip(&expected.tenants) {
            assert_eq!(c.stats, s.stats, "tenant {} diverged", c.name);
            assert_eq!(
                c.budget_exhausted + c.rerouted + c.migrated + c.lost_inflight,
                0
            );
        }
        assert!(report.accounting_consistent());
    }

    #[test]
    fn chaos_report_invariant_to_threads_and_shard_order() {
        let mk = |threads, salt| {
            let config = ClusterConfig {
                physical_threads: threads,
                shard_salt: salt,
                max_batch: 4,
                ..chaos_config(3, 0xC1A0)
            };
            Cluster::new(config, vec![gabor_tenant(30)])
                .expect("valid")
                .run()
                .expect("run")
        };
        let base = mk(1, 0);
        assert!(base.accounting_consistent(), "ledger: {base:?}");
        assert_eq!(base, mk(4, 0), "physical threads changed the report");
        assert_eq!(base, mk(2, 0x5EED), "shard scan order changed the report");
    }

    #[test]
    fn chaos_exercises_failure_paths_without_losing_requests() {
        let report = Cluster::new(chaos_config(3, 0xC1A0), vec![gabor_tenant(40)])
            .expect("valid")
            .run()
            .expect("run");
        assert!(report.accounting_consistent(), "ledger: {report:?}");
        let t = &report.tenants[0];
        assert_eq!(t.stats.issued, 40);
        assert!(t.stats.completed() > 0);
        assert!(
            report.crashes_detected > 0
                || report.drains > 0
                || report.slow_dispatches > 0
                || report.burst_dispatches > 0,
            "chaos plan never fired: {report:?}"
        );
    }

    #[test]
    fn crash_detection_migrates_and_respawns() {
        // Crank the crash rate so a 3-shard run must lose shards.
        let mut config = chaos_config(3, 7);
        config.shard_faults.crash_rate = 0.5;
        config.shard_faults.slow_rate = 0.0;
        config.shard_faults.sram_burst_rate = 0.0;
        let report = Cluster::new(config, vec![gabor_tenant(40)])
            .expect("valid")
            .run()
            .expect("run");
        assert!(report.crashes_detected > 0, "no crash detected: {report:?}");
        assert!(
            report.respawns > 0
                || report
                    .shards
                    .iter()
                    .any(|s| matches!(s.final_state, ShardState::Down { .. }))
        );
        assert!(report.accounting_consistent(), "ledger: {report:?}");
        let t = &report.tenants[0];
        assert!(
            t.migrated + t.lost_inflight + t.failovers > 0,
            "crashes never displaced work: {report:?}"
        );
    }

    #[test]
    fn samples_replay_against_direct_inference() {
        let cluster = Cluster::new(chaos_config(2, 0xC1A0), vec![gabor_tenant(20)])
            .expect("valid")
            .run()
            .expect("run");
        let spec_net = zoo::gabor().build(1).expect("build gabor");
        let spec = TenantSpec::new("gabor", spec_net);
        let config = chaos_config(2, 0xC1A0);
        for t in &cluster.tenants {
            assert!(!t.samples.is_empty());
            for sample in &t.samples {
                let accel = Accelerator::new(config.shards[sample.shard].accel.clone());
                let prep = accel.prepare(&spec.network).expect("prepare");
                let plan = FaultPlan::new(sample.faults).with_salt(crate::service::request_salt(
                    sample.tenant,
                    sample.seq,
                    sample.attempt,
                ));
                let mut session = prep.session_with_faults(plan);
                let input = spec.build_input(sample.seq).expect("input");
                let inference = session.infer(&input).expect("replay");
                assert_eq!(
                    crate::stats::hash_output(inference.output()),
                    sample.output_hash,
                    "sample (seq {}, shard {}) diverged",
                    sample.seq,
                    sample.shard
                );
            }
        }
    }

    #[test]
    fn invalid_cluster_specs_are_typed_errors() {
        let net = zoo::gabor().build(1).expect("build gabor");
        assert_eq!(
            Cluster::new(ClusterConfig::default(), vec![]).err(),
            Some(ServeError::NoTenants)
        );
        let no_shards = ClusterConfig {
            shards: vec![],
            ..ClusterConfig::default()
        };
        assert_eq!(
            Cluster::new(no_shards, vec![TenantSpec::new("g", net.clone())]).err(),
            Some(ServeError::NoWorkers)
        );
        let dead_shard = ClusterConfig {
            shards: vec![ShardSpec::new("s0").virtual_workers(0)],
            ..ClusterConfig::default()
        };
        assert_eq!(
            Cluster::new(dead_shard, vec![TenantSpec::new("g", net.clone())]).err(),
            Some(ServeError::NoWorkers)
        );
        let bad_queue = TenantSpec::new("g", net).queue_capacity(0);
        assert!(matches!(
            Cluster::new(ClusterConfig::default(), vec![bad_queue]),
            Err(ServeError::Spec { .. })
        ));
    }
}
