//! Shard health machinery: heartbeat-driven failure detection, the
//! drain/respawn state machine, and failover retry budgets.
//!
//! A shard in a [`Cluster`](crate::Cluster) is always in exactly one
//! [`ShardState`]:
//!
//! ```text
//!             slow / sram-burst episode seen at heartbeat
//!   Healthy ─────────────────────────────────────────────▶ Draining
//!      ▲  ◀──────────────────────────────────────────────────┘
//!      │        episode over and queues drained (heartbeat)
//!      │
//!      │  crash onset + miss_threshold missed heartbeats
//!      └──────────────────────────────────────────────────▶ Down
//!         ◀───────────────────────────────────────────────────┘
//!                  warm respawn at `detection + respawn_cycles`
//! ```
//!
//! All transitions happen at deterministic virtual-clock instants
//! (heartbeat ticks, respawn deadlines, drain deadlines), so the whole
//! health history of a chaos scenario is a pure function of the scenario
//! seed — the same property the word-level fault plans have.

/// Tunables for shard failure detection and recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Virtual cycles between cluster heartbeat sweeps. Detection,
    /// drain transitions, and healing all happen on these ticks.
    pub heartbeat_cycles: u64,
    /// Consecutive missed heartbeats before a crashed shard is declared
    /// down (a real monitor cannot distinguish "slow to answer" from
    /// "dead" on a single miss).
    pub miss_threshold: u32,
    /// How long a draining shard gets to empty its queues before the
    /// remainder is forcibly migrated (a `DrainTimeout` event).
    pub drain_timeout: u64,
    /// Cycles between declaring a shard down and its warm replacement
    /// accepting work again.
    pub respawn_cycles: u64,
    /// Grace period after a crash onset before lost in-flight work is
    /// eligible for failover — models the client-side timeout that has
    /// to expire before anyone knows the response is never coming.
    pub crash_timeout: u64,
    /// Base of the exponential failover backoff: a request on failover
    /// round `r` waits `backoff_base << r` cycles before re-routing.
    pub backoff_base: u64,
    /// Maximum failover rounds per request. Every migration, in-flight
    /// loss, and failed re-route consumes one round; exceeding the
    /// budget is a terminal `RetryBudgetExhausted` outcome.
    pub retry_budget: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            heartbeat_cycles: 5_000,
            miss_threshold: 2,
            drain_timeout: 30_000,
            respawn_cycles: 20_000,
            crash_timeout: 8_000,
            backoff_base: 1_000,
            retry_budget: 3,
        }
    }
}

/// Where a shard is in the detection/drain/respawn lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Accepting and executing work. An undetected crash still reports
    /// `Healthy` — the router keeps sending work to it until the
    /// heartbeat monitor notices, exactly like a real cluster.
    Healthy,
    /// A degradation episode was detected: the router stops admitting
    /// new work, queued work keeps executing (at the degraded rate).
    Draining {
        /// Virtual cycle by which the queues must be empty; whatever
        /// remains is forcibly migrated.
        deadline: u64,
    },
    /// Crash detected; queues were migrated and the shard is dead until
    /// its warm replacement comes up.
    Down {
        /// Virtual cycle the replacement starts accepting work.
        respawn_at: u64,
    },
}

impl ShardState {
    /// Stable lowercase label for reports and event logs.
    pub fn label(&self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Draining { .. } => "draining",
            ShardState::Down { .. } => "down",
        }
    }

    /// Whether the router may place new work on the shard.
    pub fn is_accepting(&self) -> bool {
        matches!(self, ShardState::Healthy)
    }
}

/// Per-shard health bookkeeping inside the cluster event loop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardHealth {
    pub(crate) state: ShardState,
    /// Consecutive heartbeat misses since the last healthy response.
    pub(crate) misses: u32,
    /// The next crash onset on this shard's timeline, if the fault plan
    /// schedules one within the scan horizon. `onset <= now` means the
    /// shard is dead (possibly not yet detected).
    pub(crate) crash_onset: Option<u64>,
}

impl ShardHealth {
    pub(crate) fn new(crash_onset: Option<u64>) -> ShardHealth {
        ShardHealth {
            state: ShardState::Healthy,
            misses: 0,
            crash_onset,
        }
    }

    /// Whether the shard's executor is dead at cycle `now` (crash onset
    /// reached or crash already detected) — dispatch must skip it even
    /// while the router, not yet knowing, still queues work on it.
    pub(crate) fn is_dead(&self, now: u64) -> bool {
        matches!(self.state, ShardState::Down { .. })
            || self.crash_onset.is_some_and(|onset| onset <= now)
    }
}

/// Exponential failover backoff: `base << round`, shift-capped so large
/// rounds saturate instead of overflowing, and never zero so a failed
/// re-route always moves the clock forward.
pub(crate) fn backoff(base: u64, round: u32) -> u64 {
    base.saturating_mul(1u64 << round.min(16)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_and_acceptance() {
        assert_eq!(ShardState::Healthy.label(), "healthy");
        assert_eq!(ShardState::Draining { deadline: 5 }.label(), "draining");
        assert_eq!(ShardState::Down { respawn_at: 9 }.label(), "down");
        assert!(ShardState::Healthy.is_accepting());
        assert!(!ShardState::Draining { deadline: 5 }.is_accepting());
        assert!(!ShardState::Down { respawn_at: 9 }.is_accepting());
    }

    #[test]
    fn dead_tracks_onset_and_detection() {
        let mut h = ShardHealth::new(Some(100));
        assert!(!h.is_dead(99));
        assert!(h.is_dead(100));
        h.state = ShardState::Down { respawn_at: 500 };
        h.crash_onset = None;
        assert!(h.is_dead(0));
    }

    #[test]
    fn backoff_grows_and_saturates() {
        assert_eq!(backoff(1_000, 0), 1_000);
        assert_eq!(backoff(1_000, 3), 8_000);
        assert_eq!(backoff(0, 5), 1); // never stalls the clock
        assert_eq!(backoff(u64::MAX, 40), u64::MAX); // saturates
    }
}
