//! Property-based determinism contracts for the multi-tenant service:
//! for a fixed seed, per-tenant outcomes (ok/degraded/dropped/rejected
//! counts *and* the output-bit digests) are independent of how many
//! physical threads execute the batches and of the order in which
//! same-cycle admissions are processed — and every output served is
//! bit-identical to a direct `Session::infer` under the same salted
//! fault plan.

use proptest::prelude::*;
use shidiannao_cnn::zoo;
use shidiannao_core::Accelerator;
use shidiannao_faults::{FaultConfig, FaultPlan, SramProtection};
use shidiannao_serve::{
    hash_output, request_salt, InferenceService, InputSource, ServeConfig, ServiceReport,
    TenantSpec, Traffic,
};

/// A small mixed scenario shaped by the proptest inputs: one clean
/// open-loop tenant, one faulty streaming tenant, one closed-loop
/// tenant, all on the tiny Gabor network so cases stay fast.
fn scenario(
    seed: u64,
    virtual_workers: usize,
    physical_threads: usize,
    admission_salt: u64,
) -> ServiceReport {
    let gabor = || zoo::gabor().build(1).expect("build gabor");
    let clean = TenantSpec::new("clean", gabor())
        .traffic(Traffic::Open {
            period: 900,
            jitter: 400,
            count: 12,
        })
        .source(InputSource::Random { seed })
        .weight(2)
        .queue_capacity(3)
        .deadline_cycles(6_000);
    let faulty = TenantSpec::new("faulty-stream", gabor())
        .traffic(Traffic::Open {
            period: 700,
            jitter: 200,
            count: 16,
        })
        .source(InputSource::Stream {
            seed,
            frame: (40, 40),
            stride: (20, 20),
        })
        .faults(FaultConfig::uniform(
            seed ^ 0xfa017,
            1e-4,
            SramProtection::Parity,
        ))
        .queue_capacity(2)
        .deadline_cycles(4_000)
        .max_retries(2);
    let closed = TenantSpec::new("closed", gabor())
        .traffic(Traffic::Closed {
            clients: 2,
            think: 1_500,
            count: 10,
        })
        .source(InputSource::Random { seed: seed ^ 1 })
        .weight(3)
        .deadline_cycles(8_000);
    let config = ServeConfig {
        virtual_workers,
        physical_threads,
        admission_salt,
        ..ServeConfig::default()
    };
    InferenceService::new(config, vec![clean, faulty, closed])
        .expect("valid scenario")
        .run()
        .expect("scenario runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full report — every counter, histogram bucket, latency, and
    /// output digest — is byte-identical whether batches execute on one
    /// OS thread or several, and regardless of same-cycle admission
    /// processing order.
    #[test]
    fn report_independent_of_workers_and_interleaving(
        seed in 0u64..1_000,
        virtual_workers in 1usize..4,
        threads in 2usize..5,
        salt in 1u64..u64::MAX,
    ) {
        let baseline = scenario(seed, virtual_workers, 1, 0);
        prop_assert!(baseline.accounting_consistent());
        let wide = scenario(seed, virtual_workers, threads, 0);
        prop_assert_eq!(&baseline, &wide);
        let permuted = scenario(seed, virtual_workers, 1, salt);
        prop_assert_eq!(&baseline, &permuted);
    }

    /// Replay contract: every retained sample re-executes bit-identically
    /// through a direct session with the same salted plan.
    #[test]
    fn served_outputs_match_direct_inference(
        seed in 0u64..1_000,
        virtual_workers in 1usize..3,
    ) {
        let report = scenario(seed, virtual_workers, 2, 0);
        let gabor = zoo::gabor().build(1).expect("build gabor");
        let accel = Accelerator::new(ServeConfig::default().accel);
        let prep = accel.prepare(&gabor).expect("prepare");
        // Rebuild each tenant's spec exactly as `scenario` does, just
        // for input reconstruction.
        let specs = [
            TenantSpec::new("clean", gabor.clone()).source(InputSource::Random { seed }),
            TenantSpec::new("faulty-stream", gabor.clone())
                .source(InputSource::Stream { seed, frame: (40, 40), stride: (20, 20) })
                .faults(FaultConfig::uniform(seed ^ 0xfa017, 1e-4, SramProtection::Parity)),
            TenantSpec::new("closed", gabor.clone())
                .source(InputSource::Random { seed: seed ^ 1 }),
        ];
        for (tenant, (spec, tr)) in specs.iter().zip(&report.tenants).enumerate() {
            prop_assert_eq!(&spec.name, &tr.name);
            for sample in &tr.stats.samples {
                let plan = FaultPlan::new(spec.faults)
                    .with_salt(request_salt(tenant, sample.seq, sample.attempt));
                let mut session = prep.session_with_faults(plan);
                let input = spec.build_input(sample.seq).expect("input");
                let inference = session.infer(&input).expect("sampled attempt was clean");
                prop_assert_eq!(
                    hash_output(inference.output()),
                    sample.output_hash,
                    "tenant {} seq {} diverged from direct inference",
                    tenant,
                    sample.seq
                );
            }
        }
    }
}
