//! Property-based contracts for the sharded cluster:
//!
//! * for random shard counts, failure seeds, and tenant mixes, the
//!   [`ClusterReport`] is invariant to `physical_threads` and to the
//!   salted shard scan order, and the six-class outcome ledger balances
//!   (no request lost or double-counted under any injected failure
//!   pattern),
//! * a zero-failure 1-shard cluster is bit-identical to a plain
//!   [`InferenceService`] run,
//! * [`FixedHistogram::merge`] of any partition of a sample set equals
//!   recording the union directly.

use proptest::prelude::*;
use shidiannao_cnn::zoo;
use shidiannao_serve::{
    Cluster, ClusterConfig, ClusterReport, FixedHistogram, HealthConfig, InferenceService,
    InputSource, ServeConfig, ShardFaultConfig, ShardSpec, SramProtection, TenantSpec, Traffic,
};

/// A mixed three-tenant scenario on the tiny Gabor network: one clean
/// open-loop tenant, one streaming tenant, one closed-loop tenant.
fn tenants(seed: u64) -> Vec<TenantSpec> {
    let gabor = || zoo::gabor().build(1).expect("build gabor");
    vec![
        TenantSpec::new("clean", gabor())
            .traffic(Traffic::Open {
                period: 900,
                jitter: 400,
                count: 12,
            })
            .source(InputSource::Random { seed })
            .weight(2)
            .queue_capacity(3)
            .deadline_cycles(60_000),
        TenantSpec::new("stream", gabor())
            .traffic(Traffic::Open {
                period: 700,
                jitter: 200,
                count: 14,
            })
            .source(InputSource::Stream {
                seed,
                frame: (40, 40),
                stride: (20, 20),
            })
            .queue_capacity(2)
            .deadline_cycles(40_000)
            .max_retries(2),
        TenantSpec::new("closed", gabor())
            .traffic(Traffic::Closed {
                clients: 2,
                think: 1_500,
                count: 10,
            })
            .source(InputSource::Random { seed: seed ^ 1 })
            .weight(3)
            .deadline_cycles(80_000),
    ]
}

/// A chaos cluster of `shards` homogeneous shards with a seeded
/// shard-failure plan aggressive enough to exercise every episode kind
/// across the proptest seed range.
fn chaos_cluster(
    shards: usize,
    fault_seed: u64,
    physical_threads: usize,
    shard_salt: u64,
) -> ClusterReport {
    let config = ClusterConfig {
        shards: (0..shards)
            .map(|s| ShardSpec::new(format!("s{s}")))
            .collect(),
        physical_threads,
        shard_salt,
        max_batch: 3,
        shard_faults: ShardFaultConfig {
            seed: fault_seed,
            epoch_cycles: 8_000,
            crash_rate: 0.15,
            slow_rate: 0.2,
            sram_burst_rate: 0.2,
            min_duration: 4_000,
            max_duration: 16_000,
            burst_flip_rate: 1e-4,
            burst_protection: SramProtection::Parity,
        },
        health: HealthConfig {
            heartbeat_cycles: 2_000,
            miss_threshold: 2,
            drain_timeout: 10_000,
            respawn_cycles: 12_000,
            crash_timeout: 3_000,
            backoff_base: 500,
            retry_budget: 4,
        },
        ..ClusterConfig::default()
    };
    Cluster::new(config, tenants(fault_seed ^ 0x7E4A))
        .expect("valid cluster")
        .run()
        .expect("cluster runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chaos determinism: the full report — every counter, event line,
    /// histogram bucket, and output digest — is byte-identical across
    /// physical thread counts and shard scan orders, and the ledger
    /// balances for every tenant.
    #[test]
    fn chaos_report_deterministic_and_balanced(
        fault_seed in 0u64..1_000,
        shards in 1usize..5,
        threads in 2usize..5,
        salt in 1u64..u64::MAX,
    ) {
        let baseline = chaos_cluster(shards, fault_seed, 1, 0);
        prop_assert!(baseline.accounting_consistent(), "ledger: {baseline:?}");
        // No request vanished: issued covers every terminal class.
        for t in &baseline.tenants {
            let terminal = t.stats.ok + t.stats.degraded + t.stats.dropped_faulty
                + t.stats.dropped_deadline + t.stats.rejected + t.budget_exhausted;
            prop_assert_eq!(t.stats.issued, terminal, "tenant {} leaked requests", t.name);
        }
        let wide = chaos_cluster(shards, fault_seed, threads, 0);
        prop_assert_eq!(&baseline, &wide);
        let permuted = chaos_cluster(shards, fault_seed, 1, salt);
        prop_assert_eq!(&baseline, &permuted);
    }

    /// Reduction: a 1-shard cluster with a zero shard-fault plan is the
    /// plain service, bit for bit — same per-tenant stats (counters,
    /// histogram, depth high-water, samples, output digests) and the
    /// same end cycle.
    #[test]
    fn single_shard_zero_faults_reduces_to_service(
        seed in 0u64..1_000,
        workers in 1usize..4,
        max_batch in 1usize..4,
    ) {
        let service_config = ServeConfig {
            virtual_workers: workers,
            physical_threads: 1,
            max_batch,
            ..ServeConfig::default()
        };
        let expected = InferenceService::new(service_config, tenants(seed))
            .expect("valid service")
            .run()
            .expect("service runs");
        let cluster_config = ClusterConfig {
            shards: vec![ShardSpec::new("only").virtual_workers(workers)],
            physical_threads: 1,
            max_batch,
            ..ClusterConfig::default()
        };
        let report = Cluster::new(cluster_config, tenants(seed))
            .expect("valid cluster")
            .run()
            .expect("cluster runs");
        prop_assert_eq!(report.end_cycles, expected.end_cycles);
        for (c, s) in report.tenants.iter().zip(&expected.tenants) {
            prop_assert_eq!(&c.stats, &s.stats, "tenant {} diverged", &c.name);
            prop_assert_eq!(
                c.budget_exhausted + c.rerouted + c.migrated + c.lost_inflight + c.failovers,
                0
            );
        }
        prop_assert_eq!(report.crashes_detected + report.drains + report.respawns, 0);
    }

    /// Histogram merge law: merging the histograms of any partition of a
    /// sample set equals recording the union into one histogram —
    /// including counts, sums, maxima, and every reported percentile.
    #[test]
    fn histogram_merge_equals_record_of_union(
        values in proptest::collection::vec(0u64..2_000_000, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let mut whole = FixedHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = FixedHistogram::new();
        for &v in &values[..split] {
            left.record(v);
        }
        let mut right = FixedHistogram::new();
        for &v in &values[split..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.count(), values.len() as u64);
        prop_assert_eq!(left.max(), whole.max());
        for pct in [50, 95, 99, 100] {
            prop_assert_eq!(left.percentile(pct), whole.percentile(pct));
        }
    }
}
