//! The §10.2 multi-map packing alternative: still bit-exact, measurably
//! better utilization on small-map workloads, measurably worse buffer
//! traffic — the quantified version of the paper's "poor trade-off"
//! judgement.

use shidiannao_cnn::{zoo, ConvSpec, NetworkBuilder};
use shidiannao_core::{Accelerator, AcceleratorConfig};

#[test]
fn packing_is_bit_exact_on_all_benchmarks() {
    for builder in zoo::all() {
        let net = builder.build(5).unwrap();
        let input = net.random_input(6);
        let golden = net.forward_fixed(&input);
        let run = Accelerator::new(AcceleratorConfig::paper().with_multi_map_packing())
            .run(&net, &input)
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        assert_eq!(run.output(), golden.output(), "{}", net.name());
    }
}

#[test]
fn packing_speeds_up_simple_conv() {
    // Simple Conv's 5×5 C2 maps are the §10.2 motivating case — but 5×5
    // does not pack into 8×8 (only one fits). The 1×1-map C5-style layers
    // and small-map layers do. Use CNP, whose C5 output maps are 1×1
    // (80 maps on 64 PEs: utilization 1/64 without packing).
    let net = zoo::cnp().build(5).unwrap();
    let input = net.random_input(6);
    let base = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let packed = Accelerator::new(AcceleratorConfig::paper().with_multi_map_packing())
        .run(&net, &input)
        .unwrap();
    assert_eq!(base.output(), packed.output());
    // C5 is layer index 5 (Load, C1, S2, C3, S4, C5).
    let base_c5 = &base.stats().layers()[5];
    let packed_c5 = &packed.stats().layers()[5];
    assert_eq!(base_c5.label, "C5");
    assert!(
        packed_c5.cycles < base_c5.cycles / 10,
        "packing should collapse the 1x1-map layer: {} vs {}",
        packed_c5.cycles,
        base_c5.cycles
    );
    assert!(packed_c5.pe_utilization() > 5.0 * base_c5.pe_utilization());
    assert!(packed.stats().cycles() < base.stats().cycles());
}

#[test]
fn packing_pays_in_buffer_accesses() {
    // The "large MUX mesh" cost: per-cycle NB accesses multiply by the
    // pack factor and SB broadcasts are no longer shared.
    let net = NetworkBuilder::new("small-maps", 2, (8, 8))
        .conv(ConvSpec::new(8, (5, 5))) // 4×4 outputs: 4 maps pack
        .build(5)
        .unwrap();
    let input = net.random_input(6);
    let base = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let packed = Accelerator::new(AcceleratorConfig::paper().with_multi_map_packing())
        .run(&net, &input)
        .unwrap();
    assert_eq!(base.output(), packed.output());
    let (b, p) = (base.stats().total(), packed.stats().total());
    assert!(p.cycles < b.cycles, "{} vs {}", p.cycles, b.cycles);
    // The MUX-mesh cost: per-cycle SB streams and NB accesses multiply by
    // the pack factor (four kernel broadcasts and four gathers per cycle
    // instead of one).
    let per_cycle = |bytes: u64, t: &shidiannao_core::LayerStats| bytes as f64 / t.cycles as f64;
    assert!(per_cycle(p.sb.read_bytes, &p) > 2.0 * per_cycle(b.sb.read_bytes, &b));
    assert!(per_cycle(p.nbin.read_accesses, &p) > 2.0 * per_cycle(b.nbin.read_accesses, &b));
    // And the inter-PE FIFOs sit unused in packed mode.
    assert_eq!(p.fifo_pops, 0);
    assert!(b.fifo_pops > 0);
}

#[test]
fn packing_leaves_large_maps_on_the_standard_path() {
    // LeNet-5 C1 (28×28 maps) cannot pack; stats must be identical with
    // and without the flag.
    let net = NetworkBuilder::new("big-maps", 1, (32, 32))
        .conv(ConvSpec::new(6, (5, 5)))
        .build(5)
        .unwrap();
    let input = net.random_input(6);
    let base = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let packed = Accelerator::new(AcceleratorConfig::paper().with_multi_map_packing())
        .run(&net, &input)
        .unwrap();
    assert_eq!(base.stats(), packed.stats());
}

#[test]
fn packing_handles_partial_connectivity() {
    // Packed maps with different input sets: idle sub-blocks on
    // non-connected inputs, still bit-exact.
    let net = NetworkBuilder::new("partial", 4, (6, 6))
        .conv(ConvSpec::new(6, (3, 3)).with_pairs(9)) // 4×4 outputs
        .build(5)
        .unwrap();
    let input = net.random_input(6);
    let golden = net.forward_fixed(&input);
    let run = Accelerator::new(AcceleratorConfig::paper().with_multi_map_packing())
        .run(&net, &input)
        .unwrap();
    assert_eq!(run.output(), golden.output());
}
