//! Microarchitectural invariants and the paper's §8.1 data-reuse claims.

use shidiannao_cnn::{zoo, ConvSpec, NetworkBuilder};
use shidiannao_core::{Accelerator, AcceleratorConfig, ReadMode};

/// §8.1's toy example: 2 × 2 PEs, 3 × 3 kernel, 1 × 1 stride — "inter-PE
/// data propagations reduce by 44.4 % the number of reads to NBin".
#[test]
fn toy_example_reuse_is_exactly_44_4_percent() {
    let net = NetworkBuilder::new("toy", 1, (4, 4))
        .conv(ConvSpec::new(1, (3, 3)))
        .build(1)
        .unwrap();
    let input = net.random_input(2);
    let cfg = AcceleratorConfig::with_pe_grid(2, 2);
    let with = Accelerator::new(cfg.clone()).run(&net, &input).unwrap();
    let without = Accelerator::new(cfg.without_propagation())
        .run(&net, &input)
        .unwrap();
    // Count neurons read during the conv layer (layer index 1 after Load).
    let read = |o: &shidiannao_core::RunOutcome| o.stats().layers()[1].nbin.read_bytes / 2;
    let (w, wo) = (read(&with), read(&without));
    assert_eq!(wo, 36, "9 cycles × 4 PEs without propagation");
    assert_eq!(
        w, 20,
        "4 + 2·2 (mode f) + 2 (mode c) + 2·2·2 with propagation"
    );
    let reduction = 1.0 - w as f64 / wo as f64;
    assert!(
        (reduction - 0.444).abs() < 0.001,
        "reduction {reduction} != 44.4 %"
    );
}

/// §8.1's full-scale claim on LeNet-5 C1 with 64 PEs: the paper reports a
/// 73.88 % NBin-traffic reduction; our cycle-accurate count of the same
/// dataflow gives 82.3 % (the paper's number is not reconstructible from
/// its own toy-example arithmetic — see EXPERIMENTS.md). Assert the
/// reduction is large and in that band.
#[test]
fn lenet_c1_reuse_reduction_band() {
    let net = zoo::lenet5().build(1).unwrap();
    let input = net.random_input(3);
    let with = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let without = Accelerator::new(AcceleratorConfig::paper().without_propagation())
        .run(&net, &input)
        .unwrap();
    let read = |o: &shidiannao_core::RunOutcome| o.stats().layers()[1].nbin.read_bytes as f64;
    let reduction = 1.0 - read(&with) / read(&without);
    assert!(
        (0.70..0.90).contains(&reduction),
        "C1 reduction {reduction}"
    );
}

#[test]
fn fifo_peaks_equal_strides() {
    // §5.1 FIFO sizing: depth Sx for FIFO-H, Sy for FIFO-V.
    for (sx, sy) in [(1usize, 1usize), (2, 1), (1, 2), (2, 2)] {
        let net = NetworkBuilder::new("s", 1, (21, 21))
            .conv(ConvSpec::new(2, (7, 7)).with_stride((sx, sy)))
            .build(1)
            .unwrap();
        let run = Accelerator::new(AcceleratorConfig::paper())
            .run(&net, &net.random_input(1))
            .unwrap();
        let total = run.stats().total();
        assert_eq!(total.fifo_h_peak, sx, "FIFO-H depth for stride {sx}x{sy}");
        assert_eq!(total.fifo_v_peak, sy, "FIFO-V depth for stride {sx}x{sy}");
    }
}

#[test]
fn conv_uses_the_modes_the_paper_assigns() {
    // §7.1: convolutional layers use modes (a)/(b), (c), (e in rare
    // strided cases), and (f); never the classifier broadcast (d).
    let net = zoo::lenet5().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    let c1 = &run.stats().layers()[1];
    assert!(c1.reads_by_mode[ReadMode::A as usize] > 0, "mode (a) tiles");
    assert!(c1.reads_by_mode[ReadMode::C as usize] > 0, "mode (c) rows");
    assert!(
        c1.reads_by_mode[ReadMode::F as usize] > 0,
        "mode (f) columns"
    );
    assert_eq!(c1.reads_by_mode[ReadMode::D as usize], 0, "no mode (d)");
}

#[test]
fn classifier_uses_broadcast_mode_only() {
    let net = zoo::lenet5().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    // F5 is layer index 5 (after Load, C1, S2, C3, S4).
    let f5 = &run.stats().layers()[5];
    assert_eq!(f5.label, "F5");
    assert!(f5.reads_by_mode[ReadMode::D as usize] > 0);
    for m in [
        ReadMode::A,
        ReadMode::B,
        ReadMode::C,
        ReadMode::E,
        ReadMode::F,
    ] {
        assert_eq!(f5.reads_by_mode[m as usize], 0, "classifier used {m}");
    }
    // 120 outputs = two PE groups; each re-broadcasts all 400 inputs
    // (mode (d)) and reads a 64-wide synapse row per cycle, plus one
    // bias load per group (64- and 56-wide).
    assert_eq!(f5.nbin.read_accesses, 800);
    assert_eq!(f5.sb.read_bytes, 800 * 64 * 2 + (64 + 56) * 2);
}

#[test]
fn pooling_uses_strided_gathers() {
    let net = zoo::lenet5().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    let s2 = &run.stats().layers()[2];
    assert_eq!(s2.label, "S2");
    assert!(s2.reads_by_mode[ReadMode::E as usize] > 0, "mode (e)");
    assert_eq!(s2.fifo_pops, 0, "non-overlapping pooling never propagates");
    assert_eq!(s2.sb.read_bytes, 0, "pooling has no synapses");
}

#[test]
fn write_blocks_respect_column_parity() {
    // Fig. 11: output blocks land alternately in bank groups 0 and 1.
    // LeNet-5 C1 output is 28 wide = 4 blocks per row: groups 0,1,0,1.
    let net = zoo::lenet5().build(1).unwrap();
    let input = net.random_input(1);
    // Drive the buffer directly to inspect the histogram.
    use shidiannao_core::{LayerStats, NeuronBuffer};
    use shidiannao_fixed::Fx;
    let mut nb = NeuronBuffer::new(8, 8, 64 * 1024);
    nb.begin_output(28, 8, 1).unwrap();
    let mut stats = LayerStats::new("t");
    for bx in 0..4 {
        let w = if bx < 3 { 8 } else { 4 };
        let vals = vec![Fx::ZERO; w * 8];
        nb.write_block(0, (bx * 8, 0), (w, 8), &vals, &mut stats);
    }
    assert_eq!(nb.write_group_histogram(), [2, 2]);
    let _ = (net, input);
}

#[test]
fn simple_conv_underutilizes_pes() {
    // §10.2: Simple Conv's 5×5 C2 maps leave most of an 8×8 array idle —
    // the reason ShiDianNao loses to DianNao on this one benchmark.
    let net = zoo::simple_conv().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    let c2 = &run.stats().layers()[2];
    assert_eq!(c2.label, "C2");
    let util = c2.pe_utilization();
    assert!(
        (0.30..0.45).contains(&util),
        "C2 utilization {util} should be ≈ 25/64"
    );
    // By contrast LeNet-5 C1 keeps the array mostly busy.
    let lenet = zoo::lenet5().build(1).unwrap();
    let run2 = Accelerator::new(AcceleratorConfig::paper())
        .run(&lenet, &lenet.random_input(1))
        .unwrap();
    assert!(run2.stats().layers()[1].pe_utilization() > 0.7);
}

#[test]
fn bandwidth_without_propagation_matches_analytic_form() {
    // Fig. 7 sanity anchor: with N PEs and no propagation, a conv layer
    // reads 2·N bytes of neurons plus 2 bytes of kernel per cycle —
    // 52 GB/s at 25 PEs and 1 GHz.
    let net = NetworkBuilder::new("f7", 1, (34, 34))
        .conv(ConvSpec::new(1, (5, 5)))
        .build(1)
        .unwrap();
    let cfg = AcceleratorConfig::with_pe_grid(5, 5).without_propagation();
    let run = Accelerator::new(cfg)
        .run(&net, &net.random_input(1))
        .unwrap();
    let conv = &run.stats().layers()[1];
    // Ignore the epilogue cycles: bytes/cycle ≈ 52 within a few percent.
    let bpc = conv.internal_bytes_per_cycle();
    assert!((48.0..=52.0).contains(&bpc), "bytes/cycle = {bpc}");
}

#[test]
fn hfsm_transitions_are_exercised() {
    let net = zoo::lenet5().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    // Every conv cycle beyond the first in a row walks the phase ring;
    // the FIFO counters prove both H and V propagation happened.
    let total = run.stats().total();
    assert!(total.fifo_pops > 0);
    assert!(total.fifo_pushes > total.fifo_pops);
}

/// The closed-form NBin read count for one window pass (derived from the
/// Fig. 13 schedule): the fill tile reads `w·h`, each of the `Ky` kernel
/// rows reads `Kx − 1` mode-(f) columns of `h` neurons, and each of the
/// `Ky − 1` row steps reads a mode-(c) row of `w` neurons.
#[test]
fn conv_pass_reads_match_the_closed_form() {
    for (w, h, kx, ky) in [
        (8usize, 8usize, 5usize, 5usize),
        (4, 8, 3, 7),
        (8, 3, 2, 2),
        (5, 5, 1, 4),
    ] {
        let dim_x = w + kx - 1;
        let dim_y = h + ky - 1;
        let net = NetworkBuilder::new("cf", 1, (dim_x, dim_y))
            .conv(ConvSpec::new(1, (kx, ky)))
            .build(1)
            .unwrap();
        let run = Accelerator::new(AcceleratorConfig::with_pe_grid(w, h))
            .run(&net, &net.random_input(1))
            .unwrap();
        let measured = run.stats().layers()[1].nbin.read_bytes / 2;
        let expected = (w * h + (kx - 1) * h * ky + (ky - 1) * w) as u64;
        assert_eq!(measured, expected, "w={w} h={h} kx={kx} ky={ky}");
    }
}

/// Without propagation the same pass reads `w·h·Kx·Ky` neurons — the
/// Fig. 7 "without" series in closed form.
#[test]
fn conv_pass_reads_without_propagation_match_the_closed_form() {
    let (w, h, kx, ky) = (8usize, 8usize, 5usize, 5usize);
    let net = NetworkBuilder::new("cf", 1, (w + kx - 1, h + ky - 1))
        .conv(ConvSpec::new(1, (kx, ky)))
        .build(1)
        .unwrap();
    let run = Accelerator::new(AcceleratorConfig::with_pe_grid(w, h).without_propagation())
        .run(&net, &net.random_input(1))
        .unwrap();
    let measured = run.stats().layers()[1].nbin.read_bytes / 2;
    assert_eq!(measured, (w * h * kx * ky) as u64);
}

/// Effective throughput never exceeds the configured peak, and busy
/// benchmarks approach it (the paper's 194 GOP/s headline is a peak-ops
/// figure; our accounting peaks at 128 GOP/s for 64 MACs — see
/// EXPERIMENTS.md).
#[test]
fn effective_gops_is_bounded_by_peak() {
    for name in ["LeNet-5", "FaceAlign", "SimpleConv"] {
        let net = zoo::by_name(name).unwrap().build(1).unwrap();
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let run = accel.run(&net, &net.random_input(1)).unwrap();
        let eff = run.effective_gops();
        assert!(
            eff > 0.0 && eff <= accel.config().peak_gops() * 1.01,
            "{name}: {eff}"
        );
    }
    // FaceAlign runs at >80 % utilization: effective must be close to peak.
    let net = zoo::face_align().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    assert!(run.effective_gops() > 90.0, "{}", run.effective_gops());
}
