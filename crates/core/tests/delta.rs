//! Cross-frame NBin residency (delta load) properties: for random
//! topologies, PE grids, and dirty sets, `Session::infer_delta` is
//! bit-identical in outputs and post-Load statistics to a cold
//! `Session::infer`, charges the Load phase for exactly the dirty rows,
//! and degrades to full-stream accounting when the optimizer pass is
//! disarmed (DESIGN.md §3k).

use proptest::prelude::*;
use shidiannao_cnn::{ConvSpec, FcSpec, NetworkBuilder, PoolSpec};
use shidiannao_core::{Accelerator, AcceleratorConfig, NbResidency, OptConfig};
use shidiannao_fixed::Fx;

fn build_net(in_maps: usize, w: usize, h: usize, k: usize, seed: u64) -> shidiannao_cnn::Network {
    NetworkBuilder::new("delta", in_maps, (w, h))
        .conv(ConvSpec::new(2, (k, k)))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(5))
        .build(seed)
        .expect("network builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold delta == plain infer exactly; a warm identical re-run
    /// streams zero rows with a zero-cycle Load phase; dirtying rows
    /// charges exactly those rows — and every variant's outputs and
    /// post-Load stats stay bit-identical to a cold session.
    #[test]
    fn delta_load_is_bit_identical_and_exactly_charged(
        in_maps in 1usize..3,
        w in 8usize..16,
        h in 8usize..16,
        k in 2usize..5,
        px in 2usize..9,
        py in 2usize..9,
        dirty_rows in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        seed in 0u64..1000,
    ) {
        prop_assume!(w >= k && h >= k);
        let net = build_net(in_maps, w, h, k, seed);
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));
        let prepared = accel.prepare(&net).expect("network fits");
        prop_assert!(prepared.delta_load_capable());
        let input = net.random_input(seed ^ 0x5EED);

        // Reference: a cold session's plain infer.
        let mut cold = prepared.session();
        let reference = cold.infer(&input).expect("clean run");

        let mut session = prepared.session();
        let mut residency = NbResidency::new();

        // Cold delta run: everything streams, stats match plain infer
        // counter for counter.
        let (first, d0) = session.infer_delta(&input, &mut residency).expect("clean run");
        prop_assert_eq!(d0.rows_total, in_maps * h);
        prop_assert_eq!(d0.rows_streamed, d0.rows_total);
        prop_assert_eq!(d0.bytes_streamed, d0.bytes_total);
        prop_assert_eq!(d0.bytes_total, (input.neuron_count() * 2) as u64);
        prop_assert!(!d0.any_saved());
        prop_assert_eq!(first.output(), reference.output());
        prop_assert_eq!(first.stats().layers(), reference.stats().layers());
        prop_assert_eq!(first.stats().cycles(), reference.stats().cycles());
        prop_assert!(residency.is_warm());
        prop_assert_eq!(residency.rows(), d0.rows_total);

        // Warm identical re-run: zero rows stream, the Load phase costs
        // zero cycles and zero NBin writes, and everything downstream is
        // untouched.
        let (second, d1) = session.infer_delta(&input, &mut residency).expect("clean run");
        prop_assert_eq!(d1.rows_streamed, 0);
        prop_assert_eq!(d1.bytes_streamed, 0);
        prop_assert!(d1.any_saved());
        prop_assert_eq!(second.output(), reference.output());
        let warm_load = &second.stats().layers()[0];
        prop_assert_eq!(warm_load.cycles, 0);
        prop_assert_eq!(warm_load.nbin.write_bytes, 0);
        prop_assert_eq!(warm_load.nbin.write_accesses, 0);
        prop_assert_eq!(
            second.stats().layers()[1..].to_vec(),
            reference.stats().layers()[1..].to_vec()
        );

        // Dirty a few rows: the Load phase charges exactly those rows,
        // and outputs match a cold session run on the mutated input.
        let mut mutated = input.clone();
        let mut touched = std::collections::BTreeSet::new();
        for (m, y) in dirty_rows {
            let (m, y) = (m % in_maps, y % h);
            let map = mutated.get_mut(m).expect("map in range");
            let old = map[(0, y)];
            map[(0, y)] = if old == Fx::MAX { Fx::MIN } else { Fx::MAX };
            touched.insert(m * h + y);
        }
        let (third, d2) = session.infer_delta(&mutated, &mut residency).expect("clean run");
        prop_assert_eq!(d2.rows_streamed, touched.len());
        prop_assert_eq!(d2.bytes_streamed, (touched.len() * w * 2) as u64);
        let mut cold2 = prepared.session();
        let reference2 = cold2.infer(&mutated).expect("clean run");
        prop_assert_eq!(third.output(), reference2.output());
        let dirty_load = &third.stats().layers()[0];
        let bank = AcceleratorConfig::with_pe_grid(px, py).nb_bank_width_bytes() as u64;
        prop_assert_eq!(dirty_load.cycles, d2.bytes_streamed.div_ceil(bank));
        prop_assert_eq!(
            third.stats().layers()[1..].to_vec(),
            reference2.stats().layers()[1..].to_vec()
        );
    }

    /// The dirty set is derived by content, not by identity: presenting
    /// an equal-valued clone streams nothing, and the report is a pure
    /// function of the presented input sequence.
    #[test]
    fn dirty_set_is_content_derived_and_deterministic(
        seed in 0u64..500,
        px in 2usize..7,
        py in 2usize..7,
    ) {
        let net = build_net(2, 10, 10, 3, seed);
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));
        let prepared = accel.prepare(&net).expect("network fits");
        let a = net.random_input(seed);
        let b = net.random_input(seed ^ 0xBEEF);

        let run = |inputs: &[&shidiannao_tensor::MapStack<Fx>]| {
            let mut session = prepared.session();
            let mut residency = NbResidency::new();
            inputs
                .iter()
                .map(|input| {
                    let (_, d) = session.infer_delta(input, &mut residency).expect("clean run");
                    d
                })
                .collect::<Vec<_>>()
        };

        let clone_of_a = a.clone();
        let first = run(&[&a, &clone_of_a, &b, &a]);
        prop_assert_eq!(first[1].rows_streamed, 0);
        let second = run(&[&a, &a, &b, &a]);
        prop_assert_eq!(first, second);
    }
}

/// Disarming the optimizer's `delta_load` pass makes `infer_delta`
/// cold-load every run and report full streams — stats identical to
/// plain `infer`.
#[test]
fn disarmed_pass_cold_loads_honestly() {
    let net = build_net(2, 12, 12, 3, 42);
    let mut prepared = Accelerator::default().prepare(&net).expect("fits");
    prepared.reoptimize(&OptConfig::none());
    assert!(!prepared.delta_load_capable());
    let input = net.random_input(7);

    let mut plain = prepared.session();
    let reference = plain.infer(&input).expect("clean run");

    let mut session = prepared.session();
    let mut residency = NbResidency::new();
    for _ in 0..3 {
        let (run, delta) = session
            .infer_delta(&input, &mut residency)
            .expect("clean run");
        assert_eq!(delta.rows_streamed, delta.rows_total);
        assert_eq!(delta.bytes_streamed, delta.bytes_total);
        assert!(!delta.any_saved());
        assert_eq!(run.output(), reference.output());
        assert_eq!(run.stats().layers(), reference.stats().layers());
    }
}

/// A geometry change (different network through the same residency)
/// resets the resident state to cold instead of misreading stale hashes.
#[test]
fn geometry_change_resets_residency() {
    let small = build_net(1, 8, 8, 3, 1);
    let large = build_net(2, 12, 12, 3, 2);
    let accel = Accelerator::default();
    let prepared_small = accel.prepare(&small).expect("fits");
    let prepared_large = accel.prepare(&large).expect("fits");
    let mut residency = NbResidency::new();

    let mut s = prepared_small.session();
    let (_, d) = s
        .infer_delta(&small.random_input(3), &mut residency)
        .expect("clean run");
    assert_eq!(d.rows_streamed, 8);

    let mut l = prepared_large.session();
    let (_, d) = l
        .infer_delta(&large.random_input(4), &mut residency)
        .expect("clean run");
    assert_eq!(d.rows_streamed, d.rows_total);
    assert_eq!(d.rows_total, 24);
    assert_eq!(residency.rows(), 24);

    residency.invalidate();
    assert!(!residency.is_warm());
    let (_, d) = l
        .infer_delta(&large.random_input(4), &mut residency)
        .expect("clean run");
    assert_eq!(d.rows_streamed, d.rows_total);
}

/// A staged delta never leaks: an interleaved plain `infer` after
/// `infer_delta` pays the full cold load (the stage is consumed by the
/// delta run itself), and a shape-rejected run cannot poison the next.
#[test]
fn staged_delta_never_leaks_into_plain_runs() {
    let net = build_net(1, 10, 10, 3, 9);
    let prepared = Accelerator::default().prepare(&net).expect("fits");
    let input = net.random_input(11);
    let mut session = prepared.session();
    let mut residency = NbResidency::new();

    let (_, _) = session
        .infer_delta(&input, &mut residency)
        .expect("clean run");
    let (warm, d) = session
        .infer_delta(&input, &mut residency)
        .expect("clean run");
    assert_eq!(d.rows_streamed, 0);
    assert_eq!(warm.stats().layers()[0].cycles, 0);

    // A plain infer right after a warm delta run still cold-loads.
    let plain = session.infer(&input).expect("clean run");
    let mut cold = prepared.session();
    let reference = cold.infer(&input).expect("clean run");
    assert_eq!(plain.stats().layers(), reference.stats().layers());
}
