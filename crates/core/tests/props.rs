//! Property-based equivalence: random layer geometries, random PE grids,
//! random seeds — the simulator must always match the golden reference
//! bit-for-bit, and its invariants must always hold.

use proptest::prelude::*;
use shidiannao_cnn::{
    Activation, ConvSpec, FcSpec, LrnSpec, Network, NetworkBuilder, PoolKind, PoolSpec,
};
use shidiannao_core::isa::{Fields, Instruction, Opcode};
use shidiannao_core::{Accelerator, AcceleratorConfig};

fn check(net: &Network, cfg: AcceleratorConfig, seed: u64) -> Result<(), TestCaseError> {
    let input = net.random_input(seed);
    let golden = net.forward_fixed(&input);
    let accel = Accelerator::new(cfg);
    let run = accel.run(net, &input).expect("network fits");
    for (i, out) in run.layer_outputs().iter().enumerate() {
        prop_assert_eq!(out, golden.layer_output(i).unwrap(), "layer {} diverged", i);
    }
    // Cycle accounting sanity: enough cycles for the busy slots, and
    // busy never exceeds capacity.
    let total = run.stats().total();
    prop_assert!(total.pe_busy_slots <= total.pe_total_slots);
    prop_assert!(run.stats().cycles() > 0);
    Ok(())
}

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::None),
        Just(Activation::Tanh),
        Just(Activation::Sigmoid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_conv_layers_match(
        in_maps in 1usize..4,
        out_maps in 1usize..6,
        w in 6usize..20,
        h in 6usize..20,
        kx in 1usize..6,
        ky in 1usize..6,
        sx in 1usize..4,
        sy in 1usize..4,
        act in activations(),
        px in 2usize..9,
        py in 2usize..9,
        seed in 0u64..1000,
    ) {
        prop_assume!(kx <= w && ky <= h);
        let net = NetworkBuilder::new("p", in_maps, (w, h))
            .conv(
                ConvSpec::new(out_maps, (kx, ky))
                    .with_stride((sx, sy))
                    .with_activation(act),
            )
            .build(seed)
            .unwrap();
        check(&net, AcceleratorConfig::with_pe_grid(px, py), seed ^ 77)?;
    }

    #[test]
    fn random_partial_conv_layers_match(
        in_maps in 2usize..5,
        out_maps in 2usize..6,
        pair_frac in 1usize..100,
        seed in 0u64..1000,
    ) {
        let max_pairs = in_maps * out_maps;
        let pairs = (max_pairs * pair_frac / 100).max(out_maps).min(max_pairs);
        let net = NetworkBuilder::new("p", in_maps, (10, 10))
            .conv(ConvSpec::new(out_maps, (3, 3)).with_pairs(pairs))
            .build(seed)
            .unwrap();
        check(&net, AcceleratorConfig::paper(), seed)?;
    }

    #[test]
    fn random_pooling_layers_match(
        maps in 1usize..4,
        w in 4usize..22,
        h in 4usize..22,
        win in 2usize..5,
        stride in 1usize..5,
        avg in any::<bool>(),
        ceil in any::<bool>(),
        seed in 0u64..1000,
    ) {
        prop_assume!(win <= w && win <= h);
        // Ceiling rounding is defined for non-overlapping pooling only
        // (enforced by the builder; all Table 2 uses have stride == window).
        prop_assume!(stride == win || !ceil);
        let mut spec = if avg { PoolSpec::avg((win, win)) } else { PoolSpec::max((win, win)) };
        spec = spec.with_stride((stride, stride));
        if ceil {
            spec = spec.with_ceil();
        }
        let net = NetworkBuilder::new("p", maps, (w, h)).pool(spec).build(seed).unwrap();
        prop_assert_eq!(
            matches!(spec.kind, PoolKind::Avg),
            avg
        );
        check(&net, AcceleratorConfig::paper(), seed)?;
    }

    #[test]
    fn random_classifiers_match(
        w in 2usize..8,
        h in 2usize..8,
        maps in 1usize..4,
        out in 1usize..100,
        sparse in any::<bool>(),
        act in activations(),
        seed in 0u64..1000,
    ) {
        let in_count = w * h * maps;
        let mut spec = FcSpec::new(out).with_activation(act);
        if sparse && in_count > 2 {
            spec = spec.with_synapses_per_output(in_count / 2);
        }
        let net = NetworkBuilder::new("p", maps, (w, h)).fc(spec).build(seed).unwrap();
        check(&net, AcceleratorConfig::paper(), seed)?;
    }

    #[test]
    fn random_deep_stacks_match(
        w in 14usize..26,
        h in 14usize..26,
        c1_maps in 2usize..5,
        k in 2usize..5,
        avg in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let pool = if avg { PoolSpec::avg((2, 2)) } else { PoolSpec::max((2, 2)) };
        let net = NetworkBuilder::new("p", 1, (w, h))
            .conv(ConvSpec::new(c1_maps, (k, k)))
            .pool(pool)
            .conv(ConvSpec::new(4, (2, 2)))
            .fc(FcSpec::new(5))
            .build(seed)
            .unwrap();
        check(&net, AcceleratorConfig::paper(), seed)?;
    }

    #[test]
    fn random_lrn_layers_match(
        maps in 1usize..6,
        window in 1usize..7,
        w in 3usize..10,
        alpha in 0.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let net = NetworkBuilder::new("p", maps, (w, w))
            .lrn(LrnSpec { window_maps: window, k: 1.0, alpha })
            .build(seed)
            .unwrap();
        check(&net, AcceleratorConfig::paper(), seed)?;
    }

    #[test]
    fn propagation_never_changes_results(
        w in 8usize..16,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(2, (k, k)))
            .build(seed)
            .unwrap();
        let input = net.random_input(seed);
        let a = Accelerator::new(AcceleratorConfig::paper())
            .run(&net, &input)
            .unwrap();
        let b = Accelerator::new(AcceleratorConfig::paper().without_propagation())
            .run(&net, &input)
            .unwrap();
        prop_assert_eq!(a.output(), b.output());
        // And propagation can only reduce NBin traffic.
        prop_assert!(
            a.stats().total().nbin.read_bytes <= b.stats().total().nbin.read_bytes
        );
    }

    #[test]
    fn fifo_peaks_never_exceed_strides(
        sx in 1usize..4,
        sy in 1usize..4,
        k in 2usize..7,
        seed in 0u64..500,
    ) {
        let dim = 4 * k + 7;
        let net = NetworkBuilder::new("p", 1, (dim, dim))
            .conv(ConvSpec::new(1, (k, k)).with_stride((sx, sy)))
            .build(seed)
            .unwrap();
        let run = Accelerator::new(AcceleratorConfig::paper())
            .run(&net, &net.random_input(seed))
            .unwrap();
        let t = run.stats().total();
        prop_assert!(t.fifo_h_peak <= sx, "FIFO-H peak {} > Sx {}", t.fifo_h_peak, sx);
        prop_assert!(t.fifo_v_peak <= sy, "FIFO-V peak {} > Sy {}", t.fifo_v_peak, sy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn isa_roundtrips_any_in_range_fields(
        op in 0u8..8,
        out_w in 0u16..512,
        out_h in 0u16..512,
        kx in 0u8..32,
        ky in 0u8..32,
        sx in 0u8..16,
        sy in 0u8..16,
        in_maps in 0u16..512,
        out_sel in 0u16..512,
        act in 0u8..3,
        flag in any::<bool>(),
    ) {
        let opcode = match op {
            0 => Opcode::LoadImage,
            1 => Opcode::Conv,
            2 => Opcode::Pool,
            3 => Opcode::Classifier,
            4 => Opcode::Lrn,
            5 => Opcode::Lcn,
            6 => Opcode::SwapBuffers,
            _ => Opcode::End,
        };
        let act = match act {
            0 => shidiannao_cnn::Activation::None,
            1 => shidiannao_cnn::Activation::Tanh,
            _ => shidiannao_cnn::Activation::Sigmoid,
        };
        let f = Fields {
            opcode, out_w, out_h, kx, ky, sx, sy, in_maps, out_sel, act, flag,
        };
        let inst = Instruction::encode(&f).unwrap();
        prop_assert!(inst.to_bits() < 1u64 << 61, "61-bit budget");
        prop_assert_eq!(inst.decode().unwrap(), f);
    }

    #[test]
    fn compiled_programs_always_validate(
        w in 10usize..20,
        maps in 1usize..3,
        k in 2usize..4,
        out in 1usize..12,
        seed in 0u64..200,
    ) {
        use shidiannao_core::compiler::{compile, validate};
        let net = NetworkBuilder::new("p", maps, (w, w))
            .conv(ConvSpec::new(3, (k, k)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(out))
            .build(seed)
            .unwrap();
        let program = compile(&net).unwrap();
        validate(&program, &net).unwrap();
        // Instruction footprint stays far below the 32 KB IB.
        prop_assert!(program.bytes() <= 32 * 1024);
    }
}
