//! Property-based equivalence of the precompiled micro-op schedule:
//! replaying a layer's recorded control stream must be bit-identical to
//! live HFSM decode — outputs, per-layer traces, statistics, energy,
//! fault counters, and (for detected faults) the exact abort cycle —
//! across random topologies, seeds, fault rates, protections, and
//! stuck-PE sets. Plus the sharing contract: every session holds one
//! `Arc` clone of its prepared network's schedule, never a copy.

use proptest::prelude::*;
use shidiannao_cnn::{Activation, ConvSpec, FcSpec, LrnSpec, Network, NetworkBuilder, PoolSpec};
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, RunError, SramProtection,
};
use std::sync::Arc;

/// Runs the same seeded inference through a replay-enabled session and a
/// live-decode session (same fault plan) and asserts every observable is
/// bit-identical.
fn check_replay_matches_live(
    net: &Network,
    cfg: AcceleratorConfig,
    plan: FaultPlan,
    seed: u64,
) -> Result<(), TestCaseError> {
    let input = net.random_input(seed);
    let accel = Accelerator::new(cfg);
    let prepared = accel.prepare(net).expect("network fits");
    let mut replay = prepared.session_with_faults(plan);
    let mut live = prepared.session_with_faults(plan);
    live.set_schedule_replay(false);
    prop_assert!(replay.schedule_replay());
    prop_assert!(!live.schedule_replay());

    match (replay.run(&input), live.run(&input)) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.output(), b.output());
            prop_assert_eq!(a.layer_outputs(), b.layer_outputs());
            prop_assert_eq!(a.stats(), b.stats());
            prop_assert_eq!(a.energy(), b.energy());
            prop_assert_eq!(a.fault_stats(), b.fault_stats());
        }
        (Err(RunError::FaultDetected(_)), Err(RunError::FaultDetected(_))) => {
            // Detected faults abort at the exact live access: the cycles
            // charged to the wasted attempt and the counters at the
            // abort must agree.
            prop_assert_eq!(replay.last_cycles(), live.last_cycles());
            prop_assert_eq!(replay.fault_stats(), live.fault_stats());
        }
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "paths disagreed on the outcome kind: replay ok={}, live ok={}",
                a.is_ok(),
                b.is_ok()
            )))
        }
    }
    Ok(())
}

/// A fault plan over the SRAM sites (plus optionally stuck PEs — replay
/// declines stuck meshes and falls back to live decode, which must stay
/// invisible in the results).
fn plan(seed: u64, rate: f64, protection: SramProtection, stuck_rate: f64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        nb_flip_rate: rate,
        sb_flip_rate: rate,
        ib_flip_rate: rate,
        pe_stuck_rate: stuck_rate,
        scanline_rate: 0.0,
        double_flip_share: 0.2,
        protection,
    })
}

fn protections() -> impl Strategy<Value = SramProtection> {
    prop_oneof![
        Just(SramProtection::None),
        Just(SramProtection::Parity),
        Just(SramProtection::Secded),
    ]
}

fn rates() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-4), Just(1e-3), Just(1e-2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_conv_nets_replay_bit_identical(
        in_maps in 1usize..3,
        out_maps in 1usize..5,
        w in 6usize..18,
        k in 1usize..5,
        s in 1usize..3,
        px in 2usize..9,
        py in 2usize..9,
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= w);
        let net = NetworkBuilder::new("p", in_maps, (w, w))
            .conv(ConvSpec::new(out_maps, (k, k)).with_stride((s, s)).with_activation(Activation::Tanh))
            .build(seed)
            .unwrap();
        check_replay_matches_live(
            &net,
            AcceleratorConfig::with_pe_grid(px, py),
            plan(seed ^ 0xF00D, rate, protection, 0.0),
            seed ^ 77,
        )?;
    }

    #[test]
    fn random_deep_stacks_replay_bit_identical(
        w in 14usize..24,
        c1_maps in 2usize..5,
        k in 2usize..5,
        avg in any::<bool>(),
        out in 1usize..20,
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        let pool = if avg { PoolSpec::avg((2, 2)) } else { PoolSpec::max((2, 2)) };
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(c1_maps, (k, k)))
            .pool(pool)
            .conv(ConvSpec::new(4, (2, 2)).with_activation(Activation::Sigmoid))
            .fc(FcSpec::new(out))
            .build(seed)
            .unwrap();
        check_replay_matches_live(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0xBEEF, rate, protection, 0.0),
            seed,
        )?;
    }

    #[test]
    fn non_replayable_layers_fall_back_bit_identical(
        maps in 1usize..5,
        window in 1usize..6,
        w in 4usize..9,
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        // LRN layers are not modeled by the schedule: the session
        // live-decodes them mid-run while still replaying neighbours.
        let net = NetworkBuilder::new("p", maps, (w, w))
            .conv(ConvSpec::new(maps, (2, 2)))
            .lrn(LrnSpec { window_maps: window, k: 1.0, alpha: 0.5 })
            .fc(FcSpec::new(6))
            .build(seed)
            .unwrap();
        check_replay_matches_live(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0xCAFE, rate, protection, 0.0),
            seed,
        )?;
    }

    #[test]
    fn stuck_pe_sessions_replay_bit_identical(
        w in 10usize..18,
        k in 2usize..4,
        stuck_rate in prop_oneof![Just(0.0), Just(0.05), Just(0.5)],
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        // Stuck-PE meshes make replay decline the whole run; a
        // replay-enabled session must still be indistinguishable from a
        // live one.
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(3, (k, k)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(8))
            .build(seed)
            .unwrap();
        check_replay_matches_live(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0x57C4, rate, protection, stuck_rate),
            seed,
        )?;
    }

    #[test]
    fn repeated_runs_under_salted_plans_stay_bit_identical(
        w in 10usize..16,
        rate in prop_oneof![Just(1e-3), Just(1e-2)],
        protection in protections(),
        seed in 0u64..500,
    ) {
        // One replay session re-salted across trials (overlays rebuilt
        // lazily per plan) vs a fresh live session per trial.
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(2, (3, 3)))
            .fc(FcSpec::new(5))
            .build(seed)
            .unwrap();
        let input = net.random_input(seed);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let prepared = accel.prepare(&net).expect("fits");
        let base = plan(seed ^ 0xA1B2, rate, protection, 0.0);
        let mut session = prepared.session_with_faults(base);
        for salt in 0..3u64 {
            let salted = base.with_salt(salt);
            session.set_fault_plan(salted);
            let mut live = prepared.session_with_faults(salted);
            live.set_schedule_replay(false);
            match (session.run(&input), live.run(&input)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.output(), b.output());
                    prop_assert_eq!(a.fault_stats(), b.fault_stats());
                }
                (Err(RunError::FaultDetected(_)), Err(RunError::FaultDetected(_))) => {
                    prop_assert_eq!(session.last_cycles(), live.last_cycles());
                    prop_assert_eq!(session.fault_stats(), live.fault_stats());
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "salt {salt}: outcome kinds diverged (replay ok={}, live ok={})",
                        a.is_ok(),
                        b.is_ok()
                    )))
                }
            }
        }
    }
}

#[test]
fn sessions_share_one_schedule_arc() {
    let net = NetworkBuilder::new("share", 1, (12, 12))
        .conv(ConvSpec::new(3, (3, 3)))
        .pool(PoolSpec::max((2, 2)))
        .fc(FcSpec::new(4))
        .build(3)
        .unwrap();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).unwrap();
    assert_eq!(Arc::strong_count(prepared.schedule()), 1);

    let sessions: Vec<_> = (0..5).map(|_| prepared.session()).collect();
    // Each open session holds exactly one Arc clone — shared control
    // state, not per-session copies.
    assert_eq!(Arc::strong_count(prepared.schedule()), 1 + sessions.len());
    drop(sessions);
    assert_eq!(Arc::strong_count(prepared.schedule()), 1);

    // The schedule actually models this network: three replayable
    // layers, a nonzero memory footprint, and per-layer cycle counts
    // that sum to less than a whole run (load phase excluded).
    let schedule = prepared.schedule();
    assert_eq!(schedule.layer_count(), 3);
    assert_eq!(schedule.replayable_layers(), 3);
    assert!(schedule.memory_bytes() > 0);
    let run = prepared.run(&net.random_input(1)).unwrap();
    let layer_cycles: u64 = schedule.layers().iter().map(|l| l.cycles()).sum();
    assert!(layer_cycles > 0 && layer_cycles < run.stats().cycles());
}

#[test]
fn replay_toggle_round_trips() {
    let net = NetworkBuilder::new("toggle", 1, (10, 10))
        .conv(ConvSpec::new(2, (3, 3)))
        .build(5)
        .unwrap();
    let input = net.random_input(5);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).unwrap();
    let mut session = prepared.session();
    let a = session.run(&input).unwrap();
    session.set_schedule_replay(false);
    let b = session.run(&input).unwrap();
    session.set_schedule_replay(true);
    let c = session.run(&input).unwrap();
    assert_eq!(a.output(), b.output());
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.energy(), b.energy());
    assert_eq!(b.output(), c.output());
    assert_eq!(b.stats(), c.stats());
}
