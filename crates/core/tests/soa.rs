//! Property-based equivalence for the zero-allocation SoA datapath:
//! the `read_into` buffer variants must be bit-identical (values *and*
//! metering) to the legacy `Vec`-returning reads, and the fast bulk-SoA
//! sweep kernel must be bit-identical (outputs, statistics, energy) to
//! the instrumented per-PE path — including disabling itself under an
//! active fault plan.

use proptest::prelude::*;
use shidiannao_cnn::{Activation, ConvSpec, FcSpec, NetworkBuilder, PoolSpec};
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, LayerStats, NeuronBuffer, ReadScratch,
    SramProtection,
};
use shidiannao_fixed::Fx;
use shidiannao_tensor::{FeatureMap, MapStack};

/// A deterministic pseudo-random stack: every word distinct enough to
/// catch coordinate mix-ups.
fn stack(maps: usize, w: usize, h: usize, seed: u64) -> MapStack<Fx> {
    MapStack::from_fn(w, h, maps, |m| {
        FeatureMap::from_fn(w, h, |x, y| {
            let mix = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((m * w * h + y * w + x) as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            Fx::from_bits((mix >> 17) as i16)
        })
    })
}

fn loaded_buffer(px: usize, py: usize, stack: MapStack<Fx>) -> NeuronBuffer {
    let mut nb = NeuronBuffer::new(px, py, 256 * 1024);
    nb.load(stack).expect("test stacks fit 256 KB");
    nb
}

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::None),
        Just(Activation::Tanh),
        Just(Activation::Sigmoid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Modes (a)/(b)/(e): `read_tile_into` ≡ `read_tile`, values and
    /// every stats counter (including bank-conflict cycles).
    #[test]
    fn tile_reads_into_match_vec_reads(
        px in 2usize..9,
        py in 2usize..9,
        maps in 1usize..4,
        w in 4usize..24,
        h in 4usize..24,
        tw in 1usize..9,
        th in 1usize..9,
        sx in 1usize..4,
        sy in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!((tw - 1) * sx < w && (th - 1) * sy < h);
        let x0 = w - 1 - (tw - 1) * sx;
        let y0 = h - 1 - (th - 1) * sy;
        let nb = loaded_buffer(px, py, stack(maps, w, h, seed));
        let map = seed as usize % maps;
        let mut s_vec = LayerStats::new("s");
        let mut s_into = LayerStats::new("s");
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        let legacy = nb
            .read_tile(map, (x0, y0), (tw, th), (sx, sy), &mut s_vec)
            .unwrap();
        nb.read_tile_into(map, (x0, y0), (tw, th), (sx, sy), &mut s_into, &mut scratch, &mut out)
            .unwrap();
        prop_assert_eq!(&legacy, &out);
        prop_assert_eq!(s_vec, s_into);

        // Reuse of a dirty scratch/output buffer must not change anything.
        let mut s_again = LayerStats::new("s");
        nb.read_tile_into(map, (0, 0), (tw, th), (sx, sy), &mut s_again, &mut scratch, &mut out)
            .unwrap();
        let from_origin = nb
            .read_tile(map, (0, 0), (tw, th), (sx, sy), &mut s_vec)
            .unwrap();
        prop_assert_eq!(from_origin, out);
    }

    /// Modes (c) and (f): row/column reads, `into` ≡ `Vec`.
    #[test]
    fn row_and_col_reads_into_match_vec_reads(
        px in 2usize..9,
        py in 2usize..9,
        w in 4usize..24,
        h in 4usize..24,
        stride in 1usize..4,
        seed in 0u64..1000,
    ) {
        let nb = loaded_buffer(px, py, stack(2, w, h, seed));
        let n_row = px.min(w.div_ceil(stride));
        let n_col = py.min(h.div_ceil(stride));
        let mut s_vec = LayerStats::new("s");
        let mut s_into = LayerStats::new("s");
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();

        let legacy = nb.read_row(1, (0, h - 1), n_row, stride, &mut s_vec).unwrap();
        nb.read_row_into(1, (0, h - 1), n_row, stride, &mut s_into, &mut scratch, &mut out)
            .unwrap();
        prop_assert_eq!(&legacy, &out);

        let legacy = nb.read_col(1, (w - 1, 0), n_col, stride, &mut s_vec).unwrap();
        nb.read_col_into(1, (w - 1, 0), n_col, stride, &mut s_into, &mut scratch, &mut out)
            .unwrap();
        prop_assert_eq!(&legacy, &out);
        prop_assert_eq!(s_vec, s_into);
    }

    /// Mode (e) gathers: random (possibly duplicated) coordinates,
    /// `into` ≡ `Vec` including the sorted-dedup conflict model.
    #[test]
    fn gather_reads_into_match_vec_reads(
        px in 2usize..9,
        py in 2usize..9,
        w in 4usize..20,
        h in 4usize..20,
        picks in proptest::collection::vec((0usize..400, 0usize..400), 1..64),
        seed in 0u64..1000,
    ) {
        let nb = loaded_buffer(px, py, stack(1, w, h, seed));
        let coords: Vec<(usize, usize)> =
            picks.iter().map(|&(x, y)| (x % w, y % h)).collect();
        let mut s_vec = LayerStats::new("s");
        let mut s_into = LayerStats::new("s");
        let mut scratch = ReadScratch::default();
        let mut out = Vec::new();
        let legacy = nb.read_gather(0, &coords, &mut s_vec).unwrap();
        nb.read_gather_into(0, &coords, &mut s_into, &mut scratch, &mut out).unwrap();
        prop_assert_eq!(&legacy, &out);
        prop_assert_eq!(s_vec, s_into);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fast bulk-SoA kernel (`Session::infer` / `infer_ref`), the
    /// instrumented per-PE path (`Session::run`), and the legacy one-shot
    /// (`Accelerator::run`) agree bit-for-bit on outputs, statistics, and
    /// energy across random geometries — and all match the golden model.
    #[test]
    fn fast_kernel_is_bit_identical_to_instrumented_paths(
        in_maps in 1usize..3,
        c_maps in 1usize..5,
        w in 8usize..20,
        h in 8usize..20,
        k in 1usize..5,
        sx in 1usize..3,
        sy in 1usize..3,
        pool_win in 2usize..4,
        overlap in any::<bool>(),
        avg in any::<bool>(),
        out in 1usize..12,
        act in activations(),
        px in 2usize..9,
        py in 2usize..9,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= w && k <= h);
        let pool_stride = if overlap { (pool_win - 1).max(1) } else { pool_win };
        let pool = if avg {
            PoolSpec::avg((pool_win, pool_win))
        } else {
            PoolSpec::max((pool_win, pool_win))
        }
        .with_stride((pool_stride, pool_stride));
        let net = NetworkBuilder::new("p", in_maps, (w, h))
            .conv(ConvSpec::new(c_maps, (k, k)).with_stride((sx, sy)).with_activation(act))
            .pool(pool)
            .fc(FcSpec::new(out))
            .build(seed);
        let Ok(net) = net else {
            // Degenerate geometry (a layer collapsed to zero outputs).
            return Ok(());
        };
        let input = net.random_input(seed ^ 0x5A5A);
        let golden = net.forward_fixed(&input);
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));

        let legacy = accel.run(&net, &input).expect("network fits");
        let prepared = accel.prepare(&net).expect("network fits");
        let mut session = prepared.session();
        let run = session.run(&input).expect("instrumented session run");
        let inf = session.infer(&input).expect("fast-kernel infer");
        {
            let r = session.infer_ref(&input).expect("fast-kernel infer_ref");
            prop_assert_eq!(r.output(), inf.output());
            prop_assert_eq!(r.stats(), inf.stats());
            prop_assert_eq!(r.energy(), inf.energy());
        }

        prop_assert_eq!(legacy.output(), golden.output());
        prop_assert_eq!(run.output(), golden.output());
        prop_assert_eq!(inf.output_flat(), golden.output());
        prop_assert_eq!(run.stats(), legacy.stats());
        prop_assert_eq!(inf.stats(), legacy.stats());
        prop_assert_eq!(run.energy(), legacy.energy());
        prop_assert_eq!(inf.energy(), legacy.energy());
    }

    /// Under an active fault plan the fast kernel must disable itself:
    /// `infer` (which is the fast path when fault-free) must reproduce
    /// the instrumented faulted run exactly — same corrupted outputs,
    /// same statistics, same fault counters.
    #[test]
    fn fault_plans_disable_the_fast_kernel_bit_identically(
        nb_rate in prop_oneof![Just(0.0), Just(1e-3), Just(1e-2)],
        sb_rate in prop_oneof![Just(0.0), Just(1e-3)],
        pe_rate in prop_oneof![Just(0.0), Just(0.05)],
        w in 8usize..16,
        k in 2usize..4,
        seed in 0u64..1000,
    ) {
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(2, (k, k)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(4))
            .build(seed)
            .unwrap();
        let input = net.random_input(seed ^ 0xFA);
        let mut cfg = FaultConfig::zero();
        cfg.seed = seed;
        cfg.nb_flip_rate = nb_rate;
        cfg.sb_flip_rate = sb_rate;
        cfg.pe_stuck_rate = pe_rate;
        cfg.protection = SramProtection::None;
        let plan = FaultPlan::new(cfg);

        let prepared = Accelerator::new(AcceleratorConfig::paper())
            .prepare(&net)
            .expect("network fits");
        let legacy = prepared
            .run_with_faults(&input, plan)
            .expect("unprotected plans never abort");
        let mut session = prepared.session_with_faults(plan);
        let run = session.run(&input).expect("instrumented faulted run");
        let fault_stats_run = *session.fault_stats();
        let inf = session.infer(&input).expect("faulted infer");
        let fault_stats_inf = *session.fault_stats();

        prop_assert_eq!(run.output(), legacy.output());
        prop_assert_eq!(inf.output_flat(), legacy.output());
        prop_assert_eq!(run.stats(), legacy.stats());
        prop_assert_eq!(inf.stats(), legacy.stats());
        prop_assert_eq!(fault_stats_run, *legacy.fault_stats());
        prop_assert_eq!(fault_stats_inf, fault_stats_run);
        if nb_rate == 0.0 && sb_rate == 0.0 && pe_rate == 0.0 {
            // Zero-rate plans leave the output clean.
            prop_assert_eq!(inf.output_flat(), net.forward_fixed(&input).output());
        }
    }
}
