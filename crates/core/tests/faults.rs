//! Fault-injection regression and property tests: the seeded fault model
//! must be (a) transparent at rate zero — bit-identical to the fault-free
//! simulator — and (b) deterministic — the same seed produces the same
//! faulted execution on every run path (legacy one-shot, prepared, and
//! session), because fault sites are pure functions of `(seed, site,
//! layer, address)`, not of access order.

use proptest::prelude::*;
use shidiannao_cnn::zoo;
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, RunError, SramProtection,
};

const SEED: u64 = 2015;
const INPUT_SEED: u64 = SEED ^ 0xABCD;

fn nets() -> Vec<shidiannao_cnn::Network> {
    [zoo::lenet5(), zoo::gabor(), zoo::simple_conv()]
        .into_iter()
        .map(|b| b.build(SEED).expect("zoo topologies are valid"))
        .collect()
}

#[test]
fn zero_rate_plan_is_bit_identical_to_the_fault_free_simulator() {
    for net in nets() {
        let input = net.random_input(INPUT_SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let clean = accel.run(&net, &input).expect("fits the paper config");
        let zero = accel
            .run_with_faults(&net, &input, FaultPlan::none())
            .expect("zero-rate plan cannot fault");
        assert_eq!(zero.output(), clean.output(), "{}", net.name());
        assert_eq!(zero.stats(), clean.stats(), "{}", net.name());
        assert_eq!(zero.energy(), clean.energy(), "{}", net.name());
        assert_eq!(zero.fault_stats().total_faults(), 0);
        assert_eq!(
            clean.output(),
            net.forward_fixed(&input).output(),
            "{}",
            net.name()
        );
    }
}

#[test]
fn unprotected_faults_are_silent_and_corrupt_the_output() {
    let net = zoo::lenet5().build(SEED).expect("valid topology");
    let input = net.random_input(INPUT_SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let golden = net.forward_fixed(&input);
    let plan = FaultPlan::new(FaultConfig::uniform(7, 1e-3, SramProtection::None));
    let run = accel
        .run_with_faults(&net, &input, plan)
        .expect("unprotected SRAM never detects, so the run completes");
    let stats = run.fault_stats();
    assert!(stats.silent > 0, "1e-3 over a LeNet-5 run must fault");
    assert_eq!(stats.detected, 0);
    assert_eq!(stats.corrected, 0);
    assert_ne!(run.output(), golden.output(), "SDC must corrupt the output");
}

#[test]
fn parity_detects_and_aborts_with_a_typed_error() {
    let net = zoo::lenet5().build(SEED).expect("valid topology");
    let input = net.random_input(INPUT_SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let plan = FaultPlan::new(FaultConfig::uniform(7, 1e-3, SramProtection::Parity));
    let err = accel
        .run_with_faults(&net, &input, plan)
        .expect_err("parity at 1e-3 must detect the first single-bit flip");
    match err {
        RunError::FaultDetected(f) => {
            assert_eq!(f.protection, SramProtection::Parity);
            assert!(!f.double_bit, "the first hit at 10% double share");
        }
        other => panic!("expected FaultDetected, got {other:?}"),
    }
}

#[test]
fn secded_corrects_single_bit_flips_back_to_the_golden_output() {
    let net = zoo::lenet5().build(SEED).expect("valid topology");
    let input = net.random_input(INPUT_SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let golden = net.forward_fixed(&input);
    // Single-bit SRAM flips only (no multi-bit upsets, no stuck PEs —
    // ECC protects memories, not datapaths): SECDED corrects every one.
    let cfg = FaultConfig {
        double_flip_share: 0.0,
        pe_stuck_rate: 0.0,
        ..FaultConfig::uniform(7, 1e-3, SramProtection::Secded)
    };
    let run = accel
        .run_with_faults(&net, &input, FaultPlan::new(cfg))
        .expect("SECDED corrects all single-bit errors");
    let stats = run.fault_stats();
    assert!(stats.corrected > 0);
    assert_eq!(stats.silent, 0);
    assert_eq!(stats.detected, 0);
    assert_eq!(
        run.output(),
        golden.output(),
        "corrected errors must leave no trace in the output"
    );
}

/// Runs a faulted execution on every path and returns the observable
/// outcome: either the full (output, fault-stat) pair or the typed error.
type FaultOutcome = Result<(Vec<shidiannao_fixed::Fx>, u64, u64), RunError>;

fn outcome(run: Result<shidiannao_core::RunOutcome, RunError>) -> FaultOutcome {
    run.map(|r| {
        let s = *r.fault_stats();
        (r.output(), s.total_faults(), s.silent)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same plan produces byte-identical faulted behavior on the
    /// legacy, prepared, and session run paths, for every protection
    /// level and a range of seeds/rates.
    #[test]
    fn same_seed_faults_identically_on_every_run_path(
        seed in 0u64..1_000_000,
        rate_exp in 3u32..6,
        protection in (0usize..3).prop_map(|i| SramProtection::ALL[i]),
    ) {
        let rate = 10f64.powi(-(rate_exp as i32));
        let plan = FaultPlan::new(FaultConfig::uniform(seed, rate, protection));
        let net = zoo::gabor().build(SEED).expect("valid topology");
        let input = net.random_input(INPUT_SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());

        let legacy = outcome(accel.run_with_faults(&net, &input, plan));
        let prepared = accel.prepare(&net).expect("fits");
        let via_prepared = outcome(prepared.run_with_faults(&input, plan));
        let mut session = prepared.session_with_faults(plan);
        let via_session = outcome(session.run(&input));
        // A reused session must replay the identical faults as well.
        let via_session_again = outcome(session.run(&input));

        prop_assert_eq!(&legacy, &via_prepared);
        prop_assert_eq!(&legacy, &via_session);
        prop_assert_eq!(&legacy, &via_session_again);
    }

    /// Rate zero is transparent for any seed: outputs, cycle counts, and
    /// energy all match the fault-free run exactly.
    #[test]
    fn any_seed_at_rate_zero_is_transparent(seed in any::<u64>()) {
        let cfg = FaultConfig { seed, ..FaultConfig::zero() };
        let net = zoo::gabor().build(SEED).expect("valid topology");
        let input = net.random_input(INPUT_SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let clean = accel.run(&net, &input).expect("fits");
        let faulted = accel
            .run_with_faults(&net, &input, FaultPlan::new(cfg))
            .expect("zero-rate plan cannot fault");
        prop_assert_eq!(faulted.output(), clean.output());
        prop_assert_eq!(faulted.stats(), clean.stats());
        prop_assert_eq!(faulted.energy(), clean.energy());
        prop_assert_eq!(faulted.fault_stats().total_faults(), 0);
    }
}
