//! Bank-conflict accounting: the paper's six read modes are conflict-free
//! for stride-1 workloads, and the measured stall count quantifies what a
//! naive banked SRAM would lose on strided workloads.

use shidiannao_cnn::{zoo, ConvSpec, NetworkBuilder, PoolSpec};
use shidiannao_core::{Accelerator, AcceleratorConfig};

#[test]
fn stride_one_convolutions_are_conflict_free() {
    // Every benchmark conv layer slides by 1: mode (a)/(b) tiles touch
    // each bank once, mode (c) rows touch one bank, mode (f) columns
    // touch one neuron per bank — zero conflicts by design (§7.1).
    let net = NetworkBuilder::new("s1", 2, (20, 20))
        .conv(ConvSpec::new(4, (5, 5)))
        .build(1)
        .unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    assert_eq!(run.stats().total().bank_conflict_cycles, 0);
}

#[test]
fn strided_convolutions_conflict() {
    // Stride 2 on an 8-row mesh: a column read spans 16 input rows, so
    // pairs of requests land in the same bank (row mod 8).
    let net = NetworkBuilder::new("s2", 1, (21, 21))
        .conv(ConvSpec::new(2, (5, 5)).with_stride((2, 2)))
        .build(1)
        .unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    assert!(run.stats().total().bank_conflict_cycles > 0);
}

#[test]
fn stride_two_pooling_conflicts_but_stride_one_load_does_not() {
    let net = NetworkBuilder::new("pool", 1, (16, 16))
        .pool(PoolSpec::max((2, 2)))
        .build(1)
        .unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &net.random_input(1))
        .unwrap();
    // The 8×8 gather at stride 2 spans 16 rows → two requests per bank.
    let pool = &run.stats().layers()[1];
    assert!(pool.bank_conflict_cycles > 0);
    assert_eq!(run.stats().layers()[0].bank_conflict_cycles, 0, "Load");
}

#[test]
fn stall_modeling_extends_cycles_without_changing_results() {
    let net = zoo::simple_conv().build(3).unwrap();
    let input = net.random_input(4);
    let ideal = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let stalled = Accelerator::new(AcceleratorConfig::paper().with_bank_conflicts())
        .run(&net, &input)
        .unwrap();
    assert_eq!(ideal.output(), stalled.output());
    let conflicts = ideal.stats().total().bank_conflict_cycles;
    assert!(conflicts > 0, "SimpleConv's stride-2 convs must conflict");
    assert_eq!(
        stalled.stats().cycles(),
        ideal.stats().cycles() + conflicts,
        "stall modeling adds exactly the measured conflict cycles"
    );
}

#[test]
fn benchmark_conflict_profile_matches_stride_usage() {
    // Only SimpleConv (stride-2 convolutions) and the stride-2 pooling
    // layers should show conflicts; LeNet's conv layers should not.
    let lenet = zoo::lenet5().build(1).unwrap();
    let run = Accelerator::new(AcceleratorConfig::paper())
        .run(&lenet, &lenet.random_input(1))
        .unwrap();
    for layer in run.stats().layers() {
        if layer.label.starts_with('C') || layer.label.starts_with('F') {
            assert_eq!(
                layer.bank_conflict_cycles, 0,
                "{} should be conflict-free",
                layer.label
            );
        }
    }
}
