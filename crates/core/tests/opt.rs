//! Schedule-optimizer properties: for random topologies, PE grids,
//! fault plans, and pass subsets, optimized-schedule replay is
//! bit-identical in outputs to live decode, optimized modeled cycles
//! never exceed the recording's, and fault overlays still resolve
//! correctly against optimized schedules (DESIGN.md §3i).

use proptest::prelude::*;
use shidiannao_cnn::{zoo, Activation, ConvSpec, FcSpec, NetworkBuilder, PoolSpec};
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, OptConfig, SramProtection,
};

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::None),
        Just(Activation::Tanh),
        Just(Activation::Sigmoid),
    ]
}

fn pass_subsets() -> impl Strategy<Value = OptConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(nb_dedup, mode_select, sb_coalesce, fifo_fold)| OptConfig {
            nb_dedup,
            mode_select,
            sb_coalesce,
            fifo_fold,
            ..OptConfig::none()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outputs under any pass subset are bit-identical to live decode,
    /// and modeled cycles never increase.
    #[test]
    fn optimized_replay_matches_live_decode(
        in_maps in 1usize..3,
        out_maps in 1usize..4,
        w in 8usize..16,
        h in 8usize..16,
        k in 2usize..5,
        act in activations(),
        avg in any::<bool>(),
        px in 2usize..9,
        py in 2usize..9,
        opt in pass_subsets(),
        seed in 0u64..1000,
    ) {
        prop_assume!(w >= k && h >= k);
        let pool = if avg { PoolSpec::avg((2, 2)) } else { PoolSpec::max((2, 2)) };
        let net = NetworkBuilder::new("p", in_maps, (w, h))
            .conv(ConvSpec::new(out_maps, (k, k)).with_activation(act))
            .pool(pool)
            .fc(FcSpec::new(9))
            .build(seed)
            .unwrap();
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));
        let mut prepared = accel.prepare(&net).expect("network fits");
        prepared.reoptimize(&opt);
        let input = net.random_input(seed ^ 0x5EED);

        let mut live = prepared.session();
        live.set_schedule_replay(false);
        let live_run = live.run(&input).expect("clean run");

        let mut optimized = prepared.session();
        optimized.set_optimized_replay(true);
        let opt_run = optimized.run(&input).expect("clean run");

        prop_assert_eq!(opt_run.layer_outputs(), live_run.layer_outputs());
        prop_assert!(opt_run.stats().cycles() <= live_run.stats().cycles());
        let t = opt_run.stats().total();
        prop_assert!(t.pe_busy_slots <= t.pe_total_slots);
        // The golden reference agrees too.
        prop_assert_eq!(opt_run.output(), net.forward_fixed(&input).output());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault overlays resolve correctly on optimized schedules: aborts
    /// fire identically, silent/corrected runs produce bit-identical
    /// outputs, and with the dedup passes off the fault counters match
    /// live decode exactly.
    #[test]
    fn overlays_resolve_on_optimized_schedules(
        rate in 0.0f64..0.02,
        protection in prop_oneof![
            Just(SramProtection::None),
            Just(SramProtection::Parity),
            Just(SramProtection::Secded),
        ],
        opt in pass_subsets(),
        px in 2usize..9,
        py in 2usize..9,
        seed in 0u64..500,
    ) {
        let net = NetworkBuilder::new("p", 2, (12, 12))
            .conv(ConvSpec::new(3, (3, 3)).with_activation(Activation::Tanh))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(8))
            .build(seed)
            .unwrap();
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));
        let mut prepared = accel.prepare(&net).expect("network fits");
        prepared.reoptimize(&opt);
        let input = net.random_input(seed ^ 0xFA17);
        let plan = FaultPlan::new(FaultConfig::uniform(seed ^ 0x0F, rate, protection));

        let mut live = prepared.session_with_faults(plan);
        live.set_schedule_replay(false);
        let live_run = live.run(&input);

        let mut optimized = prepared.session_with_faults(plan);
        optimized.set_optimized_replay(true);
        let opt_run = optimized.run(&input);

        match (live_run, opt_run) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(b.layer_outputs(), a.layer_outputs());
                if !opt.nb_dedup && !opt.sb_coalesce {
                    // Multiplicities untouched → counter deltas match the
                    // per-access live filter exactly.
                    prop_assert_eq!(b.fault_stats(), a.fault_stats());
                }
            }
            // Detected errors force live decode on both paths, so the
            // abort is the exact same access either way.
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "paths diverged: live {a:?} vs optimized {b:?}"),
        }
    }
}

/// All default passes fire on every zoo network: outputs bit-identical,
/// cycles *strictly* reduced, energy never increased.
#[test]
fn zoo_networks_strictly_improve_under_default_passes() {
    let accel = Accelerator::default();
    for build in zoo::all() {
        let net = build.build(2015).expect("zoo networks build");
        let prepared = accel.prepare(&net).expect("zoo networks fit");
        let report = *prepared.optimizer_report();
        assert!(report.cycles_saved > 0, "{}: no cycles folded", net.name());
        assert!(
            report.nb_reads_eliminated + report.nb_modes_reselected > 0,
            "{}: no NB work eliminated",
            net.name()
        );
        let input = net.random_input(7);
        let mut base = prepared.session();
        let base_run = base.run(&input).expect("clean run");
        let mut optimized = prepared.session();
        optimized.set_optimized_replay(true);
        let opt_run = optimized.run(&input).expect("clean run");
        assert_eq!(opt_run.layer_outputs(), base_run.layer_outputs());
        assert!(
            opt_run.stats().cycles() < base_run.stats().cycles(),
            "{}: cycles not strictly reduced",
            net.name()
        );
        assert!(
            opt_run.energy().total_nj() <= base_run.energy().total_nj(),
            "{}: energy increased",
            net.name()
        );
        assert!(
            report.energy_saved_nj >= 0.0,
            "{}: negative energy delta",
            net.name()
        );
    }
}

/// The pass toggles really gate their effects: with every pass off the
/// optimized schedule is a verbatim copy, and toggling the session back
/// and forth lands on the same schedules.
#[test]
fn pass_toggles_gate_their_effects() {
    let net = zoo::lenet5().build(2015).expect("builds");
    let mut prepared = Accelerator::default().prepare(&net).expect("fits");
    let input = net.random_input(3);
    let base_cycles = prepared
        .session()
        .run(&input)
        .expect("runs")
        .stats()
        .cycles();

    prepared.reoptimize(&OptConfig::none());
    assert_eq!(
        *prepared.optimizer_report(),
        shidiannao_core::OptReport::default()
    );
    let mut s = prepared.session();
    s.set_optimized_replay(true);
    assert_eq!(s.run(&input).expect("runs").stats().cycles(), base_cycles);

    // fifo_fold alone saves cycles but leaves traffic untouched.
    prepared.reoptimize(&OptConfig {
        fifo_fold: true,
        ..OptConfig::none()
    });
    let report = *prepared.optimizer_report();
    assert!(report.cycles_saved > 0);
    assert_eq!(report.nb_reads_eliminated, 0);
    assert_eq!(report.sb_accesses_coalesced, 0);
    let mut s = prepared.session();
    s.set_optimized_replay(true);
    let folded = s.run(&input).expect("runs").stats().cycles();
    assert_eq!(folded, base_cycles - report.cycles_saved);
    // Flipping the toggle off returns to the recorded stream.
    s.set_optimized_replay(false);
    assert_eq!(s.run(&input).expect("runs").stats().cycles(), base_cycles);
}

/// Batched lanes replay the optimized stream too (the value-lane
/// executor honours `row_lanes`), bit-identical to sequential infers.
#[test]
fn batched_lanes_replay_optimized_schedules() {
    let net = zoo::simple_conv().build(2015).expect("builds");
    let prepared = Accelerator::default().prepare(&net).expect("fits");
    let inputs: Vec<_> = (0..4).map(|i| net.random_input(100 + i)).collect();
    let mut optimized = prepared.session();
    optimized.set_optimized_replay(true);
    let batch = optimized.infer_batch(&inputs).expect("batch runs");
    let mut seq = prepared.session();
    seq.set_optimized_replay(true);
    for (lane, input) in inputs.iter().enumerate() {
        let one = seq.infer(input).expect("runs");
        assert_eq!(
            batch[lane].output().flatten(),
            one.output().flatten(),
            "lane {lane} diverged"
        );
        assert_eq!(batch[lane].stats().cycles(), one.stats().cycles());
    }
}
