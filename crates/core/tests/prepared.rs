//! Regression tests for the prepared-run execution pipeline: the
//! `prepare`/`PreparedNetwork`/`Session` path must be observably
//! identical to the legacy one-shot `Accelerator::run` and to the
//! golden fixed-point reference, and re-running a prepared network must
//! do zero recompilation and zero synapse-store rebuilds.

use shidiannao_cnn::zoo;
use shidiannao_core::{compiler, Accelerator, AcceleratorConfig, SynapseStore};

const SEED: u64 = 2015;
const INPUT_SEED: u64 = SEED ^ 0xABCD;

/// The three benchmark topologies the regression runs over (kept small
/// enough that the test stays fast, diverse enough to cover conv,
/// pooling, and classifier layers).
fn nets() -> Vec<shidiannao_cnn::Network> {
    [zoo::lenet5(), zoo::gabor(), zoo::simple_conv()]
        .into_iter()
        .map(|b| b.build(SEED).expect("zoo topologies are valid"))
        .collect()
}

#[test]
fn prepared_run_matches_legacy_run_and_golden_reference() {
    for net in nets() {
        let input = net.random_input(INPUT_SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());

        let legacy = accel.run(&net, &input).expect("fits the paper config");
        let prepared = accel.prepare(&net).expect("fits the paper config");
        let fresh = prepared.run(&input).expect("same input shape");

        assert_eq!(fresh.output(), legacy.output(), "{}", net.name());
        assert_eq!(fresh.layer_outputs(), legacy.layer_outputs());
        assert_eq!(fresh.stats(), legacy.stats(), "{}", net.name());
        assert_eq!(fresh.energy(), legacy.energy(), "{}", net.name());

        let golden = net.forward_fixed(&input);
        assert_eq!(fresh.output(), golden.output(), "{}", net.name());
    }
}

#[test]
fn repeated_session_runs_are_bit_identical() {
    for net in nets() {
        let input = net.random_input(INPUT_SEED);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let legacy = accel.run(&net, &input).expect("fits the paper config");
        let prepared = accel.prepare(&net).expect("fits the paper config");

        let mut session = prepared.session();
        for round in 0..3 {
            let run = session.run(&input).expect("same input shape");
            assert_eq!(
                run.output(),
                legacy.output(),
                "{} round {round}",
                net.name()
            );
            assert_eq!(run.stats(), legacy.stats(), "{} round {round}", net.name());
            assert_eq!(
                run.energy(),
                legacy.energy(),
                "{} round {round}",
                net.name()
            );
        }

        // The trace-free fast path through the same (already used)
        // session must agree too.
        for round in 0..2 {
            let inf = session.infer(&input).expect("same input shape");
            assert_eq!(
                inf.output_flat(),
                legacy.output(),
                "{} round {round}",
                net.name()
            );
            assert_eq!(inf.stats(), legacy.stats(), "{} round {round}", net.name());
            assert_eq!(
                inf.energy(),
                legacy.energy(),
                "{} round {round}",
                net.name()
            );
        }
    }
}

#[test]
fn session_reuse_does_zero_recompilation_and_zero_store_rebuilds() {
    let net = zoo::lenet5().build(SEED).expect("valid topology");
    let input = net.random_input(INPUT_SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("fits the paper config");

    // Everything after prepare() must touch neither the compiler nor the
    // synapse-store builder, no matter how many inferences run.
    let compiles_before = compiler::compile_calls();
    let builds_before = SynapseStore::build_calls();

    let mut session = prepared.session();
    for _ in 0..5 {
        session.infer(&input).expect("same input shape");
    }
    session.run(&input).expect("same input shape");
    prepared.run(&input).expect("same input shape");

    assert_eq!(
        compiler::compile_calls(),
        compiles_before,
        "re-running a prepared network must not recompile"
    );
    assert_eq!(
        SynapseStore::build_calls(),
        builds_before,
        "re-running a prepared network must not rebuild the synapse store"
    );
}

#[test]
fn legacy_run_wrapper_still_compiles_once_per_call() {
    let net = zoo::gabor().build(SEED).expect("valid topology");
    let input = net.random_input(INPUT_SEED);
    let accel = Accelerator::new(AcceleratorConfig::paper());

    let before = compiler::compile_calls();
    accel.run(&net, &input).expect("fits the paper config");
    accel.run(&net, &input).expect("fits the paper config");
    assert_eq!(
        compiler::compile_calls() - before,
        2,
        "the one-shot wrapper prepares (and compiles) on every call"
    );
}

#[test]
fn sessions_from_one_prepared_network_are_independent() {
    let net = zoo::simple_conv().build(SEED).expect("valid topology");
    let a_input = net.random_input(INPUT_SEED);
    let b_input = net.random_input(INPUT_SEED ^ 0x5555);
    let prepared = Accelerator::new(AcceleratorConfig::paper())
        .prepare(&net)
        .expect("fits the paper config");

    let mut one = prepared.session();
    let mut two = prepared.session();
    // Interleave: runs through one session must not perturb the other.
    let a1 = one.infer(&a_input).expect("shape ok");
    let b1 = two.infer(&b_input).expect("shape ok");
    let a2 = one.infer(&a_input).expect("shape ok");
    let b2 = two.infer(&b_input).expect("shape ok");
    assert_eq!(a1.output_flat(), a2.output_flat());
    assert_eq!(b1.output_flat(), b2.output_flat());
    assert_eq!(a1.output_flat(), net.forward_fixed(&a_input).output());
    assert_eq!(b1.output_flat(), net.forward_fixed(&b_input).output());
}
