//! The simulator's functional contract: every layer type, every benchmark
//! network, bit-identical to the golden reference.

use shidiannao_cnn::{
    zoo, Activation, ConvSpec, FcSpec, LcnSpec, LrnSpec, NetworkBuilder, PoolSpec,
};
use shidiannao_core::{Accelerator, AcceleratorConfig};

fn assert_bit_identical(builder: NetworkBuilder, seed: u64) {
    let net = builder.build(seed).unwrap();
    let input = net.random_input(seed.wrapping_mul(31) + 1);
    let golden = net.forward_fixed(&input);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let run = accel
        .run(&net, &input)
        .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
    for (i, sim_out) in run.layer_outputs().iter().enumerate() {
        assert_eq!(
            sim_out,
            golden.layer_output(i).unwrap(),
            "{} layer {i} diverges from the golden reference",
            net.name()
        );
    }
}

#[test]
fn all_ten_benchmarks_are_bit_identical() {
    for builder in zoo::all() {
        assert_bit_identical(builder, 42);
    }
}

#[test]
fn extended_zoo_networks_are_bit_identical() {
    for builder in zoo::extended::all() {
        assert_bit_identical(builder, 43);
    }
}

#[test]
fn conv_with_stride_matches() {
    assert_bit_identical(
        NetworkBuilder::new("stride", 1, (17, 15))
            .conv(ConvSpec::new(3, (3, 3)).with_stride((2, 2))),
        7,
    );
    assert_bit_identical(
        NetworkBuilder::new("stride-asym", 2, (20, 12))
            .conv(ConvSpec::new(3, (5, 3)).with_stride((3, 1))),
        8,
    );
}

#[test]
fn conv_kernel_larger_than_pe_array_matches() {
    // Fig. 8's "most complex case": Kx > Px and Ky > Py.
    assert_bit_identical(
        NetworkBuilder::new("bigkernel", 1, (16, 16))
            .conv(ConvSpec::new(2, (11, 10)).with_activation(Activation::Sigmoid)),
        9,
    );
}

#[test]
fn one_by_one_kernel_matches() {
    assert_bit_identical(
        NetworkBuilder::new("1x1", 3, (9, 9)).conv(ConvSpec::new(4, (1, 1))),
        10,
    );
}

#[test]
fn overlapping_pooling_matches() {
    // §8.2's "rare cases": stride smaller than the window, treated like a
    // convolution.
    assert_bit_identical(
        NetworkBuilder::new("overlap-max", 1, (12, 12))
            .pool(PoolSpec::max((3, 3)).with_stride((2, 2))),
        11,
    );
    assert_bit_identical(
        NetworkBuilder::new("overlap-avg", 2, (10, 10))
            .pool(PoolSpec::avg((3, 3)).with_stride((1, 1))),
        12,
    );
}

#[test]
fn ceiling_pooling_matches() {
    assert_bit_identical(
        NetworkBuilder::new("ceil", 2, (21, 26)).pool(PoolSpec::max((2, 2)).with_ceil()),
        13,
    );
    assert_bit_identical(
        NetworkBuilder::new("ceil-avg", 1, (9, 11)).pool(PoolSpec::avg((2, 2)).with_ceil()),
        14,
    );
}

#[test]
fn pooling_with_activation_matches() {
    assert_bit_identical(
        NetworkBuilder::new("pool-act", 1, (8, 8))
            .pool(PoolSpec::avg((2, 2)).with_activation(Activation::Tanh)),
        15,
    );
}

#[test]
fn sparse_classifier_matches() {
    assert_bit_identical(
        NetworkBuilder::new("sparse-fc", 1, (12, 15))
            .fc(FcSpec::new(30).with_synapses_per_output(20)),
        16,
    );
}

#[test]
fn classifier_group_spillover_matches() {
    // More outputs than PEs: multiple §8.3 groups.
    assert_bit_identical(
        NetworkBuilder::new("big-fc", 1, (10, 10)).fc(FcSpec::new(200)),
        17,
    );
}

#[test]
fn lrn_matches() {
    assert_bit_identical(
        NetworkBuilder::new("lrn", 5, (9, 9)).lrn(LrnSpec {
            window_maps: 3,
            k: 1.0,
            alpha: 0.25,
        }),
        18,
    );
}

#[test]
fn lcn_matches() {
    assert_bit_identical(
        NetworkBuilder::new("lcn", 2, (11, 11)).lcn(LcnSpec::new(5)),
        19,
    );
}

#[test]
fn norm_inside_deep_network_matches() {
    assert_bit_identical(
        NetworkBuilder::new("deep-norm", 1, (20, 20))
            .conv(ConvSpec::new(4, (3, 3)))
            .lrn(LrnSpec {
                window_maps: 3,
                k: 1.0,
                alpha: 0.5,
            })
            .pool(PoolSpec::max((2, 2)))
            .lcn(LcnSpec::new(3))
            .fc(FcSpec::new(7)),
        20,
    );
}

#[test]
fn results_match_across_pe_grid_sizes() {
    // The mapping is PE-grid agnostic: outputs must not change with the
    // array dimensions.
    let net = zoo::lenet5().build(5).unwrap();
    let input = net.random_input(6);
    let golden = net.forward_fixed(&input).output();
    for (px, py) in [(1, 1), (2, 3), (4, 4), (8, 8), (16, 16), (5, 7)] {
        let accel = Accelerator::new(AcceleratorConfig::with_pe_grid(px, py));
        let run = accel.run(&net, &input).unwrap();
        assert_eq!(run.output(), golden, "diverges on {px}x{py} PE grid");
    }
}

#[test]
fn results_match_without_propagation() {
    // Inter-PE propagation is a pure bandwidth optimisation: turning it
    // off must not change results, only NBin traffic.
    let net = zoo::cff().build(3).unwrap();
    let input = net.random_input(4);
    let with = Accelerator::new(AcceleratorConfig::paper())
        .run(&net, &input)
        .unwrap();
    let without = Accelerator::new(AcceleratorConfig::paper().without_propagation())
        .run(&net, &input)
        .unwrap();
    assert_eq!(with.output(), without.output());
    let with_reads = with.stats().total().nbin.read_bytes;
    let without_reads = without.stats().total().nbin.read_bytes;
    assert!(
        with_reads < without_reads,
        "propagation must reduce NBin reads ({with_reads} vs {without_reads})"
    );
}
