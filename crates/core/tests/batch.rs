//! Property-based equivalence of the batched execution path:
//! `Session::infer_batch` must be bit-identical — per-lane outputs,
//! statistics (including every `LayerStats` slot), energy, and fault
//! counters — to running the same inputs through N sequential
//! `Session::infer` calls, across random topologies, batch sizes 1–8,
//! fault plans, and replay on/off. Plus the allocation contract: a
//! steady-state `infer_batch_into` performs zero heap allocations.

use proptest::prelude::*;
use shidiannao_cnn::{Activation, ConvSpec, FcSpec, LrnSpec, Network, NetworkBuilder, PoolSpec};
use shidiannao_core::{
    Accelerator, AcceleratorConfig, FaultConfig, FaultPlan, RunError, SramProtection,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator for the zero-allocation gate: every `alloc` and
/// growing `realloc` bumps the counter; the gated region diffs it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `inputs` through one `infer_batch` and through N sequential
/// `infer` calls on a second session under the same plan, and asserts
/// every per-lane observable is bit-identical.
fn check_batch_matches_sequential(
    net: &Network,
    cfg: AcceleratorConfig,
    plan: FaultPlan,
    replay: bool,
    batch_n: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let inputs: Vec<_> = (0..batch_n)
        .map(|i| net.random_input(seed ^ i as u64))
        .collect();
    let accel = Accelerator::new(cfg);
    let prepared = accel.prepare(net).expect("network fits");
    let mut batch = prepared.session_with_faults(plan);
    let mut seq = prepared.session_with_faults(plan);
    batch.set_schedule_replay(replay);
    seq.set_schedule_replay(replay);

    match batch.infer_batch(&inputs) {
        Ok(results) => {
            prop_assert_eq!(results.len(), inputs.len());
            for (lane, (input, r)) in inputs.iter().zip(&results).enumerate() {
                let s = seq.infer(input).map_err(|e| {
                    TestCaseError::fail(format!("lane {lane}: sequential path errored: {e}"))
                })?;
                prop_assert_eq!(r.output(), s.output(), "lane {} output", lane);
                prop_assert_eq!(r.stats(), s.stats(), "lane {} stats", lane);
                prop_assert_eq!(r.energy(), s.energy(), "lane {} energy", lane);
                prop_assert_eq!(r.fault_stats(), s.fault_stats(), "lane {} faults", lane);
            }
        }
        Err(RunError::FaultDetected(_)) => {
            // Detected faults are input-independent, so the sequential
            // path aborts identically on its first lane, with the same
            // wasted-attempt cycles and counters.
            let first = seq.infer(&inputs[0]);
            prop_assert!(
                matches!(first, Err(RunError::FaultDetected(_))),
                "batch aborted but sequential lane 0 did not"
            );
            prop_assert_eq!(batch.last_cycles(), seq.last_cycles());
            prop_assert_eq!(batch.fault_stats(), seq.fault_stats());
        }
        Err(e) => return Err(TestCaseError::fail(format!("unexpected batch error: {e}"))),
    }
    Ok(())
}

fn plan(seed: u64, rate: f64, protection: SramProtection, stuck_rate: f64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        nb_flip_rate: rate,
        sb_flip_rate: rate,
        ib_flip_rate: rate,
        pe_stuck_rate: stuck_rate,
        scanline_rate: 0.0,
        double_flip_share: 0.2,
        protection,
    })
}

fn protections() -> impl Strategy<Value = SramProtection> {
    prop_oneof![
        Just(SramProtection::None),
        Just(SramProtection::Parity),
        Just(SramProtection::Secded),
    ]
}

fn rates() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1e-4), Just(1e-3)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_stacks_batch_bit_identical(
        w in 10usize..20,
        c1_maps in 2usize..5,
        k in 2usize..5,
        avg in any::<bool>(),
        out in 1usize..16,
        batch_n in 1usize..=8,
        replay in any::<bool>(),
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        let pool = if avg { PoolSpec::avg((2, 2)) } else { PoolSpec::max((2, 2)) };
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(c1_maps, (k, k)).with_activation(Activation::Tanh))
            .pool(pool)
            .fc(FcSpec::new(out))
            .build(seed)
            .unwrap();
        check_batch_matches_sequential(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0xBA7C, rate, protection, 0.0),
            replay,
            batch_n,
            seed,
        )?;
    }

    #[test]
    fn non_replayable_layers_batch_bit_identical(
        maps in 1usize..4,
        window in 1usize..5,
        w in 5usize..9,
        batch_n in 2usize..=6,
        rate in rates(),
        protection in protections(),
        seed in 0u64..1000,
    ) {
        // LRN layers are not modeled by the schedule: batch value lanes
        // must live-decode them mid-run while replaying neighbours.
        let net = NetworkBuilder::new("p", maps, (w, w))
            .conv(ConvSpec::new(maps, (2, 2)))
            .lrn(LrnSpec { window_maps: window, k: 1.0, alpha: 0.5 })
            .fc(FcSpec::new(5))
            .build(seed)
            .unwrap();
        check_batch_matches_sequential(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0x10A7, rate, protection, 0.0),
            true,
            batch_n,
            seed,
        )?;
    }

    #[test]
    fn stuck_pe_sessions_batch_bit_identical(
        w in 10usize..16,
        k in 2usize..4,
        stuck_rate in prop_oneof![Just(0.0), Just(0.05), Just(0.5)],
        batch_n in 2usize..=5,
        seed in 0u64..1000,
    ) {
        // Stuck-PE meshes make replay decline the whole run; batch value
        // lanes must fall back to full live decode and still match.
        let net = NetworkBuilder::new("p", 1, (w, w))
            .conv(ConvSpec::new(3, (k, k)))
            .pool(PoolSpec::max((2, 2)))
            .fc(FcSpec::new(6))
            .build(seed)
            .unwrap();
        check_batch_matches_sequential(
            &net,
            AcceleratorConfig::paper(),
            plan(seed ^ 0x57CC, 0.0, SramProtection::None, stuck_rate),
            true,
            batch_n,
            seed,
        )?;
    }

    #[test]
    fn small_pe_grids_batch_bit_identical(
        px in 2usize..8,
        py in 2usize..8,
        w in 8usize..14,
        batch_n in 1usize..=8,
        replay in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let net = NetworkBuilder::new("p", 2, (w, w))
            .conv(ConvSpec::new(3, (3, 3)).with_activation(Activation::Sigmoid))
            .fc(FcSpec::new(9))
            .build(seed)
            .unwrap();
        check_batch_matches_sequential(
            &net,
            AcceleratorConfig::with_pe_grid(px, py),
            FaultPlan::none(),
            replay,
            batch_n,
            seed,
        )?;
    }
}

fn lenet_like() -> Network {
    NetworkBuilder::new("batch-steady", 1, (24, 24))
        .conv(ConvSpec::new(4, (5, 5)).with_activation(Activation::Tanh))
        .pool(PoolSpec::max((2, 2)))
        .conv(ConvSpec::new(6, (3, 3)).with_activation(Activation::Tanh))
        .pool(PoolSpec::avg((2, 2)))
        .fc(FcSpec::new(10))
        .build(7)
        .expect("builds")
}

#[test]
fn steady_state_batched_inference_allocates_nothing() {
    let net = lenet_like();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("fits");
    let mut session = prepared.session();
    let inputs: Vec<_> = (0..8).map(|i| net.random_input(i)).collect();
    let mut outputs = Vec::new();

    // Warm-up: grow every buffer, scratch arena, and recycled output
    // stack to the network's high-water mark.
    for _ in 0..3 {
        session
            .infer_batch_into(&inputs, &mut outputs)
            .expect("batch runs");
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5 {
        let batch = session
            .infer_batch_into(&inputs, &mut outputs)
            .expect("batch runs");
        assert!(batch.stats().cycles() > 0);
        assert_eq!(batch.len(), inputs.len());
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state infer_batch_into must not touch the heap"
    );
}

#[test]
fn batch_output_recycling_survives_batch_size_changes() {
    let net = lenet_like();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("fits");
    let mut session = prepared.session();
    let mut check = prepared.session();
    let mut outputs = Vec::new();

    // Shrinks and regrowths of the output vector must keep every lane
    // bit-identical to a sequential inference of the same input.
    for &n in &[5usize, 2, 8, 1, 4] {
        let inputs: Vec<_> = (0..n)
            .map(|i| net.random_input(0x5EED ^ i as u64))
            .collect();
        session
            .infer_batch_into(&inputs, &mut outputs)
            .expect("batch runs");
        assert_eq!(outputs.len(), n);
        for (input, out) in inputs.iter().zip(&outputs) {
            let expect = check.infer(input).expect("sequential runs");
            assert_eq!(out, expect.output());
        }
    }
}

#[test]
fn empty_batches_are_rejected() {
    let net = lenet_like();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("fits");
    let mut session = prepared.session();
    assert!(matches!(
        session.infer_batch(&[]),
        Err(RunError::EmptyBuffer(_))
    ));
}

#[test]
fn mismatched_lane_shapes_are_rejected() {
    let net = lenet_like();
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let prepared = accel.prepare(&net).expect("fits");
    let mut session = prepared.session();
    let good = net.random_input(1);
    let bad = shidiannao_tensor::MapStack::filled(3, 3, 1, shidiannao_fixed::Fx::ZERO);
    assert!(matches!(
        session.infer_batch(&[good.clone(), bad]),
        Err(RunError::InputShape { .. })
    ));
    // The session recovers: the next batch runs normally.
    let results = session.infer_batch(&[good]).expect("session recovered");
    assert_eq!(results.len(), 1);
}
