//! The synapse store: the SB's contents and address map.
//!
//! §6: "SB stores all synapses of a CNN and has Py banks." This module
//! lays every layer's weights out in a concrete SB image — biases first,
//! then kernels (row-major, in connection order) for convolutional
//! layers; biases then row weights (ascending input index) for classifier
//! layers — and serves the executors' weight fetches from that image. The
//! address map is striped across the `Py` banks at `Px × 2`-byte
//! granularity like the NB (Fig. 5 shows SB banked per PE row).

use crate::buffer::CapacityError;
use core::sync::atomic::AtomicU64;
use shidiannao_cnn::{LayerBody, Network};
use shidiannao_fixed::Fx;

/// Process-wide count of [`SynapseStore::load`] invocations (diagnostic).
static BUILD_CALLS: AtomicU64 = AtomicU64::new(0);

/// Where one layer's weights live in the SB image.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LayerRegion {
    /// First element index of the layer's region.
    base: usize,
    /// Per output map/neuron: offset of its bias, followed by its weights.
    entry_offsets: Vec<usize>,
}

/// The SB image: every synapse and bias of a CNN, resident on chip.
///
/// # Examples
///
/// ```
/// use shidiannao_cnn::zoo;
/// use shidiannao_core::SynapseStore;
///
/// let net = zoo::lenet5().build(1).unwrap();
/// let store = SynapseStore::load(&net, 128 * 1024).unwrap();
/// // All 60 570 synapses plus one bias per output neuron are resident.
/// assert!(store.bytes() >= 60_570 * 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SynapseStore {
    data: Vec<Fx>,
    layers: Vec<LayerRegion>,
    px: usize,
    py: usize,
}

impl SynapseStore {
    /// Serializes a network's weights into an SB image.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the image exceeds `capacity_bytes` —
    /// the §6 constraint that the whole CNN must be resident.
    pub fn load(network: &Network, capacity_bytes: usize) -> Result<SynapseStore, CapacityError> {
        BUILD_CALLS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        let mut data = Vec::new();
        let mut layers = Vec::with_capacity(network.layers().len());
        for layer in network.layers() {
            let base = data.len();
            let mut entry_offsets = Vec::new();
            match layer.body() {
                LayerBody::Conv { table, weights, .. } => {
                    for o in 0..layer.out_maps() {
                        entry_offsets.push(data.len() - base);
                        data.push(weights.bias(o));
                        for j in 0..table.inputs_of(o).len() {
                            data.extend(weights.kernel(o, j).iter().copied());
                        }
                    }
                }
                LayerBody::Fc { weights, .. } => {
                    for n in 0..weights.out_count() {
                        entry_offsets.push(data.len() - base);
                        data.push(weights.bias(n));
                        data.extend(weights.row(n).iter().map(|&(_, w)| w));
                    }
                }
                // Pooling and normalization layers hold no synapses
                // (Table 1's accounting); their regions are empty.
                _ => {}
            }
            layers.push(LayerRegion {
                base,
                entry_offsets,
            });
        }
        let bytes = data.len() * 2;
        if bytes > capacity_bytes {
            return Err(CapacityError {
                buffer: "SB",
                needed: bytes,
                available: capacity_bytes,
            });
        }
        Ok(SynapseStore {
            data,
            layers,
            px: 8,
            py: 8,
        })
    }

    /// How many times [`SynapseStore::load`] has run in this process.
    /// Tests use this to assert that a prepared-network pipeline builds
    /// each SB image exactly once, no matter how many inferences run.
    pub fn build_calls() -> u64 {
        BUILD_CALLS.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Configures the bank striping geometry (defaults to the 8 × 8
    /// paper design).
    pub fn with_banking(mut self, px: usize, py: usize) -> SynapseStore {
        self.px = px.max(1);
        self.py = py.max(1);
        self
    }

    /// Resident bytes (synapses + biases).
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// The SB bank an element index is striped into (`Py` banks at
    /// `Px`-element granularity).
    pub fn bank_of(&self, element: usize) -> usize {
        (element / self.px) % self.py
    }

    fn entry(&self, layer: usize, unit: usize) -> usize {
        let region = &self.layers[layer];
        region.base + region.entry_offsets[unit]
    }

    /// The bias of output map / neuron `unit` of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or the layer holds no
    /// synapses.
    pub fn bias(&self, layer: usize, unit: usize) -> Fx {
        self.data[self.entry(layer, unit)]
    }

    /// Convolution kernel element `(kx, ky)` of output map `o`'s `j`-th
    /// connected input, given the kernel dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn conv_weight(
        &self,
        layer: usize,
        o: usize,
        j: usize,
        (kx, ky): (usize, usize),
        kernel: (usize, usize),
    ) -> Fx {
        let idx = self.entry(layer, o) + 1 + j * kernel.0 * kernel.1 + ky * kernel.0 + kx;
        self.data[idx]
    }

    /// The whole kernel of output map `o`'s `j`-th connected input as one
    /// contiguous slice in sweep `(ky, kx)` row-major order — the replay
    /// and batch value lanes borrow this directly instead of staging the
    /// kernel element by element.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn conv_kernel(&self, layer: usize, o: usize, j: usize, kernel: (usize, usize)) -> &[Fx] {
        let k = kernel.0 * kernel.1;
        let base = self.entry(layer, o) + 1 + j * k;
        &self.data[base..base + k]
    }

    /// The `k`-th weight (ascending input-index order) of classifier
    /// output `n`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fc_weight(&self, layer: usize, n: usize, k: usize) -> Fx {
        self.data[self.entry(layer, n) + 1 + k]
    }

    /// All `len` weights of classifier output `n` as one slice (ascending
    /// input-index order) — the analytic fast path streams a whole row
    /// per PE instead of re-deriving the entry base per weight.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fc_row(&self, layer: usize, n: usize, len: usize) -> &[Fx] {
        let entry = self.entry(layer, n);
        &self.data[entry + 1..entry + 1 + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shidiannao_cnn::zoo;

    #[test]
    fn lenet_image_matches_its_weights() {
        let net = zoo::lenet5().build(7).unwrap();
        let store = SynapseStore::load(&net, 128 * 1024).unwrap();
        for (i, layer) in net.layers().iter().enumerate() {
            match layer.body() {
                LayerBody::Conv {
                    table,
                    weights,
                    kernel,
                    ..
                } => {
                    for o in 0..layer.out_maps() {
                        assert_eq!(store.bias(i, o), weights.bias(o));
                        for j in 0..table.inputs_of(o).len() {
                            let slice = store.conv_kernel(i, o, j, *kernel);
                            for ky in 0..kernel.1 {
                                for kx in 0..kernel.0 {
                                    assert_eq!(
                                        store.conv_weight(i, o, j, (kx, ky), *kernel),
                                        weights.kernel(o, j)[(kx, ky)]
                                    );
                                    assert_eq!(
                                        slice[ky * kernel.0 + kx],
                                        weights.kernel(o, j)[(kx, ky)]
                                    );
                                }
                            }
                        }
                    }
                }
                LayerBody::Fc { weights, .. } => {
                    for n in 0..weights.out_count() {
                        assert_eq!(store.bias(i, n), weights.bias(n));
                        for (k, &(_, w)) in weights.row(n).iter().enumerate() {
                            assert_eq!(store.fc_weight(i, n, k), w);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn footprint_is_synapses_plus_biases() {
        let net = zoo::lenet5().build(7).unwrap();
        let store = SynapseStore::load(&net, 128 * 1024).unwrap();
        let synapses: usize = net.layers().iter().map(|l| l.synapse_count()).sum();
        // Biases: one per conv output map or classifier output neuron.
        let biases = 6 + 16 + 120 + 84 + 10;
        assert_eq!(store.bytes(), (synapses + biases) * 2);
    }

    #[test]
    fn every_benchmark_fits_the_paper_sb() {
        for b in zoo::all() {
            let net = b.build(1).unwrap();
            let store = SynapseStore::load(&net, 128 * 1024);
            assert!(store.is_ok(), "{}", net.name());
        }
    }

    #[test]
    fn overflow_names_the_sb() {
        let net = zoo::lenet5().build(1).unwrap();
        let err = SynapseStore::load(&net, 1024).unwrap_err();
        assert_eq!(err.buffer, "SB");
        assert!(err.needed > 118 * 1024);
    }

    #[test]
    fn bank_striping_covers_all_banks() {
        let net = zoo::lenet5().build(1).unwrap();
        let store = SynapseStore::load(&net, 128 * 1024)
            .unwrap()
            .with_banking(8, 8);
        let mut seen = [false; 8];
        for e in 0..64 {
            seen[store.bank_of(e * 8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(store.bank_of(0), store.bank_of(7));
        assert_ne!(store.bank_of(0), store.bank_of(8));
    }
}
